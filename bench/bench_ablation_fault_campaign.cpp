// ABL-FAULT — reliability-guarantee campaign: dependability outcomes
// (correct / corrected / detected-abort / silent corruption) of the
// reliable convolution under SEU fault injection, for each executor
// scheme across transient fault rates. This is the evidence behind the
// paper's claim that operation-level redundancy plus rollback yields
// reliable execution: the simplex baseline accumulates silent data
// corruption, DMR/TMR drive SDC to (near) zero, trading it for
// fail-stops at high rates.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "faultsim/campaign.hpp"
#include "faultsim/injector.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

}  // namespace

int main() {
  bench::banner("ABL-FAULT", "fault-injection campaign (SEU model)");

  // Small conv1-like workload keeps each run ~1 ms so the campaign can
  // afford hundreds of runs per cell.
  util::Rng rng(3);
  tensor::Tensor weights(tensor::Shape{8, 3, 5, 5});
  weights.fill_normal(rng, 0.0f, 0.2f);
  tensor::Tensor bias(tensor::Shape{8});
  const reliable::ReliableConv2d conv(weights, bias,
                                      reliable::ConvSpec{1, 2});
  tensor::Tensor input(tensor::Shape{3, 24, 24});
  input.fill_normal(rng, 0.0f, 1.0f);
  const tensor::Tensor golden = conv.reference_forward(input);
  const std::uint64_t ops = 2 * conv.mac_count(input.shape());

  const std::size_t runs = bench::quick_mode() ? 40 : 200;
  std::printf("workload: 8x 5x5x3 filters over 24x24x3 (%llu qualified ops"
              " per run), %zu runs per cell\n",
              static_cast<unsigned long long>(ops), runs);

  util::Table table("dependability outcomes per scheme and fault rate",
                    {"scheme", "rate/op", "correct", "corrected",
                     "detected_abort", "SDC", "availability", "safety"});
  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "fault_campaign.csv"),
      {"scheme", "rate", "correct", "corrected", "detected_abort",
       "silent_corruption", "availability", "safety"});

  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    for (const double rate : {1e-6, 1e-5, 1e-4, 1e-3}) {
      // Independent runs execute across the thread pool; per-run injector
      // seeds keep the summary bit-identical at any thread count.
      const faultsim::CampaignSummary summary = conv.forward_campaign(
          input, runs,
          [&](std::size_t run) {
            faultsim::FaultConfig cfg;
            cfg.kind = faultsim::FaultKind::kTransient;
            cfg.probability = rate;
            cfg.bit = -1;
            return reliable::make_executor(
                scheme,
                std::make_shared<faultsim::FaultInjector>(cfg, 1000 + run));
          },
          [&](std::size_t, const reliable::ReliableResult& result,
              reliable::Executor& exec) {
            return faultsim::classify(exec.injector()->stats().faults > 0,
                                      !result.report.ok,
                                      result.output == golden);
          });
      table.row({scheme, util::CsvWriter::num(rate),
                 std::to_string(summary.correct),
                 std::to_string(summary.corrected),
                 std::to_string(summary.detected_abort),
                 std::to_string(summary.silent_corruption),
                 util::Table::fixed(summary.availability(), 3),
                 util::Table::fixed(summary.safety(), 3)});
      csv.row({scheme, util::CsvWriter::num(rate),
               std::to_string(summary.correct),
               std::to_string(summary.corrected),
               std::to_string(summary.detected_abort),
               std::to_string(summary.silent_corruption),
               util::CsvWriter::num(summary.availability()),
               util::CsvWriter::num(summary.safety())});
    }
  }
  table.print();

  std::printf("\nexpected shape: simplex leaks SDC as soon as faults "
              "activate; dmr/tmr keep safety ~1.0, trading high fault "
              "rates for detected fail-stops (dmr) or masking (tmr).\n");
  std::printf("CSV written to %s\n", csv.path().c_str());
  return 0;
}
