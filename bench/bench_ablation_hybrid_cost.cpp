// ABL-HYBRID — the conclusion's footprint claim: "we can reduce the
// necessary reliable execution to limits that a dependable model
// determines rather than just reliably executing an entire CNN or
// maintaining two parallel yet independent execution paths. We conserve
// both footprint and computational power."
//
// Four execution strategies over AlexNet are compared in logical MACs
// (architecture-independent) and measured time on a reduced workload:
//   plain          — no reliability at all
//   hybrid (paper) — conv1 reliable (DMR) + qualifier, rest plain
//   full-reliable  — every conv/fc op through DMR operators
//   duplicated     — two parallel independent executions + compare
#include <cstdio>

#include "bench_common.hpp"
#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "nn/alexnet.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "runtime/workspace.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

}  // namespace

int main() {
  bench::banner("ABL-HYBRID", "hybrid vs full-reliable vs duplicated cost");

  // --- MAC accounting at the paper's scale (AlexNet, 227x227). --------
  core::HybridNetwork hybrid(
      nn::make_alexnet({.num_classes = 43, .seed = 1, .with_dropout = false}),
      nn::kAlexNetConv1, core::HybridConfig{});
  const auto split = hybrid.cost_split(tensor::Shape{3, 227, 227});

  // DMR doubles every reliable execution; the qualifier is already inside
  // reliable_macs.
  const std::uint64_t plain = split.total_macs - // qualifier not in plain
                              2ull * 9ull * 227ull * 227ull;
  const std::uint64_t hybrid_cost =
      (split.total_macs - split.reliable_macs) + 2 * split.reliable_macs;
  const std::uint64_t full_reliable = 2 * split.total_macs;
  const std::uint64_t duplicated = 2 * plain;

  util::Table table("execution strategies, AlexNet 227x227 (logical MACs)",
                    {"strategy", "MACs (1e6)", "vs plain", "reliable share"});
  const auto row = [&](const char* name, std::uint64_t macs,
                       const char* share) {
    table.row({name, util::Table::fixed(static_cast<double>(macs) / 1e6, 1),
               util::Table::fixed(static_cast<double>(macs) /
                                      static_cast<double>(plain), 3),
               share});
  };
  row("plain CNN (no reliability)", plain, "0%");
  row("hybrid (paper): conv1 DMR + qualifier", hybrid_cost,
      util::Table::fixed(100.0 * static_cast<double>(split.reliable_macs) /
                             static_cast<double>(split.total_macs), 1)
          .append("%")
          .c_str());
  row("fully reliable CNN (every op DMR)", full_reliable, "100%");
  row("duplicated independent CNNs", duplicated, "100%");
  table.print();

  // --- Measured wall time on a reduced network (conv1-heavy nets make
  // the instrumented executor the dominant cost, so a smaller geometry
  // keeps the bench under a minute while preserving the ordering). ------
  std::printf("\nmeasured wall time (reduced 96x96 network):\n");
  auto make_small = [] {
    auto net = std::make_unique<nn::Sequential>();
    net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 96 -> 45
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool>(3, 2);  // 45 -> 22
    net->emplace<nn::Conv2d>(8, 16, 3, 1, 1);
    net->emplace<nn::ReLU>();
    net->emplace<nn::Flatten>();
    net->emplace<nn::Linear>(16 * 22 * 22, 5);
    nn::init_network(*net, 3);
    return net;
  };
  const tensor::Tensor img = data::render_stop_sign(96, 5.0);

  // plain — through the const re-entrant inference path with the calling
  // thread's scratch arena (the deprecated mutating forward() is gone
  // from every bench).
  runtime::Workspace& ws = runtime::thread_scratch();
  auto plain_net = make_small();
  tensor::Tensor batched = img;
  batched.reshape(tensor::Shape{1, 3, 96, 96});
  util::Stopwatch sw;
  static_cast<void>(plain_net->infer(batched, ws));
  const double t_plain = sw.seconds();

  // hybrid
  core::HybridNetwork small_hybrid(make_small(), 0, core::HybridConfig{});
  core::FaultSeedStream seeds = small_hybrid.seed_stream();
  sw.reset();
  static_cast<void>(small_hybrid.classify(img, seeds));
  const double t_hybrid = sw.seconds();

  // hybrid, amortised: classify_repeat builds the reliable kernel once
  // and fans the dependable stage across the pool — the per-inference
  // cost a batched deployment pays.
  constexpr std::size_t kAmortisedRuns = 4;
  sw.reset();
  static_cast<void>(small_hybrid.classify_repeat(img, kAmortisedRuns, seeds));
  const double t_hybrid_batch =
      sw.seconds() / static_cast<double>(kAmortisedRuns);

  // fully reliable: both convolutions through DMR operators; the (tiny)
  // dense head stays plain — it is <1% of the MACs, noted in the output.
  auto full_net = make_small();
  const auto exec = reliable::make_executor("dmr", nullptr);
  sw.reset();
  {
    auto& c1 = full_net->layer_as<nn::Conv2d>(0);
    const reliable::ReliableConv2d r1(c1.weights(), c1.bias(),
                                      reliable::ConvSpec{2, 0});
    tensor::Tensor m1 = r1.forward(img, *exec).output;
    m1.reshape(tensor::Shape{1, m1.shape()[0], m1.shape()[1],
                             m1.shape()[2]});
    tensor::Tensor pooled = full_net->layer(1).infer(m1, ws);   // relu
    pooled = full_net->layer(2).infer(pooled, ws);              // maxpool
    tensor::Tensor chw = pooled;
    chw.reshape(tensor::Shape{pooled.shape()[1], pooled.shape()[2],
                              pooled.shape()[3]});
    auto& c2 = full_net->layer_as<nn::Conv2d>(3);
    const reliable::ReliableConv2d r2(c2.weights(), c2.bias(),
                                      reliable::ConvSpec{1, 1});
    tensor::Tensor m2 = r2.forward(chw, *exec).output;
    m2.reshape(tensor::Shape{1, m2.shape()[0], m2.shape()[1],
                             m2.shape()[2]});
    (void)full_net->infer_from(4, m2, ws);  // relu, flatten, dense head
  }
  const double t_full = sw.seconds();

  // duplicated: two plain runs + output compare.
  sw.reset();
  auto out_a = plain_net->infer(batched, ws);
  auto out_b = plain_net->infer(batched, ws);
  volatile bool same = out_a == out_b;
  (void)same;
  const double t_dup = sw.seconds();

  util::Table timing("measured strategies (96x96 network)",
                     {"strategy", "seconds", "vs plain"});
  timing.row({"plain", util::Table::fixed(t_plain, 4), "1.00"});
  timing.row({"hybrid (conv1 DMR + qualifier)",
              util::Table::fixed(t_hybrid, 4),
              util::Table::fixed(t_hybrid / t_plain, 2)});
  timing.row({"hybrid, batched (classify_repeat x4, per img)",
              util::Table::fixed(t_hybrid_batch, 4),
              util::Table::fixed(t_hybrid_batch / t_plain, 2)});
  timing.row({"fully reliable (all convs DMR)",
              util::Table::fixed(t_full, 4),
              util::Table::fixed(t_full / t_plain, 2)});
  timing.row({"duplicated plain CNNs", util::Table::fixed(t_dup, 4),
              util::Table::fixed(t_dup / t_plain, 2)});
  timing.print();

  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "hybrid_cost.csv"),
      {"strategy", "alexnet_macs", "measured_seconds_96px"});
  csv.row({"plain", std::to_string(plain), util::CsvWriter::num(t_plain)});
  csv.row({"hybrid", std::to_string(hybrid_cost),
           util::CsvWriter::num(t_hybrid)});
  csv.row({"hybrid_batched", std::to_string(hybrid_cost),
           util::CsvWriter::num(t_hybrid_batch)});
  csv.row({"full_reliable", std::to_string(full_reliable),
           util::CsvWriter::num(t_full)});
  csv.row({"duplicated", std::to_string(duplicated),
           util::CsvWriter::num(t_dup)});

  std::printf("\nexpected shape: hybrid adds only the reliable share "
              "(conv1 ~9%% of AlexNet MACs) once, while full reliability "
              "and duplication double everything. Note the measured table "
              "uses a reduced network whose conv1 is ~80%% of all MACs, so "
              "hybrid and fully-reliable nearly coincide there; the MAC "
              "table at the paper's AlexNet scale shows the real split "
              "(1.10x vs 2.00x). The instrumented executor's virtual "
              "dispatch also inflates reliable time vs the GEMM engine — "
              "the same software-vs-hardware gap the paper notes for its "
              "Python prototype.\n");
  std::printf("CSV written to %s\n", csv.path().c_str());
  return 0;
}
