// ABL-BUCKET — leaky-bucket parameter ablation: how (factor, ceiling)
// trades availability (runs completing despite faults) against latency
// (retries) and fail-stop rate, across fault rates. The paper fixes
// "increment by factor, decrement by one, floor zero" and notes the
// chosen behaviour "will cancel one, but not two successive errors";
// this bench shows what other choices of the two constants would do.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "faultsim/injector.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

}  // namespace

int main() {
  bench::banner("ABL-BUCKET", "leaky-bucket (factor, ceiling) ablation");

  util::Rng rng(5);
  tensor::Tensor weights(tensor::Shape{4, 3, 5, 5});
  weights.fill_normal(rng, 0.0f, 0.2f);
  tensor::Tensor bias(tensor::Shape{4});
  tensor::Tensor input(tensor::Shape{3, 20, 20});
  input.fill_normal(rng, 0.0f, 1.0f);

  const std::size_t runs = bench::quick_mode() ? 30 : 120;

  struct Cell {
    std::uint32_t factor;
    std::uint32_t ceiling;
  };
  const Cell cells[] = {{2, 4},   // paper default: 1 error recoverable
                        {1, 2},   // stricter: half the slack
                        {2, 3},   // trips on error,success,error patterns
                        {2, 8},   // tolerates 3 successive errors
                        {1, 16},  // very tolerant
                        {4, 4}};  // zero tolerance: first error trips

  util::Table table("availability vs bucket parameters (DMR, transient)",
                    {"factor", "ceiling", "rate/op", "completed",
                     "fail-stop", "avg retries", "avg bucket peak"});
  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "leaky_bucket.csv"),
      {"factor", "ceiling", "rate", "completed", "fail_stop",
       "avg_retries", "avg_peak"});

  for (const Cell& cell : cells) {
    reliable::ReliabilityPolicy policy;
    policy.bucket_factor = cell.factor;
    policy.bucket_ceiling = cell.ceiling;
    policy.max_retries_per_op = 64;
    const reliable::ReliableConv2d conv(weights, bias,
                                        reliable::ConvSpec{1, 2}, policy);
    const tensor::Tensor golden = conv.reference_forward(input);

    for (const double rate : {1e-4, 1e-3, 5e-3}) {
      std::size_t completed = 0;
      std::size_t fail_stop = 0;
      double retries = 0.0;
      double peak = 0.0;
      for (std::size_t run = 0; run < runs; ++run) {
        faultsim::FaultConfig cfg;
        cfg.kind = faultsim::FaultKind::kTransient;
        cfg.probability = rate;
        cfg.bit = -1;
        auto inj =
            std::make_shared<faultsim::FaultInjector>(cfg, 2000 + run);
        const auto exec = reliable::make_executor("dmr", inj);
        const auto result = conv.forward(input, *exec);
        if (result.report.ok) {
          ++completed;
        } else {
          ++fail_stop;
        }
        retries += static_cast<double>(result.report.retries);
        peak += static_cast<double>(result.report.bucket_peak);
      }
      table.row({std::to_string(cell.factor), std::to_string(cell.ceiling),
                 util::CsvWriter::num(rate), std::to_string(completed),
                 std::to_string(fail_stop),
                 util::Table::fixed(retries / static_cast<double>(runs), 2),
                 util::Table::fixed(peak / static_cast<double>(runs), 2)});
      csv.row({std::to_string(cell.factor), std::to_string(cell.ceiling),
               util::CsvWriter::num(rate), std::to_string(completed),
               std::to_string(fail_stop),
               util::CsvWriter::num(retries / static_cast<double>(runs)),
               util::CsvWriter::num(peak / static_cast<double>(runs))});
    }
  }
  table.print();

  std::printf("\nexpected shape: larger ceiling/smaller factor -> higher "
              "availability at high fault rates (more recoverable error "
              "patterns); (4,4) fail-stops on the first detected error; "
              "the paper's (2,4) survives isolated errors only.\n");
  std::printf("CSV written to %s\n", csv.path().c_str());
  return 0;
}
