// ABL-MEMORY — the memory-fault evaluation axis.
//
// The execution-level scheme (Algorithms 1-3) cannot see corrupted
// parameters: it reliably computes the wrong convolution. The paper
// assigns that failure source to memory ECC (Section II.C); this bench
// quantifies the division of labour on three surfaces:
//
//   1. sampler   — the geometric skip sampler vs the per-bit Bernoulli
//                  cost it replaced (draw counts and wall time);
//   2. kernel    — stored conv weights under a swept bit-error rate,
//                  unprotected vs SEC-DED scrubbed, output vs golden;
//   3. campaign  — the full hybrid classify path under weight upsets
//                  (core::MemoryFaultCampaign) with outcome taxonomy,
//                  plus intermittent (checkpointed) execution under
//                  power-cycle traces.
//
// Emits bench_results/BENCH_memory_protection.json for CI artefacts.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/hybrid_network.hpp"
#include "core/memory_campaign.hpp"
#include "data/renderer.hpp"
#include "faultsim/ecc.hpp"
#include "faultsim/memory_faults.hpp"
#include "faultsim/power.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "reliable/reliable_conv.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

struct SamplerRow {
  double rate = 0.0;
  std::uint64_t bits = 0;
  std::uint64_t flips = 0;
  std::uint64_t draws = 0;
  double geometric_s = 0.0;
  double bernoulli_s = 0.0;
};

/// Wall time and draw count of the geometric sampler against the
/// per-bit Bernoulli loop it replaced (same Rng, same flip semantics).
SamplerRow measure_sampler(double rate) {
  SamplerRow row;
  row.rate = rate;
  tensor::Tensor t(tensor::Shape{64, 64, 16});  // 65536 words
  row.bits = 32ull * t.count();

  {
    util::Rng rng(77);
    util::Stopwatch sw;
    const auto report = faultsim::inject_bit_errors(t, rate, rng);
    row.geometric_s = sw.seconds();
    row.flips = report.bits_flipped;
    row.draws = report.rng_draws;
  }
  {
    // The pre-fix cost model: one uniform variate per bit.
    util::Rng rng(77);
    util::Stopwatch sw;
    std::uint64_t flips = 0;
    for (std::uint64_t b = 0; b < row.bits; ++b) {
      if (rng.uniform() < rate) ++flips;
    }
    row.bernoulli_s = sw.seconds();
    (void)flips;
  }
  return row;
}

struct CampaignRow {
  double rate = 0.0;
  bool ecc = false;
  faultsim::MemoryCampaignSummary summary;
};

struct IntermittentRow {
  const char* trace_name = "";
  std::size_t power_cycles = 0;
  std::size_t steps_committed = 0;
  std::size_t steps_executed = 0;
  bool bit_identical = false;
};

std::unique_ptr<nn::Sequential> make_benchnet() {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 128 -> 61
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);  // 61 -> 30
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 30 * 30, 5);
  nn::init_network(*net, 3);
  return net;
}

void write_json(const std::string& path,
                const std::vector<SamplerRow>& sampler,
                const std::vector<CampaignRow>& campaigns,
                const std::vector<IntermittentRow>& intermittent,
                std::size_t runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"memory_protection\",\n");
  std::fprintf(f, "  \"runs_per_cell\": %zu,\n", runs);
  std::fprintf(f, "  \"sampler\": [\n");
  for (std::size_t i = 0; i < sampler.size(); ++i) {
    const SamplerRow& r = sampler[i];
    std::fprintf(f,
                 "    {\"rate\": %.3g, \"bits\": %llu, \"flips\": %llu, "
                 "\"draws\": %llu, \"draw_reduction\": %.6g, "
                 "\"geometric_sec\": %.6g, \"bernoulli_sec\": %.6g}%s\n",
                 r.rate, static_cast<unsigned long long>(r.bits),
                 static_cast<unsigned long long>(r.flips),
                 static_cast<unsigned long long>(r.draws),
                 r.draws != 0 ? static_cast<double>(r.bits) /
                                    static_cast<double>(r.draws)
                              : 0.0,
                 r.geometric_s, r.bernoulli_s,
                 i + 1 < sampler.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"campaigns\": [\n");
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    const CampaignRow& r = campaigns[i];
    const auto& s = r.summary;
    std::fprintf(
        f,
        "    {\"rate\": %.3g, \"protection\": \"%s\", \"runs\": %llu, "
        "\"intact\": %llu, \"corrected\": %llu, \"uncorrectable\": %llu, "
        "\"qualifier_caught\": %llu, \"silent_corruption\": %llu, "
        "\"bits_flipped\": %llu, \"ecc_corrected_data\": %llu, "
        "\"ecc_corrected_check\": %llu, \"availability\": %.6g, "
        "\"safety\": %.6g, \"sdc_rate\": %.6g}%s\n",
        r.rate, r.ecc ? "secded" : "none",
        static_cast<unsigned long long>(s.runs),
        static_cast<unsigned long long>(s.intact),
        static_cast<unsigned long long>(s.corrected),
        static_cast<unsigned long long>(s.uncorrectable),
        static_cast<unsigned long long>(s.qualifier_caught),
        static_cast<unsigned long long>(s.silent_corruption),
        static_cast<unsigned long long>(s.bits_flipped),
        static_cast<unsigned long long>(s.ecc_corrected_data),
        static_cast<unsigned long long>(s.ecc_corrected_check),
        s.availability(), s.safety(), s.sdc_rate(),
        i + 1 < campaigns.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"intermittent\": [\n");
  for (std::size_t i = 0; i < intermittent.size(); ++i) {
    const IntermittentRow& r = intermittent[i];
    std::fprintf(f,
                 "    {\"trace\": \"%s\", \"power_cycles\": %zu, "
                 "\"steps_committed\": %zu, \"steps_executed\": %zu, "
                 "\"bit_identical\": %s}%s\n",
                 r.trace_name, r.power_cycles, r.steps_committed,
                 r.steps_executed, r.bit_identical ? "true" : "false",
                 i + 1 < intermittent.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

bool same_classification(const core::HybridClassification& a,
                         const core::HybridClassification& b) {
  return a.predicted_class == b.predicted_class &&
         a.confidence == b.confidence && a.decision == b.decision &&
         a.safety_critical == b.safety_critical;
}

}  // namespace

int main() {
  bench::banner("ABL-MEMORY", "weight-memory SEUs: unprotected vs SEC-DED");

  // ---- 1. Sampler: geometric skips vs per-bit Bernoulli. --------------
  std::printf("\n-- sampler: geometric skip sampling vs per-bit Bernoulli\n");
  util::Table sampler_table(
      "inject_bit_errors sampling cost (2 Mbit tensor)",
      {"bit error rate", "flips", "rng draws", "draw reduction",
       "geometric", "per-bit Bernoulli"});
  std::vector<SamplerRow> sampler_rows;
  for (const double rate : {1e-6, 1e-5, 1e-4, 1e-3}) {
    const SamplerRow row = measure_sampler(rate);
    sampler_rows.push_back(row);
    sampler_table.row(
        {util::CsvWriter::num(rate), std::to_string(row.flips),
         std::to_string(row.draws),
         row.draws != 0
             ? util::CsvWriter::num(static_cast<double>(row.bits) /
                                    static_cast<double>(row.draws)) + "x"
             : "-",
         util::CsvWriter::num(row.geometric_s * 1e3) + " ms",
         util::CsvWriter::num(row.bernoulli_s * 1e3) + " ms"});
  }
  sampler_table.print();

  // ---- 2. Kernel-level sweep (historical shape, split ECC counters). --
  util::Rng rng(11);
  tensor::Tensor weights(tensor::Shape{8, 3, 5, 5});
  weights.fill_normal(rng, 0.0f, 0.2f);
  tensor::Tensor bias(tensor::Shape{8});
  tensor::Tensor input(tensor::Shape{3, 24, 24});
  input.fill_normal(rng, 0.0f, 1.0f);

  const reliable::ReliableConv2d golden_conv(weights, bias,
                                             reliable::ConvSpec{1, 2});
  const tensor::Tensor golden = golden_conv.reference_forward(input);

  const std::size_t runs = bench::quick_mode() ? 20 : 100;
  util::Table table("weight corruption outcomes (per-bit upset rate)",
                    {"bit error rate", "protection", "output intact",
                     "corrupted", "corrected data", "corrected check",
                     "scrub uncorrectable"});
  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "memory_protection.csv"),
      {"rate", "protection", "intact", "corrupted", "corrected_data",
       "corrected_check", "uncorrectable"});

  for (const double rate : {1e-7, 1e-6, 1e-5, 1e-4}) {
    for (const bool protect : {false, true}) {
      std::size_t intact = 0;
      std::size_t corrupted = 0;
      std::uint64_t corrected_data = 0;
      std::uint64_t corrected_check = 0;
      std::uint64_t uncorrectable = 0;
      for (std::size_t run = 0; run < runs; ++run) {
        util::Rng fault_rng(4000 + run);
        tensor::Tensor working = weights;
        faultsim::ProtectedTensor stored(working);
        faultsim::inject_bit_errors(stored.data(), rate, fault_rng);
        if (protect) {
          const auto report = stored.scrub();
          corrected_data += report.corrected_data;
          corrected_check += report.corrected_check;
          uncorrectable += report.uncorrectable;
        }
        const reliable::ReliableConv2d conv(stored.data(), bias,
                                            reliable::ConvSpec{1, 2});
        if (conv.reference_forward(input) == golden) {
          ++intact;
        } else {
          ++corrupted;
        }
      }
      table.row({util::CsvWriter::num(rate),
                 protect ? "SEC-DED scrub" : "unprotected",
                 std::to_string(intact), std::to_string(corrupted),
                 std::to_string(corrected_data),
                 std::to_string(corrected_check),
                 std::to_string(uncorrectable)});
      csv.row({util::CsvWriter::num(rate), protect ? "secded" : "none",
               std::to_string(intact), std::to_string(corrupted),
               std::to_string(corrected_data),
               std::to_string(corrected_check),
               std::to_string(uncorrectable)});
    }
  }
  table.print();

  // ---- 3. Hybrid campaign: full classify path under weight upsets. ----
  std::printf("\n-- campaign: hybrid classify under weight-memory upsets\n");
  const core::HybridNetwork net(make_benchnet(), 0);
  const tensor::Tensor image = data::render_stop_sign(128, 6.0);
  const std::size_t campaign_runs = bench::quick_mode() ? 8 : 48;

  util::Table campaign_table(
      "memory-fault campaign outcomes (hybrid classify)",
      {"bit error rate", "protection", "intact", "corrected",
       "uncorrectable", "caught", "silent", "availability", "safety"});
  std::vector<CampaignRow> campaign_rows;
  for (const double rate : {1e-5, 1e-4}) {
    for (const bool ecc : {false, true}) {
      core::MemoryCampaignConfig cfg;
      cfg.model.bit_error_rate = rate;
      cfg.ecc = ecc;
      const core::MemoryFaultCampaign campaign(net, cfg);
      core::FaultSeedStream seeds(9000);
      CampaignRow row;
      row.rate = rate;
      row.ecc = ecc;
      row.summary = campaign.run(image, campaign_runs, seeds);
      campaign_rows.push_back(row);
      const auto& s = row.summary;
      campaign_table.row(
          {util::CsvWriter::num(rate), ecc ? "SEC-DED scrub" : "unprotected",
           std::to_string(s.intact), std::to_string(s.corrected),
           std::to_string(s.uncorrectable),
           std::to_string(s.qualifier_caught),
           std::to_string(s.silent_corruption),
           util::CsvWriter::num(s.availability()),
           util::CsvWriter::num(s.safety())});
    }
  }
  campaign_table.print();

  // ---- 4. Intermittent execution under power-cycle traces. ------------
  std::printf("\n-- intermittent: checkpointed inference under power cuts\n");
  core::FaultSeedStream ref_seeds = net.seed_stream();
  const core::HybridClassification reference = net.classify(image, ref_seeds);

  util::Table int_table("intermittent (checkpointed) execution",
                        {"trace", "power cycles", "steps committed",
                         "steps executed", "bit identical"});
  std::vector<IntermittentRow> int_rows;
  util::Rng trace_rng(31);
  const struct {
    const char* name;
    faultsim::PowerTrace trace;
  } scenarios[] = {
      {"stable", faultsim::PowerTrace{}},
      {"periodic_budget2", faultsim::PowerTrace::periodic(2, 3)},
      {"thrash_budget1", faultsim::PowerTrace::periodic(1, 4)},
      {"brownout", faultsim::PowerTrace::periodic(0, 5)},
      {"sampled", faultsim::PowerTrace::sampled(trace_rng, 6, 0, 3)},
  };
  for (const auto& sc : scenarios) {
    core::FaultSeedStream seeds = net.seed_stream();
    const auto r = net.classify_intermittent(image, seeds, sc.trace);
    IntermittentRow row;
    row.trace_name = sc.name;
    row.power_cycles = r.power_cycles;
    row.steps_committed = r.steps_committed;
    row.steps_executed = r.steps_executed;
    row.bit_identical = same_classification(r.classification, reference);
    int_rows.push_back(row);
    int_table.row({sc.name, std::to_string(row.power_cycles),
                   std::to_string(row.steps_committed),
                   std::to_string(row.steps_executed),
                   row.bit_identical ? "yes" : "NO"});
  }
  int_table.print();

  const std::string json_path = util::results_path(
      bench::results_dir(), "BENCH_memory_protection.json");
  write_json(json_path, sampler_rows, campaign_rows, int_rows,
             campaign_runs);

  std::printf("\nexpected shape: unprotected weights corrupt the output as "
              "soon as any bit flips (the execution-level guarantee cannot "
              "help); SEC-DED scrubbing restores the payload until "
              "double-bit upsets per word appear (~rate^2), which it "
              "detects rather than hides. Checkpointed execution survives "
              "every power trace bit-identically.\n");
  std::printf("CSV written to %s\n", csv.path().c_str());
  std::printf("JSON written to %s\n", json_path.c_str());
  return 0;
}
