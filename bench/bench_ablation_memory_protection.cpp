// ABL-MEMORY — weight-memory protection ablation.
//
// The execution-level scheme (Algorithms 1-3) cannot see corrupted
// parameters: it reliably computes the wrong convolution. The paper
// assigns that failure source to memory ECC (Section II.C); this bench
// quantifies the division of labour. Stored conv weights accumulate
// random bit upsets at a swept bit-error rate; with and without SEC-DED
// scrubbing, the convolution output is compared against golden.
#include <cstdio>

#include "bench_common.hpp"
#include "faultsim/ecc.hpp"
#include "faultsim/memory_faults.hpp"
#include "reliable/reliable_conv.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

}  // namespace

int main() {
  bench::banner("ABL-MEMORY", "weight-memory SEUs: unprotected vs SEC-DED");

  util::Rng rng(11);
  tensor::Tensor weights(tensor::Shape{8, 3, 5, 5});
  weights.fill_normal(rng, 0.0f, 0.2f);
  tensor::Tensor bias(tensor::Shape{8});
  tensor::Tensor input(tensor::Shape{3, 24, 24});
  input.fill_normal(rng, 0.0f, 1.0f);

  const reliable::ReliableConv2d golden_conv(weights, bias,
                                             reliable::ConvSpec{1, 2});
  const tensor::Tensor golden = golden_conv.reference_forward(input);

  const std::size_t runs = bench::quick_mode() ? 20 : 100;
  util::Table table("weight corruption outcomes (per-bit upset rate)",
                    {"bit error rate", "protection", "output intact",
                     "corrupted", "scrub corrected", "scrub uncorrectable"});
  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "memory_protection.csv"),
      {"rate", "protection", "intact", "corrupted", "corrected",
       "uncorrectable"});

  for (const double rate : {1e-7, 1e-6, 1e-5, 1e-4}) {
    for (const bool protect : {false, true}) {
      std::size_t intact = 0;
      std::size_t corrupted = 0;
      std::uint64_t corrected = 0;
      std::uint64_t uncorrectable = 0;
      for (std::size_t run = 0; run < runs; ++run) {
        util::Rng fault_rng(4000 + run);
        tensor::Tensor working = weights;
        faultsim::ProtectedTensor stored(working);
        faultsim::inject_bit_errors(stored.data(), rate, fault_rng);
        if (protect) {
          const auto report = stored.scrub();
          corrected += report.corrected;
          uncorrectable += report.uncorrectable;
        }
        const reliable::ReliableConv2d conv(stored.data(), bias,
                                            reliable::ConvSpec{1, 2});
        if (conv.reference_forward(input) == golden) {
          ++intact;
        } else {
          ++corrupted;
        }
      }
      table.row({util::CsvWriter::num(rate),
                 protect ? "SEC-DED scrub" : "unprotected",
                 std::to_string(intact), std::to_string(corrupted),
                 std::to_string(corrected),
                 std::to_string(uncorrectable)});
      csv.row({util::CsvWriter::num(rate),
               protect ? "secded" : "none", std::to_string(intact),
               std::to_string(corrupted), std::to_string(corrected),
               std::to_string(uncorrectable)});
    }
  }
  table.print();

  std::printf("\nexpected shape: unprotected weights corrupt the output as "
              "soon as any bit flips (the execution-level guarantee cannot "
              "help); SEC-DED scrubbing restores the payload until "
              "double-bit upsets per word appear (~rate^2), which it "
              "detects rather than hides.\n");
  std::printf("CSV written to %s\n", csv.path().c_str());
  return 0;
}
