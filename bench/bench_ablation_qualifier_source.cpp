// ABL-QSOURCE — qualifier bifurcation source ablation.
//
// Figure 2 of the paper bifurcates the reliably executed first layer's
// output into the qualifier, but conv strides shrink the dependable
// feature map and the paper itself notes shape recognition "requires an
// appreciable image size". This bench measures the trade empirically:
// octagon acceptance on true stop signs and rejection on impostors, for
// the full-resolution qualifier vs the bifurcated feature-map qualifier,
// across input sizes — quantifying when the cheaper bifurcated source is
// actually usable.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/relu.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

std::unique_ptr<nn::Sequential> make_net(std::size_t image) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Flatten>();
  const std::size_t fm = (image - 7) / 2 + 1;
  net->emplace<nn::Linear>(8 * fm * fm, 5);
  nn::init_network(*net, 3);
  return net;
}

}  // namespace

int main() {
  bench::banner("ABL-QSOURCE",
                "qualifier source: full resolution vs feature map");

  const std::size_t trials = bench::quick_mode() ? 4 : 10;
  util::Table table("octagon qualifier accuracy by source and input size",
                    {"source", "input", "feature map", "stop accepted",
                     "impostor rejected"});
  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "qualifier_source.csv"),
      {"source", "input_size", "stop_accept_rate", "impostor_reject_rate"});

  const auto source_label = [](core::QualifierSource s) {
    switch (s) {
      case core::QualifierSource::kFullResolution:
        return "full-resolution";
      case core::QualifierSource::kDependableFeatureMap:
        return "feature-map (x/y/x)";
      case core::QualifierSource::kDependableFeatureMapPair:
        return "feature-map pair";
    }
    return "?";
  };

  for (const core::QualifierSource source :
       {core::QualifierSource::kFullResolution,
        core::QualifierSource::kDependableFeatureMap,
        core::QualifierSource::kDependableFeatureMapPair}) {
    for (const std::size_t size : {64u, 96u, 128u, 160u, 227u}) {
      core::HybridConfig cfg;
      cfg.qualifier.source = source;
      core::HybridNetwork hybrid(make_net(size), 0, cfg);

      // All trial renders go through one classify_batch per column: the
      // reliable kernel and qualifier templates are built once per cell
      // and the per-image work fans out across the thread pool.
      std::vector<tensor::Tensor> stops;
      std::vector<tensor::Tensor> impostors;
      stops.reserve(trials);
      impostors.reserve(trials);
      for (std::size_t t = 0; t < trials; ++t) {
        data::RenderParams stop;
        stop.cls = data::SignClass::kStop;
        stop.size = size;
        stop.rotation = (static_cast<double>(t) - 2.0) * 0.06;
        stop.scale = 0.7 + 0.04 * static_cast<double>(t % 4);
        stop.noise_seed = 100 + t;
        stops.push_back(data::render_sign(stop));

        data::RenderParams imp = stop;
        imp.cls = (t % 2 == 0) ? data::SignClass::kSpeedLimit
                               : data::SignClass::kParking;
        impostors.push_back(data::render_sign(imp));
      }

      std::size_t stop_ok = 0;
      std::size_t impostor_ok = 0;
      core::FaultSeedStream seeds = hybrid.seed_stream();
      for (const auto& r : hybrid.classify_batch(stops, seeds)) {
        if (r.qualifier.match) ++stop_ok;
      }
      for (const auto& r : hybrid.classify_batch(impostors, seeds)) {
        if (!r.qualifier.match) ++impostor_ok;
      }
      const std::size_t fm = (size - 7) / 2 + 1;
      const std::string fm_str =
          source == core::QualifierSource::kFullResolution
              ? std::to_string(size) + " (input)"
              : std::to_string(fm) + "x" + std::to_string(fm);
      table.row({source_label(source), std::to_string(size), fm_str,
                 std::to_string(stop_ok) + "/" + std::to_string(trials),
                 std::to_string(impostor_ok) + "/" +
                     std::to_string(trials)});
      csv.row({source_label(source), std::to_string(size),
               util::CsvWriter::num(static_cast<double>(stop_ok) /
                                    static_cast<double>(trials)),
               util::CsvWriter::num(static_cast<double>(impostor_ok) /
                                    static_cast<double>(trials))});
    }
  }
  table.print();

  std::printf("\nexpected shape: impostor rejection holds everywhere (the "
              "policy is conservative). For stop acceptance, the paper's "
              "single x/y/x dependable filter fails on the bifurcated "
              "path at every size — collapsing both gradient axes into "
              "one map leaves directional nulls on the boundary — while "
              "the (x, y) filter-pair extension restores acceptance once "
              "the feature map is large enough; full resolution works "
              "from small inputs. This quantifies the compute/recall "
              "dial of Fig. 2.\n");
  std::printf("CSV written to %s\n", csv.path().c_str());
  return 0;
}
