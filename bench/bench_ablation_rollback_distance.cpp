// ABL-ROLLBACK — rollback-distance ablation (Section II.E): "In a
// convolution layer [...] the rollback-distance can be reduced to one
// operation." This bench compares the paper's operation-granular
// checkpoint/rollback against layer-granular DMR (re-execute the whole
// layer on mismatch) in wall time and recovery behaviour across fault
// rates: op-level recovery cost stays flat while layer-level recovery
// cost multiplies with every retry — the paper's deadline argument.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "faultsim/injector.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

}  // namespace

int main() {
  bench::banner("ABL-ROLLBACK", "rollback distance: one op vs whole layer");

  util::Rng rng(7);
  tensor::Tensor weights(tensor::Shape{8, 3, 5, 5});
  weights.fill_normal(rng, 0.0f, 0.2f);
  tensor::Tensor bias(tensor::Shape{8});
  tensor::Tensor input(tensor::Shape{3, 32, 32});
  input.fill_normal(rng, 0.0f, 1.0f);

  reliable::ReliabilityPolicy policy;
  policy.bucket_factor = 1;  // generous bucket: isolate the cost effect
  policy.bucket_ceiling = 64;
  policy.max_retries_per_op = 64;

  const reliable::ReliableConv2d op_level(weights, bias,
                                          reliable::ConvSpec{1, 2}, policy);
  const reliable::LayerDmrConv2d layer_level(weights, bias,
                                             reliable::ConvSpec{1, 2},
                                             policy);
  const tensor::Tensor golden = op_level.reference_forward(input);

  const std::size_t runs = bench::quick_mode() ? 5 : 20;

  util::Table table("rollback distance comparison (DMR detection)",
                    {"rate/op", "strategy", "avg time [ms]", "completed",
                     "avg rollbacks", "worst-case ratio"});
  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "rollback_distance.csv"),
      {"rate", "strategy", "avg_ms", "completed", "avg_rollbacks"});

  for (const double rate : {0.0, 1e-5, 1e-4, 1e-3}) {
    double op_ms = 0.0;
    double layer_ms = 0.0;
    std::size_t op_done = 0;
    std::size_t layer_done = 0;
    double op_rb = 0.0;
    double layer_rb = 0.0;

    for (std::size_t run = 0; run < runs; ++run) {
      faultsim::FaultConfig cfg;
      cfg.kind = faultsim::FaultKind::kTransient;
      cfg.probability = rate;
      cfg.bit = -1;

      {
        auto inj =
            std::make_shared<faultsim::FaultInjector>(cfg, 3000 + run);
        const auto exec = reliable::make_executor("dmr", inj);
        util::Stopwatch sw;
        const auto r = op_level.forward(input, *exec);
        op_ms += sw.millis();
        if (r.report.ok) {
          ++op_done;
          if (!(r.output == golden)) std::printf("op-level SDC!\n");
        }
        op_rb += static_cast<double>(r.report.rollbacks);
      }
      {
        // Layer DMR detects by comparing two full unqualified runs, so
        // its raw executions go through a simplex executor.
        auto inj =
            std::make_shared<faultsim::FaultInjector>(cfg, 3000 + run);
        reliable::SimplexExecutor exec(inj);
        util::Stopwatch sw;
        const auto r = layer_level.forward(input, exec);
        layer_ms += sw.millis();
        if (r.report.ok) ++layer_done;
        layer_rb += static_cast<double>(r.report.rollbacks);
      }
    }
    const double n = static_cast<double>(runs);
    table.row({util::CsvWriter::num(rate), "op-level (Algorithm 3)",
               util::Table::fixed(op_ms / n, 2), std::to_string(op_done),
               util::Table::fixed(op_rb / n, 2), "1.00"});
    table.row({util::CsvWriter::num(rate), "layer-level DMR",
               util::Table::fixed(layer_ms / n, 2),
               std::to_string(layer_done),
               util::Table::fixed(layer_rb / n, 2),
               util::Table::fixed(layer_ms / std::max(op_ms, 1e-9), 2)});
    csv.row({util::CsvWriter::num(rate), "op_level",
             util::CsvWriter::num(op_ms / n), std::to_string(op_done),
             util::CsvWriter::num(op_rb / n)});
    csv.row({util::CsvWriter::num(rate), "layer_level",
             util::CsvWriter::num(layer_ms / n), std::to_string(layer_done),
             util::CsvWriter::num(layer_rb / n)});
  }
  table.print();

  std::printf("\nexpected shape: fault-free, both cost ~2x a plain run; "
              "with faults, op-level re-executes single operations (cost "
              "flat), layer-level re-executes the entire layer per "
              "detected mismatch (cost and deadline risk grow with "
              "rate).\n");
  std::printf("CSV written to %s\n", csv.path().c_str());
  return 0;
}
