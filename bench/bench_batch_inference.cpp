// BENCH-BATCH — batched + served hybrid inference throughput.
//
// Measures end-to-end hybrid classification (reliable DCNN + qualifier +
// CNN remainder) as images/sec at 1/2/8 threads for four execution
// shapes:
//   loop         — single-image classify() per image (the baseline)
//   batch-serial — PR 2's classify_batch: dependable stage fanned across
//                  the pool, CNN remainder serial per image
//   batch-fanned — the re-entrant shape: the whole per-image pipeline,
//                  remainder included, fans across the pool as const
//                  inference over one shared model
//   service      — serve::InferenceService: 4 submitter OS threads with
//                  one Session each push their slice through the bounded
//                  queue; the dispatcher coalesces micro-batches onto
//                  the same fanned path
// All four are bit-identical (verified here before timing): submitter t
// opens its session at seed base 1 + first-slice-index, so every image
// consumes exactly the seed the classify() loop gives it. Alongside the
// stdout table the bench emits BENCH_batch_inference.json so the perf
// trajectory can be tracked across PRs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "runtime/compute_context.hpp"
#include "serve/inference_service.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

std::unique_ptr<nn::Sequential> make_net(std::size_t image) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);
  net->emplace<nn::Flatten>();
  const std::size_t conv = (image - 7) / 2 + 1;
  const std::size_t pooled = (conv - 3) / 2 + 1;
  net->emplace<nn::Linear>(8 * pooled * pooled, 5);
  nn::init_network(*net, 7);
  return net;
}

std::vector<tensor::Tensor> make_batch(std::size_t count, std::size_t size) {
  std::vector<tensor::Tensor> images;
  images.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    data::RenderParams p;
    p.cls = static_cast<data::SignClass>(i % data::kNumClasses);
    p.size = size;
    p.rotation = 0.04 * static_cast<double>(i % 7) - 0.12;
    p.scale = 0.7 + 0.03 * static_cast<double>(i % 4);
    p.noise_seed = 900 + i;
    images.push_back(data::render_sign(p));
  }
  return images;
}

bool identical(const core::HybridClassification& a,
               const core::HybridClassification& b) {
  return a.predicted_class == b.predicted_class &&
         a.confidence == b.confidence && a.decision == b.decision &&
         a.qualifier.match == b.qualifier.match &&
         a.qualifier.shape.distance == b.qualifier.shape.distance &&
         a.conv1_report.ok == b.conv1_report.ok;
}

/// Pushes `images` through an InferenceService from `submitters` OS
/// threads. Submitter t owns the contiguous slice starting at `t * per`
/// and a session whose seed base is `fault_seed + slice start`, so image
/// i consumes seed `fault_seed + i` — the classify() loop's stream.
/// `*elapsed_s` covers submit-to-completion only: service construction
/// (dispatcher spawn) and shutdown are one-time costs a deployment
/// amortises, and including them would understate the queueing-path
/// throughput this column tracks across PRs.
std::vector<core::HybridClassification> run_service(
    const std::shared_ptr<const core::HybridNetwork>& net,
    const std::vector<tensor::Tensor>& images, std::size_t submitters,
    double* elapsed_s) {
  serve::ServiceConfig cfg;
  cfg.queue_capacity = images.size() + 1;
  cfg.max_batch = 8;
  serve::InferenceService service(net, cfg);

  const std::size_t count = images.size();
  const std::size_t per = (count + submitters - 1) / submitters;
  std::vector<std::future<core::HybridClassification>> futures(count);
  std::vector<std::thread> threads;
  util::Stopwatch sw;
  for (std::size_t t = 0; t < submitters; ++t) {
    const std::size_t begin = std::min(t * per, count);
    const std::size_t end = std::min(begin + per, count);
    if (begin == end) break;
    threads.emplace_back([&, begin, end] {
      auto session = service.open_session(
          net->seed_stream().peek() + begin);
      for (std::size_t i = begin; i < end; ++i) {
        futures[i] = session.submit(images[i]);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<core::HybridClassification> results;
  results.reserve(count);
  for (auto& f : futures) results.push_back(f.get());
  *elapsed_s = sw.seconds();
  service.shutdown();
  return results;
}

struct Row {
  std::size_t threads = 0;
  double loop_ips = 0.0;
  double serial_ips = 0.0;
  double fanned_ips = 0.0;
  double service_ips = 0.0;
};

void write_json(const std::string& path, const std::vector<Row>& rows,
                std::size_t count, std::size_t size, bool all_identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("cannot write " + path);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"batch_inference\",\n");
  std::fprintf(f, "  \"workload\": {\"images\": %zu, \"size\": %zu, "
              "\"pipeline\": \"dmr_conv1+full_resolution_qualifier\"},\n",
              count, size);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::fprintf(f, "  \"bit_identical\": %s,\n",
              all_identical ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"threads\": %zu, \"loop_images_per_sec\": %.6g, "
        "\"batch_serial_remainder_images_per_sec\": %.6g, "
        "\"batch_fanned_remainder_images_per_sec\": %.6g, "
        "\"service_images_per_sec\": %.6g, "
        "\"fanned_speedup_vs_loop\": %.6g, "
        "\"fanned_speedup_vs_serial_remainder\": %.6g, "
        "\"service_speedup_vs_loop\": %.6g, "
        "\"service_speedup_vs_fanned\": %.6g}%s\n",
        r.threads, r.loop_ips, r.serial_ips, r.fanned_ips, r.service_ips,
        r.fanned_ips / r.loop_ips, r.fanned_ips / r.serial_ips,
        r.service_ips / r.loop_ips, r.service_ips / r.fanned_ips,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  bench::banner("BENCH-BATCH",
                "batched + served hybrid inference (images/sec, 1/2/8 thr)");

  const std::size_t size = 96;
  const std::size_t count = bench::quick_mode() ? 8 : 24;
  const std::vector<tensor::Tensor> images = make_batch(count, size);
  std::printf("workload: %zu renders at %zux%zu through the full hybrid "
              "dataflow (DMR conv1 + full-resolution qualifier)\n",
              count, size, size);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host: %u hardware thread(s) — thread counts beyond that "
              "time-slice one core and cannot speed up\n", cores);

  util::Table table(
      "hybrid inference throughput: loop vs serial vs fanned vs service",
      {"threads", "loop img/s", "serial-rem img/s", "fanned-rem img/s",
       "service img/s", "fanned/loop", "service/fanned"});
  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "batch_inference.csv"),
      {"threads", "loop_images_per_sec", "batch_serial_images_per_sec",
       "batch_fanned_images_per_sec", "service_images_per_sec",
       "fanned_speedup_vs_loop"});

  std::vector<Row> rows;
  bool all_identical = true;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    runtime::ComputeContext::set_global_threads(threads);

    const core::HybridNetwork looped(make_net(size), 0, core::HybridConfig{});
    core::FaultSeedStream loop_seeds = looped.seed_stream();
    util::Stopwatch sw;
    std::vector<core::HybridClassification> loop_results;
    loop_results.reserve(count);
    for (const auto& img : images) {
      loop_results.push_back(looped.classify(img, loop_seeds));
    }
    const double loop_s = sw.seconds();

    const core::HybridNetwork batched(make_net(size), 0, core::HybridConfig{});
    core::FaultSeedStream serial_seeds = batched.seed_stream();
    sw.reset();
    const std::vector<core::HybridClassification> serial_results =
        batched.classify_batch(images, serial_seeds,
                               {core::RemainderMode::kSerial});
    const double serial_s = sw.seconds();

    core::FaultSeedStream fanned_seeds = batched.seed_stream();
    sw.reset();
    const std::vector<core::HybridClassification> fanned_results =
        batched.classify_batch(images, fanned_seeds,
                               {core::RemainderMode::kFanned});
    const double fanned_s = sw.seconds();

    const auto shared_net = std::make_shared<const core::HybridNetwork>(
        make_net(size), 0, core::HybridConfig{});
    double service_s = 0.0;
    const std::vector<core::HybridClassification> service_results =
        run_service(shared_net, images, /*submitters=*/4, &service_s);

    for (std::size_t i = 0; i < count; ++i) {
      all_identical = all_identical &&
                      identical(loop_results[i], serial_results[i]) &&
                      identical(loop_results[i], fanned_results[i]) &&
                      identical(loop_results[i], service_results[i]);
    }

    Row row;
    row.threads = threads;
    row.loop_ips = static_cast<double>(count) / loop_s;
    row.serial_ips = static_cast<double>(count) / serial_s;
    row.fanned_ips = static_cast<double>(count) / fanned_s;
    row.service_ips = static_cast<double>(count) / service_s;
    rows.push_back(row);
    table.row({std::to_string(threads), util::Table::fixed(row.loop_ips, 2),
               util::Table::fixed(row.serial_ips, 2),
               util::Table::fixed(row.fanned_ips, 2),
               util::Table::fixed(row.service_ips, 2),
               util::Table::fixed(row.fanned_ips / row.loop_ips, 2),
               util::Table::fixed(row.service_ips / row.fanned_ips, 2)});
    csv.row({std::to_string(threads), util::CsvWriter::num(row.loop_ips),
             util::CsvWriter::num(row.serial_ips),
             util::CsvWriter::num(row.fanned_ips),
             util::CsvWriter::num(row.service_ips),
             util::CsvWriter::num(row.fanned_ips / row.loop_ips)});
  }
  table.print();

  std::printf("\nall results bit-identical to the classify() loop: "
              "%s\n", all_identical ? "yes" : "NO — BUG");
  std::printf("expected shape: the whole per-image pipeline is "
              "embarrassingly parallel once the remainder is re-entrant, "
              "so the fanned path approaches linear scaling and the "
              "service path matches it (same compute, plus queueing) "
              "while absorbing 4 concurrent submitters; the serial-"
              "remainder path saturates at the dependable stage's share.\n");
  const std::string json_path =
      util::results_path(bench::results_dir(), "BENCH_batch_inference.json");
  write_json(json_path, rows, count, size, all_identical);
  std::printf("CSV written to %s\nJSON written to %s\n", csv.path().c_str(),
              json_path.c_str());
  return all_identical ? 0 : 1;
}
