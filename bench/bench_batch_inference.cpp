// BENCH-BATCH — batched hybrid inference throughput.
//
// Measures end-to-end hybrid classification (reliable DCNN + qualifier +
// CNN remainder) as images/sec for the single-image classify() loop vs
// classify_batch(), at 1/2/8 threads. classify_batch amortises the
// reliable-kernel construction across the batch and fans the dominant
// per-image dependable stage across the thread pool while the SAX/vision
// stages draw their scratch from per-slot workspace arenas — results stay
// bit-identical to the loop (verified here before timing).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "runtime/compute_context.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

std::unique_ptr<nn::Sequential> make_net(std::size_t image) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);
  net->emplace<nn::Flatten>();
  const std::size_t conv = (image - 7) / 2 + 1;
  const std::size_t pooled = (conv - 3) / 2 + 1;
  net->emplace<nn::Linear>(8 * pooled * pooled, 5);
  nn::init_network(*net, 7);
  return net;
}

std::vector<tensor::Tensor> make_batch(std::size_t count, std::size_t size) {
  std::vector<tensor::Tensor> images;
  images.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    data::RenderParams p;
    p.cls = static_cast<data::SignClass>(i % data::kNumClasses);
    p.size = size;
    p.rotation = 0.04 * static_cast<double>(i % 7) - 0.12;
    p.scale = 0.7 + 0.03 * static_cast<double>(i % 4);
    p.noise_seed = 900 + i;
    images.push_back(data::render_sign(p));
  }
  return images;
}

bool identical(const core::HybridClassification& a,
               const core::HybridClassification& b) {
  return a.predicted_class == b.predicted_class &&
         a.confidence == b.confidence && a.decision == b.decision &&
         a.qualifier.match == b.qualifier.match &&
         a.qualifier.shape.distance == b.qualifier.shape.distance &&
         a.conv1_report.ok == b.conv1_report.ok;
}

}  // namespace

int main() {
  bench::banner("BENCH-BATCH",
                "batched hybrid inference (images/sec, 1/2/8 threads)");

  const std::size_t size = 96;
  const std::size_t count = bench::quick_mode() ? 8 : 24;
  const std::vector<tensor::Tensor> images = make_batch(count, size);
  std::printf("workload: %zu renders at %zux%zu through the full hybrid "
              "dataflow (DMR conv1 + full-resolution qualifier)\n",
              count, size, size);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host: %u hardware thread(s) — thread counts beyond that "
              "time-slice one core and cannot speed up\n", cores);

  util::Table table("hybrid inference throughput: loop vs classify_batch",
                    {"threads", "loop img/s", "batch img/s", "speedup",
                     "vs 1-thread loop"});
  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "batch_inference.csv"),
      {"threads", "loop_images_per_sec", "batch_images_per_sec", "speedup"});

  double loop_1thread = 0.0;
  bool all_identical = true;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    runtime::ComputeContext::set_global_threads(threads);

    core::HybridNetwork looped(make_net(size), 0, core::HybridConfig{});
    util::Stopwatch sw;
    std::vector<core::HybridClassification> loop_results;
    loop_results.reserve(count);
    for (const auto& img : images) loop_results.push_back(looped.classify(img));
    const double loop_s = sw.seconds();

    core::HybridNetwork batched(make_net(size), 0, core::HybridConfig{});
    sw.reset();
    const std::vector<core::HybridClassification> batch_results =
        batched.classify_batch(images);
    const double batch_s = sw.seconds();

    for (std::size_t i = 0; i < count; ++i) {
      all_identical = all_identical &&
                      identical(loop_results[i], batch_results[i]);
    }

    const double loop_ips = static_cast<double>(count) / loop_s;
    const double batch_ips = static_cast<double>(count) / batch_s;
    if (threads == 1) loop_1thread = loop_ips;
    table.row({std::to_string(threads), util::Table::fixed(loop_ips, 2),
               util::Table::fixed(batch_ips, 2),
               util::Table::fixed(batch_ips / loop_ips, 2),
               util::Table::fixed(batch_ips / loop_1thread, 2)});
    csv.row({std::to_string(threads), util::CsvWriter::num(loop_ips),
             util::CsvWriter::num(batch_ips),
             util::CsvWriter::num(batch_ips / loop_ips)});
  }
  table.print();

  std::printf("\nbatch results bit-identical to the classify() loop: %s\n",
              all_identical ? "yes" : "NO — BUG");
  std::printf("expected shape: the dependable stage dominates and is "
              "embarrassingly parallel across images, so classify_batch "
              "approaches linear scaling while the loop only exploits "
              "intra-layer parallelism.\n");
  std::printf("CSV written to %s\n", csv.path().c_str());
  return all_identical ? 0 : 1;
}
