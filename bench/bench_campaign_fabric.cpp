// Campaign-fabric scaling bench: throughput of the sharded coordinator
// across shard size x worker count, with and without the durable
// checkpoint, against the monolithic single-coordinator campaign.
//
// Every fabric cell is also a correctness assertion: its merged summary
// must be bit-identical to the monolithic run, and the process exit
// code reports any violation — the bench doubles as the fabric's
// perf-regression and contract gate in CI.
//
// Emits bench_results/BENCH_campaign_fabric.json for CI artefacts.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "campaign_fabric/campaigns.hpp"
#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "faultsim/campaign.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "runtime/compute_context.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

std::unique_ptr<nn::Sequential> make_net() {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 128 -> 61
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);  // 61 -> 30
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 30 * 30, 5);
  nn::init_network(*net, 3);
  return net;
}

faultsim::Outcome judge(std::size_t, const core::HybridClassification& r) {
  const bool aborted = !r.conv1_report.ok || !r.qualifier.report.ok;
  const bool faults = aborted || r.conv1_report.detected_errors > 0;
  return faultsim::classify(faults, aborted, !aborted);
}

struct Row {
  std::uint64_t shard_size = 0;
  std::size_t workers = 0;
  bool durable = false;
  double seconds = 0.0;
  double runs_per_sec = 0.0;
  bool bit_identical = false;
};

void write_json(const std::string& path, std::size_t runs,
                double mono_seconds, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"campaign_fabric\",\n");
  std::fprintf(f, "  \"runs\": %zu,\n", runs);
  std::fprintf(f, "  \"monolithic_sec\": %.6g,\n", mono_seconds);
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"shard_size\": %llu, \"workers\": %zu, "
                 "\"durable\": %s, \"seconds\": %.6g, "
                 "\"runs_per_sec\": %.6g, \"bit_identical\": %s}%s\n",
                 static_cast<unsigned long long>(r.shard_size), r.workers,
                 r.durable ? "true" : "false", r.seconds, r.runs_per_sec,
                 r.bit_identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  bench::banner("FABRIC", "campaign-fabric scaling (sharded coordinator "
                          "vs monolithic campaign)");
  const std::size_t runs = bench::quick_mode() ? 24 : 96;

  core::HybridConfig hcfg;
  hcfg.fault_config.kind = faultsim::FaultKind::kTransient;
  hcfg.fault_config.probability = 1e-4;
  hcfg.fault_config.bit = -1;
  hcfg.fault_seed = 1;
  const core::HybridNetwork net(make_net(), 0, hcfg);
  const tensor::Tensor image = data::render_stop_sign(128, 6.0);
  const std::uint64_t seed_base = net.seed_stream().peek();

  // Monolithic baseline: one coordinator, the pool's thread fan-out.
  util::Stopwatch mono_watch;
  core::FaultSeedStream seeds = net.seed_stream();
  const faultsim::CampaignSummary mono =
      net.classify_campaign(image, runs, judge, seeds);
  const double mono_seconds = mono_watch.seconds();
  std::printf("monolithic: %zu runs in %.3fs (%.1f runs/s)\n\n", runs,
              mono_seconds, static_cast<double>(runs) / mono_seconds);

  util::Table table("campaign fabric throughput",
                    {"shard size", "workers", "durable", "seconds",
                     "runs/s", "bit-identical"});
  std::vector<Row> rows;
  bool all_identical = true;

  const std::string ckpt =
      util::results_path(bench::results_dir(), "fabric_bench.ckpt");
  for (const bool durable : {false, true}) {
    for (const std::uint64_t shard_size :
         {std::uint64_t{4}, std::uint64_t{16},
          static_cast<std::uint64_t>(runs)}) {
      for (const std::size_t workers : {1u, 2u, 4u}) {
        fabric::FabricConfig cfg;
        cfg.shard_size = shard_size;
        cfg.workers = workers;
        if (durable) {
          std::remove(ckpt.c_str());
          cfg.checkpoint_path = ckpt;
        }
        util::Stopwatch watch;
        const fabric::FabricResult<faultsim::CampaignSummary> result =
            fabric::run_classify_campaign(net, image, runs, seed_base, judge,
                                          cfg);
        Row row;
        row.shard_size = shard_size;
        row.workers = workers;
        row.durable = durable;
        row.seconds = watch.seconds();
        row.runs_per_sec = static_cast<double>(runs) / row.seconds;
        row.bit_identical = result.complete && result.summary == mono;
        all_identical = all_identical && row.bit_identical;
        rows.push_back(row);
        table.row({std::to_string(shard_size), std::to_string(workers),
                   durable ? "yes" : "no", util::Table::fixed(row.seconds),
                   util::Table::fixed(row.runs_per_sec, 1),
                   row.bit_identical ? "yes" : "NO"});
      }
    }
  }
  std::remove(ckpt.c_str());
  table.print();

  const std::string json_path = util::results_path(
      bench::results_dir(), "BENCH_campaign_fabric.json");
  write_json(json_path, runs, mono_seconds, rows);
  std::printf("JSON written to %s\n", json_path.c_str());

  if (!all_identical) {
    std::printf("FABRIC BIT-IDENTITY VIOLATION: see table above\n");
    return 1;
  }
  std::printf("every fabric cell merged bit-identical to the monolithic "
              "campaign\n");
  return 0;
}
