// Shared plumbing for the experiment harnesses: result directory, quick
// mode, and the standard header each bench prints.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace hybridcnn::bench {

/// Directory all benches write CSV/JSON artefacts into. Every bench
/// routes its files through util::results_path(results_dir(), ...), so
/// HYBRIDCNN_RESULTS_DIR redirects the whole artefact set at once (CI
/// collects the JSON trajectory files from a workspace-relative dir).
inline std::string results_dir() {
  const char* v = std::getenv("HYBRIDCNN_RESULTS_DIR");
  return (v != nullptr && v[0] != '\0') ? std::string(v)
                                        : std::string("bench_results");
}

/// Set HYBRIDCNN_QUICK=1 to decimate the slow sweeps (CI-friendly runs).
inline bool quick_mode() {
  const char* v = std::getenv("HYBRIDCNN_QUICK");
  return v != nullptr && v[0] == '1';
}

/// Prints the standard experiment banner.
inline void banner(const char* experiment_id, const char* paper_artifact) {
  std::printf("\n================================================================\n");
  std::printf("Experiment %s — reproduces %s\n", experiment_id,
              paper_artifact);
  std::printf("Paper: Doran & Veljanovska, \"Hybrid Convolutional Neural "
              "Networks with Reliability Guarantee\", DSN 2024\n");
  if (quick_mode()) std::printf("(HYBRIDCNN_QUICK=1: decimated sweep)\n");
  std::printf("================================================================\n");
}

}  // namespace hybridcnn::bench
