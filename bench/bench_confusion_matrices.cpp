// TXT-CM — Section III.B experiment: "we naively replace the first of the
// filters with a Sobel-x, Sobel-y, Sobel-x filter. [...] We compare both
// the confusion matrices of the original and replaced filters and the
// accuracy and note no substantial difference in classification accuracy."
#include <cstdio>

#include "bench_common.hpp"
#include "data/dataset.hpp"
#include "nn/conv2d.hpp"
#include "nn/filters.hpp"
#include "nn/minicnn.hpp"
#include "nn/trainer.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

void print_confusion(const char* title, const nn::Evaluation& eval) {
  util::Table table(title, {"true\\pred", "stop", "speed", "yield",
                            "priority", "parking"});
  const char* names[] = {"stop", "speed", "yield", "priority", "parking"};
  for (std::size_t t = 0; t < data::kNumClasses; ++t) {
    std::vector<std::string> row{names[t]};
    for (std::size_t p = 0; p < data::kNumClasses; ++p) {
      row.push_back(std::to_string(eval.confusion[t][p]));
    }
    table.row(row);
  }
  table.print();
}

}  // namespace

int main() {
  bench::banner("TXT-CM",
                "Section III.B (confusion matrices, original vs Sobel)");

  auto net = nn::make_minicnn({.num_classes = data::kNumClasses,
                               .conv1_filters = 16, .seed = 11});
  const auto train_data = data::make_dataset(40, {}, 501);
  const auto test_data = data::make_dataset(30, {}, 502);

  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 20;
  tc.learning_rate = 0.01f;
  tc.momentum = 0.9f;
  nn::train(*net, train_data, tc);

  const auto original = nn::evaluate(*net, test_data, data::kNumClasses);
  print_confusion("confusion matrix: original trained model", original);

  auto& conv1 = net->layer_as<nn::Conv2d>(nn::kMiniCnnConv1);
  const tensor::Tensor saved = nn::replace_filter_with_sobel(conv1, 0);
  const auto replaced = nn::evaluate(*net, test_data, data::kNumClasses);
  print_confusion(
      "confusion matrix: first filter replaced with Sobel x/y/x", replaced);
  conv1.set_filter(0, saved);

  std::printf("\naccuracy original  : %.4f\n", original.accuracy);
  std::printf("accuracy replaced  : %.4f\n", replaced.accuracy);
  std::printf("difference         : %+.4f  (paper: \"no substantial "
              "difference\")\n",
              replaced.accuracy - original.accuracy);

  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "confusion_matrices.csv"),
      {"model", "true_class", "pred_class", "count"});
  const char* names[] = {"stop", "speed", "yield", "priority", "parking"};
  for (std::size_t t = 0; t < data::kNumClasses; ++t) {
    for (std::size_t p = 0; p < data::kNumClasses; ++p) {
      csv.row({"original", names[t], names[p],
               std::to_string(original.confusion[t][p])});
    }
  }
  for (std::size_t t = 0; t < data::kNumClasses; ++t) {
    for (std::size_t p = 0; p < data::kNumClasses; ++p) {
      csv.row({"sobel_replaced", names[t], names[p],
               std::to_string(replaced.confusion[t][p])});
    }
  }
  std::printf("CSV written to %s\n", csv.path().c_str());
  return 0;
}
