// FIG3 — Figure 3 of the paper: the time series generated from a
// real-world, slightly angled stop sign, with the SAX word printed above
// the series. The eight corners of the octagon are clearly identifiable.
//
// The GTSRB source image is substituted by the synthetic renderer (see
// DESIGN.md); the sign is tilted ~10 degrees like the paper's example.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "data/renderer.hpp"
#include "sax/shape_match.hpp"
#include "util/csv.hpp"
#include "util/image_io.hpp"
#include "vision/edge_map.hpp"
#include "vision/radial.hpp"

namespace {

using namespace hybridcnn;

/// ASCII rendering of the radial series, 16 rows tall — the bench's
/// stand-in for the paper's plot.
void plot(const std::vector<double>& series, const std::string& sax_word) {
  double lo = series[0];
  double hi = series[0];
  for (const double v : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = std::max(hi - lo, 1e-9);
  constexpr int kRows = 16;
  constexpr int kCols = 120;
  std::vector<std::string> canvas(kRows, std::string(kCols, ' '));
  for (int c = 0; c < kCols; ++c) {
    const std::size_t idx = static_cast<std::size_t>(
        static_cast<double>(c) / kCols * static_cast<double>(series.size()));
    const int row = static_cast<int>((series[idx] - lo) / span * (kRows - 1));
    canvas[static_cast<std::size_t>(kRows - 1 - row)]
          [static_cast<std::size_t>(c)] = '*';
  }
  // SAX word, stretched above the plot like the paper's figure.
  std::string word_row(kCols, ' ');
  for (int c = 0; c < kCols; ++c) {
    const std::size_t idx = static_cast<std::size_t>(
        static_cast<double>(c) / kCols *
        static_cast<double>(sax_word.size()));
    word_row[static_cast<std::size_t>(c)] = sax_word[idx];
  }
  std::printf("SAX: %s\n", word_row.c_str());
  for (const auto& row : canvas) std::printf("     %s\n", row.c_str());
  std::printf("     angle 0 .. 360 deg; radius %.1f .. %.1f px\n", lo, hi);
}

}  // namespace

int main() {
  bench::banner("FIG3", "Figure 3 (stop-sign radial series + SAX word)");

  const double angle_deg = 10.0;  // "slightly angled"
  const tensor::Tensor image = data::render_stop_sign(227, angle_deg);

  const auto mask = vision::dominant_shape(image);
  const auto series = vision::shape_signature(mask, 360);
  const auto match = sax::match_shape(series, 8);

  std::printf("input: synthetic GTSRB-style stop sign, 227x227, tilted "
              "%.0f deg\n\n",
              angle_deg);
  plot(series, match.word);

  std::printf("\nSAX word          : %s\n", match.word.c_str());
  std::printf("octagon template  : %s\n", match.template_word.c_str());
  std::printf("MINDIST (rot-inv) : %.4f  (threshold 3.0)\n", match.distance);
  std::printf("corners detected  : %d  (octagon: 8)\n", match.corners);
  std::printf("qualified         : %s\n", match.match ? "YES" : "NO");

  // Artefacts: CSV series + PGM images of input luminance and silhouette.
  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "fig3_sax_series.csv"),
      {"angle_deg", "radius_px"});
  for (std::size_t i = 0; i < series.size(); ++i) {
    csv.row({util::CsvWriter::num(static_cast<double>(i)),
             util::CsvWriter::num(series[i])});
  }

  util::GrayImage sil;
  sil.width = static_cast<int>(mask.width);
  sil.height = static_cast<int>(mask.height);
  sil.pixels.resize(mask.data.size());
  for (std::size_t i = 0; i < mask.data.size(); ++i) {
    sil.pixels[i] = mask.data[i] != 0 ? 255 : 0;
  }
  const std::string sil_path =
      util::results_path(bench::results_dir(), "fig3_silhouette.pgm");
  util::write_pgm(sil_path, sil);

  util::RgbImage rgb;
  rgb.width = 227;
  rgb.height = 227;
  rgb.pixels.resize(227 * 227 * 3);
  const std::size_t plane = 227 * 227;
  for (std::size_t p = 0; p < plane; ++p) {
    for (std::size_t c = 0; c < 3; ++c) {
      rgb.pixels[p * 3 + c] =
          static_cast<std::uint8_t>(image[c * plane + p] * 255.0f);
    }
  }
  const std::string img_path =
      util::results_path(bench::results_dir(), "fig3_input.ppm");
  util::write_ppm(img_path, rgb);

  std::printf("\nartefacts: %s, %s, %s\n", csv.path().c_str(),
              sil_path.c_str(), img_path.c_str());

  // Sweep the "slightly angled" premise: the qualifier must hold across
  // realistic tilts (the paper's robustness claim for the surrogate).
  std::printf("\nangle sweep (qualified? / distance / corners):\n");
  for (const double a : {-20.0, -10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 20.0}) {
    const auto m = sax::match_shape(
        vision::shape_signature(
            vision::dominant_shape(data::render_stop_sign(227, a)), 360),
        8);
    std::printf("  %+6.1f deg : %s  dist=%6.3f corners=%d\n", a,
                m.match ? "YES" : "NO ", m.distance, m.corners);
  }
  return 0;
}
