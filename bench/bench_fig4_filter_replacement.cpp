// FIG4 — Figure 4 of the paper: confidence values for the "Stop" class
// after replacing each one of the learnt first-convolution-layer filters
// with a Sobel filter; the red dotted line in the paper is the accuracy
// of the original model.
//
// Two variants are produced (see DESIGN.md substitutions):
//  (a) trained MiniCNN — the faithful variant: the model is actually
//      trained, each of its conv1 filters is replaced one at a time, and
//      stop-class confidence over a stop-sign test set is reported;
//  (b) full 96-filter AlexNet with deterministic weights — the paper's
//      exact geometry, demonstrating the sweep mechanics at scale (a
//      trained AlexNet is outside CPU budget).
#include <cstdio>

#include "bench_common.hpp"
#include "data/dataset.hpp"
#include "nn/alexnet.hpp"
#include "nn/conv2d.hpp"
#include "nn/filters.hpp"
#include "nn/minicnn.hpp"
#include "nn/trainer.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

/// Harder-than-default rendering so filter damage is visible in accuracy
/// and confidence (the paper's Fig. 4 shows substantial variation): more
/// pixel noise, stronger geometry and photometry jitter.
data::DatasetConfig hard_config(std::size_t image_size) {
  data::DatasetConfig cfg;
  cfg.image_size = image_size;
  cfg.noise_sigma = 0.10;
  cfg.max_rotation_deg = 18.0;
  cfg.min_scale = 0.5;
  cfg.min_brightness = 0.55;
  cfg.max_brightness = 1.35;
  return cfg;
}

/// Stop-sign-only evaluation set.
std::vector<data::Example> stop_only(std::size_t n, std::size_t image_size,
                                     std::uint64_t seed) {
  auto all = data::make_dataset(n, hard_config(image_size), seed);
  std::vector<data::Example> stops;
  for (auto& ex : all) {
    if (ex.label == static_cast<int>(data::SignClass::kStop)) {
      stops.push_back(std::move(ex));
    }
  }
  return stops;
}

}  // namespace

int main() {
  bench::banner("FIG4", "Figure 4 (per-filter Sobel replacement sweep)");

  // ---------------- (a) trained MiniCNN sweep --------------------------
  std::printf("\n(a) trained MiniCNN (16 conv1 filters, 32x32 synthetic "
              "GTSRB stand-in)\n");
  auto net = nn::make_minicnn({.num_classes = data::kNumClasses,
                               .conv1_filters = 16, .seed = 7});
  const auto train_data = data::make_dataset(40, hard_config(32), 401);
  const auto test_data = data::make_dataset(20, hard_config(32), 402);
  const auto stop_data = stop_only(20, 32, 403);

  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 20;
  tc.learning_rate = 0.01f;
  tc.momentum = 0.9f;
  nn::train(*net, train_data, tc);

  const auto baseline = nn::evaluate(*net, test_data, data::kNumClasses);
  const double baseline_conf = nn::mean_class_confidence(
      *net, stop_data, static_cast<int>(data::SignClass::kStop));
  std::printf("original model: accuracy=%.3f  stop-confidence=%.3f "
              "(the paper's red dotted line)\n",
              baseline.accuracy, baseline_conf);

  auto& conv1 = net->layer_as<nn::Conv2d>(nn::kMiniCnnConv1);
  util::CsvWriter csv_mini(
      util::results_path(bench::results_dir(),
                         "fig4_minicnn_filter_replacement.csv"),
      {"filter", "stop_confidence", "accuracy", "baseline_confidence",
       "baseline_accuracy"});

  util::Table table("Fig. 4(a): stop-class confidence after replacing each "
                    "learnt MiniCNN conv1 filter with Sobel",
                    {"filter", "stop confidence", "accuracy", "delta conf"});
  double min_conf = 1.0;
  double max_conf = 0.0;
  for (std::size_t f = 0; f < conv1.out_channels(); ++f) {
    const tensor::Tensor saved = nn::replace_filter_with_sobel(conv1, f);
    const double conf = nn::mean_class_confidence(
        *net, stop_data, static_cast<int>(data::SignClass::kStop));
    const auto eval = nn::evaluate(*net, test_data, data::kNumClasses);
    conv1.set_filter(f, saved);  // restore for the next sweep step

    min_conf = std::min(min_conf, conf);
    max_conf = std::max(max_conf, conf);
    table.row({std::to_string(f), util::Table::fixed(conf, 4),
               util::Table::fixed(eval.accuracy, 4),
               util::Table::fixed(conf - baseline_conf, 4)});
    csv_mini.row({std::to_string(f), util::CsvWriter::num(conf),
                  util::CsvWriter::num(eval.accuracy),
                  util::CsvWriter::num(baseline_conf),
                  util::CsvWriter::num(baseline.accuracy)});
  }
  table.print();
  std::printf("confidence varies substantially with the replaced filter "
              "(paper's observation): min=%.4f max=%.4f baseline=%.4f\n",
              min_conf, max_conf, baseline_conf);

  // ---------------- (b) AlexNet 96-filter sweep ------------------------
  std::printf("\n(b) AlexNet, all 96 conv1 filters (deterministic weights; "
              "mechanics at the paper's scale)\n");
  auto alex = nn::make_alexnet({.num_classes = data::kNumClasses, .seed = 5,
                                .with_dropout = false});
  const auto stop227 = stop_only(bench::quick_mode() ? 1 : 2, 227, 404);
  auto& aconv1 = alex->layer_as<nn::Conv2d>(nn::kAlexNetConv1);
  const double alex_baseline = nn::mean_class_confidence(
      *alex, stop227, static_cast<int>(data::SignClass::kStop));

  util::CsvWriter csv_alex(
      util::results_path(bench::results_dir(),
                         "fig4_alexnet_filter_replacement.csv"),
      {"filter", "stop_confidence", "baseline_confidence"});
  const std::size_t step = bench::quick_mode() ? 8 : 1;
  util::Stopwatch sw;
  double amin = 1.0;
  double amax = 0.0;
  for (std::size_t f = 0; f < nn::kAlexNetConv1Filters; f += step) {
    const tensor::Tensor saved = nn::replace_filter_with_sobel(aconv1, f);
    const double conf = nn::mean_class_confidence(
        *alex, stop227, static_cast<int>(data::SignClass::kStop));
    aconv1.set_filter(f, saved);
    amin = std::min(amin, conf);
    amax = std::max(amax, conf);
    csv_alex.row({std::to_string(f), util::CsvWriter::num(conf),
                  util::CsvWriter::num(alex_baseline)});
    if (f % 16 == 0) {
      std::printf("  filter %2zu: confidence %.4f (baseline %.4f) "
                  "[%.0fs elapsed]\n",
                  f, conf, alex_baseline, sw.seconds());
    }
  }
  std::printf("AlexNet sweep: confidence range [%.4f, %.4f], baseline "
              "%.4f, %zu filters, %.0fs\n",
              amin, amax, alex_baseline,
              (nn::kAlexNetConv1Filters + step - 1) / step, sw.seconds());
  std::printf("\nCSV written to %s and %s\n", csv_mini.path().c_str(),
              csv_alex.path().c_str());
  return 0;
}
