// TXT-FREEZE — Section III.B experiment: pre-initialise a conv1 filter to
// Sobel and train. The paper observed that TensorFlow's freezing is
// imperfect ("after every epoch or batch, the filter values are minimally
// changed") and that re-setting after every batch — or freezing — leaves
// accuracy unaffected.
//
// Three regimes are compared on identical initial weights and data:
//   free       — the Sobel filter trains like any other (drifts)
//   reset      — trained but re-set after every batch (paper's workaround)
//   hard-freeze — gradients masked (this library's exact freeze)
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "data/dataset.hpp"
#include "nn/conv2d.hpp"
#include "nn/filters.hpp"
#include "nn/minicnn.hpp"
#include "nn/trainer.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

struct RegimeResult {
  double accuracy = 0.0;
  double stop_confidence = 0.0;
  float filter_drift = 0.0f;  // max |w - w0| on the dependable filter
};

RegimeResult run_regime(const char* regime,
                        const std::vector<data::Example>& train_data,
                        const std::vector<data::Example>& test_data,
                        const std::vector<data::Example>& stop_data) {
  auto net = nn::make_minicnn({.num_classes = data::kNumClasses,
                               .conv1_filters = 16, .seed = 13});
  auto& conv1 = net->layer_as<nn::Conv2d>(nn::kMiniCnnConv1);
  const tensor::Tensor sobel = nn::sobel_filter(3, conv1.kernel());
  conv1.set_filter(0, sobel);

  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 20;
  tc.learning_rate = 0.01f;
  tc.momentum = 0.9f;

  const std::string r = regime;
  if (r == "hard-freeze") {
    conv1.set_filter_frozen(0, true);
  } else if (r == "reset") {
    tc.after_step = [&sobel](nn::Sequential& n) {
      n.layer_as<nn::Conv2d>(nn::kMiniCnnConv1).set_filter(0, sobel);
    };
  }

  nn::train(*net, train_data, tc);

  RegimeResult result;
  const auto eval = nn::evaluate(*net, test_data, data::kNumClasses);
  result.accuracy = eval.accuracy;
  result.stop_confidence = nn::mean_class_confidence(
      *net, stop_data, static_cast<int>(data::SignClass::kStop));
  result.filter_drift = conv1.filter(0).max_abs_diff(sobel);
  return result;
}

}  // namespace

int main() {
  bench::banner("TXT-FREEZE",
                "Section III.B (Sobel pre-initialisation, freeze regimes)");

  const auto train_data = data::make_dataset(40, {}, 601);
  const auto test_data = data::make_dataset(30, {}, 602);
  data::DatasetConfig stop_cfg;
  auto all = data::make_dataset(20, stop_cfg, 603);
  std::vector<data::Example> stop_data;
  for (auto& ex : all) {
    if (ex.label == static_cast<int>(data::SignClass::kStop)) {
      stop_data.push_back(std::move(ex));
    }
  }

  util::Table table("Sobel pre-initialised filter: training regimes",
                    {"regime", "test accuracy", "stop confidence",
                     "filter max drift"});
  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "freeze_training.csv"),
      {"regime", "accuracy", "stop_confidence", "filter_drift"});

  for (const char* regime : {"free", "reset", "hard-freeze"}) {
    const RegimeResult r =
        run_regime(regime, train_data, test_data, stop_data);
    table.row({regime, util::Table::fixed(r.accuracy, 4),
               util::Table::fixed(r.stop_confidence, 4),
               util::Table::fixed(r.filter_drift, 6)});
    csv.row({regime, util::CsvWriter::num(r.accuracy),
             util::CsvWriter::num(r.stop_confidence),
             util::CsvWriter::num(r.filter_drift)});
  }
  table.print();

  std::printf("\nexpected shape (paper): accuracy unaffected across "
              "regimes; drift > 0 only for 'free'; 'reset' and "
              "'hard-freeze' pin the filter exactly.\n");
  std::printf("CSV written to %s\n", csv.path().c_str());
  return 0;
}
