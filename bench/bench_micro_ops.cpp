// Google-benchmark micro suite: per-operation cost of the overloaded
// executors (Algorithms 1-2 + TMR) and of the kernels they compose into.
// These are the constants behind Table 1's ratios.
#include <benchmark/benchmark.h>

#include <memory>

#include <vector>

#include "faultsim/injector.hpp"
#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "nn/gemm_ref.hpp"
#include "reliable/executor.hpp"
#include "reliable/leaky_bucket.hpp"
#include "reliable/reliable_conv.hpp"
#include "reliable/static_dispatch.hpp"
#include "runtime/compute_context.hpp"
#include "sax/sax_word.hpp"
#include "util/rng.hpp"
#include "vision/radial.hpp"

namespace {

using namespace hybridcnn;

void BM_QualifiedMul(benchmark::State& state, const char* scheme) {
  const auto exec = reliable::make_executor(scheme, nullptr);
  float a = 1.2345f;
  const float b = 0.9876f;
  for (auto _ : state) {
    const auto q = exec->mul(a, b);
    benchmark::DoNotOptimize(q.value);
    a = q.value * 1e-6f + 1.0f;  // serialise iterations
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_QualifiedMul, simplex, "simplex");
BENCHMARK_CAPTURE(BM_QualifiedMul, dmr, "dmr");
BENCHMARK_CAPTURE(BM_QualifiedMul, tmr, "tmr");

void BM_QualifiedMulUnderInjection(benchmark::State& state) {
  faultsim::FaultConfig cfg;
  cfg.kind = faultsim::FaultKind::kTransient;
  cfg.probability = 1e-6;
  auto inj = std::make_shared<faultsim::FaultInjector>(cfg, 1);
  const auto exec = reliable::make_executor("dmr", inj);
  float a = 1.5f;
  for (auto _ : state) {
    const auto q = exec->mul(a, 2.0f);
    benchmark::DoNotOptimize(q.value);
    a = q.value * 1e-6f + 1.0f;
  }
}
BENCHMARK(BM_QualifiedMulUnderInjection);

void BM_LeakyBucketSuccess(benchmark::State& state) {
  reliable::LeakyBucket bucket;
  for (auto _ : state) {
    bucket.record_success();
    benchmark::DoNotOptimize(bucket.level());
  }
}
BENCHMARK(BM_LeakyBucketSuccess);

void BM_ReliableConvSmall(benchmark::State& state, const char* scheme) {
  util::Rng rng(1);
  tensor::Tensor weights(tensor::Shape{4, 3, 5, 5});
  weights.fill_normal(rng, 0.0f, 0.2f);
  tensor::Tensor bias(tensor::Shape{4});
  const reliable::ReliableConv2d conv(weights, bias,
                                      reliable::ConvSpec{1, 2});
  tensor::Tensor input(tensor::Shape{3, 16, 16});
  input.fill_normal(rng, 0.0f, 1.0f);
  const auto exec = reliable::make_executor(scheme, nullptr);
  for (auto _ : state) {
    const auto result = conv.forward(input, *exec);
    benchmark::DoNotOptimize(result.output.data().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(conv.mac_count(input.shape())));
}
BENCHMARK_CAPTURE(BM_ReliableConvSmall, simplex, "simplex");
BENCHMARK_CAPTURE(BM_ReliableConvSmall, dmr, "dmr");
BENCHMARK_CAPTURE(BM_ReliableConvSmall, tmr, "tmr");

void BM_NativeConvSmall(benchmark::State& state) {
  util::Rng rng(1);
  nn::Conv2d conv(3, 4, 5, 1, 2);
  conv.init_he(rng);
  tensor::Tensor input(tensor::Shape{1, 3, 16, 16});
  input.fill_normal(rng, 0.0f, 1.0f);
  for (auto _ : state) {
    const auto out = conv.infer(input, runtime::thread_scratch());
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_NativeConvSmall);

// ------------------------------------------------------------------ GEMM
// Conv2-like shape: the im2col hot path of the CNN engine. items/sec is
// multiply-accumulates, so the counter reads directly as MAC throughput.
constexpr std::size_t kGemmM = 96;
constexpr std::size_t kGemmK = 363;
constexpr std::size_t kGemmN = 3136;

struct GemmData {
  std::vector<float> a, b, c;
  GemmData() : a(kGemmM * kGemmK), b(kGemmK * kGemmN), c(kGemmM * kGemmN) {
    util::Rng rng(5);
    for (auto& v : a) v = static_cast<float>(rng.normal()) * 0.1f;
    for (auto& v : b) v = static_cast<float>(rng.normal()) * 0.1f;
  }
};

void BM_GemmSeedKernel(benchmark::State& state) {
  GemmData d;
  for (auto _ : state) {
    nn::ref::gemm(kGemmM, kGemmK, kGemmN, d.a.data(), d.b.data(),
                  d.c.data());
    benchmark::DoNotOptimize(d.c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kGemmM * kGemmK *
                                                    kGemmN));
}
BENCHMARK(BM_GemmSeedKernel);

void BM_GemmBlocked(benchmark::State& state) {
  const std::size_t prior = runtime::ComputeContext::global().slot_count();
  runtime::ComputeContext::set_global_threads(
      static_cast<std::size_t>(state.range(0)));
  GemmData d;
  for (auto _ : state) {
    nn::gemm(kGemmM, kGemmK, kGemmN, d.a.data(), d.b.data(), d.c.data());
    benchmark::DoNotOptimize(d.c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kGemmM * kGemmK *
                                                    kGemmN));
  runtime::ComputeContext::set_global_threads(prior);
}
BENCHMARK(BM_GemmBlocked)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Conv2dForwardBatch(benchmark::State& state) {
  const std::size_t prior = runtime::ComputeContext::global().slot_count();
  runtime::ComputeContext::set_global_threads(
      static_cast<std::size_t>(state.range(0)));
  util::Rng rng(6);
  nn::Conv2d conv(3, 8, 7, 2, 0);
  conv.init_he(rng);
  tensor::Tensor input(tensor::Shape{8, 3, 96, 96});
  input.fill_normal(rng, 0.0f, 1.0f);
  for (auto _ : state) {
    const auto out = conv.infer(input, runtime::thread_scratch());
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
  runtime::ComputeContext::set_global_threads(prior);
}
BENCHMARK(BM_Conv2dForwardBatch)->Arg(1)->Arg(4);

// ------------------------------------------------- dense fast path
// Gather kernel (per-neuron row dot products, strided weight loads) vs
// the repacked [in][padded_out] neuron-lane kernel behind
// ReliableLinear's fault-free fast path. items/sec reads as MACs; the
// packed variant must win here to stay the default.
constexpr std::size_t kLinOut = 128;
constexpr std::size_t kLinIn = 1024;

struct LinearData {
  std::vector<float> w, b, x, y;
  LinearData() : w(kLinOut * kLinIn), b(kLinOut), x(kLinIn), y(kLinOut) {
    util::Rng rng(7);
    for (auto& v : w) v = static_cast<float>(rng.normal()) * 0.1f;
    for (auto& v : b) v = static_cast<float>(rng.normal()) * 0.1f;
    for (auto& v : x) v = static_cast<float>(rng.normal());
  }
};

#ifdef HYBRIDCNN_ISA_SIMD

void BM_LinearFastPathGather(benchmark::State& state) {
  LinearData d;
  for (auto _ : state) {
    reliable::detail::linear_raw_compute_simd(
        kLinOut, kLinIn, d.x.data(), d.w.data(), d.b.data(), d.y.data());
    benchmark::DoNotOptimize(d.y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLinOut * kLinIn));
}
BENCHMARK(BM_LinearFastPathGather);

void BM_LinearFastPathPacked(benchmark::State& state) {
  LinearData d;
  const auto pack = reliable::detail::build_linear_pack(
      kLinOut, kLinIn, d.w.data(), d.b.data(), 0);
  for (auto _ : state) {
    reliable::detail::linear_raw_compute_packed(pack, d.x.data(), d.y.data());
    benchmark::DoNotOptimize(d.y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLinOut * kLinIn));
}
BENCHMARK(BM_LinearFastPathPacked);

void BM_LinearPackBuild(benchmark::State& state) {
  LinearData d;
  for (auto _ : state) {
    const auto pack = reliable::detail::build_linear_pack(
        kLinOut, kLinIn, d.w.data(), d.b.data(), 0);
    benchmark::DoNotOptimize(pack.weights.data());
  }
}
BENCHMARK(BM_LinearPackBuild);

#endif  // HYBRIDCNN_ISA_SIMD

void BM_SaxWord(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<double> series(360);
  for (auto& v : series) v = rng.normal(10.0, 1.0);
  const sax::SaxConfig cfg{32, 8};
  for (auto _ : state) {
    const std::string w = sax_word(series, cfg);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_SaxWord);

}  // namespace
