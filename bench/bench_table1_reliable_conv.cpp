// TAB1 — Table 1 of the paper: execution time of the reliable convolution
// algorithm (Algorithm 3) for the first AlexNet convolution layer (96
// feature maps from 96 11x11x3 filters over 227x227x3), with
// non-redundant (Algorithm 1) vs redundant (Algorithm 2) operators, plus
// the paper's two reference rows: native execution and the naive SAX
// qualifier.
//
// The paper measured Python on an i9-9900: native TF 0.05 s, Algorithm 3
// with Algorithm 1 ops 301.91 s, with Algorithm 2 ops 648.87 s, SAX
// 1.942 s. Absolute numbers here differ (compiled C++); the reproduced
// quantities are the ratios: redundant ~2.1x non-redundant, both orders
// of magnitude above native, SAX far cheaper than reliable execution.
// The paper rows are measured on the retained generic (virtual-dispatch,
// per-op qualified) path — that is the execution style the paper timed.
//
// On top of that, the bench tracks the statically dispatched engine the
// public forward() selects: per scheme it times the generic oracle, the
// scalar fast path (SIMD kill-switch closed), and the SIMD fast path
// swept across both vector strategies (pixel lanes, channel lanes, and
// the auto heuristic) at 1/2/8 pool threads, checks bit-identity of
// outputs and reports across every cell, and emits
// bench_results/BENCH_reliable_conv.json — including the gap to the
// unqualified im2col/GEMM conv on the same geometry — so the hot path's
// perf trajectory is tracked across PRs like BENCH_batch_inference.json.
// The legacy JSON fields (simd_images_per_sec, gap_vs_unqualified) stay
// pinned to the auto kernel at 1 thread so the cross-PR trajectory is
// comparable; the full sweep lands in the per-scheme "kernels" array.
// Exit code 1 on any bit-identity failure.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/renderer.hpp"
#include "nn/alexnet.hpp"
#include "nn/conv2d.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "reliable/static_dispatch.hpp"
#include "runtime/compute_context.hpp"
#include "runtime/isa.hpp"
#include "runtime/workspace.hpp"
#include "sax/shape_match.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "vision/edge_map.hpp"
#include "vision/radial.hpp"

namespace {

using namespace hybridcnn;

/// The fast paths finish in tens of milliseconds, where one-shot wall
/// clock is mostly scheduler noise; best-of-N keeps the columns stable.
/// The generic oracle runs seconds per shot and stays single-shot.
constexpr int kFastReps = 5;

double time_generic(const reliable::ReliableConv2d& conv,
                    const tensor::Tensor& input, const char* scheme,
                    reliable::ReliableResult* out) {
  const auto exec = reliable::make_executor(scheme, nullptr);
  util::Stopwatch sw;
  *out = conv.forward_generic(input, *exec);
  return sw.seconds();
}

/// The swept axes of the dispatch study. The thread axis exercises the
/// pooled fault-free fan-out; on fewer hardware cores the extra rows
/// document oversubscription rather than speedup, which is still the
/// honest number for this machine.
constexpr std::size_t kThreadAxis[] = {1, 2, 8};
constexpr const char* kKernelNames[] = {"pixel", "channel", "auto"};
constexpr reliable::detail::ConvKernel kKernelValues[] = {
    reliable::detail::ConvKernel::kPixel,
    reliable::detail::ConvKernel::kChannel,
    reliable::detail::ConvKernel::kAuto};

double time_dispatch(const reliable::ReliableConv2d& conv,
                     const tensor::Tensor& input, const char* scheme,
                     bool simd, reliable::detail::ConvKernel kernel,
                     std::size_t threads, reliable::ReliableResult* out) {
  namespace rd = reliable::detail;
  const rd::ConvKernel prior_kernel = rd::reliable_kernel_choice();
  const std::size_t prior_threads =
      runtime::ComputeContext::global().slot_count();
  rd::set_reliable_simd_enabled(simd);
  rd::set_reliable_kernel_choice(kernel);
  runtime::ComputeContext::set_global_threads(threads);
  const auto exec = reliable::make_executor(scheme, nullptr);
  double best = 0.0;
  for (int rep = 0; rep < kFastReps; ++rep) {
    util::Stopwatch sw;
    *out = conv.forward(input, *exec);
    const double t = sw.seconds();
    if (rep == 0 || t < best) best = t;
  }
  runtime::ComputeContext::set_global_threads(prior_threads);
  rd::set_reliable_kernel_choice(prior_kernel);
  reliable::detail::set_reliable_simd_enabled(true);
  return best;
}

/// One (kernel, threads) cell of the per-scheme sweep.
struct KernelCell {
  const char* kernel = nullptr;
  std::size_t threads = 1;
  double seconds = 0.0;
  [[nodiscard]] double ips() const { return 1.0 / seconds; }
};

struct SchemeRow {
  const char* scheme = nullptr;
  double generic_s = 0.0;
  double scalar_s = 0.0;
  /// Legacy trajectory column: the auto kernel at 1 thread — what
  /// forward() picks in the default single-threaded configuration.
  double simd_s = 0.0;
  /// Unqualified im2col/GEMM conv on the same geometry; the gap the
  /// qualified fast path still pays for reliability bookkeeping.
  double unqualified_s = 0.0;
  std::vector<KernelCell> cells;  ///< kernel x threads sweep
  [[nodiscard]] double simd_ips() const { return 1.0 / simd_s; }
  [[nodiscard]] double speedup_vs_generic() const {
    return generic_s / simd_s;
  }
  [[nodiscard]] double speedup_vs_scalar() const { return scalar_s / simd_s; }
  [[nodiscard]] double gap_vs_unqualified() const {
    return simd_s / unqualified_s;
  }
  [[nodiscard]] const KernelCell* cell(const char* kernel,
                                       std::size_t threads) const {
    for (const KernelCell& c : cells) {
      if (std::string(c.kernel) == kernel && c.threads == threads) return &c;
    }
    return nullptr;
  }
};

void write_json(const std::string& path, const std::vector<SchemeRow>& rows,
                std::uint64_t macs, std::size_t image_size,
                double unqualified_s, bool bit_identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"reliable_conv\",\n");
  std::fprintf(f,
               "  \"workload\": {\"layer\": \"alexnet_conv1\", \"input\": "
               "%zu, \"macs\": %llu, \"fault_free\": true, \"threads\": "
               "[1, 2, 8], \"isa\": \"%s\"},\n",
               image_size, static_cast<unsigned long long>(macs),
               runtime::isa::kIsaName);
  std::fprintf(f, "  \"bit_identical\": %s,\n",
               bit_identical ? "true" : "false");
  // Baseline row: the unqualified im2col/GEMM conv on the exact same
  // geometry — the reliability tax is measured against this.
  std::fprintf(f,
               "  \"unqualified\": {\"images_per_sec\": %.6g},\n",
               1.0 / unqualified_s);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SchemeRow& r = rows[i];
    // Legacy trajectory fields first (simd_* = auto kernel, 1 thread),
    // then the full kernel x threads sweep.
    std::fprintf(f,
                 "    {\"scheme\": \"%s\", "
                 "\"generic_images_per_sec\": %.6g, "
                 "\"scalar_images_per_sec\": %.6g, "
                 "\"simd_images_per_sec\": %.6g, "
                 "\"speedup_vs_generic\": %.6g, "
                 "\"simd_speedup_vs_scalar\": %.6g, "
                 "\"gap_vs_unqualified\": %.6g,\n",
                 r.scheme, 1.0 / r.generic_s, 1.0 / r.scalar_s, r.simd_ips(),
                 r.speedup_vs_generic(), r.speedup_vs_scalar(),
                 r.gap_vs_unqualified());
    std::fprintf(f, "     \"kernels\": [\n");
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      const KernelCell& cell = r.cells[c];
      std::fprintf(f,
                   "       {\"kernel\": \"%s\", \"threads\": %zu, "
                   "\"images_per_sec\": %.6g}%s\n",
                   cell.kernel, cell.threads, cell.ips(),
                   c + 1 < r.cells.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  bench::banner("TAB1", "Table 1 (reliable conv execution time)");

  // AlexNet conv1 weights (the deterministic init; timing is
  // weight-independent) and a rendered GTSRB-style stop-sign input.
  // Quick mode shrinks the input so the three generic-path rows stay
  // CI-friendly; the geometry (11x11 stride-4) is unchanged.
  const std::size_t image_size = bench::quick_mode() ? 131 : 227;
  util::Rng rng(42);
  tensor::Tensor weights(tensor::Shape{96, 3, 11, 11});
  weights.fill_normal(rng, 0.0f, 0.05f);
  tensor::Tensor bias(tensor::Shape{96});
  const reliable::ReliableConv2d rconv(weights, bias,
                                       reliable::ConvSpec{4, 0});

  const tensor::Tensor image =
      data::render_stop_sign(image_size, 5.0);
  const std::uint64_t macs = rconv.mac_count(image.shape());
  const tensor::Shape out_shape = rconv.output_shape(image.shape());
  std::printf("workload: 96 feature maps, 96 11x11x3 filters, input "
              "%zux%zux3 -> 96x%zux%zu (%llu MACs)\n",
              image_size, image_size, out_shape[1], out_shape[2],
              static_cast<unsigned long long>(macs));

  // Native reference: the im2col/GEMM engine (TensorFlow stand-in).
  nn::Conv2d native(3, 96, 11, 4, 0);
  native.weights() = weights;
  native.bias() = bias;
  tensor::Tensor batched = image;
  batched.reshape(tensor::Shape{1, 3, image_size, image_size});
  double t_native = 0.0;
  tensor::Tensor native_out;
  for (int rep = 0; rep < kFastReps; ++rep) {
    util::Stopwatch rep_sw;
    native_out = native.infer(batched, runtime::thread_scratch());
    const double t = rep_sw.seconds();
    if (rep == 0 || t < t_native) t_native = t;
  }
  util::Stopwatch sw;

  // Per scheme: the generic oracle (virtual per-op dispatch — the
  // paper's execution style) vs the statically dispatched fault-free
  // fast path forward() selects, swept over kernel strategy and pool
  // threads, with the bit-identity contract checked on every cell.
  using reliable::detail::ConvKernel;
  std::vector<SchemeRow> rows;
  std::vector<reliable::ExecutionReport> reports;
  bool bit_identical = true;
  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    SchemeRow row;
    row.scheme = scheme;
    row.unqualified_s = t_native;
    reliable::ReliableResult generic_result;
    reliable::ReliableResult scalar_result;
    row.generic_s = time_generic(rconv, image, scheme, &generic_result);
    row.scalar_s = time_dispatch(rconv, image, scheme, /*simd=*/false,
                                 ConvKernel::kAuto, 1, &scalar_result);
    bit_identical =
        bit_identical &&
        tensor::bit_identical(generic_result.output, scalar_result.output) &&
        generic_result.report == scalar_result.report;
    reliable::ReliableResult simd_result;
    for (std::size_t k = 0; k < 3; ++k) {
      for (const std::size_t threads : kThreadAxis) {
        KernelCell cell;
        cell.kernel = kKernelNames[k];
        cell.threads = threads;
        cell.seconds = time_dispatch(rconv, image, scheme, /*simd=*/true,
                                     kKernelValues[k], threads, &simd_result);
        bit_identical =
            bit_identical &&
            tensor::bit_identical(generic_result.output, simd_result.output) &&
            generic_result.report == simd_result.report;
        row.cells.push_back(cell);
        if (kKernelValues[k] == ConvKernel::kAuto && threads == 1) {
          row.simd_s = cell.seconds;
        }
      }
    }
    rows.push_back(row);
    reports.push_back(simd_result.report);
  }
  const double t_simplex = rows[0].generic_s;
  const double t_dmr = rows[1].generic_s;
  const double t_tmr = rows[2].generic_s;

  // Naive SAX qualifier on the same input (the paper's 1.942 s row).
  sw.reset();
  const auto mask = vision::dominant_shape(image);
  const auto series = vision::shape_signature(mask, 360);
  const auto match = sax::match_shape(series, 8);
  const double t_sax = sw.seconds();

  util::Table table(
      "Table 1: execution time, reliable conv (Algorithm 3, generic "
      "per-op engine), AlexNet conv1",
      {"configuration", "this impl [s]", "paper (Python) [s]",
       "ratio vs simplex"});
  table.row({"native conv (reference)", util::Table::fixed(t_native, 4),
             "0.05", util::Table::fixed(t_native / t_simplex, 3)});
  table.row({"Algorithm 3 + multiplication (Algorithm 1)",
             util::Table::fixed(t_simplex, 3), "301.91", "1.000"});
  table.row({"Algorithm 3 + redundant multiplication (Algorithm 2)",
             util::Table::fixed(t_dmr, 3), "648.87",
             util::Table::fixed(t_dmr / t_simplex, 3)});
  table.row({"Algorithm 3 + TMR voting (extension)",
             util::Table::fixed(t_tmr, 3), "-",
             util::Table::fixed(t_tmr / t_simplex, 3)});
  table.row({"naive SAX shape qualifier", util::Table::fixed(t_sax, 3),
             "1.942", util::Table::fixed(t_sax / t_simplex, 3)});
  table.print();

  util::Table dispatch_table(
      std::string("static dispatch: fault-free qualified conv, generic vs "
                  "scalar vs simd (auto kernel, 1 thread, isa ") +
          runtime::isa::kIsaName + ")",
      {"scheme", "generic [s]", "scalar [s]", "simd [s]", "simd img/s",
       "simd/scalar", "gap vs unqual"});
  for (const SchemeRow& r : rows) {
    dispatch_table.row({r.scheme, util::Table::fixed(r.generic_s, 3),
                        util::Table::fixed(r.scalar_s, 4),
                        util::Table::fixed(r.simd_s, 4),
                        util::Table::fixed(r.simd_ips(), 2),
                        util::Table::fixed(r.speedup_vs_scalar(), 2),
                        util::Table::fixed(r.gap_vs_unqualified(), 2)});
  }
  dispatch_table.row({"unqualified conv", "-", "-",
                      util::Table::fixed(t_native, 4),
                      util::Table::fixed(1.0 / t_native, 2), "-", "1.00"});
  dispatch_table.print();

  util::Table kernel_table(
      "fault-free fast path: img/s by kernel strategy and pool threads",
      {"scheme", "kernel", "t=1", "t=2", "t=8"});
  for (const SchemeRow& r : rows) {
    for (const char* kernel : kKernelNames) {
      std::vector<std::string> cols{r.scheme, kernel};
      for (const std::size_t threads : kThreadAxis) {
        const KernelCell* c = r.cell(kernel, threads);
        cols.push_back(c != nullptr ? util::Table::fixed(c->ips(), 2) : "-");
      }
      kernel_table.row(cols);
    }
  }
  kernel_table.print();

  std::printf("\npaper ratio redundant/non-redundant = %.3f, "
              "this implementation (generic engine) = %.3f\n",
              648.87 / 301.91, t_dmr / t_simplex);
  std::printf("qualifier verdict on the bench input: match=%d dist=%.3f "
              "corners=%d\n",
              match.match ? 1 : 0, match.distance, match.corners);
  std::printf("dispatched outputs/reports bit-identical to generic: %s\n",
              bit_identical ? "yes" : "NO — BUG");
  std::printf("  %s\n  %s\n  %s\n", reports[0].summary().c_str(),
              reports[1].summary().c_str(), reports[2].summary().c_str());

  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "table1_reliable_conv.csv"),
      {"configuration", "seconds", "paper_seconds", "ratio_vs_simplex"});
  csv.row({"native", util::CsvWriter::num(t_native), "0.05",
           util::CsvWriter::num(t_native / t_simplex)});
  csv.row({"algorithm3_simplex", util::CsvWriter::num(t_simplex), "301.91",
           "1"});
  csv.row({"algorithm3_dmr", util::CsvWriter::num(t_dmr), "648.87",
           util::CsvWriter::num(t_dmr / t_simplex)});
  csv.row({"algorithm3_tmr", util::CsvWriter::num(t_tmr), "",
           util::CsvWriter::num(t_tmr / t_simplex)});
  csv.row({"sax_qualifier", util::CsvWriter::num(t_sax), "1.942",
           util::CsvWriter::num(t_sax / t_simplex)});
  const std::string json_path =
      util::results_path(bench::results_dir(), "BENCH_reliable_conv.json");
  write_json(json_path, rows, macs, image_size, t_native, bit_identical);
  std::printf("\nCSV written to %s\nJSON written to %s\n", csv.path().c_str(),
              json_path.c_str());

  // Keep the native output alive so the compiler cannot elide it.
  const bool native_ok =
      native_out.count() == 96u * out_shape[1] * out_shape[2];
  return (native_ok && bit_identical) ? 0 : 1;
}
