// TAB1 — Table 1 of the paper: execution time of the reliable convolution
// algorithm (Algorithm 3) for the first AlexNet convolution layer (96
// feature maps from 96 11x11x3 filters over 227x227x3), with
// non-redundant (Algorithm 1) vs redundant (Algorithm 2) operators, plus
// the paper's two reference rows: native execution and the naive SAX
// qualifier.
//
// The paper measured Python on an i9-9900: native TF 0.05 s, Algorithm 3
// with Algorithm 1 ops 301.91 s, with Algorithm 2 ops 648.87 s, SAX
// 1.942 s. Absolute numbers here differ (compiled C++); the reproduced
// quantities are the ratios: redundant ~2.1x non-redundant, both orders
// of magnitude above native, SAX far cheaper than reliable execution.
// The paper rows are measured on the retained generic (virtual-dispatch,
// per-op qualified) path — that is the execution style the paper timed.
//
// On top of that, the bench tracks the statically dispatched engine the
// public forward() selects: per scheme it times the generic oracle, the
// scalar fast path (SIMD kill-switch closed) and the pixel-lane SIMD
// fast path, checks bit-identity of outputs and reports across all
// three, and emits bench_results/BENCH_reliable_conv.json — including
// the gap to the unqualified im2col/GEMM conv on the same geometry — so
// the hot path's perf trajectory is tracked across PRs like
// BENCH_batch_inference.json. Exit code 1 on any bit-identity failure.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/renderer.hpp"
#include "nn/alexnet.hpp"
#include "nn/conv2d.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "reliable/static_dispatch.hpp"
#include "runtime/isa.hpp"
#include "runtime/workspace.hpp"
#include "sax/shape_match.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "vision/edge_map.hpp"
#include "vision/radial.hpp"

namespace {

using namespace hybridcnn;

/// The fast paths finish in tens of milliseconds, where one-shot wall
/// clock is mostly scheduler noise; best-of-N keeps the columns stable.
/// The generic oracle runs seconds per shot and stays single-shot.
constexpr int kFastReps = 5;

double time_generic(const reliable::ReliableConv2d& conv,
                    const tensor::Tensor& input, const char* scheme,
                    reliable::ReliableResult* out) {
  const auto exec = reliable::make_executor(scheme, nullptr);
  util::Stopwatch sw;
  *out = conv.forward_generic(input, *exec);
  return sw.seconds();
}

double time_dispatch(const reliable::ReliableConv2d& conv,
                     const tensor::Tensor& input, const char* scheme,
                     bool simd, reliable::ReliableResult* out) {
  reliable::detail::set_reliable_simd_enabled(simd);
  const auto exec = reliable::make_executor(scheme, nullptr);
  double best = 0.0;
  for (int rep = 0; rep < kFastReps; ++rep) {
    util::Stopwatch sw;
    *out = conv.forward(input, *exec);
    const double t = sw.seconds();
    if (rep == 0 || t < best) best = t;
  }
  reliable::detail::set_reliable_simd_enabled(true);
  return best;
}

struct SchemeRow {
  const char* scheme = nullptr;
  double generic_s = 0.0;
  double scalar_s = 0.0;
  double simd_s = 0.0;
  /// Unqualified im2col/GEMM conv on the same geometry; the gap the
  /// qualified fast path still pays for reliability bookkeeping.
  double unqualified_s = 0.0;
  [[nodiscard]] double simd_ips() const { return 1.0 / simd_s; }
  [[nodiscard]] double speedup_vs_generic() const {
    return generic_s / simd_s;
  }
  [[nodiscard]] double speedup_vs_scalar() const { return scalar_s / simd_s; }
  [[nodiscard]] double gap_vs_unqualified() const {
    return simd_s / unqualified_s;
  }
};

void write_json(const std::string& path, const std::vector<SchemeRow>& rows,
                std::uint64_t macs, std::size_t image_size,
                double unqualified_s, bool bit_identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"reliable_conv\",\n");
  std::fprintf(f,
               "  \"workload\": {\"layer\": \"alexnet_conv1\", \"input\": "
               "%zu, \"macs\": %llu, \"fault_free\": true, \"threads\": 1, "
               "\"isa\": \"%s\"},\n",
               image_size, static_cast<unsigned long long>(macs),
               runtime::isa::kIsaName);
  std::fprintf(f, "  \"bit_identical\": %s,\n",
               bit_identical ? "true" : "false");
  // Baseline row: the unqualified im2col/GEMM conv on the exact same
  // geometry — the reliability tax is measured against this.
  std::fprintf(f,
               "  \"unqualified\": {\"images_per_sec\": %.6g},\n",
               1.0 / unqualified_s);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SchemeRow& r = rows[i];
    std::fprintf(f,
                 "    {\"scheme\": \"%s\", "
                 "\"generic_images_per_sec\": %.6g, "
                 "\"scalar_images_per_sec\": %.6g, "
                 "\"simd_images_per_sec\": %.6g, "
                 "\"speedup_vs_generic\": %.6g, "
                 "\"simd_speedup_vs_scalar\": %.6g, "
                 "\"gap_vs_unqualified\": %.6g}%s\n",
                 r.scheme, 1.0 / r.generic_s, 1.0 / r.scalar_s, r.simd_ips(),
                 r.speedup_vs_generic(), r.speedup_vs_scalar(),
                 r.gap_vs_unqualified(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  bench::banner("TAB1", "Table 1 (reliable conv execution time)");

  // AlexNet conv1 weights (the deterministic init; timing is
  // weight-independent) and a rendered GTSRB-style stop-sign input.
  // Quick mode shrinks the input so the three generic-path rows stay
  // CI-friendly; the geometry (11x11 stride-4) is unchanged.
  const std::size_t image_size = bench::quick_mode() ? 131 : 227;
  util::Rng rng(42);
  tensor::Tensor weights(tensor::Shape{96, 3, 11, 11});
  weights.fill_normal(rng, 0.0f, 0.05f);
  tensor::Tensor bias(tensor::Shape{96});
  const reliable::ReliableConv2d rconv(weights, bias,
                                       reliable::ConvSpec{4, 0});

  const tensor::Tensor image =
      data::render_stop_sign(image_size, 5.0);
  const std::uint64_t macs = rconv.mac_count(image.shape());
  const tensor::Shape out_shape = rconv.output_shape(image.shape());
  std::printf("workload: 96 feature maps, 96 11x11x3 filters, input "
              "%zux%zux3 -> 96x%zux%zu (%llu MACs)\n",
              image_size, image_size, out_shape[1], out_shape[2],
              static_cast<unsigned long long>(macs));

  // Native reference: the im2col/GEMM engine (TensorFlow stand-in).
  nn::Conv2d native(3, 96, 11, 4, 0);
  native.weights() = weights;
  native.bias() = bias;
  tensor::Tensor batched = image;
  batched.reshape(tensor::Shape{1, 3, image_size, image_size});
  double t_native = 0.0;
  tensor::Tensor native_out;
  for (int rep = 0; rep < kFastReps; ++rep) {
    util::Stopwatch rep_sw;
    native_out = native.infer(batched, runtime::thread_scratch());
    const double t = rep_sw.seconds();
    if (rep == 0 || t < t_native) t_native = t;
  }
  util::Stopwatch sw;

  // Per scheme: the generic oracle (virtual per-op dispatch — the
  // paper's execution style) vs the statically dispatched fault-free
  // fast path forward() selects, with the bit-identity contract checked.
  std::vector<SchemeRow> rows;
  std::vector<reliable::ExecutionReport> reports;
  bool bit_identical = true;
  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    SchemeRow row;
    row.scheme = scheme;
    row.unqualified_s = t_native;
    reliable::ReliableResult generic_result;
    reliable::ReliableResult scalar_result;
    reliable::ReliableResult simd_result;
    row.generic_s = time_generic(rconv, image, scheme, &generic_result);
    row.scalar_s =
        time_dispatch(rconv, image, scheme, /*simd=*/false, &scalar_result);
    row.simd_s =
        time_dispatch(rconv, image, scheme, /*simd=*/true, &simd_result);
    bit_identical =
        bit_identical &&
        tensor::bit_identical(generic_result.output, scalar_result.output) &&
        tensor::bit_identical(generic_result.output, simd_result.output) &&
        generic_result.report == scalar_result.report &&
        generic_result.report == simd_result.report;
    rows.push_back(row);
    reports.push_back(simd_result.report);
  }
  const double t_simplex = rows[0].generic_s;
  const double t_dmr = rows[1].generic_s;
  const double t_tmr = rows[2].generic_s;

  // Naive SAX qualifier on the same input (the paper's 1.942 s row).
  sw.reset();
  const auto mask = vision::dominant_shape(image);
  const auto series = vision::shape_signature(mask, 360);
  const auto match = sax::match_shape(series, 8);
  const double t_sax = sw.seconds();

  util::Table table(
      "Table 1: execution time, reliable conv (Algorithm 3, generic "
      "per-op engine), AlexNet conv1",
      {"configuration", "this impl [s]", "paper (Python) [s]",
       "ratio vs simplex"});
  table.row({"native conv (reference)", util::Table::fixed(t_native, 4),
             "0.05", util::Table::fixed(t_native / t_simplex, 3)});
  table.row({"Algorithm 3 + multiplication (Algorithm 1)",
             util::Table::fixed(t_simplex, 3), "301.91", "1.000"});
  table.row({"Algorithm 3 + redundant multiplication (Algorithm 2)",
             util::Table::fixed(t_dmr, 3), "648.87",
             util::Table::fixed(t_dmr / t_simplex, 3)});
  table.row({"Algorithm 3 + TMR voting (extension)",
             util::Table::fixed(t_tmr, 3), "-",
             util::Table::fixed(t_tmr / t_simplex, 3)});
  table.row({"naive SAX shape qualifier", util::Table::fixed(t_sax, 3),
             "1.942", util::Table::fixed(t_sax / t_simplex, 3)});
  table.print();

  util::Table dispatch_table(
      std::string("static dispatch: fault-free qualified conv, generic vs "
                  "scalar vs simd (single thread, isa ") +
          runtime::isa::kIsaName + ")",
      {"scheme", "generic [s]", "scalar [s]", "simd [s]", "simd img/s",
       "simd/scalar", "gap vs unqual"});
  for (const SchemeRow& r : rows) {
    dispatch_table.row({r.scheme, util::Table::fixed(r.generic_s, 3),
                        util::Table::fixed(r.scalar_s, 4),
                        util::Table::fixed(r.simd_s, 4),
                        util::Table::fixed(r.simd_ips(), 2),
                        util::Table::fixed(r.speedup_vs_scalar(), 2),
                        util::Table::fixed(r.gap_vs_unqualified(), 2)});
  }
  dispatch_table.row({"unqualified conv", "-", "-",
                      util::Table::fixed(t_native, 4),
                      util::Table::fixed(1.0 / t_native, 2), "-", "1.00"});
  dispatch_table.print();

  std::printf("\npaper ratio redundant/non-redundant = %.3f, "
              "this implementation (generic engine) = %.3f\n",
              648.87 / 301.91, t_dmr / t_simplex);
  std::printf("qualifier verdict on the bench input: match=%d dist=%.3f "
              "corners=%d\n",
              match.match ? 1 : 0, match.distance, match.corners);
  std::printf("dispatched outputs/reports bit-identical to generic: %s\n",
              bit_identical ? "yes" : "NO — BUG");
  std::printf("  %s\n  %s\n  %s\n", reports[0].summary().c_str(),
              reports[1].summary().c_str(), reports[2].summary().c_str());

  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "table1_reliable_conv.csv"),
      {"configuration", "seconds", "paper_seconds", "ratio_vs_simplex"});
  csv.row({"native", util::CsvWriter::num(t_native), "0.05",
           util::CsvWriter::num(t_native / t_simplex)});
  csv.row({"algorithm3_simplex", util::CsvWriter::num(t_simplex), "301.91",
           "1"});
  csv.row({"algorithm3_dmr", util::CsvWriter::num(t_dmr), "648.87",
           util::CsvWriter::num(t_dmr / t_simplex)});
  csv.row({"algorithm3_tmr", util::CsvWriter::num(t_tmr), "",
           util::CsvWriter::num(t_tmr / t_simplex)});
  csv.row({"sax_qualifier", util::CsvWriter::num(t_sax), "1.942",
           util::CsvWriter::num(t_sax / t_simplex)});
  const std::string json_path =
      util::results_path(bench::results_dir(), "BENCH_reliable_conv.json");
  write_json(json_path, rows, macs, image_size, t_native, bit_identical);
  std::printf("\nCSV written to %s\nJSON written to %s\n", csv.path().c_str(),
              json_path.c_str());

  // Keep the native output alive so the compiler cannot elide it.
  const bool native_ok =
      native_out.count() == 96u * out_shape[1] * out_shape[2];
  return (native_ok && bit_identical) ? 0 : 1;
}
