// TAB1 — Table 1 of the paper: execution time of the reliable convolution
// algorithm (Algorithm 3) for the first AlexNet convolution layer (96
// feature maps from 96 11x11x3 filters over 227x227x3), with
// non-redundant (Algorithm 1) vs redundant (Algorithm 2) operators, plus
// the paper's two reference rows: native execution and the naive SAX
// qualifier.
//
// The paper measured Python on an i9-9900: native TF 0.05 s, Algorithm 3
// with Algorithm 1 ops 301.91 s, with Algorithm 2 ops 648.87 s, SAX
// 1.942 s. Absolute numbers here differ (compiled C++); the reproduced
// quantities are the ratios: redundant ~2.1x non-redundant, both orders
// of magnitude above native, SAX far cheaper than reliable execution.
#include <cstdio>

#include "bench_common.hpp"
#include "data/renderer.hpp"
#include "nn/alexnet.hpp"
#include "nn/conv2d.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "runtime/workspace.hpp"
#include "sax/shape_match.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "vision/edge_map.hpp"
#include "vision/radial.hpp"

namespace {

using namespace hybridcnn;

double time_reliable(const reliable::ReliableConv2d& conv,
                     const tensor::Tensor& input, const char* scheme,
                     reliable::ExecutionReport* report) {
  const auto exec = reliable::make_executor(scheme, nullptr);
  util::Stopwatch sw;
  const auto result = conv.forward(input, *exec);
  const double secs = sw.seconds();
  if (report != nullptr) *report = result.report;
  return secs;
}

}  // namespace

int main() {
  bench::banner("TAB1", "Table 1 (reliable conv execution time)");

  // AlexNet conv1 weights (the deterministic init; timing is
  // weight-independent) and a rendered GTSRB-style stop-sign input.
  util::Rng rng(42);
  tensor::Tensor weights(tensor::Shape{96, 3, 11, 11});
  weights.fill_normal(rng, 0.0f, 0.05f);
  tensor::Tensor bias(tensor::Shape{96});
  const reliable::ReliableConv2d rconv(weights, bias,
                                       reliable::ConvSpec{4, 0});

  const tensor::Tensor image = data::render_stop_sign(227, 5.0);
  std::printf("workload: 96 feature maps, 96 11x11x3 filters, input "
              "227x227x3 -> 96x55x55 (%llu MACs)\n",
              static_cast<unsigned long long>(
                  rconv.mac_count(image.shape())));

  // Native reference: the im2col/GEMM engine (TensorFlow stand-in).
  nn::Conv2d native(3, 96, 11, 4, 0);
  native.weights() = weights;
  native.bias() = bias;
  tensor::Tensor batched = image;
  batched.reshape(tensor::Shape{1, 3, 227, 227});
  util::Stopwatch sw;
  const tensor::Tensor native_out =
      native.infer(batched, runtime::thread_scratch());
  const double t_native = sw.seconds();

  // Algorithm 3 with Algorithm 1 / Algorithm 2 / TMR operators.
  reliable::ExecutionReport rep_simplex;
  reliable::ExecutionReport rep_dmr;
  reliable::ExecutionReport rep_tmr;
  const double t_simplex =
      time_reliable(rconv, image, "simplex", &rep_simplex);
  const double t_dmr = time_reliable(rconv, image, "dmr", &rep_dmr);
  const double t_tmr = time_reliable(rconv, image, "tmr", &rep_tmr);

  // Naive SAX qualifier on the same input (the paper's 1.942 s row).
  sw.reset();
  const auto mask = vision::dominant_shape(image);
  const auto series = vision::shape_signature(mask, 360);
  const auto match = sax::match_shape(series, 8);
  const double t_sax = sw.seconds();

  util::Table table(
      "Table 1: execution time, reliable conv (Algorithm 3), AlexNet conv1",
      {"configuration", "this impl [s]", "paper (Python) [s]",
       "ratio vs simplex"});
  table.row({"native conv (reference)", util::Table::fixed(t_native, 4),
             "0.05", util::Table::fixed(t_native / t_simplex, 3)});
  table.row({"Algorithm 3 + multiplication (Algorithm 1)",
             util::Table::fixed(t_simplex, 3), "301.91", "1.000"});
  table.row({"Algorithm 3 + redundant multiplication (Algorithm 2)",
             util::Table::fixed(t_dmr, 3), "648.87",
             util::Table::fixed(t_dmr / t_simplex, 3)});
  table.row({"Algorithm 3 + TMR voting (extension)",
             util::Table::fixed(t_tmr, 3), "-",
             util::Table::fixed(t_tmr / t_simplex, 3)});
  table.row({"naive SAX shape qualifier", util::Table::fixed(t_sax, 3),
             "1.942", util::Table::fixed(t_sax / t_simplex, 3)});
  table.print();

  std::printf("\npaper ratio redundant/non-redundant = %.3f, "
              "this implementation = %.3f\n",
              648.87 / 301.91, t_dmr / t_simplex);
  std::printf("qualifier verdict on the bench input: match=%d dist=%.3f "
              "corners=%d\n",
              match.match ? 1 : 0, match.distance, match.corners);
  std::printf("simplex ops=%llu, dmr executions=2x, tmr=3x (see below)\n",
              static_cast<unsigned long long>(rep_simplex.logical_ops));
  std::printf("  %s\n  %s\n  %s\n", rep_simplex.summary().c_str(),
              rep_dmr.summary().c_str(), rep_tmr.summary().c_str());

  util::CsvWriter csv(
      util::results_path(bench::results_dir(), "table1_reliable_conv.csv"),
      {"configuration", "seconds", "paper_seconds", "ratio_vs_simplex"});
  csv.row({"native", util::CsvWriter::num(t_native), "0.05",
           util::CsvWriter::num(t_native / t_simplex)});
  csv.row({"algorithm3_simplex", util::CsvWriter::num(t_simplex), "301.91",
           "1"});
  csv.row({"algorithm3_dmr", util::CsvWriter::num(t_dmr), "648.87",
           util::CsvWriter::num(t_dmr / t_simplex)});
  csv.row({"algorithm3_tmr", util::CsvWriter::num(t_tmr), "",
           util::CsvWriter::num(t_tmr / t_simplex)});
  csv.row({"sax_qualifier", util::CsvWriter::num(t_sax), "1.942",
           util::CsvWriter::num(t_sax / t_simplex)});
  std::printf("\nCSV written to %s\n", csv.path().c_str());

  // Keep the native output alive so the compiler cannot elide it.
  return native_out.count() == 96u * 55u * 55u ? 0 : 1;
}
