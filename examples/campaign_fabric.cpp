// Crash-tolerant sharded campaign driver — the fabric demo and the
// binary tools/fabric_crash_test.sh kills.
//
// Runs a compute-fault classify campaign through the campaign fabric
// (sharded dispatch, durable checkpoint, resume), prints how many
// shards were recovered from the checkpoint, and with --verify replays
// the identical campaign monolithically and exits nonzero unless the
// two summaries are bit-identical. The CI crash test SIGKILLs this
// binary mid-campaign, truncates and corrupts the checkpoint tail, and
// reruns with --resume: the exit code then proves kill-resume
// bit-identity end to end.
//
// Flags:
//   --runs N         campaign size (default 48)
//   --shard-size S   runs per shard (default 4)
//   --workers W      fabric worker threads (default 2)
//   --checkpoint P   durable checkpoint file (default: none)
//   --resume         keep an existing checkpoint (default: start fresh)
//   --verify         compare against the monolithic run; exit 1 on diff
//   --shard-ms M     artificial per-shard latency, ms (crash window)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "campaign_fabric/campaigns.hpp"
#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "faultsim/campaign.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"

namespace {

using namespace hybridcnn;

std::unique_ptr<nn::Sequential> make_net() {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 128 -> 61
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);  // 61 -> 30
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 30 * 30, 5);
  nn::init_network(*net, 3);
  return net;
}

faultsim::Outcome judge(std::size_t, const core::HybridClassification& r) {
  const bool aborted = !r.conv1_report.ok || !r.qualifier.report.ok;
  const bool faults = aborted || r.conv1_report.detected_errors > 0;
  return faultsim::classify(faults, aborted, !aborted);
}

void print_summary(const char* label, const faultsim::CampaignSummary& s) {
  std::printf("%s: runs=%llu correct=%llu corrected=%llu fail-stop=%llu "
              "sdc=%llu\n",
              label, static_cast<unsigned long long>(s.runs),
              static_cast<unsigned long long>(s.correct),
              static_cast<unsigned long long>(s.corrected),
              static_cast<unsigned long long>(s.detected_abort),
              static_cast<unsigned long long>(s.silent_corruption));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t runs = 48;
  std::uint64_t shard_size = 4;
  std::size_t workers = 2;
  std::string checkpoint;
  bool resume = false;
  bool verify = false;
  long shard_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--runs") {
      runs = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--shard-size") {
      shard_size = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--workers") {
      workers = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--checkpoint") {
      checkpoint = value();
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--shard-ms") {
      shard_ms = std::strtol(value(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  if (!checkpoint.empty() && !resume) std::remove(checkpoint.c_str());

  core::HybridConfig hcfg;
  hcfg.fault_config.kind = faultsim::FaultKind::kTransient;
  hcfg.fault_config.probability = 1e-4;
  hcfg.fault_config.bit = -1;
  hcfg.fault_seed = 1;
  const core::HybridNetwork net(make_net(), 0, hcfg);
  const tensor::Tensor image = data::render_stop_sign(128, 6.0);
  const std::uint64_t seed_base = net.seed_stream().peek();

  fabric::FabricConfig cfg;
  cfg.shard_size = shard_size;
  cfg.workers = workers;
  cfg.checkpoint_path = checkpoint;
  if (shard_ms > 0) {
    cfg.attempt_hook = [shard_ms](const fabric::ShardDescriptor&,
                                  std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(shard_ms));
    };
  }

  std::printf("campaign fabric: %zu runs, shard size %llu, %zu workers%s\n",
              runs, static_cast<unsigned long long>(shard_size), workers,
              checkpoint.empty() ? "" : ", durable checkpoint");
  const fabric::FabricResult<faultsim::CampaignSummary> result =
      fabric::run_classify_campaign(net, image, runs, seed_base, judge, cfg);

  std::printf("resumed shards: %zu\n", result.stats.shards_resumed);
  std::printf("executed shards: %zu (of %zu), attempts=%zu retries=%zu "
              "reassigned=%zu deduped=%zu\n",
              result.stats.shards_executed, result.stats.shards_total,
              result.stats.attempts, result.stats.retries,
              result.stats.reassignments, result.stats.shards_deduped);
  print_summary("fabric summary", result.summary);
  if (!result.complete) {
    std::fprintf(stderr, "fabric run incomplete\n");
    return 1;
  }

  if (verify) {
    core::FaultSeedStream seeds = net.seed_stream();
    const faultsim::CampaignSummary mono =
        net.classify_campaign(image, runs, judge, seeds);
    print_summary("monolithic summary", mono);
    if (!(result.summary == mono)) {
      std::fprintf(stderr,
                   "BIT-IDENTITY VIOLATION: fabric != monolithic summary\n");
      return 1;
    }
    std::printf("verify: fabric summary is bit-identical to the monolithic "
                "single-coordinator run\n");
  }
  return 0;
}
