// Fault-injection campaign over the full hybrid pipeline.
//
// Sweeps the SEU rate of the simulated compute unit and reports, per
// rate, the dependability outcome distribution of hybrid classification:
// corrected runs (rollback absorbed the faults), fail-stops (leaky bucket
// latched a persistent condition) and silent corruptions (none expected
// with DMR). This is the library-level version of the paper's reliability
// argument, runnable as a demo.
#include <cstdio>

#include <vector>

#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "faultsim/campaign.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

std::unique_ptr<nn::Sequential> make_net() {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 22 * 22, 5);
  nn::init_network(*net, 5);
  return net;
}

}  // namespace

int main() {
  const tensor::Tensor image = data::render_stop_sign(96, 4.0);

  // Golden (fault-free) reference decision.
  core::HybridNetwork golden(make_net(), 0, core::HybridConfig{});
  core::FaultSeedStream golden_seeds = golden.seed_stream();
  const auto g = golden.classify(image, golden_seeds);
  std::printf("golden run: class=%d confidence=%.4f qualifier=%s\n",
              g.predicted_class, g.confidence,
              g.qualifier.match ? "octagon" : "-");

  util::Table table("hybrid classify under SEU injection (DMR, 12 runs/rate)",
                    {"rate/op", "correct", "corrected", "fail-stop", "SDC",
                     "avg detected errors"});

  for (const double rate : {1e-7, 1e-6, 1e-5, 1e-4}) {
    constexpr std::size_t kRuns = 12;
    // One hybrid network serves the whole campaign: classify_campaign
    // gives run i the fault seed fault_seed + i (the same per-run streams
    // the old build-a-network-per-run pattern used), fans the reliable
    // stage across the pool, and reduces outcomes in run order — the
    // summary stays bit-identical at every thread count while the
    // network/kernel construction is amortised.
    core::HybridConfig cfg;
    cfg.fault_config.kind = faultsim::FaultKind::kTransient;
    cfg.fault_config.probability = rate;
    cfg.fault_config.bit = -1;
    cfg.fault_seed = 1;
    core::HybridNetwork hybrid(make_net(), 0, cfg);

    std::vector<std::uint64_t> detected_per_run(kRuns, 0);
    core::FaultSeedStream seeds = hybrid.seed_stream();
    const faultsim::CampaignSummary summary = hybrid.classify_campaign(
        image, kRuns,
        [&](std::size_t run, const core::HybridClassification& r) {
          const bool aborted = !r.conv1_report.ok || !r.qualifier.report.ok;
          const bool faults = aborted || r.conv1_report.detected_errors > 0 ||
                              r.qualifier.report.detected_errors > 0;
          const bool matches = r.predicted_class == g.predicted_class &&
                               r.qualifier.match == g.qualifier.match &&
                               r.confidence == g.confidence;
          detected_per_run[run] = r.conv1_report.detected_errors +
                                  r.qualifier.report.detected_errors;
          return faultsim::classify(faults, aborted, matches);
        },
        seeds);
    double detected = 0.0;
    for (const std::uint64_t d : detected_per_run) {
      detected += static_cast<double>(d);
    }
    table.row({util::Table::fixed(rate, 7),
               std::to_string(summary.correct),
               std::to_string(summary.corrected),
               std::to_string(summary.detected_abort),
               std::to_string(summary.silent_corruption),
               util::Table::fixed(detected / 12.0, 1)});
  }
  table.print();
  std::printf("\nwith DMR + operation rollback, the SDC column stays 0: "
              "every run either reproduces the golden decision exactly or "
              "fail-stops with a report.\n");
  return 0;
}
