// Quickstart: build the paper's hybrid AlexNet, classify one stop sign,
// and read the Reliable Result.
//
//   $ ./quickstart
//
// What happens under the hood (Figure 2 of the paper):
//  1. conv1 (96 11x11x3 filters) executes through qualified DMR operators
//     with operation-level checkpoint/rollback and a leaky-bucket error
//     counter (Algorithm 3);
//  2. its output feeds the remaining (non-reliable) AlexNet layers;
//  3. a reliable Sobel + SAX qualifier independently confirms the octagon;
//  4. the safety policy combines CNN prediction and qualifier verdict.
#include <cstdio>

#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "nn/alexnet.hpp"

int main() {
  using namespace hybridcnn;

  std::printf("building AlexNet (untrained demo weights)...\n");
  core::HybridConfig config;
  config.scheme = "dmr";            // Algorithm 2 operators
  config.critical_classes = {0};    // class 0 = stop is safety-critical
  core::HybridNetwork hybrid(
      nn::make_alexnet({.num_classes = 5, .seed = 42, .with_dropout = false}),
      nn::kAlexNetConv1, config);

  std::printf("rendering a slightly angled stop sign (227x227)...\n");
  const tensor::Tensor image = data::render_stop_sign(227, 8.0);

  std::printf("classifying through the hybrid dataflow "
              "(reliable conv1: ~211M qualified operations)...\n");
  // The classify API is const over a caller-owned seed stream: the
  // caller decides which fault-seed block this request stream consumes.
  core::FaultSeedStream seeds = hybrid.seed_stream();
  const core::HybridClassification result = hybrid.classify(image, seeds);

  std::printf("\n--- Reliable Result ---------------------------------\n");
  std::printf("predicted class    : %d (confidence %.3f)\n",
              result.predicted_class, result.confidence);
  std::printf("safety critical    : %s\n",
              result.safety_critical ? "yes" : "no");
  std::printf("qualifier          : match=%s MINDIST=%.3f corners=%d\n",
              result.qualifier.match ? "yes" : "no",
              result.qualifier.shape.distance, result.qualifier.shape.corners);
  std::printf("reliable execution : %s\n",
              result.conv1_report.summary().c_str());
  std::printf("decision           : %s\n",
              core::decision_name(result.decision).c_str());
  std::printf("------------------------------------------------------\n");
  std::printf("\nNote: the demo weights are untrained, so the predicted\n"
              "class is arbitrary — but the octagon qualifier and the\n"
              "reliable-execution evidence are already meaningful. See\n"
              "examples/train_hybrid.cpp for the trained workflow.\n");
  return 0;
}
