// Serving demo: one shared const HybridNetwork behind an
// InferenceService, fed by several concurrent request streams.
//
//   $ ./serve_requests
//
// Three "camera" threads each open a Session (an independent,
// deterministic fault-seed stream) and submit a handful of frames; the
// service coalesces whatever is pending into micro-batches and fans
// them across the runtime pool. Afterwards the demo replays one session
// serially through the const classify API to show the bit-identity
// contract, and prints the service stats snapshot.
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "serve/inference_service.hpp"

namespace {

using namespace hybridcnn;

std::shared_ptr<const core::HybridNetwork> make_shared_net() {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 22 * 22, 5);
  nn::init_network(*net, 42);
  return std::make_shared<const core::HybridNetwork>(std::move(net), 0,
                                                     core::HybridConfig{});
}

tensor::Tensor frame(std::size_t camera, std::size_t i) {
  data::RenderParams p;
  p.cls = static_cast<data::SignClass>((camera + i) % data::kNumClasses);
  p.size = 96;
  p.rotation = 0.05 * static_cast<double>(i) - 0.1;
  p.noise_seed = 1000 * camera + i;
  return data::render_sign(p);
}

}  // namespace

int main() {
  const auto net = make_shared_net();

  serve::ServiceConfig cfg;
  cfg.queue_capacity = 16;
  cfg.max_batch = 4;
  serve::InferenceService service(net, cfg);

  constexpr std::size_t kCameras = 3;
  constexpr std::size_t kFrames = 4;
  std::printf("serving %zu request streams x %zu frames over one shared "
              "const network...\n", kCameras, kFrames);

  std::vector<std::vector<std::future<core::HybridClassification>>> futures(
      kCameras);
  std::vector<std::thread> cameras;
  for (std::size_t c = 0; c < kCameras; ++c) {
    cameras.emplace_back([&, c] {
      auto session = service.open_session(/*seed_base=*/100 * (c + 1));
      for (std::size_t i = 0; i < kFrames; ++i) {
        futures[c].push_back(session.submit(frame(c, i)));
      }
    });
  }
  for (auto& t : cameras) t.join();
  service.drain();

  std::vector<std::vector<core::HybridClassification>> results(kCameras);
  for (std::size_t c = 0; c < kCameras; ++c) {
    for (std::size_t i = 0; i < kFrames; ++i) {
      results[c].push_back(futures[c][i].get());
      const auto& r = results[c].back();
      std::printf("  camera %zu frame %zu: class=%d conf=%.3f decision=%s\n",
                  c, i, r.predicted_class, r.confidence,
                  core::decision_name(r.decision).c_str());
    }
  }

  // The determinism contract: replaying camera 0's stream serially
  // through the const classify API reproduces the served results bit
  // for bit, no matter how the dispatcher batched them.
  core::FaultSeedStream replay(100);
  bool identical = true;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto serial = net->classify(frame(0, i), replay);
    const auto& served = results[0][i];
    identical = identical && serial.predicted_class == served.predicted_class &&
                serial.confidence == served.confidence;
  }
  std::printf("camera 0 replayed serially over the same seed stream: %s\n",
              identical ? "bit-identical" : "MISMATCH (bug)");

  const serve::ServiceStats stats = service.stats();
  std::printf("stats: accepted=%llu completed=%llu batches=%llu "
              "peak_queue=%zu p50=%.0fus p99=%.0fus\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.batches),
              stats.peak_queue_depth, stats.p50_latency_us,
              stats.p99_latency_us);
  return identical ? 0 : 1;
}
