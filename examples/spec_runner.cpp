// Spec-driven hybrid runtime: the deployment shape the paper's future
// work sketches (platform-agnostic hybrid-CNN descriptions + certified
// runtime of restricted scope).
//
//   ./spec_runner [spec-file]
//
// Without arguments the example writes a demonstration spec, trains a
// model, saves its weights, then plays the deployment side: load spec,
// rebuild the hybrid envelope from it, load weights, classify.
#include <cstdio>

#include "core/hybrid_network.hpp"
#include "core/hybrid_spec.hpp"
#include "data/dataset.hpp"
#include "nn/minicnn.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

int main(int argc, char** argv) {
  using namespace hybridcnn;

  const std::string spec_path =
      argc > 1 ? argv[1] : "/tmp/hybridcnn_demo.spec";
  const std::string weights_path = "/tmp/hybridcnn_demo.weights";

  if (argc <= 1) {
    // --- authoring side: define the envelope, train, export. ----------
    core::HybridConfig config;
    config.scheme = "dmr";
    config.critical_classes = {static_cast<int>(data::SignClass::kStop)};
    config.policy.bucket_factor = 2;
    config.policy.bucket_ceiling = 4;
    core::save_spec(config, spec_path);
    std::printf("wrote spec to %s:\n%s\n", spec_path.c_str(),
                core::to_spec(config).c_str());

    auto net = nn::make_minicnn({.num_classes = data::kNumClasses,
                                 .conv1_filters = 12, .seed = 23});
    const auto train_data = data::make_dataset(25, {}, 811);
    nn::TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 25;
    tc.learning_rate = 0.01f;
    nn::train(*net, train_data, tc);
    nn::save_weights(*net, weights_path);
    std::printf("trained model exported to %s\n\n", weights_path.c_str());
  }

  // --- deployment side: everything rebuilt from artefacts. ------------
  std::printf("deployment: loading %s\n", spec_path.c_str());
  const core::HybridConfig config = core::load_spec(spec_path);
  std::printf("  scheme=%s bucket=(%u,%u) critical classes=%zu\n",
              config.scheme.c_str(), config.policy.bucket_factor,
              config.policy.bucket_ceiling,
              config.critical_classes.size());

  auto net = nn::make_minicnn({.num_classes = data::kNumClasses,
                               .conv1_filters = 12, .seed = 0});
  if (argc <= 1) nn::load_weights(*net, weights_path);
  core::HybridNetwork hybrid(std::move(net), nn::kMiniCnnConv1, config);

  data::RenderParams p;
  p.cls = data::SignClass::kStop;
  p.size = 32;
  p.scale = 0.85;
  core::FaultSeedStream seeds = hybrid.seed_stream();
  const auto r = hybrid.classify(data::render_sign(p), seeds);
  std::printf("\nclassified a stop render: predicted=%d confidence=%.3f "
              "decision=%s\n",
              r.predicted_class, r.confidence,
              core::decision_name(r.decision).c_str());
  std::printf("reliable execution: %s\n", r.conv1_report.summary().c_str());
  return 0;
}
