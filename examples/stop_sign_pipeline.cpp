// Stop-sign pipeline: the paper's motivating scenario end to end.
//
// A CNN is trained on the synthetic sign dataset, wrapped into a
// HybridNetwork, and then evaluated on fresh renders of every class. The
// point demonstrated: safety-critical "stop" positives are only reported
// when the dependable octagon evidence confirms them, so a misclassified
// circle can never become a reliable stop — the false-positive protection
// of Figure 1.
#include <cstdio>
#include <memory>

#include "core/hybrid_network.hpp"
#include "data/dataset.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "nn/trainer.hpp"
#include "util/table.hpp"

namespace {

using namespace hybridcnn;

std::unique_ptr<nn::Sequential> make_net() {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 96 -> 45
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);  // 45 -> 22
  net->emplace<nn::Conv2d>(8, 16, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(2, 2);  // 22 -> 11
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(16 * 11 * 11, 5);
  nn::init_network(*net, 9);
  return net;
}

}  // namespace

int main() {
  using data::SignClass;

  core::HybridConfig config;
  config.critical_classes = {static_cast<int>(SignClass::kStop)};
  core::HybridNetwork hybrid(make_net(), 0, config);

  std::printf("training the CNN branch (dependable Sobel filter frozen)...\n");
  data::DatasetConfig dcfg;
  dcfg.image_size = 96;
  const auto train_data = data::make_dataset(30, dcfg, 901);
  nn::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 25;
  tc.learning_rate = 0.01f;
  const auto history = nn::train(hybrid.cnn(), train_data, tc);
  std::printf("final epoch: loss=%.3f train-accuracy=%.3f\n",
              history.back().mean_loss, history.back().train_accuracy);

  util::Table table("hybrid decisions on fresh renders",
                    {"true class", "predicted", "confidence", "qualifier",
                     "decision"});
  std::size_t reliable_stop_positives = 0;
  std::size_t false_reliable_positives = 0;
  core::FaultSeedStream seeds = hybrid.seed_stream();

  for (const SignClass cls : data::all_classes()) {
    for (int variant = 0; variant < 3; ++variant) {
      data::RenderParams p;
      p.cls = cls;
      p.size = 96;
      p.rotation = (variant - 1) * 0.12;
      p.scale = 0.72 + 0.07 * variant;
      p.noise_seed = 7000 + static_cast<std::uint64_t>(variant);
      const auto r = hybrid.classify(data::render_sign(p), seeds);

      if (r.reliable_positive()) {
        if (cls == SignClass::kStop) {
          ++reliable_stop_positives;
        } else {
          ++false_reliable_positives;
        }
      }
      table.row({data::class_name(cls),
                 data::class_name(static_cast<SignClass>(r.predicted_class)),
                 util::Table::fixed(r.confidence, 3),
                 r.qualifier.match ? "octagon" : "-",
                 core::decision_name(r.decision)});
    }
  }
  table.print();

  std::printf("\nreliable stop positives on true stops : %zu / 3\n",
              reliable_stop_positives);
  std::printf("reliable stop positives on non-stops  : %zu  "
              "(the guarantee: always 0)\n",
              false_reliable_positives);
  return false_reliable_positives == 0 ? 0 : 1;
}
