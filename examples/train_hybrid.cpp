// The paper's Section III.B training workflow, end to end:
//
//  1. pre-initialise a first-layer filter to the Sobel x/y/x filter;
//  2. train under three regimes (free / re-set after every batch /
//     hard-frozen) and observe the filter drift the paper reported with
//     TensorFlow's imperfect freezing;
//  3. verify accuracy is unaffected by pinning the dependable filter;
//  4. wrap the frozen-filter model into the hybrid network and classify.
#include <cstdio>

#include "core/hybrid_network.hpp"
#include "data/dataset.hpp"
#include "nn/conv2d.hpp"
#include "nn/filters.hpp"
#include "nn/minicnn.hpp"
#include "nn/trainer.hpp"
#include "util/table.hpp"

int main() {
  using namespace hybridcnn;

  data::DatasetConfig dcfg;  // default 32x32 for MiniCNN
  const auto train_data = data::make_dataset(35, dcfg, 801);
  const auto test_data = data::make_dataset(20, dcfg, 802);

  util::Table table("Sobel pre-initialisation training regimes (MiniCNN)",
                    {"regime", "test accuracy", "filter max drift"});

  for (const char* regime : {"free", "reset", "hard-freeze"}) {
    auto net = nn::make_minicnn({.num_classes = data::kNumClasses,
                                 .conv1_filters = 12, .seed = 23});
    auto& conv1 = net->layer_as<nn::Conv2d>(nn::kMiniCnnConv1);
    const tensor::Tensor sobel = nn::sobel_filter(3, conv1.kernel());
    conv1.set_filter(0, sobel);

    nn::TrainConfig tc;
    tc.epochs = 6;
    tc.batch_size = 25;
    tc.learning_rate = 0.01f;
    tc.momentum = 0.9f;
    const std::string r = regime;
    if (r == "hard-freeze") {
      conv1.set_filter_frozen(0, true);
    } else if (r == "reset") {
      tc.after_step = [&sobel](nn::Sequential& n) {
        n.layer_as<nn::Conv2d>(nn::kMiniCnnConv1).set_filter(0, sobel);
      };
    }
    nn::train(*net, train_data, tc);

    const auto eval = nn::evaluate(*net, test_data, data::kNumClasses);
    table.row({regime, util::Table::fixed(eval.accuracy, 4),
               util::Table::fixed(conv1.filter(0).max_abs_diff(sobel), 6)});
  }
  table.print();

  std::printf("\nwrapping a freshly trained frozen-filter model into the "
              "hybrid network...\n");
  core::HybridConfig cfg;
  cfg.critical_classes = {static_cast<int>(data::SignClass::kStop)};
  // MiniCNN's 32x32 input is too coarse for the octagon qualifier, so the
  // hybrid uses the full-resolution qualifier source on the same frame —
  // exactly the trade-off DESIGN.md documents.
  core::HybridNetwork hybrid(
      nn::make_minicnn({.num_classes = data::kNumClasses,
                        .conv1_filters = 12, .seed = 23}),
      nn::kMiniCnnConv1, cfg);
  nn::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 25;
  tc.learning_rate = 0.01f;
  nn::train(hybrid.cnn(), train_data, tc);

  data::RenderParams p;
  p.cls = data::SignClass::kStop;
  p.size = 32;
  p.scale = 0.85;
  core::FaultSeedStream seeds = hybrid.seed_stream();
  const auto result = hybrid.classify(data::render_sign(p), seeds);
  std::printf("stop render: predicted=%d confidence=%.3f decision=%s\n",
              result.predicted_class, result.confidence,
              core::decision_name(result.decision).c_str());
  std::printf("(at 32x32 the qualifier is conservative; decisions demote "
              "rather than risk an unverified stop positive)\n");
  return 0;
}
