// Typed fabric front-ends for the two campaign surfaces.
//
// Each wrapper binds a campaign's shard entry point
// (HybridNetwork::classify_campaign_range /
// MemoryFaultCampaign::run_range) to run_fabric, so callers get the
// full coordinator — durable checkpoints, retry, reassignment — with
// one call. Both entry points take GLOBAL run indices and the campaign
// seed base, which is exactly what a ShardDescriptor carries; the
// merged summary is bit-identical to the monolithic
// classify_campaign / run() call with the same (runs, seed_base).
#pragma once

#include <functional>

#include "campaign_fabric/coordinator.hpp"
#include "core/hybrid_network.hpp"
#include "core/memory_campaign.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::fabric {

/// Sharded compute-fault classify campaign. `judge` must be
/// thread-safe: shards execute concurrently on fabric workers. The
/// monolithic equivalent is `net.classify_campaign(image, total_runs,
/// judge, seeds)` with `seeds.peek() == seed_base`.
inline FabricResult<faultsim::CampaignSummary> run_classify_campaign(
    const core::HybridNetwork& net, const tensor::Tensor& image,
    std::uint64_t total_runs, std::uint64_t seed_base,
    const std::function<faultsim::Outcome(
        std::size_t, const core::HybridClassification&)>& judge,
    const FabricConfig& config, core::BatchOptions options = {}) {
  const std::function<faultsim::CampaignSummary(const ShardDescriptor&)>
      runner = [&net, &image, &judge, options](const ShardDescriptor& shard) {
        return net.classify_campaign_range(
            image, static_cast<std::size_t>(shard.run_begin),
            static_cast<std::size_t>(shard.run_end), shard.seed_base, judge,
            options);
      };
  return run_fabric<faultsim::CampaignSummary>(config, total_runs, seed_base,
                                               runner);
}

/// Sharded memory-fault campaign. The monolithic equivalent is
/// `campaign.run(image, total_runs, seeds)` with
/// `seeds.peek() == seed_base`.
inline FabricResult<faultsim::MemoryCampaignSummary> run_memory_campaign(
    const core::MemoryFaultCampaign& campaign, const tensor::Tensor& image,
    std::uint64_t total_runs, std::uint64_t seed_base,
    const FabricConfig& config) {
  const std::function<faultsim::MemoryCampaignSummary(const ShardDescriptor&)>
      runner = [&campaign, &image](const ShardDescriptor& shard) {
        return campaign.run_range(
            image, static_cast<std::size_t>(shard.run_begin),
            static_cast<std::size_t>(shard.run_end), shard.seed_base);
      };
  return run_fabric<faultsim::MemoryCampaignSummary>(config, total_runs,
                                                     seed_base, runner);
}

}  // namespace hybridcnn::fabric
