#include "campaign_fabric/checkpoint_log.hpp"

#include <cstring>

#include "util/atomic_file.hpp"
#include "util/crc32c.hpp"

namespace hybridcnn::fabric {

namespace {

constexpr std::uint32_t kMagic = 0x43464348u;  // "HCFC" little-endian
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4;
constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 4;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

/// CRC of one record: shard index (LE bytes) chained with the payload,
/// so neither can be swapped or patched independently.
std::uint32_t record_crc(std::uint32_t shard_index,
                         const std::vector<std::uint8_t>& payload) {
  std::uint8_t idx[4] = {static_cast<std::uint8_t>(shard_index),
                         static_cast<std::uint8_t>(shard_index >> 8),
                         static_cast<std::uint8_t>(shard_index >> 16),
                         static_cast<std::uint8_t>(shard_index >> 24)};
  const std::uint32_t crc = util::crc32c(idx, sizeof(idx));
  return util::crc32c(payload.data(), payload.size(), crc);
}

}  // namespace

void save_checkpoint(const std::string& path, std::uint64_t fingerprint,
                     std::uint32_t shard_count,
                     const std::vector<ShardRecord>& records) {
  std::vector<std::uint8_t> out;
  std::size_t bytes = kHeaderBytes;
  for (const ShardRecord& r : records) {
    bytes += kRecordHeaderBytes + r.payload.size();
  }
  out.reserve(bytes);

  put_u32(out, kMagic);
  put_u32(out, kCheckpointVersion);
  put_u64(out, fingerprint);
  put_u32(out, shard_count);
  put_u32(out, util::crc32c(out.data(), out.size()));

  for (const ShardRecord& r : records) {
    put_u32(out, r.shard_index);
    put_u32(out, static_cast<std::uint32_t>(r.payload.size()));
    put_u32(out, record_crc(r.shard_index, r.payload));
    out.insert(out.end(), r.payload.begin(), r.payload.end());
  }

  util::atomic_write_file(path, out);
}

CheckpointLoad load_checkpoint(const std::string& path,
                               std::uint64_t fingerprint,
                               std::uint32_t shard_count) {
  CheckpointLoad result;
  std::vector<std::uint8_t> bytes;
  if (!util::read_file(path, bytes)) return result;  // absent: start fresh

  if (bytes.size() < kHeaderBytes) return result;
  if (get_u32(bytes.data()) != kMagic) return result;
  if (get_u32(bytes.data() + 4) != kCheckpointVersion) return result;
  if (get_u64(bytes.data() + 8) != fingerprint) return result;
  if (get_u32(bytes.data() + 16) != shard_count) return result;
  if (get_u32(bytes.data() + 20) !=
      util::crc32c(bytes.data(), kHeaderBytes - 4)) {
    return result;
  }
  result.usable = true;

  std::vector<bool> seen(shard_count, false);
  std::size_t off = kHeaderBytes;
  while (off + kRecordHeaderBytes <= bytes.size()) {
    const std::uint32_t index = get_u32(bytes.data() + off);
    const std::uint32_t size = get_u32(bytes.data() + off + 4);
    const std::uint32_t crc = get_u32(bytes.data() + off + 8);
    const std::size_t payload_off = off + kRecordHeaderBytes;
    if (payload_off + size > bytes.size()) break;  // torn tail
    if (index >= shard_count || seen[index]) break;
    ShardRecord rec;
    rec.shard_index = index;
    rec.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(payload_off),
                       bytes.begin() +
                           static_cast<std::ptrdiff_t>(payload_off + size));
    if (record_crc(index, rec.payload) != crc) break;  // bit rot / torn
    seen[index] = true;
    result.records.push_back(std::move(rec));
    off = payload_off + size;
  }

  result.dropped_bytes = bytes.size() - off;
  // Count full record frames that were recognisably present but dropped
  // (best effort: a torn tail may hide further frames).
  if (result.dropped_bytes > 0) result.dropped_records = 1;
  return result;
}

}  // namespace hybridcnn::fabric
