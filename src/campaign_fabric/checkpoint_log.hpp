// Durable campaign-progress checkpoints: the crash-recovery substrate.
//
// The coordinator persists every completed shard's serialised partial
// summary in one checkpoint file, rewritten atomically (write-temp,
// fsync, rename — util::atomic_write_file) after each completion. A
// coordinator restarted after SIGKILL loads the file and re-runs only
// the shards that were not durably recorded.
//
// On-disk format (all integers little-endian):
//
//   header   magic  u32  'H','C','F','C'
//            version u32  (kVersion)
//            fingerprint u64  campaign identity (shard.hpp)
//            shard_count u32  shards in the plan
//            crc    u32  CRC32C over the 20 header bytes above
//   record*  shard_index  u32
//            payload_size u32
//            crc          u32  CRC32C over shard_index || payload bytes
//            payload      payload_size bytes (summary codec output)
//
// Reader trust model: nothing in the file is trusted until proven.
// A missing file, or a header whose magic/version/fingerprint/CRC does
// not match, yields `usable == false` — the coordinator starts from
// scratch, which is always bit-identity-safe (it can only cost re-runs,
// never merge wrong results). Records are scanned sequentially; the
// first truncated, CRC-mismatching, out-of-range or duplicate record
// ends the scan and everything from it on is dropped — the torn-tail
// model of a crash mid-write or corruption at rest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hybridcnn::fabric {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// One durable shard result: plan index plus the codec payload.
struct ShardRecord {
  std::uint32_t shard_index = 0;
  std::vector<std::uint8_t> payload;
};

/// Atomically replaces the checkpoint at `path` with the given records.
/// Records are stored in the order given (the coordinator passes
/// shard-index order). Throws on I/O failure; the previous checkpoint
/// survives any failed write.
void save_checkpoint(const std::string& path, std::uint64_t fingerprint,
                     std::uint32_t shard_count,
                     const std::vector<ShardRecord>& records);

/// Result of loading a checkpoint file.
struct CheckpointLoad {
  /// True when the file existed and its header matched (magic, version,
  /// fingerprint, shard count, CRC). False means "no usable checkpoint"
  /// — never an error: the campaign simply starts fresh.
  bool usable = false;
  /// Valid records recovered (unique shard indices < shard_count).
  std::vector<ShardRecord> records;
  /// Records dropped at the first corruption (diagnostics only).
  std::size_t dropped_records = 0;
  /// Bytes discarded from the corrupt/torn tail (diagnostics only).
  std::size_t dropped_bytes = 0;
};

/// Loads and validates the checkpoint at `path` against the expected
/// campaign identity. Never throws on bad content — corruption degrades
/// to fewer recovered records (worst case: none).
[[nodiscard]] CheckpointLoad load_checkpoint(const std::string& path,
                                             std::uint64_t fingerprint,
                                             std::uint32_t shard_count);

}  // namespace hybridcnn::fabric
