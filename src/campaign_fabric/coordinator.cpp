#include "campaign_fabric/coordinator.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace hybridcnn::fabric {
namespace detail {

namespace {

using Clock = std::chrono::steady_clock;

// Clocks here steer only *scheduling* (retry backoff, straggler
// reassignment). They cannot reach the merged summary: every shard is a
// pure function of its descriptor, duplicate completions are dropped by
// shard id, and the merge order is fixed by the plan — so a run under
// any timing produces the same bits.
struct ShardState {
  bool done = false;
  std::vector<std::uint8_t> payload;
  std::size_t attempts_started = 0;
  std::size_t attempts_failed = 0;
  std::size_t running = 0;  ///< attempts currently executing
  Clock::time_point not_before{};  ///< earliest next attempt (backoff)
  Clock::time_point deadline{};    ///< reassignment point when in flight
  std::string last_error;
};

struct Scheduler {
  const FabricConfig& config;
  const ShardPlan& plan;

  std::mutex mu;
  std::condition_variable cv;
  std::vector<ShardState> shards;
  FabricStats stats;
  std::size_t durable = 0;  ///< resumed + completed (halt counter)
  bool halted = false;

  explicit Scheduler(const FabricConfig& cfg, const ShardPlan& p)
      : config(cfg), plan(p), shards(p.shards.size()) {}

  [[nodiscard]] bool settled(const ShardState& s) const {
    return s.done ||
           (s.attempts_started >= config.max_attempts && s.running == 0);
  }

  [[nodiscard]] bool all_settled() const {
    return std::all_of(shards.begin(), shards.end(),
                       [this](const ShardState& s) { return settled(s); });
  }

  /// Persist every completed shard, in shard-index order. Called with
  /// `mu` held — the lock serialises checkpoint writers, and the atomic
  /// rename means a crash at any point leaves the previous file intact.
  void persist_locked() {
    if (config.checkpoint_path.empty()) return;
    std::vector<ShardRecord> records;
    records.reserve(durable);
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (!shards[i].done) continue;
      ShardRecord r;
      r.shard_index = static_cast<std::uint32_t>(i);
      r.payload = shards[i].payload;
      records.push_back(std::move(r));
    }
    save_checkpoint(config.checkpoint_path, plan.campaign_fingerprint,
                    static_cast<std::uint32_t>(plan.shards.size()), records);
  }

  /// One worker thread: claim the lowest-index runnable shard, execute
  /// it outside the lock, record the outcome, repeat.
  void worker_loop() {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      if (halted || all_settled()) return;

      const Clock::time_point now = Clock::now();
      std::size_t claim = shards.size();
      bool claim_is_reassignment = false;
      bool have_wake = false;
      Clock::time_point wake{};
      for (std::size_t i = 0; i < shards.size(); ++i) {
        ShardState& s = shards[i];
        if (s.done || s.attempts_started >= config.max_attempts) continue;
        if (s.running == 0) {
          if (now >= s.not_before) {
            claim = i;
            claim_is_reassignment = false;
            break;
          }
          if (!have_wake || s.not_before < wake) {
            have_wake = true;
            wake = s.not_before;
          }
        } else if (config.shard_timeout.count() > 0) {
          if (now >= s.deadline) {
            claim = i;
            claim_is_reassignment = true;
            break;
          }
          if (!have_wake || s.deadline < wake) {
            have_wake = true;
            wake = s.deadline;
          }
        }
      }

      if (claim == shards.size()) {
        // Nothing runnable yet: sleep until the earliest backoff or
        // reassignment point, or until a completion wakes us.
        if (have_wake) {
          cv.wait_until(lock, wake);
        } else {
          cv.wait(lock);
        }
        continue;
      }

      ShardState& s = shards[claim];
      const std::size_t attempt = ++s.attempts_started;
      ++s.running;
      s.deadline = now + config.shard_timeout;
      ++stats.attempts;
      if (claim_is_reassignment) {
        ++stats.reassignments;
      } else if (s.attempts_failed > 0) {
        ++stats.retries;
      }
      const ShardDescriptor descriptor = plan.shards[claim];

      lock.unlock();
      std::vector<std::uint8_t> payload;
      bool ok = false;
      std::string error;
      try {
        if (config.attempt_hook) config.attempt_hook(descriptor, attempt);
        payload = run_attempt(descriptor);
        ok = true;
      } catch (const std::exception& e) {
        error = e.what();
      } catch (...) {
        error = "unknown exception";
      }
      lock.lock();

      --s.running;
      if (ok) {
        if (s.done) {
          // A reassigned twin finished first; drop this duplicate.
          ++stats.shards_deduped;
        } else if (halted) {
          // Completed after the simulated crash point: never durable.
        } else {
          s.done = true;
          s.payload = std::move(payload);
          ++stats.shards_executed;
          ++durable;
          persist_locked();
          if (durable >= config.halt_after_shards) halted = true;
        }
      } else {
        ++s.attempts_failed;
        ++stats.failures;
        s.last_error = std::move(error);
        // Exponential backoff: base << (failures - 1), measured from
        // the failure, not the claim.
        const auto delay = config.retry_backoff * (1u << std::min<std::size_t>(
                               s.attempts_failed - 1, 20));
        s.not_before = Clock::now() + delay;
      }
      cv.notify_all();
    }
  }

  const ShardRunner* runner = nullptr;

  [[nodiscard]] std::vector<std::uint8_t> run_attempt(
      const ShardDescriptor& descriptor) const {
    return (*runner)(descriptor);
  }
};

}  // namespace

RunOutcome run_shards(
    const FabricConfig& config, const ShardPlan& plan,
    const ShardRunner& runner,
    const std::function<bool(const ShardRecord&)>& payload_valid) {
  if (config.max_attempts == 0) {
    throw std::invalid_argument("fabric: max_attempts must be >= 1");
  }

  Scheduler sched(config, plan);
  sched.runner = &runner;
  sched.stats.shards_total = plan.shards.size();

  // Resume: adopt every durable record that passes the campaign
  // fingerprint (checked by load_checkpoint) and the codec's own
  // validation. Anything invalid is simply re-run.
  if (!config.checkpoint_path.empty()) {
    const CheckpointLoad loaded =
        load_checkpoint(config.checkpoint_path, plan.campaign_fingerprint,
                        static_cast<std::uint32_t>(plan.shards.size()));
    for (const ShardRecord& record : loaded.records) {
      if (!payload_valid(record)) continue;
      ShardState& s = sched.shards[record.shard_index];
      s.done = true;
      s.payload = record.payload;
      ++sched.stats.shards_resumed;
      ++sched.durable;
    }
  }
  if (sched.durable >= config.halt_after_shards) sched.halted = true;

  if (!sched.halted && !sched.all_settled()) {
    const std::size_t workers = std::max<std::size_t>(1, config.workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&sched] { sched.worker_loop(); });
    }
    for (std::thread& t : threads) t.join();
  }

  RunOutcome outcome;
  outcome.stats = sched.stats;
  outcome.stats.halted = sched.halted;

  if (!sched.halted) {
    // Workers only exit un-halted when every shard settled; a settled
    // shard that is not done exhausted its attempts.
    for (std::size_t i = 0; i < sched.shards.size(); ++i) {
      const ShardState& s = sched.shards[i];
      if (s.done) continue;
      throw FabricError(
          static_cast<std::uint32_t>(i),
          "fabric: shard " + std::to_string(i) + " failed after " +
              std::to_string(s.attempts_started) + " attempts: " +
              (s.last_error.empty() ? "no error recorded" : s.last_error));
    }
  }

  outcome.records.reserve(sched.durable);
  bool complete = true;
  for (std::size_t i = 0; i < sched.shards.size(); ++i) {
    ShardState& s = sched.shards[i];
    if (!s.done) {
      complete = false;
      continue;
    }
    ShardRecord r;
    r.shard_index = static_cast<std::uint32_t>(i);
    r.payload = std::move(s.payload);
    outcome.records.push_back(std::move(r));
  }
  outcome.complete = complete;
  return outcome;
}

}  // namespace detail
}  // namespace hybridcnn::fabric
