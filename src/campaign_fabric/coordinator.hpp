// The campaign-fabric coordinator: shard dispatch, retry, durability.
//
// `run_fabric<Summary>` partitions a campaign into ShardDescriptors,
// dispatches them to N in-process workers, and merges the partial
// summaries in shard-index order — bit-identical to a single-machine,
// single-thread run of the same campaign (see shard.hpp for why the
// seed contract makes that possible, and README.md for the full
// crash-recovery matrix). Robustness machinery:
//
//   * durable checkpoints — with a checkpoint_path, every completed
//     shard is persisted via atomic write-fsync-rename before it counts;
//     a coordinator restarted after SIGKILL resumes from the last
//     durable shard and re-runs only the rest.
//   * bounded retry with exponential backoff — a shard whose attempt
//     throws is retried up to max_attempts times, waiting
//     retry_backoff << (failures - 1) between attempts.
//   * straggler reassignment — with a nonzero shard_timeout, a shard
//     still in flight past its deadline is handed to another worker;
//     the first completion wins and later duplicates are discarded by
//     shard id, so reassignment can never double-count.
//
// Scheduling is time-driven and therefore nondeterministic; the merged
// summary is not, because every shard computes a pure function of its
// descriptor and the merge order is fixed by the plan.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign_fabric/checkpoint_log.hpp"
#include "campaign_fabric/shard.hpp"
#include "campaign_fabric/summary_codec.hpp"

namespace hybridcnn::fabric {

/// Coordinator knobs. Defaults give a durable-less, single-worker,
/// retry-3 fabric; every knob is independent.
struct FabricConfig {
  /// Runs per shard (the last shard takes the remainder).
  std::uint64_t shard_size = 1024;
  /// In-process worker threads executing shards.
  std::size_t workers = 1;
  /// Total attempts allowed per shard (first try + retries).
  std::size_t max_attempts = 3;
  /// In-flight time after which a shard may be reassigned to another
  /// worker. Zero disables reassignment (attempts run to completion).
  std::chrono::milliseconds shard_timeout{0};
  /// Base retry delay; doubles with every failed attempt of that shard.
  std::chrono::milliseconds retry_backoff{10};
  /// Durable checkpoint file. Empty disables durability (pure in-memory
  /// run). The file's parent directory must exist.
  std::string checkpoint_path;
  /// Crash simulation: stop dispatching once this many shards are
  /// durable (resumed + newly completed) and discard any later
  /// completions — exactly what a kill at that shard boundary leaves
  /// on disk. Default: never halt.
  std::size_t halt_after_shards = std::numeric_limits<std::size_t>::max();
  /// Test hook, called before each shard attempt (1-based attempt
  /// number). Throwing simulates a worker crash mid-shard; sleeping
  /// simulates a straggler. Must be thread-safe.
  std::function<void(const ShardDescriptor&, std::size_t attempt)> attempt_hook;
};

/// Observability counters for one coordinator run.
struct FabricStats {
  std::size_t shards_total = 0;     ///< shards in the plan
  std::size_t shards_resumed = 0;   ///< recovered from the checkpoint
  std::size_t shards_executed = 0;  ///< completed by a worker this run
  std::size_t shards_deduped = 0;   ///< duplicate completions discarded
  std::size_t attempts = 0;         ///< shard attempts started
  std::size_t retries = 0;          ///< attempts after a failure
  std::size_t reassignments = 0;    ///< attempts after a timeout
  std::size_t failures = 0;         ///< attempts that threw
  bool halted = false;              ///< stopped by halt_after_shards
};

/// A shard exhausted max_attempts; carries the lowest failing index.
class FabricError : public std::runtime_error {
 public:
  FabricError(std::uint32_t shard_index, const std::string& message)
      : std::runtime_error(message), shard_index_(shard_index) {}
  [[nodiscard]] std::uint32_t shard_index() const noexcept {
    return shard_index_;
  }

 private:
  std::uint32_t shard_index_;
};

template <typename Summary>
struct FabricResult {
  Summary summary{};   ///< merge of completed shards, shard-index order
  FabricStats stats;
  bool complete = false;  ///< all shards merged (false after a halt)
};

namespace detail {

/// Type-erased shard execution: descriptor in, codec payload out.
using ShardRunner =
    std::function<std::vector<std::uint8_t>(const ShardDescriptor&)>;

struct RunOutcome {
  std::vector<ShardRecord> records;  ///< completed shards, index order
  FabricStats stats;
  bool complete = false;
};

/// The scheduling core (coordinator.cpp): resume, dispatch, retry,
/// reassign, persist. `payload_valid` vets resumed checkpoint payloads
/// (records failing it are re-run, not merged). Throws FabricError when
/// a shard permanently fails; a halt returns normally with
/// `complete == false`.
RunOutcome run_shards(const FabricConfig& config, const ShardPlan& plan,
                      const ShardRunner& runner,
                      const std::function<bool(const ShardRecord&)>& payload_valid);

}  // namespace detail

/// Runs a sharded campaign of `total_runs` runs under `config` and
/// merges the per-shard summaries in shard-index order. `shard_runner`
/// must be a pure function of the descriptor (thread-safe, no hidden
/// state) — typically a thin wrapper over classify_campaign_range or
/// MemoryFaultCampaign::run_range (see campaigns.hpp).
template <typename Summary>
FabricResult<Summary> run_fabric(
    const FabricConfig& config, std::uint64_t total_runs,
    std::uint64_t seed_base,
    const std::function<Summary(const ShardDescriptor&)>& shard_runner) {
  using Codec = SummaryCodec<Summary>;
  const std::uint64_t fingerprint = campaign_fingerprint(
      Codec::kTag, total_runs, config.shard_size, seed_base);
  const ShardPlan plan =
      make_shard_plan(total_runs, config.shard_size, seed_base, fingerprint);

  const detail::ShardRunner byte_runner =
      [&shard_runner](const ShardDescriptor& shard) {
        std::vector<std::uint8_t> bytes;
        Codec::encode(shard_runner(shard), bytes);
        return bytes;
      };
  const auto payload_valid = [](const ShardRecord& record) {
    Summary scratch;
    return Codec::decode(record.payload.data(), record.payload.size(),
                         scratch);
  };

  detail::RunOutcome outcome =
      detail::run_shards(config, plan, byte_runner, payload_valid);

  FabricResult<Summary> result;
  result.stats = outcome.stats;
  result.complete = outcome.complete;
  for (const ShardRecord& record : outcome.records) {
    Summary part;
    if (!Codec::decode(record.payload.data(), record.payload.size(), part)) {
      throw FabricError(record.shard_index,
                        "fabric: shard produced an undecodable payload");
    }
    Codec::merge(result.summary, part);
  }
  return result;
}

}  // namespace hybridcnn::fabric
