#include "campaign_fabric/shard.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/crc32c.hpp"
#include "util/rng.hpp"

namespace hybridcnn::fabric {

ShardPlan make_shard_plan(std::uint64_t total_runs, std::uint64_t shard_size,
                          std::uint64_t seed_base,
                          std::uint64_t fingerprint) {
  if (shard_size == 0) {
    throw std::invalid_argument("make_shard_plan: shard_size must be >= 1");
  }
  ShardPlan plan;
  plan.total_runs = total_runs;
  plan.shard_size = shard_size;
  plan.seed_base = seed_base;
  plan.campaign_fingerprint = fingerprint;
  const std::uint64_t count = (total_runs + shard_size - 1) / shard_size;
  plan.shards.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    ShardDescriptor d;
    d.campaign_fingerprint = fingerprint;
    d.shard_index = static_cast<std::uint32_t>(k);
    d.run_begin = k * shard_size;
    d.run_end = std::min((k + 1) * shard_size, total_runs);
    d.seed_base = seed_base;
    plan.shards.push_back(d);
  }
  return plan;
}

std::uint64_t campaign_fingerprint(std::string_view tag,
                                   std::uint64_t total_runs,
                                   std::uint64_t shard_size,
                                   std::uint64_t seed_base) {
  // CRC of the tag folded into a splitmix64 chain over the numeric
  // identity. Not cryptographic — it guards against operator error
  // (wrong file / changed config), not an adversary.
  std::uint64_t state = util::crc32c(tag.data(), tag.size());
  std::uint64_t h = util::splitmix64(state);
  state ^= total_runs;
  h ^= util::splitmix64(state);
  state ^= shard_size * 0x9E3779B97F4A7C15ULL;
  h ^= util::splitmix64(state);
  state ^= seed_base + 0x2545F4914F6CDD1DULL;
  h ^= util::splitmix64(state);
  return h;
}

}  // namespace hybridcnn::fabric
