// Shard descriptors: the unit of work the campaign fabric dispatches.
//
// A campaign of N runs with seed base B is partitioned into fixed-size
// shards; shard k covers the global run range [k*S, min((k+1)*S, N)).
// Because the per-run seed contract is `B + i` over GLOBAL run indices
// (core::FaultSeedStream; classify_campaign_range / run_range take the
// same base), a ShardDescriptor is a pure value: any worker — this
// process, another process, another machine — executes the identical
// runs from the descriptor alone, and the partial summaries merge in
// shard-index order to bits equal to a single-machine, single-thread
// campaign. The campaign fingerprint binds checkpoint files to one
// (workload, N, S, B) tuple so a resume can never merge shards from a
// different campaign.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/contracts.hpp"

namespace hybridcnn::fabric {

/// One shard: a contiguous global run range plus everything needed to
/// execute it anywhere. Plain value, trivially copyable — the future
/// multi-process transport serialises it as bytes.
struct ShardDescriptor {
  std::uint64_t campaign_fingerprint = 0;  ///< binds shard to its campaign
  std::uint32_t shard_index = 0;           ///< position in the plan
  std::uint64_t run_begin = 0;             ///< global run range [begin, end)
  std::uint64_t run_end = 0;
  std::uint64_t seed_base = 0;  ///< global base: run i uses seed_base + i

  [[nodiscard]] std::uint64_t runs() const noexcept {
    return run_end - run_begin;
  }

  friend bool operator==(const ShardDescriptor&,
                         const ShardDescriptor&) noexcept = default;
};

// Descriptors travel by value into worker closures today and over a
// byte transport tomorrow; both assume no hidden state.
HYBRIDCNN_CONTRACT_TRIVIAL_PAYLOAD(ShardDescriptor);

/// The full fixed-size partition of a campaign.
struct ShardPlan {
  std::vector<ShardDescriptor> shards;
  std::uint64_t total_runs = 0;
  std::uint64_t shard_size = 0;
  std::uint64_t seed_base = 0;
  std::uint64_t campaign_fingerprint = 0;
};

/// Partitions [0, total_runs) into ceil(total_runs / shard_size) shards
/// of `shard_size` runs (the last shard takes the remainder). Throws if
/// `shard_size` is zero. A zero-run campaign yields an empty plan.
[[nodiscard]] ShardPlan make_shard_plan(std::uint64_t total_runs,
                                        std::uint64_t shard_size,
                                        std::uint64_t seed_base,
                                        std::uint64_t campaign_fingerprint);

/// Deterministic fingerprint of a campaign identity: workload tag (the
/// summary codec's versioned tag plus any caller salt), run count, shard
/// size and seed base. Two campaigns whose fingerprints differ never
/// exchange checkpoint records.
[[nodiscard]] std::uint64_t campaign_fingerprint(std::string_view tag,
                                                 std::uint64_t total_runs,
                                                 std::uint64_t shard_size,
                                                 std::uint64_t seed_base);

}  // namespace hybridcnn::fabric
