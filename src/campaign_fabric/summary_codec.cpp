#include "campaign_fabric/summary_codec.hpp"

namespace hybridcnn::fabric {

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void SummaryCodec<faultsim::CampaignSummary>::encode(
    const faultsim::CampaignSummary& s, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 5 * 8);
  put_u64(out, s.runs);
  put_u64(out, s.correct);
  put_u64(out, s.corrected);
  put_u64(out, s.detected_abort);
  put_u64(out, s.silent_corruption);
}

bool SummaryCodec<faultsim::CampaignSummary>::decode(
    const std::uint8_t* data, std::size_t size,
    faultsim::CampaignSummary& out) {
  if (size != 5 * 8) return false;
  out.runs = get_u64(data);
  out.correct = get_u64(data + 8);
  out.corrected = get_u64(data + 16);
  out.detected_abort = get_u64(data + 24);
  out.silent_corruption = get_u64(data + 32);
  return true;
}

void SummaryCodec<faultsim::MemoryCampaignSummary>::encode(
    const faultsim::MemoryCampaignSummary& s,
    std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 10 * 8);
  put_u64(out, s.runs);
  put_u64(out, s.intact);
  put_u64(out, s.corrected);
  put_u64(out, s.uncorrectable);
  put_u64(out, s.qualifier_caught);
  put_u64(out, s.silent_corruption);
  put_u64(out, s.bits_flipped);
  put_u64(out, s.ecc_corrected_data);
  put_u64(out, s.ecc_corrected_check);
  put_u64(out, s.ecc_uncorrectable_words);
}

bool SummaryCodec<faultsim::MemoryCampaignSummary>::decode(
    const std::uint8_t* data, std::size_t size,
    faultsim::MemoryCampaignSummary& out) {
  if (size != 10 * 8) return false;
  out.runs = get_u64(data);
  out.intact = get_u64(data + 8);
  out.corrected = get_u64(data + 16);
  out.uncorrectable = get_u64(data + 24);
  out.qualifier_caught = get_u64(data + 32);
  out.silent_corruption = get_u64(data + 40);
  out.bits_flipped = get_u64(data + 48);
  out.ecc_corrected_data = get_u64(data + 56);
  out.ecc_corrected_check = get_u64(data + 64);
  out.ecc_uncorrectable_words = get_u64(data + 72);
  return true;
}

}  // namespace hybridcnn::fabric
