// Versioned byte codecs for the partial summaries shards produce.
//
// Each summary type the fabric can shard carries a SummaryCodec
// specialisation: a versioned workload tag (folded into the campaign
// fingerprint, so two summary types — or two codec versions — can never
// cross-resume from each other's checkpoints), an explicit
// field-by-field little-endian encoding (no struct-layout or endianness
// dependence in durable files), and the shard-merge accumulate step.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "faultsim/campaign.hpp"
#include "faultsim/memory_faults.hpp"

namespace hybridcnn::fabric {

template <typename Summary>
struct SummaryCodec;  // specialise per shardable summary type

template <>
struct SummaryCodec<faultsim::CampaignSummary> {
  static constexpr std::string_view kTag = "classify-campaign-v1";
  static void encode(const faultsim::CampaignSummary& s,
                     std::vector<std::uint8_t>& out);
  /// Returns false (leaving `out` untouched) on size mismatch — the
  /// payload is from a different codec version and must not be merged.
  [[nodiscard]] static bool decode(const std::uint8_t* data,
                                   std::size_t size,
                                   faultsim::CampaignSummary& out);
  static void merge(faultsim::CampaignSummary& into,
                    const faultsim::CampaignSummary& part) {
    into += part;
  }
};

template <>
struct SummaryCodec<faultsim::MemoryCampaignSummary> {
  static constexpr std::string_view kTag = "memory-campaign-v1";
  static void encode(const faultsim::MemoryCampaignSummary& s,
                     std::vector<std::uint8_t>& out);
  [[nodiscard]] static bool decode(const std::uint8_t* data,
                                   std::size_t size,
                                   faultsim::MemoryCampaignSummary& out);
  static void merge(faultsim::MemoryCampaignSummary& into,
                    const faultsim::MemoryCampaignSummary& part) {
    into += part;
  }
};

}  // namespace hybridcnn::fabric
