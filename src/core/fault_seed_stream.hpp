// FaultSeedStream: a value-semantic cursor over the per-run fault-seed
// contract `seed_base + i`.
//
// Every reliable execution draws one seed for its fault-injector stream;
// run i of any batched/looped/campaign shape uses seed `base + i`. The
// stream makes that contract an explicit, copyable value the *caller*
// owns: HybridNetwork::classify* advance the stream they are handed and
// touch no hidden state, so one const network can serve any number of
// concurrent request streams, each deterministic in isolation. Two
// streams constructed from the same base always hand out the same seed
// sequence — replaying a request stream serially is how the serving
// tests prove bit-identity.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/contracts.hpp"

namespace hybridcnn::core {

class FaultSeedStream {
 public:
  /// Stream positioned at `base`: the next classification consumes
  /// `base`, the one after `base + 1`, and so on.
  constexpr explicit FaultSeedStream(std::uint64_t base = 1) noexcept
      : next_(base) {}

  /// The seed the next classification will consume (without consuming).
  [[nodiscard]] constexpr std::uint64_t peek() const noexcept {
    return next_;
  }

  /// Consumes and returns one seed.
  constexpr std::uint64_t take() noexcept { return next_++; }

  /// Consumes a contiguous block of `count` seeds and returns its first
  /// one — run i of the block uses `returned + i`. A zero-sized block
  /// consumes nothing (an empty batch must not advance the stream).
  constexpr std::uint64_t take_block(std::size_t count) noexcept {
    const std::uint64_t base = next_;
    next_ += count;
    return base;
  }

  friend constexpr bool operator==(const FaultSeedStream&,
                                   const FaultSeedStream&) noexcept = default;

 private:
  std::uint64_t next_;
};

// The serving layer copies streams across threads and sessions by value
// and replays them for bit-identity proofs; both assume the cursor is a
// plain 8-byte value with no hidden state.
HYBRIDCNN_CONTRACT_TRIVIAL_PAYLOAD(FaultSeedStream);
HYBRIDCNN_CONTRACT(sizeof(FaultSeedStream) == sizeof(std::uint64_t),
                   "FaultSeedStream must stay a bare cursor: any added "
                   "state would leak hidden nondeterminism into replays");

}  // namespace hybridcnn::core
