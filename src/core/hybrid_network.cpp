#include "core/hybrid_network.hpp"

#include <cmath>
#include <stdexcept>

#include "faultsim/injector.hpp"
#include "nn/conv2d.hpp"
#include "nn/filters.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"

namespace hybridcnn::core {

HybridNetwork::HybridNetwork(std::unique_ptr<nn::Sequential> cnn,
                             std::size_t conv1_index, HybridConfig config)
    : cnn_(std::move(cnn)),
      conv1_index_(conv1_index),
      config_(std::move(config)),
      safety_(config_.critical_classes),
      qualifier_(config_.qualifier),
      next_fault_seed_(config_.fault_seed) {
  if (!cnn_) throw std::invalid_argument("HybridNetwork: null cnn");
  auto& conv1 = cnn_->layer_as<nn::Conv2d>(conv1_index_);
  const bool pair =
      config_.qualifier.source == QualifierSource::kDependableFeatureMapPair;
  if (config_.dependable_filter + (pair ? 1 : 0) >= conv1.out_channels()) {
    throw std::invalid_argument(
        "HybridNetwork: dependable_filter out of range");
  }
  // DCNN pre-initialisation (Section III.B): the dependable filter(s)
  // become Sobel filters and are frozen so training cannot disturb them.
  // Default: the paper's single x/y/x filter. Pair extension: pure x and
  // pure y filters so the qualifier can form a true gradient magnitude.
  if (pair) {
    conv1.set_filter(config_.dependable_filter,
                     nn::sobel_axis_filter(conv1.in_channels(),
                                           conv1.kernel(),
                                           nn::SobelAxis::kX));
    conv1.set_filter(config_.dependable_filter + 1,
                     nn::sobel_axis_filter(conv1.in_channels(),
                                           conv1.kernel(),
                                           nn::SobelAxis::kY));
    conv1.set_filter_frozen(config_.dependable_filter + 1, true);
  } else {
    conv1.set_filter(config_.dependable_filter,
                     nn::sobel_filter(conv1.in_channels(), conv1.kernel()));
  }
  conv1.set_filter_frozen(config_.dependable_filter, true);
}

reliable::ReliableConv2d HybridNetwork::make_reliable_conv1() const {
  const auto& conv1 = const_cast<nn::Sequential&>(*cnn_).layer_as<nn::Conv2d>(
      conv1_index_);
  return {conv1.weights(), conv1.bias(),
          reliable::ConvSpec{conv1.stride(), conv1.pad()}, config_.policy};
}

HybridClassification HybridNetwork::classify(const tensor::Tensor& image) {
  if (image.shape().rank() != 3) {
    throw std::invalid_argument("HybridNetwork::classify: expected CHW");
  }

  HybridClassification result;

  // --- Reliable (DCNN) stage: conv1 through qualified operators. -----
  auto injector = std::make_shared<faultsim::FaultInjector>(
      config_.fault_config, next_fault_seed_++);
  const std::unique_ptr<reliable::Executor> exec =
      reliable::make_executor(config_.scheme, injector);

  const reliable::ReliableConv2d rconv = make_reliable_conv1();
  reliable::ReliableResult rel = rconv.forward(image, *exec);
  result.conv1_report = rel.report;

  // --- Non-reliable remainder of the CNN (bifurcation branch 1). -----
  // On a persistent reliable-execution failure the committed partial maps
  // must not feed the classifier; the CNN branch falls back to a plain
  // re-execution so a (non-safety) prediction is still available, but the
  // decision below reports the fail-stop.
  tensor::Tensor conv1_out =
      rel.report.ok ? rel.output : rconv.reference_forward(image);
  const tensor::Shape map_shape = conv1_out.shape();
  conv1_out.reshape(
      tensor::Shape{1, map_shape[0], map_shape[1], map_shape[2]});
  const tensor::Tensor logits =
      cnn_->forward_from(conv1_index_ + 1, conv1_out);
  if (logits.shape().rank() != 2 || logits.shape()[0] != 1) {
    throw std::logic_error("HybridNetwork: CNN must yield [1, classes]");
  }

  const std::size_t classes = logits.shape()[1];
  std::size_t best = 0;
  for (std::size_t j = 1; j < classes; ++j) {
    if (logits[j] > logits[best]) best = j;
  }
  double denom = 0.0;
  for (std::size_t j = 0; j < classes; ++j) {
    denom += std::exp(static_cast<double>(logits[j]) -
                      static_cast<double>(logits[best]));
  }
  result.predicted_class = static_cast<int>(best);
  result.confidence = 1.0 / denom;

  // --- Qualifier (bifurcation branch 2). ------------------------------
  const std::size_t plane = map_shape[1] * map_shape[2];
  switch (config_.qualifier.source) {
    case QualifierSource::kDependableFeatureMap: {
      // The paper's single mixed-direction dependable map.
      tensor::Tensor fm(tensor::Shape{map_shape[1], map_shape[2]});
      for (std::size_t i = 0; i < plane; ++i) {
        fm[i] = rel.output[config_.dependable_filter * plane + i];
      }
      result.qualifier = qualifier_.qualify_feature_map(fm, rel.report);
      break;
    }
    case QualifierSource::kDependableFeatureMapPair: {
      // Gradient magnitude from the dependable (x, y) filter pair.
      tensor::Tensor fm(tensor::Shape{map_shape[1], map_shape[2]});
      const std::size_t fx = config_.dependable_filter * plane;
      const std::size_t fy = (config_.dependable_filter + 1) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float gx = rel.output[fx + i];
        const float gy = rel.output[fy + i];
        fm[i] = std::sqrt(gx * gx + gy * gy);
      }
      result.qualifier = qualifier_.qualify_feature_map(fm, rel.report);
      break;
    }
    case QualifierSource::kFullResolution:
      result.qualifier = qualifier_.qualify(image, *exec);
      break;
  }

  // --- Reliable Result combination (Figure 1). ------------------------
  const bool reliable_ok = rel.report.ok && result.qualifier.report.ok;
  result.safety_critical = safety_.is_critical(result.predicted_class);
  result.decision = safety_.decide(result.predicted_class,
                                   result.qualifier.qualifies(), reliable_ok);
  return result;
}

HybridNetwork::CostSplit HybridNetwork::cost_split(
    const tensor::Shape& input_shape) const {
  if (input_shape.rank() != 3) {
    throw std::invalid_argument("cost_split: expected CHW input shape");
  }
  CostSplit split;

  const reliable::ReliableConv2d rconv = make_reliable_conv1();
  split.reliable_macs = rconv.mac_count(input_shape);
  if (config_.qualifier.source == QualifierSource::kFullResolution) {
    // Two 3x3 Sobel filters over the luminance plane. The qualifier is
    // extra work the hybrid adds, so it counts into both sides.
    const std::uint64_t qualifier_macs =
        2ull * 9ull * input_shape[1] * input_shape[2];
    split.reliable_macs += qualifier_macs;
    split.total_macs += qualifier_macs;
  }

  // Walk the network propagating shapes to count every layer's MACs.
  std::size_t c = input_shape[0];
  std::size_t h = input_shape[1];
  std::size_t w = input_shape[2];
  std::size_t features = 0;  // once flattened
  for (std::size_t i = 0; i < cnn_->size(); ++i) {
    nn::Layer& l = const_cast<nn::Sequential&>(*cnn_).layer(i);
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&l)) {
      const std::size_t oh = conv->out_size(h);
      const std::size_t ow = conv->out_size(w);
      split.total_macs += static_cast<std::uint64_t>(conv->out_channels()) *
                          oh * ow * conv->in_channels() * conv->kernel() *
                          conv->kernel();
      c = conv->out_channels();
      h = oh;
      w = ow;
    } else if (auto* pool = dynamic_cast<nn::MaxPool*>(&l)) {
      h = pool->out_size(h);
      w = pool->out_size(w);
    } else if (auto* fc = dynamic_cast<nn::Linear*>(&l)) {
      split.total_macs +=
          static_cast<std::uint64_t>(fc->out_features()) * fc->in_features();
      features = fc->out_features();
    } else if (l.name() == "flatten") {
      features = c * h * w;
      (void)features;
    }
    // relu/lrn/softmax/dropout contribute no MACs.
  }
  return split;
}

}  // namespace hybridcnn::core
