#include "core/hybrid_network.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "faultsim/injector.hpp"
#include "faultsim/memory_faults.hpp"
#include "nn/conv2d.hpp"
#include "nn/filters.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "reliable/checkpoint.hpp"
#include "runtime/compute_context.hpp"

namespace hybridcnn::core {

HybridNetwork::HybridNetwork(std::unique_ptr<nn::Sequential> cnn,
                             std::size_t conv1_index, HybridConfig config)
    : cnn_(std::move(cnn)),
      conv1_index_(conv1_index),
      config_(std::move(config)),
      safety_(config_.critical_classes),
      qualifier_(config_.qualifier),
      scheme_id_(reliable::parse_scheme(config_.scheme)) {
  if (!cnn_) throw std::invalid_argument("HybridNetwork: null cnn");
  auto& conv1 = cnn_->layer_as<nn::Conv2d>(conv1_index_);
  const bool pair =
      config_.qualifier.source == QualifierSource::kDependableFeatureMapPair;
  if (config_.dependable_filter + (pair ? 1 : 0) >= conv1.out_channels()) {
    throw std::invalid_argument(
        "HybridNetwork: dependable_filter out of range");
  }
  // DCNN pre-initialisation (Section III.B): the dependable filter(s)
  // become Sobel filters and are frozen so training cannot disturb them.
  // Default: the paper's single x/y/x filter. Pair extension: pure x and
  // pure y filters so the qualifier can form a true gradient magnitude.
  if (pair) {
    conv1.set_filter(config_.dependable_filter,
                     nn::sobel_axis_filter(conv1.in_channels(),
                                           conv1.kernel(),
                                           nn::SobelAxis::kX));
    conv1.set_filter(config_.dependable_filter + 1,
                     nn::sobel_axis_filter(conv1.in_channels(),
                                           conv1.kernel(),
                                           nn::SobelAxis::kY));
    conv1.set_filter_frozen(config_.dependable_filter + 1, true);
  } else {
    conv1.set_filter(config_.dependable_filter,
                     nn::sobel_filter(conv1.in_channels(), conv1.kernel()));
  }
  conv1.set_filter_frozen(config_.dependable_filter, true);
}

reliable::ReliableConv2d HybridNetwork::make_reliable_conv1() const {
  const auto& conv1 = cnn_->layer_as<nn::Conv2d>(conv1_index_);
  return {conv1.weights(), conv1.bias(),
          reliable::ConvSpec{conv1.stride(), conv1.pad()}, config_.policy};
}

HybridNetwork::DependableStage HybridNetwork::dependable_stage(
    const reliable::ReliableConv2d& rconv, const tensor::Tensor& image,
    std::uint64_t fault_seed, reliable::ReportMode mode) const {
  DependableStage stage;

  // --- Reliable (DCNN) stage: conv1 through qualified operators. -----
  auto injector = std::make_shared<faultsim::FaultInjector>(
      config_.fault_config, fault_seed);
  const std::unique_ptr<reliable::Executor> exec =
      reliable::make_executor(scheme_id_, injector);

  reliable::ReliableResult rel = rconv.forward(image, *exec, mode);
  stage.report = rel.report;
  stage.reliable_ok = rel.report.ok;

  // --- Qualifier (bifurcation branch 2). ------------------------------
  // Runs before the CNN remainder (which never touches the executor, so
  // the injector stream position is identical to the single-image path)
  // and draws its vision/SAX scratch from the calling slot's arena.
  const tensor::Shape map_shape = rel.output.shape();
  const std::size_t plane = map_shape[1] * map_shape[2];
  runtime::Workspace& ws = runtime::ComputeContext::global().workspace();
  switch (config_.qualifier.source) {
    case QualifierSource::kDependableFeatureMap: {
      // The paper's single mixed-direction dependable map.
      runtime::Workspace::Scope scope(ws);
      const std::span<float> fm = ws.alloc_span_as<float>(plane);
      for (std::size_t i = 0; i < plane; ++i) {
        fm[i] = rel.output[config_.dependable_filter * plane + i];
      }
      stage.qualifier = qualifier_.qualify_feature_map(
          fm, map_shape[1], map_shape[2], rel.report, ws);
      break;
    }
    case QualifierSource::kDependableFeatureMapPair: {
      // Gradient magnitude from the dependable (x, y) filter pair.
      runtime::Workspace::Scope scope(ws);
      const std::span<float> fm = ws.alloc_span_as<float>(plane);
      const std::size_t fx = config_.dependable_filter * plane;
      const std::size_t fy = (config_.dependable_filter + 1) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float gx = rel.output[fx + i];
        const float gy = rel.output[fy + i];
        fm[i] = std::sqrt(gx * gx + gy * gy);
      }
      stage.qualifier = qualifier_.qualify_feature_map(
          fm, map_shape[1], map_shape[2], rel.report, ws);
      break;
    }
    case QualifierSource::kFullResolution:
      stage.qualifier = qualifier_.qualify(image, *exec, ws);
      break;
  }

  // --- CNN input (bifurcation branch 1). ------------------------------
  // On a persistent reliable-execution failure the committed partial maps
  // must not feed the classifier; the CNN branch falls back to a plain
  // re-execution so a (non-safety) prediction is still available, while
  // the decision reports the fail-stop.
  stage.conv1_out =
      rel.report.ok ? std::move(rel.output) : rconv.reference_forward(image);
  return stage;
}

HybridClassification HybridNetwork::run_remainder(
    DependableStage&& stage, runtime::Workspace& ws) const {
  // --- Non-reliable remainder of the CNN (bifurcation branch 1). -----
  // Const re-entrant inference over the shared model: no layer state is
  // touched, so any number of images may be in this stage concurrently.
  tensor::Tensor conv1_out = std::move(stage.conv1_out);
  const tensor::Shape map_shape = conv1_out.shape();
  conv1_out.reshape(
      tensor::Shape{1, map_shape[0], map_shape[1], map_shape[2]});
  const tensor::Tensor logits =
      cnn_->infer_from(conv1_index_ + 1, conv1_out, ws);
  return finalize_classification(std::move(stage), logits);
}

HybridClassification HybridNetwork::finalize_classification(
    DependableStage&& stage, const tensor::Tensor& logits) const {
  HybridClassification result;
  result.conv1_report = std::move(stage.report);
  result.qualifier = std::move(stage.qualifier);

  if (logits.shape().rank() != 2 || logits.shape()[0] != 1) {
    throw std::logic_error("HybridNetwork: CNN must yield [1, classes]");
  }

  const std::size_t classes = logits.shape()[1];
  std::size_t best = 0;
  for (std::size_t j = 1; j < classes; ++j) {
    if (logits[j] > logits[best]) best = j;
  }
  double denom = 0.0;
  for (std::size_t j = 0; j < classes; ++j) {
    denom += std::exp(static_cast<double>(logits[j]) -
                      static_cast<double>(logits[best]));
  }
  result.predicted_class = static_cast<int>(best);
  result.confidence = 1.0 / denom;

  // --- Reliable Result combination (Figure 1). ------------------------
  const bool reliable_ok =
      stage.reliable_ok && result.qualifier.report.ok;
  result.safety_critical = safety_.is_critical(result.predicted_class);
  result.decision = safety_.decide(result.predicted_class,
                                   result.qualifier.qualifies(), reliable_ok);
  return result;
}

HybridClassification HybridNetwork::classify(const tensor::Tensor& image,
                                             FaultSeedStream& seeds) const {
  if (image.shape().rank() != 3) {
    throw std::invalid_argument("HybridNetwork::classify: expected CHW");
  }
  const reliable::ReliableConv2d rconv = make_reliable_conv1();
  return run_remainder(dependable_stage(rconv, image, seeds.take()),
                       runtime::ComputeContext::global().workspace());
}

HybridClassification HybridNetwork::classify_with_conv1(
    const reliable::ReliableConv2d& rconv, const tensor::Tensor& image,
    std::uint64_t fault_seed, BatchOptions options) const {
  if (image.shape().rank() != 3) {
    throw std::invalid_argument(
        "HybridNetwork::classify_with_conv1: expected CHW");
  }
  auto& ctx = runtime::ComputeContext::global();
  return run_remainder(
      dependable_stage(rconv, image, fault_seed, options.report),
      ctx.workspace());
}

HybridNetwork::IntermittentResult HybridNetwork::classify_intermittent(
    const tensor::Tensor& image, FaultSeedStream& seeds,
    const faultsim::PowerTrace& trace, BatchOptions options,
    CheckpointMemoryModel memory) const {
  if (image.shape().rank() != 3) {
    throw std::invalid_argument(
        "HybridNetwork::classify_intermittent: expected CHW");
  }
  const std::uint64_t seed = seeds.take();
  const reliable::ReliableConv2d rconv = make_reliable_conv1();
  runtime::Workspace& ws = runtime::ComputeContext::global().workspace();

  // Step 0: the dependable stage (reliable conv1 + qualifier), committed
  // as one unit — its injector stream restarts from `seed` on every
  // re-execution, so a cut during step 0 replays the identical reliable
  // execution. Steps 1..R: one CNN remainder layer each, a pure const
  // inference of the committed activation.
  const std::size_t total_steps = cnn_->size() - conv1_index_;
  faultsim::PowerSchedule power(trace);
  reliable::ProgressCheckpoint checkpoint(memory.ecc);
  // Checkpoint-slot upset stream: decorrelated from both the compute
  // injector (0xFA17) and the memory-campaign stream (0x5E0), and a pure
  // function of the run seed — re-running the same trace re-injects the
  // same upsets.
  util::Rng checkpoint_rng(seed, 0xC4EC);
  // Committed non-tensor products of step 0 (report, qualifier verdict);
  // committed alongside the checkpointed activation.
  DependableStage committed_stage;

  // The reboot path: the in-flight step's work is lost, upsets strike
  // the committed slot while the system was down, and — with ECC on — a
  // scrub corrects them before execution resumes from the checkpoint.
  const auto reboot = [&](IntermittentResult& r) {
    const std::size_t resume = checkpoint.rollback();
    if (memory.flips_per_cycle > 0 && checkpoint.commits() > 0) {
      r.checkpoint_bits_flipped +=
          faultsim::inject_exact_flips(checkpoint.mutable_state(),
                                       memory.flips_per_cycle,
                                       checkpoint_rng)
              .bits_flipped;
    }
    if (memory.ecc) {
      const faultsim::ScrubReport sr = checkpoint.scrub();
      r.checkpoint_corrected += sr.corrected();
      r.checkpoint_uncorrectable += sr.uncorrectable;
    }
    return resume;
  };

  IntermittentResult result;
  std::size_t next = 0;
  while (next < total_steps) {
    ++result.steps_executed;
    if (next == 0) {
      DependableStage stage =
          dependable_stage(rconv, image, seed, options.report);
      if (!power.step()) {  // power failed mid-step: work lost
        next = reboot(result);
        continue;
      }
      tensor::Tensor act = std::move(stage.conv1_out);
      const tensor::Shape map_shape = act.shape();
      act.reshape(
          tensor::Shape{1, map_shape[0], map_shape[1], map_shape[2]});
      committed_stage = std::move(stage);
      checkpoint.commit(1, std::move(act));
    } else {
      tensor::Tensor act =
          cnn_->layer(conv1_index_ + next).infer(checkpoint.state(), ws);
      if (!power.step()) {
        next = reboot(result);
        continue;
      }
      checkpoint.commit(next + 1, std::move(act));
    }
    next = checkpoint.step();
  }

  result.power_cycles = power.cycles();
  result.steps_committed = checkpoint.commits();
  result.classification =
      finalize_classification(std::move(committed_stage), checkpoint.state());
  return result;
}

namespace {

/// Rejects non-CHW images up front — before any seed is consumed, so a
/// refused batch leaves the caller's stream untouched. Every public
/// batched entry point validates here; classify_indexed trusts them.
void validate_chw(std::size_t count, const tensor::Tensor* const* images,
                  const char* entry_point) {
  for (std::size_t i = 0; i < count; ++i) {
    if (images[i]->shape().rank() != 3) {
      throw std::invalid_argument(std::string("HybridNetwork::") +
                                  entry_point + ": expected CHW images");
    }
  }
}

}  // namespace

std::vector<HybridClassification> HybridNetwork::classify_indexed(
    std::size_t count, const tensor::Tensor* const* images,
    std::uint64_t seed_base, const std::uint64_t* seeds,
    BatchOptions options) const {
  if (count == 0) return {};

  // One reliable kernel (weight copy) for the whole batch; the fault-free
  // fast path's weight pack is built once here rather than under the
  // pack mutex inside the first concurrent forward.
  const reliable::ReliableConv2d rconv = make_reliable_conv1();
  rconv.prepare_fast_path();
  const auto seed_of = [&](std::size_t i) {
    return seeds != nullptr ? seeds[i] : seed_base + i;
  };

  auto& ctx = runtime::ComputeContext::global();
  std::vector<HybridClassification> results(count);
  if (options.remainder == RemainderMode::kFanned) {
    // The whole per-image pipeline — reliable DCNN, qualifier and CNN
    // remainder — is a pure function of (weights, image, seed) now that
    // the remainder runs through the const inference path. One parallel
    // region covers everything; each chunk writes only its own result
    // slot, so outputs are bit-identical at every thread count. Nested
    // parallel regions inside the reliable/vision/GEMM code serialise
    // inline.
    ctx.pool().parallel_for(0, count, [&](std::size_t i) {
      results[i] = run_remainder(
          dependable_stage(rconv, *images[i], seed_of(i), options.report),
          ctx.workspace());
    });
  } else {
    // Historical two-phase shape (kept for the benches): dependable
    // stages in parallel, remainder serially per image — the remainder's
    // GEMMs then parallelise over tiles instead of images.
    std::vector<DependableStage> stages(count);
    ctx.pool().parallel_for(0, count, [&](std::size_t i) {
      stages[i] =
          dependable_stage(rconv, *images[i], seed_of(i), options.report);
    });
    for (std::size_t i = 0; i < count; ++i) {
      results[i] = run_remainder(std::move(stages[i]), ctx.workspace());
    }
  }
  return results;
}

std::vector<HybridClassification> HybridNetwork::classify_batch(
    const std::vector<tensor::Tensor>& images, FaultSeedStream& seeds,
    BatchOptions options) const {
  std::vector<const tensor::Tensor*> ptrs;
  ptrs.reserve(images.size());
  for (const tensor::Tensor& img : images) ptrs.push_back(&img);
  // Validate before drawing seeds: a refused batch must not advance the
  // caller's stream. The accepted block is then exactly what a
  // classify() loop would consume — image i gets seeds.peek() + i — and
  // an empty batch consumes nothing.
  validate_chw(ptrs.size(), ptrs.data(), "classify_batch");
  const std::uint64_t seed_base = seeds.take_block(ptrs.size());
  return classify_indexed(ptrs.size(), ptrs.data(), seed_base, nullptr,
                          options);
}

std::vector<HybridClassification> HybridNetwork::classify_repeat(
    const tensor::Tensor& image, std::size_t runs, FaultSeedStream& seeds,
    BatchOptions options) const {
  const tensor::Tensor* one = &image;
  validate_chw(1, &one, "classify_repeat");
  std::vector<const tensor::Tensor*> ptrs(runs, &image);
  const std::uint64_t seed_base = seeds.take_block(runs);
  return classify_indexed(ptrs.size(), ptrs.data(), seed_base, nullptr,
                          options);
}

faultsim::CampaignSummary HybridNetwork::classify_campaign(
    const tensor::Tensor& image, std::size_t runs,
    const std::function<faultsim::Outcome(
        std::size_t, const HybridClassification&)>& judge,
    FaultSeedStream& seeds, BatchOptions options) const {
  if (image.shape().rank() != 3) {
    throw std::invalid_argument(
        "HybridNetwork::classify_campaign: expected CHW");
  }
  const std::uint64_t seed_base = seeds.take_block(runs);
  return classify_campaign_range(image, 0, runs, seed_base, judge, options);
}

faultsim::CampaignSummary HybridNetwork::classify_campaign_range(
    const tensor::Tensor& image, std::size_t run_begin, std::size_t run_end,
    std::uint64_t seed_base,
    const std::function<faultsim::Outcome(
        std::size_t, const HybridClassification&)>& judge,
    BatchOptions options) const {
  if (image.shape().rank() != 3) {
    throw std::invalid_argument(
        "HybridNetwork::classify_campaign_range: expected CHW");
  }
  if (run_end < run_begin) {
    throw std::invalid_argument(
        "HybridNetwork::classify_campaign_range: run_end < run_begin");
  }
  const std::size_t count = run_end - run_begin;
  const std::vector<const tensor::Tensor*> ptrs(count, &image);
  const std::vector<HybridClassification> results = classify_indexed(
      count, ptrs.data(), seed_base + run_begin, nullptr, options);
  faultsim::CampaignSummary summary;
  for (std::size_t i = 0; i < count; ++i) {
    summary.add(judge(run_begin + i, results[i]));
  }
  return summary;
}

std::vector<HybridClassification> HybridNetwork::classify_seeded(
    std::size_t count, const tensor::Tensor* const* images,
    const std::uint64_t* seeds, BatchOptions options) const {
  if (count != 0 && (images == nullptr || seeds == nullptr)) {
    throw std::invalid_argument(
        "HybridNetwork::classify_seeded: null images/seeds");
  }
  validate_chw(count, images, "classify_seeded");
  return classify_indexed(count, images, /*seed_base=*/0, seeds, options);
}

HybridNetwork::CostSplit HybridNetwork::cost_split(
    const tensor::Shape& input_shape) const {
  if (input_shape.rank() != 3) {
    throw std::invalid_argument("cost_split: expected CHW input shape");
  }
  CostSplit split;

  const reliable::ReliableConv2d rconv = make_reliable_conv1();
  split.reliable_macs = rconv.mac_count(input_shape);
  if (config_.qualifier.source == QualifierSource::kFullResolution) {
    // Two 3x3 Sobel filters over the luminance plane. The qualifier is
    // extra work the hybrid adds, so it counts into both sides.
    const std::uint64_t qualifier_macs =
        2ull * 9ull * input_shape[1] * input_shape[2];
    split.reliable_macs += qualifier_macs;
    split.total_macs += qualifier_macs;
  }

  // Walk the network propagating shapes to count every layer's MACs.
  std::size_t c = input_shape[0];
  std::size_t h = input_shape[1];
  std::size_t w = input_shape[2];
  std::size_t features = 0;  // once flattened
  for (std::size_t i = 0; i < cnn_->size(); ++i) {
    const nn::Layer& l = cnn_->layer(i);
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&l)) {
      const std::size_t oh = conv->out_size(h);
      const std::size_t ow = conv->out_size(w);
      split.total_macs += static_cast<std::uint64_t>(conv->out_channels()) *
                          oh * ow * conv->in_channels() * conv->kernel() *
                          conv->kernel();
      c = conv->out_channels();
      h = oh;
      w = ow;
    } else if (const auto* pool = dynamic_cast<const nn::MaxPool*>(&l)) {
      h = pool->out_size(h);
      w = pool->out_size(w);
    } else if (const auto* fc = dynamic_cast<const nn::Linear*>(&l)) {
      split.total_macs +=
          static_cast<std::uint64_t>(fc->out_features()) * fc->in_features();
      features = fc->out_features();
    } else if (l.name() == "flatten") {
      features = c * h * w;
      (void)features;
    }
    // relu/lrn/softmax/dropout contribute no MACs.
  }
  return split;
}

}  // namespace hybridcnn::core
