// HybridNetwork: the paper's primary contribution (Figure 2).
//
// A CNN whose first convolution layer — the DCNN — is executed reliably
// (Algorithm 3 with DMR/TMR operators); its output *bifurcates*, feeding
// (a) the remaining, non-reliably executed CNN layers and (b) a
// deterministic shape qualifier. The qualifier's verdict gates the CNN's
// safety-critical classifications: a "Stop" is only reported reliable when
// the dependable octagon evidence confirms it. Non-critical classes pass
// through unqualified, which is where the design conserves "both footprint
// and computational power" compared to duplicating the whole network.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/fault_seed_stream.hpp"
#include "core/policy.hpp"
#include "core/shape_qualifier.hpp"
#include "faultsim/campaign.hpp"
#include "faultsim/fault_model.hpp"
#include "faultsim/power.hpp"
#include "nn/sequential.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"

namespace hybridcnn::core {

/// Configuration of the hybrid execution envelope.
struct HybridConfig {
  /// Executor scheme for all reliable execution ("simplex", "dmr", "tmr").
  std::string scheme = "dmr";
  /// Reliability policy (leaky bucket, retry cap) for reliable kernels.
  reliable::ReliabilityPolicy policy{};
  /// Qualifier parameters.
  ShapeQualifierConfig qualifier{};
  /// Safety-critical labels (default: label 0 = stop).
  std::set<int> critical_classes{0};
  /// Index of the conv1 filter that is Sobel pre-initialised and whose
  /// feature map is the bifurcated dependable output.
  std::size_t dependable_filter = 0;
  /// Fault environment the reliable kernels execute under.
  faultsim::FaultConfig fault_config{};
  /// Seed for the fault injector streams.
  std::uint64_t fault_seed = 1;
};

/// Outcome of one hybrid classification: the paper's "Reliable Result".
struct HybridClassification {
  int predicted_class = -1;
  double confidence = 0.0;       ///< softmax probability of the prediction
  bool safety_critical = false;  ///< prediction is in the critical set
  Decision decision = Decision::kNonCriticalPass;
  QualifierVerdict qualifier;              ///< dependable-path evidence
  reliable::ExecutionReport conv1_report;  ///< DCNN execution evidence

  /// True when the classification may be acted upon for safety purposes.
  [[nodiscard]] bool reliable_positive() const noexcept {
    return decision == Decision::kQualifiedReliable;
  }
};

/// How classify_batch executes the non-reliable CNN remainder.
enum class RemainderMode {
  /// Whole per-image pipeline (reliable DCNN + qualifier + CNN remainder)
  /// fans across the pool as one re-entrant const inference per image.
  kFanned,
  /// Historical two-phase shape: dependable stages in parallel, CNN
  /// remainder serially per image afterwards. Kept for the throughput
  /// benches; results are identical to kFanned.
  kSerial,
};

/// Execution knobs for the batched classify entry points. A struct so
/// future knobs extend it without churning every signature again.
struct BatchOptions {
  RemainderMode remainder = RemainderMode::kFanned;
  /// Report detail of the reliable conv1 kernel. kStatsOnly skips per-op
  /// ExecutionReport assembly — campaign sweeps that only consume the
  /// CampaignSummary (outcome counts) pay no report cost; predicted
  /// class, decision, qualifier verdict and conv1_report.ok are
  /// unaffected, while the conv1_report counters stay at their defaults.
  reliable::ReportMode report = reliable::ReportMode::kFull;
};

/// Memory model of the intermittent checkpoint slot
/// (HybridNetwork::classify_intermittent). The committed activation sits
/// in non-volatile memory across power cycles, so it accumulates upsets
/// exactly while the system is down: at each power failure
/// `flips_per_cycle` distinct bits of the committed state are flipped
/// (deterministically derived from the run seed on a dedicated Rng
/// stream). With `ecc` on the slot is SEC-DED protected
/// (reliable::ProgressCheckpoint's protected mode) and a scrub pass runs
/// on every reboot before the resumed step reads the state — a single
/// upset per cycle is always corrected and the classification stays
/// bit-identical to classify().
struct CheckpointMemoryModel {
  std::uint64_t flips_per_cycle = 0;  ///< exact SEUs per power failure
  bool ecc = false;  ///< SEC-DED protect the slot + scrub on reboot
};

/// The hybrid (reliable/non-reliable) network.
class HybridNetwork {
 public:
  /// Takes ownership of `cnn`. `conv1_index` must name a Conv2d layer;
  /// the layers [conv1_index + 1, ...) form the non-reliable remainder.
  /// The dependable filter of conv1 is Sobel pre-initialised and frozen.
  HybridNetwork(std::unique_ptr<nn::Sequential> cnn, std::size_t conv1_index,
                HybridConfig config = {});

  // ------------------------------------------------- const classify API
  //
  // The network is logically immutable after construction: every entry
  // point below is const and re-entrant, and the per-run fault-seed
  // contract lives in the caller-owned FaultSeedStream instead of hidden
  // network state. Any number of OS threads may classify through one
  // shared const network concurrently, each advancing its own stream —
  // the serving front-end (serve::InferenceService) is built on exactly
  // this property. seed_stream() hands out a stream positioned at the
  // configured base for callers that want the historical behaviour.

  /// Classifies one [3, H, W] image through the hybrid dataflow,
  /// consuming one seed from `seeds`.
  [[nodiscard]] HybridClassification classify(const tensor::Tensor& image,
                                              FaultSeedStream& seeds) const;

  /// Batched classification: the reliable conv1 kernel is built once for
  /// the whole batch and the complete per-image pipeline — reliable DCNN,
  /// qualifier AND the non-reliable CNN remainder, which is a const
  /// re-entrant inference since the layer-cache refactor — fans out
  /// across the global runtime::ThreadPool, each image drawing scratch
  /// from the executing slot's Workspace arena. Image i consumes seed
  /// `seeds.peek() + i` — exactly the stream a loop of classify() calls
  /// would consume — so the returned results are bit-identical to looped
  /// single-image classify at every thread count. An empty batch does
  /// not advance the stream.
  [[nodiscard]] std::vector<HybridClassification> classify_batch(
      const std::vector<tensor::Tensor>& images, FaultSeedStream& seeds,
      BatchOptions options = {}) const;

  /// Campaign form of classify_batch: `runs` classifications of the same
  /// image with consecutive seeds from `seeds`, without copying the
  /// image.
  [[nodiscard]] std::vector<HybridClassification> classify_repeat(
      const tensor::Tensor& image, std::size_t runs, FaultSeedStream& seeds,
      BatchOptions options = {}) const;

  /// Fault-injection campaign over the full hybrid classify path:
  /// classify_repeat(image, runs, seeds), then `judge(run, result)` maps
  /// each classification to a dependability outcome, reduced in run
  /// order. Construction (network, reliable kernel, qualifier templates)
  /// is amortised across the whole campaign.
  [[nodiscard]] faultsim::CampaignSummary classify_campaign(
      const tensor::Tensor& image, std::size_t runs,
      const std::function<faultsim::Outcome(
          std::size_t, const HybridClassification&)>& judge,
      FaultSeedStream& seeds, BatchOptions options = {}) const;

  /// Shard/resume form of classify_campaign over an explicit run range:
  /// run i in [run_begin, run_end) classifies with fault seed
  /// `seed_base + i` and is judged as `judge(i, result)` — the very
  /// seeds and judge indices the monolithic campaign gives those runs,
  /// so summing the partial summaries of any disjoint cover of
  /// [0, runs) equals the classify_campaign summary exactly. This is
  /// the campaign-fabric shard entry point; it consumes no stream (the
  /// caller's coordinator owns the seed base) and is const/re-entrant,
  /// so shards may execute concurrently from worker threads. `judge`
  /// must be thread-safe under that concurrency.
  [[nodiscard]] faultsim::CampaignSummary classify_campaign_range(
      const tensor::Tensor& image, std::size_t run_begin,
      std::size_t run_end, std::uint64_t seed_base,
      const std::function<faultsim::Outcome(
          std::size_t, const HybridClassification&)>& judge,
      BatchOptions options = {}) const;

  /// Explicit-seed batch: image i uses seeds[i], with no consecutiveness
  /// requirement. This is the serving entry point — a dispatcher
  /// coalescing requests from several sessions hands each image the seed
  /// its session stream assigned at submit time, so per-session results
  /// are independent of how requests were batched. `seeds` must have
  /// `count` entries.
  [[nodiscard]] std::vector<HybridClassification> classify_seeded(
      std::size_t count, const tensor::Tensor* const* images,
      const std::uint64_t* seeds, BatchOptions options = {}) const;

  /// Classifies with an externally supplied reliable conv1 kernel in
  /// place of the network's own — the memory-fault campaign entry point:
  /// `rconv` carries corrupted (or ECC-scrubbed) parameters whose
  /// geometry must match conv1's. The qualifier, CNN remainder and
  /// decision combination are exactly the classify() dataflow, and the
  /// call is const/re-entrant, so campaign workers may call it
  /// concurrently with per-run kernels.
  [[nodiscard]] HybridClassification classify_with_conv1(
      const reliable::ReliableConv2d& rconv, const tensor::Tensor& image,
      std::uint64_t fault_seed, BatchOptions options = {}) const;

  /// Outcome of one intermittent (checkpointed) classification.
  struct IntermittentResult {
    HybridClassification classification;
    std::size_t power_cycles = 0;     ///< power failures survived
    std::size_t steps_committed = 0;  ///< checkpointed steps (progress)
    std::size_t steps_executed = 0;   ///< attempts, incl. work lost to cuts
    // Checkpoint-slot memory accounting (CheckpointMemoryModel):
    std::uint64_t checkpoint_bits_flipped = 0;   ///< upsets injected
    std::uint64_t checkpoint_corrected = 0;      ///< scrub-corrected bits
    std::uint64_t checkpoint_uncorrectable = 0;  ///< double-error words
  };

  /// Intermittent-execution mode (Stateful-CNN style): the classification
  /// runs as a sequence of checkpointed steps — step 0 is the dependable
  /// stage (reliable conv1 + qualifier), each following step one CNN
  /// remainder layer — committing (step, activation) progress after each
  /// step. `trace` injects power failures: a step interrupted mid-flight
  /// loses its work and re-executes from the committed checkpoint after
  /// the reboot. Every step is a pure function of (weights, committed
  /// state, seed), so the final classification is bit-identical to
  /// classify() with the same seed for EVERY trace, and execution always
  /// terminates once the trace is exhausted (power stable thereafter).
  /// Consumes one seed from `seeds`, exactly like classify(). `memory`
  /// optionally corrupts the committed checkpoint at each power failure
  /// and/or ECC-protects the slot (see CheckpointMemoryModel).
  [[nodiscard]] IntermittentResult classify_intermittent(
      const tensor::Tensor& image, FaultSeedStream& seeds,
      const faultsim::PowerTrace& trace, BatchOptions options = {},
      CheckpointMemoryModel memory = {}) const;

  /// A fresh stream positioned at the configured `fault_seed` base — the
  /// stream a newly constructed network's wrappers would consume.
  [[nodiscard]] FaultSeedStream seed_stream() const noexcept {
    return FaultSeedStream(config_.fault_seed);
  }

  /// Index of the reliably executed conv1 layer inside cnn().
  [[nodiscard]] std::size_t conv1_index() const noexcept {
    return conv1_index_;
  }

  /// The wrapped CNN (e.g. for training or filter surgery).
  [[nodiscard]] nn::Sequential& cnn() noexcept { return *cnn_; }
  [[nodiscard]] const nn::Sequential& cnn() const noexcept { return *cnn_; }

  [[nodiscard]] const HybridConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const SafetyPolicy& policy() const noexcept {
    return safety_;
  }

  /// Logical multiply-accumulate count of the reliable (DCNN) portion vs
  /// the whole network for one inference — the footprint argument of the
  /// paper's conclusion. Computed for input [3, H, W].
  struct CostSplit {
    std::uint64_t reliable_macs = 0;
    std::uint64_t total_macs = 0;
  };
  [[nodiscard]] CostSplit cost_split(const tensor::Shape& input_shape) const;

 private:
  /// Product of the dependable phase: everything one classification
  /// needs before the non-reliable CNN remainder runs.
  struct DependableStage {
    tensor::Tensor conv1_out;  ///< committed reliable output or fallback
    reliable::ExecutionReport report;
    QualifierVerdict qualifier;
    bool reliable_ok = false;
  };

  [[nodiscard]] reliable::ReliableConv2d make_reliable_conv1() const;

  /// Reliable DCNN + qualifier for one image with an explicit fault
  /// seed. Pure function of (weights, image, seed) — safe to run from
  /// pool workers; scratch comes from the calling slot's arena.
  [[nodiscard]] DependableStage dependable_stage(
      const reliable::ReliableConv2d& rconv, const tensor::Tensor& image,
      std::uint64_t fault_seed,
      reliable::ReportMode mode = reliable::ReportMode::kFull) const;

  /// Non-reliable CNN remainder (const re-entrant inference over the
  /// shared model, calling-thread scratch from `ws`) + decision
  /// combination. Safe to run concurrently from pool workers.
  [[nodiscard]] HybridClassification run_remainder(
      DependableStage&& stage, runtime::Workspace& ws) const;

  /// Decision combination only: argmax/softmax over `logits`
  /// [1, classes] + the Figure-1 Reliable Result rule over the
  /// dependable evidence. Shared by run_remainder and the intermittent
  /// layer-stepping path.
  [[nodiscard]] HybridClassification finalize_classification(
      DependableStage&& stage, const tensor::Tensor& logits) const;

  /// Shared core of the batched entry points over an index->image mapping
  /// (avoids copying a repeated campaign image `runs` times). Image i
  /// uses `seeds ? seeds[i] : seed_base + i`.
  [[nodiscard]] std::vector<HybridClassification> classify_indexed(
      std::size_t count, const tensor::Tensor* const* images,
      std::uint64_t seed_base, const std::uint64_t* seeds,
      BatchOptions options) const;

  std::unique_ptr<nn::Sequential> cnn_;
  std::size_t conv1_index_;
  HybridConfig config_;
  SafetyPolicy safety_;
  ShapeQualifier qualifier_;
  /// config_.scheme resolved once at construction (validating the name
  /// early), so per-image executor construction dispatches on the enum
  /// instead of re-parsing the scheme string on every classification.
  reliable::Scheme scheme_id_;
};

}  // namespace hybridcnn::core
