#include "core/hybrid_spec.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hybridcnn::core {

namespace {

std::string fault_kind_name(faultsim::FaultKind kind) {
  switch (kind) {
    case faultsim::FaultKind::kNone:
      return "none";
    case faultsim::FaultKind::kTransient:
      return "transient";
    case faultsim::FaultKind::kIntermittent:
      return "intermittent";
    case faultsim::FaultKind::kPermanent:
      return "permanent";
  }
  return "none";
}

faultsim::FaultKind parse_fault_kind(const std::string& name) {
  if (name == "none") return faultsim::FaultKind::kNone;
  if (name == "transient") return faultsim::FaultKind::kTransient;
  if (name == "intermittent") return faultsim::FaultKind::kIntermittent;
  if (name == "permanent") return faultsim::FaultKind::kPermanent;
  throw std::invalid_argument("hybrid spec: unknown fault kind '" + name +
                              "'");
}

std::string source_name(QualifierSource source) {
  switch (source) {
    case QualifierSource::kFullResolution:
      return "full_resolution";
    case QualifierSource::kDependableFeatureMap:
      return "dependable_feature_map";
    case QualifierSource::kDependableFeatureMapPair:
      return "dependable_feature_map_pair";
  }
  return "full_resolution";
}

QualifierSource parse_source(const std::string& name) {
  if (name == "full_resolution") return QualifierSource::kFullResolution;
  if (name == "dependable_feature_map") {
    return QualifierSource::kDependableFeatureMap;
  }
  if (name == "dependable_feature_map_pair") {
    return QualifierSource::kDependableFeatureMapPair;
  }
  throw std::invalid_argument("hybrid spec: unknown qualifier source '" +
                              name + "'");
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

std::string to_spec(const HybridConfig& config) {
  std::ostringstream os;
  os << "# hybridcnn partition spec v1\n";
  os << "scheme = " << config.scheme << '\n';
  os << "bucket_factor = " << config.policy.bucket_factor << '\n';
  os << "bucket_ceiling = " << config.policy.bucket_ceiling << '\n';
  os << "max_retries_per_op = " << config.policy.max_retries_per_op << '\n';
  os << "critical_classes =";
  for (const int c : config.critical_classes) os << ' ' << c;
  os << '\n';
  os << "dependable_filter = " << config.dependable_filter << '\n';
  os << "qualifier_sides = " << config.qualifier.sides << '\n';
  os << "qualifier_samples = " << config.qualifier.samples << '\n';
  os << "qualifier_word_length = " << config.qualifier.match.sax.word_length
     << '\n';
  os << "qualifier_alphabet = " << config.qualifier.match.sax.alphabet
     << '\n';
  os << "qualifier_mindist_threshold = "
     << config.qualifier.match.mindist_threshold << '\n';
  os << "qualifier_corner_tolerance = "
     << config.qualifier.match.corner_tolerance << '\n';
  os << "qualifier_source = " << source_name(config.qualifier.source)
     << '\n';
  os << "fault_kind = " << fault_kind_name(config.fault_config.kind) << '\n';
  os << "fault_probability = " << config.fault_config.probability << '\n';
  os << "fault_bit = " << config.fault_config.bit << '\n';
  os << "fault_num_pes = " << config.fault_config.num_pes << '\n';
  os << "fault_burst_continue = " << config.fault_config.burst_continue
     << '\n';
  os << "fault_seed = " << config.fault_seed << '\n';
  return os.str();
}

HybridConfig parse_spec(const std::string& text) {
  HybridConfig config;
  // The qualifier's bucket policy mirrors the kernel policy unless a
  // future spec version separates them.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("hybrid spec: malformed line '" + line +
                                  "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    std::istringstream vs(value);

    const auto parse_u32 = [&](std::uint32_t& out) {
      if (!(vs >> out)) {
        throw std::invalid_argument("hybrid spec: bad value for " + key);
      }
    };
    const auto parse_sz = [&](std::size_t& out) {
      if (!(vs >> out)) {
        throw std::invalid_argument("hybrid spec: bad value for " + key);
      }
    };
    const auto parse_d = [&](double& out) {
      if (!(vs >> out)) {
        throw std::invalid_argument("hybrid spec: bad value for " + key);
      }
    };

    if (key == "scheme") {
      if (value != "simplex" && value != "dmr" && value != "tmr") {
        throw std::invalid_argument("hybrid spec: unknown scheme '" + value +
                                    "'");
      }
      config.scheme = value;
    } else if (key == "bucket_factor") {
      parse_u32(config.policy.bucket_factor);
    } else if (key == "bucket_ceiling") {
      parse_u32(config.policy.bucket_ceiling);
    } else if (key == "max_retries_per_op") {
      parse_u32(config.policy.max_retries_per_op);
    } else if (key == "critical_classes") {
      config.critical_classes.clear();
      int c = 0;
      while (vs >> c) config.critical_classes.insert(c);
    } else if (key == "dependable_filter") {
      parse_sz(config.dependable_filter);
    } else if (key == "qualifier_sides") {
      parse_sz(config.qualifier.sides);
    } else if (key == "qualifier_samples") {
      parse_sz(config.qualifier.samples);
    } else if (key == "qualifier_word_length") {
      parse_sz(config.qualifier.match.sax.word_length);
    } else if (key == "qualifier_alphabet") {
      parse_sz(config.qualifier.match.sax.alphabet);
    } else if (key == "qualifier_mindist_threshold") {
      parse_d(config.qualifier.match.mindist_threshold);
    } else if (key == "qualifier_corner_tolerance") {
      if (!(vs >> config.qualifier.match.corner_tolerance)) {
        throw std::invalid_argument("hybrid spec: bad value for " + key);
      }
    } else if (key == "qualifier_source") {
      config.qualifier.source = parse_source(value);
    } else if (key == "fault_kind") {
      config.fault_config.kind = parse_fault_kind(value);
    } else if (key == "fault_probability") {
      parse_d(config.fault_config.probability);
    } else if (key == "fault_bit") {
      if (!(vs >> config.fault_config.bit)) {
        throw std::invalid_argument("hybrid spec: bad value for " + key);
      }
    } else if (key == "fault_num_pes") {
      if (!(vs >> config.fault_config.num_pes)) {
        throw std::invalid_argument("hybrid spec: bad value for " + key);
      }
    } else if (key == "fault_burst_continue") {
      parse_d(config.fault_config.burst_continue);
    } else if (key == "fault_seed") {
      if (!(vs >> config.fault_seed)) {
        throw std::invalid_argument("hybrid spec: bad value for " + key);
      }
    } else {
      throw std::invalid_argument("hybrid spec: unknown key '" + key + "'");
    }
  }
  // Keep the qualifier's reliability policy in lockstep with the kernel's.
  config.qualifier.policy = config.policy;
  return config;
}

void save_spec(const HybridConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_spec: cannot open " + path);
  out << to_spec(config);
  if (!out) throw std::runtime_error("save_spec: write failed for " + path);
}

HybridConfig load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_spec: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str());
}

}  // namespace hybridcnn::core
