// Platform-agnostic textual description of a hybrid CNN partition.
//
// The paper's future work calls for "extensions to the ONNX standard to
// facilitate the platform-agnostic description of hybrid-CNNs". This
// module provides that capability at the library's scale: the complete
// hybrid execution envelope — redundancy scheme, leaky-bucket policy,
// safety-critical classes, dependable filter, qualifier parameters and
// fault environment — round-trips through a line-oriented `key = value`
// document that any runtime (or a future ONNX extension) can consume.
#pragma once

#include <string>

#include "core/hybrid_network.hpp"

namespace hybridcnn::core {

/// Serialises a hybrid configuration. Deterministic key order, one
/// `key = value` pair per line, '#' comments allowed on read.
std::string to_spec(const HybridConfig& config);

/// Parses a spec document produced by to_spec() (or written by hand).
/// Unknown keys throw std::invalid_argument (a spec is a safety artefact:
/// silently ignoring a typo like "buckte_factor" would weaken the very
/// policy it encodes). Missing keys keep their defaults.
HybridConfig parse_spec(const std::string& text);

/// Convenience: writes the spec to a file / reads it back.
/// Throws std::runtime_error on IO failure.
void save_spec(const HybridConfig& config, const std::string& path);
HybridConfig load_spec(const std::string& path);

}  // namespace hybridcnn::core
