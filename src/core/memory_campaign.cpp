#include "core/memory_campaign.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "faultsim/ecc.hpp"
#include "nn/conv2d.hpp"
#include "util/rng.hpp"

namespace hybridcnn::core {

namespace {

/// Rng stream for memory-fault sites — distinct from the compute-fault
/// injector stream (0xFA17) so the two fault sources are decorrelated
/// even though both derive from the same per-run seed.
constexpr std::uint64_t kMemoryStream = 0x5E0;

/// One exposure epoch of the configured model against `t`.
faultsim::MemoryFaultReport apply_model(tensor::Tensor& t,
                                        const faultsim::MemoryFaultModel& m,
                                        util::Rng& rng) {
  if (m.exact_flips > 0) {
    return faultsim::inject_exact_flips(t, m.exact_flips, rng);
  }
  return faultsim::inject_bit_errors(t, m.bit_error_rate, rng);
}

bool targets_weights(faultsim::MemoryTarget t) noexcept {
  return t == faultsim::MemoryTarget::kWeights ||
         t == faultsim::MemoryTarget::kWeightsAndInput;
}

bool targets_input(faultsim::MemoryTarget t) noexcept {
  return t == faultsim::MemoryTarget::kInput ||
         t == faultsim::MemoryTarget::kWeightsAndInput;
}

/// Per-run record, reduced in run-index order after the parallel fill.
struct RunRecord {
  faultsim::MemoryOutcome outcome = faultsim::MemoryOutcome::kIntact;
  std::uint64_t bits_flipped = 0;
  std::uint64_t ecc_corrected_data = 0;
  std::uint64_t ecc_corrected_check = 0;
  std::uint64_t ecc_uncorrectable_words = 0;
};

/// The hybrid evidence chain flagged the run at runtime: the decision
/// demoted or fail-stopped the prediction, or the dependable qualifier
/// asserts the critical shape while the classifier disagrees — an
/// inconsistency a supervisor observes without any golden reference.
bool evidence_flags(const HybridClassification& r) noexcept {
  return r.decision == Decision::kDemotedUnqualified ||
         r.decision == Decision::kReliableExecutionFailed ||
         (r.qualifier.qualifies() && !r.safety_critical);
}

bool same_result(const HybridClassification& a,
                 const HybridClassification& b) noexcept {
  return a.predicted_class == b.predicted_class && a.decision == b.decision;
}

}  // namespace

MemoryFaultCampaign::MemoryFaultCampaign(const HybridNetwork& net,
                                         MemoryCampaignConfig config)
    : net_(&net), config_(std::move(config)) {
  if (config_.scrub_interval == 0) {
    throw std::invalid_argument(
        "MemoryFaultCampaign: scrub_interval must be >= 1");
  }
  const auto& conv1 = net.cnn().layer_as<nn::Conv2d>(net.conv1_index());
  weights_ = conv1.weights();
  bias_ = conv1.bias();
  spec_ = reliable::ConvSpec{conv1.stride(), conv1.pad()};
}

faultsim::MemoryCampaignSummary MemoryFaultCampaign::run(
    const tensor::Tensor& image, std::size_t runs, FaultSeedStream& seeds,
    runtime::ComputeContext& ctx) const {
  const std::uint64_t seed_base = seeds.take_block(runs);
  return run_range(image, 0, runs, seed_base, ctx);
}

faultsim::MemoryCampaignSummary MemoryFaultCampaign::run_range(
    const tensor::Tensor& image, std::size_t run_begin, std::size_t run_end,
    std::uint64_t seed_base, runtime::ComputeContext& ctx) const {
  if (image.shape().rank() != 3) {
    throw std::invalid_argument(
        "MemoryFaultCampaign::run_range: expected CHW");
  }
  if (run_end < run_begin) {
    throw std::invalid_argument(
        "MemoryFaultCampaign::run_range: run_end < run_begin");
  }
  const std::size_t count = run_end - run_begin;
  const reliable::ReliabilityPolicy& policy = net_->config().policy;
  const BatchOptions opts{RemainderMode::kFanned, config_.report};

  // Golden reference. With no compute faults armed the fault-free hybrid
  // path is seed-independent, so one golden serves every run (any seed
  // produces the same bits — shards computing it with their own base
  // still agree); with compute faults armed each run needs the same-seed
  // pristine-weights classification so the comparison isolates the
  // memory effect.
  const bool compute_faults_armed =
      net_->config().fault_config.kind != faultsim::FaultKind::kNone;
  const reliable::ReliableConv2d pristine_rconv(weights_, bias_, spec_,
                                                policy);
  HybridClassification shared_golden;
  if (!compute_faults_armed) {
    shared_golden =
        net_->classify_with_conv1(pristine_rconv, image, seed_base, opts);
  }

  std::vector<RunRecord> records(count);
  ctx.pool().parallel_for(0, count, [&](std::size_t idx) {
    RunRecord& rec = records[idx];
    // Global run index: seeds AND the scrub cadence key on it, so a
    // shard reproduces exactly the runs the monolithic campaign would
    // execute at these indices.
    const std::size_t i = run_begin + idx;
    const std::uint64_t seed = seed_base + i;
    util::Rng rng(seed, kMemoryStream);
    // Scrub cadence: run i has accumulated this many exposure epochs of
    // upsets since its memory was last scrubbed — a pure function of the
    // run index, so runs stay location-independent.
    const std::size_t epochs = (i % config_.scrub_interval) + 1;

    // ---- Corrupt the stored weights (optionally behind SEC-DED). ----
    tensor::Tensor weights = weights_;
    bool ecc_uncorrectable = false;
    if (targets_weights(config_.model.target)) {
      if (config_.ecc) {
        faultsim::ProtectedTensor prot(std::move(weights));
        for (std::size_t e = 0; e < epochs; ++e) {
          rec.bits_flipped +=
              apply_model(prot.data(), config_.model, rng).bits_flipped;
        }
        const faultsim::ScrubReport sr = prot.scrub();
        rec.ecc_corrected_data = sr.corrected_data;
        rec.ecc_corrected_check = sr.corrected_check;
        rec.ecc_uncorrectable_words = sr.uncorrectable;
        ecc_uncorrectable = sr.uncorrectable != 0;
        weights = prot.data();
      } else {
        for (std::size_t e = 0; e < epochs; ++e) {
          rec.bits_flipped +=
              apply_model(weights, config_.model, rng).bits_flipped;
        }
      }
    }

    // ---- Corrupt the input buffer (never ECC-protected). ----
    const tensor::Tensor* input = &image;
    tensor::Tensor corrupted_input;
    if (targets_input(config_.model.target)) {
      corrupted_input = image;
      for (std::size_t e = 0; e < epochs; ++e) {
        rec.bits_flipped +=
            apply_model(corrupted_input, config_.model, rng).bits_flipped;
      }
      input = &corrupted_input;
    }

    // An uncorrectable ECC word is data loss the platform must fail-stop
    // on; the inference does not run.
    if (ecc_uncorrectable) {
      rec.outcome = faultsim::MemoryOutcome::kUncorrectable;
      return;
    }

    const reliable::ReliableConv2d rconv(std::move(weights), bias_, spec_,
                                         policy);
    const HybridClassification result =
        net_->classify_with_conv1(rconv, *input, seed, opts);
    const HybridClassification golden =
        compute_faults_armed
            ? net_->classify_with_conv1(pristine_rconv, image, seed, opts)
            : shared_golden;

    if (same_result(result, golden)) {
      const bool ecc_repaired =
          rec.ecc_corrected_data + rec.ecc_corrected_check != 0;
      rec.outcome = (rec.bits_flipped != 0 && ecc_repaired)
                        ? faultsim::MemoryOutcome::kCorrected
                        : faultsim::MemoryOutcome::kIntact;
    } else if (evidence_flags(result)) {
      rec.outcome = faultsim::MemoryOutcome::kQualifierCaught;
    } else {
      rec.outcome = faultsim::MemoryOutcome::kSilentCorruption;
    }
  });

  faultsim::MemoryCampaignSummary summary;
  for (const RunRecord& rec : records) {
    summary.add(rec.outcome);
    summary.bits_flipped += rec.bits_flipped;
    summary.ecc_corrected_data += rec.ecc_corrected_data;
    summary.ecc_corrected_check += rec.ecc_corrected_check;
    summary.ecc_uncorrectable_words += rec.ecc_uncorrectable_words;
  }
  return summary;
}

}  // namespace hybridcnn::core
