// Memory-fault campaign over the hybrid classify path.
//
// The paper's failure model names "data corruption of the weights and
// input data" alongside compute-unit upsets (Section II). This surface
// evaluates that axis end to end: each run corrupts the stored conv1
// parameters and/or the input image under a MemoryFaultModel, optionally
// routes the weights through SEC-DED protected storage with a scrub
// cadence, classifies through the unmodified hybrid dataflow
// (HybridNetwork::classify_with_conv1) and buckets the observable outcome
// — intact / ECC-corrected / ECC-uncorrectable (fail-stop) / caught by
// the hybrid evidence chain / silent corruption.
//
// Determinism contract: run i derives ALL stochastic state (memory-fault
// Rng, compute-fault injector seed) from `seeds.peek() + i` alone, runs
// fan across the thread pool, and outcomes reduce in run-index order —
// so the returned summary is bit-identical at every thread count
// (tests/test_memory_campaign.cpp locks 1/2/8 threads).
#pragma once

#include <cstddef>

#include "core/fault_seed_stream.hpp"
#include "core/hybrid_network.hpp"
#include "faultsim/memory_faults.hpp"
#include "runtime/compute_context.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::core {

/// Configuration of one memory-fault campaign.
struct MemoryCampaignConfig {
  /// What to corrupt, and how much, per exposure epoch.
  faultsim::MemoryFaultModel model{};

  /// Route the conv1 parameters through SEC-DED protected storage: upsets
  /// land in the protected words and a scrub pass runs before the weights
  /// are used. ECC covers the stored model only — input corruption (a
  /// sensor-side effect) is never ECC-protected.
  bool ecc = false;

  /// Scrub cadence in runs: run i accumulates `(i % scrub_interval) + 1`
  /// exposure epochs of injection since its last scrub, so a larger
  /// interval models rarer scrubbing (more accumulated upsets per check)
  /// while keeping every run a pure function of its index. Must be >= 1.
  std::size_t scrub_interval = 1;

  /// Report detail of the reliable conv1 kernel (kStatsOnly skips per-op
  /// report assembly; outcomes are unaffected).
  reliable::ReportMode report = reliable::ReportMode::kStatsOnly;
};

/// Runs memory-fault campaigns against one HybridNetwork. Construction
/// snapshots the pristine conv1 parameters once; each run builds its own
/// corrupted kernel from the snapshot, so the network itself is never
/// mutated and campaigns may share it with concurrent classify traffic.
class MemoryFaultCampaign {
 public:
  /// `net` must outlive the campaign. Throws if `config.scrub_interval`
  /// is zero.
  MemoryFaultCampaign(const HybridNetwork& net, MemoryCampaignConfig config);

  /// Executes `runs` independent corrupted classifications of `image`
  /// across the pool, consuming `runs` seeds from `seeds` (run i uses
  /// `seeds.peek() + i`, the classify_repeat contract). The golden
  /// reference is the same-seed classification with pristine weights —
  /// computed once when the network's compute-fault environment is
  /// kNone (the fault-free path is seed-independent), per run otherwise,
  /// so the summary isolates the memory-fault effect either way.
  [[nodiscard]] faultsim::MemoryCampaignSummary run(
      const tensor::Tensor& image, std::size_t runs, FaultSeedStream& seeds,
      runtime::ComputeContext& ctx =
          runtime::ComputeContext::global()) const;

  /// Shard/resume form of run() over an explicit GLOBAL run range: run i
  /// in [run_begin, run_end) derives its stochastic state from
  /// `seed_base + i` and its scrub-cadence exposure from the global
  /// index i — `(i % scrub_interval) + 1` epochs — exactly as the
  /// monolithic campaign does, so summing the partial summaries of any
  /// disjoint cover of [0, runs) is bit-identical to run() even when the
  /// shard size is not a multiple of the scrub interval. Campaign-fabric
  /// shard entry point: consumes no stream, const/re-entrant, shards may
  /// execute concurrently from worker threads.
  [[nodiscard]] faultsim::MemoryCampaignSummary run_range(
      const tensor::Tensor& image, std::size_t run_begin,
      std::size_t run_end, std::uint64_t seed_base,
      runtime::ComputeContext& ctx =
          runtime::ComputeContext::global()) const;

  [[nodiscard]] const MemoryCampaignConfig& config() const noexcept {
    return config_;
  }

 private:
  const HybridNetwork* net_;
  MemoryCampaignConfig config_;
  // Pristine conv1 snapshot (weights, bias, geometry) taken at
  // construction; the per-run corruption source.
  tensor::Tensor weights_;
  tensor::Tensor bias_;
  reliable::ConvSpec spec_;
};

}  // namespace hybridcnn::core
