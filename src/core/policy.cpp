#include "core/policy.hpp"

namespace hybridcnn::core {

std::string decision_name(Decision d) {
  switch (d) {
    case Decision::kQualifiedReliable:
      return "qualified_reliable";
    case Decision::kDemotedUnqualified:
      return "demoted_unqualified";
    case Decision::kNonCriticalPass:
      return "non_critical_pass";
    case Decision::kReliableExecutionFailed:
      return "reliable_execution_failed";
  }
  return "unknown";
}

SafetyPolicy::SafetyPolicy(std::set<int> critical_classes)
    : critical_(std::move(critical_classes)) {}

bool SafetyPolicy::is_critical(int label) const {
  return critical_.contains(label);
}

Decision SafetyPolicy::decide(int predicted_label, bool qualifier_match,
                              bool reliable_execution_ok) const {
  if (!is_critical(predicted_label)) return Decision::kNonCriticalPass;
  if (!reliable_execution_ok) return Decision::kReliableExecutionFailed;
  return qualifier_match ? Decision::kQualifiedReliable
                         : Decision::kDemotedUnqualified;
}

}  // namespace hybridcnn::core
