// Safety decision policy: how a qualifier verdict combines with a CNN
// classification into the paper's "Reliable Result".
#pragma once

#include <cstdint>
#include <set>
#include <string>

namespace hybridcnn::core {

/// Final disposition of one hybrid classification.
enum class Decision : std::uint8_t {
  /// Safety-critical class predicted and confirmed by the qualifier:
  /// report as a reliable positive.
  kQualifiedReliable,
  /// Safety-critical class predicted but the qualifier did not confirm:
  /// the classification is demoted (treated as not detected) — the hybrid
  /// design's protection against false positives on critical classes.
  kDemotedUnqualified,
  /// Non-critical class: passed through without qualification, exactly as
  /// the paper allows ("classifications that are not considered safety
  /// critical can be used without any qualification").
  kNonCriticalPass,
  /// The reliable execution itself reported a persistent failure
  /// (leaky-bucket ceiling): fail-stop, no trustworthy answer exists.
  kReliableExecutionFailed,
};

/// Human-readable decision label.
std::string decision_name(Decision d);

/// The set of safety-critical class labels and the combination rule.
class SafetyPolicy {
 public:
  SafetyPolicy() = default;
  explicit SafetyPolicy(std::set<int> critical_classes);

  [[nodiscard]] bool is_critical(int label) const;

  /// Combination rule (pure function of the three observable facts).
  [[nodiscard]] Decision decide(int predicted_label, bool qualifier_match,
                                bool reliable_execution_ok) const;

  [[nodiscard]] const std::set<int>& critical_classes() const noexcept {
    return critical_;
  }

 private:
  std::set<int> critical_;
};

}  // namespace hybridcnn::core
