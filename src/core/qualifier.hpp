// Qualifier block interface (the paper's Figure 1/2 "Qualifier").
//
// A qualifier is a reliably executed, deterministic feature determination
// whose output qualifies a single safety-relevant CNN classification. Its
// verdict carries both the semantic answer (shape matched) and the
// dependability evidence (the reliable-execution report).
#pragma once

#include "reliable/executor.hpp"
#include "reliable/report.hpp"
#include "sax/shape_match.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::core {

/// Verdict of a qualifier block.
struct QualifierVerdict {
  bool match = false;     ///< the dependable feature was confirmed
  bool reliable = false;  ///< the reliable execution completed (no abort)
  sax::ShapeMatchResult shape;       ///< SAX evidence
  reliable::ExecutionReport report;  ///< reliable-execution evidence

  /// A verdict only qualifies a classification when the feature matched
  /// AND the computation that produced it is itself trustworthy.
  [[nodiscard]] bool qualifies() const noexcept { return match && reliable; }
};

/// Interface for qualifier blocks.
class Qualifier {
 public:
  virtual ~Qualifier() = default;

  /// Qualifies the dependable content of `image` ([3|1, H, W], [0,1]),
  /// executing all qualifying computation through `exec`.
  [[nodiscard]] virtual QualifierVerdict qualify(
      const tensor::Tensor& image, reliable::Executor& exec) const = 0;
};

}  // namespace hybridcnn::core
