#include "core/shape_qualifier.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/filters.hpp"
#include "vision/edge_map.hpp"
#include "vision/gray.hpp"
#include "vision/radial.hpp"

namespace hybridcnn::core {

namespace {

/// Builds the 2-filter (Sobel-x, Sobel-y) reliable convolution used for
/// full-resolution dependable edge extraction.
reliable::ReliableConv2d make_sobel_conv(
    const reliable::ReliabilityPolicy& policy) {
  tensor::Tensor weights(tensor::Shape{2, 1, 3, 3});
  const tensor::Tensor kx = nn::sobel_kernel(3, nn::SobelAxis::kX,
                                             /*normalized=*/false);
  const tensor::Tensor ky = nn::sobel_kernel(3, nn::SobelAxis::kY,
                                             /*normalized=*/false);
  for (std::size_t i = 0; i < 9; ++i) {
    weights[i] = kx[i];
    weights[9 + i] = ky[i];
  }
  tensor::Tensor bias(tensor::Shape{2});
  return {std::move(weights), std::move(bias),
          reliable::ConvSpec{/*stride=*/1, /*pad=*/1}, policy};
}

}  // namespace

ShapeQualifier::ShapeQualifier(ShapeQualifierConfig config)
    : config_(config), sobel_conv_(make_sobel_conv(config.policy)) {
  // The matcher precomputes the polygon templates; configurations it
  // rejects (e.g. samples shorter than the SAX word) fall back to the
  // per-call match path, which reproduces the legacy error behaviour.
  try {
    matcher_.emplace(config_.sides, config_.samples, config_.match);
  } catch (const std::invalid_argument&) {
    matcher_.reset();
  }
}

QualifierVerdict ShapeQualifier::qualify(const tensor::Tensor& image,
                                         reliable::Executor& exec) const {
  return qualify(image, exec, runtime::thread_scratch());
}

QualifierVerdict ShapeQualifier::qualify(const tensor::Tensor& image,
                                         reliable::Executor& exec,
                                         runtime::Workspace& ws) const {
  tensor::Tensor gray = vision::to_gray(image);
  gray.reshape(tensor::Shape{1, gray.shape()[0], gray.shape()[1]});

  const reliable::ReliableResult edges = sobel_conv_.forward(gray, exec);

  // Magnitude map from the two dependable responses.
  const std::size_t h = edges.output.shape()[1];
  const std::size_t w = edges.output.shape()[2];
  runtime::Workspace::Scope scope(ws);
  const std::span<float> magnitude = ws.alloc_span_as<float>(h * w);
  for (std::size_t i = 0; i < h * w; ++i) {
    const float gx = edges.output[i];
    const float gy = edges.output[h * w + i];
    magnitude[i] = std::sqrt(gx * gx + gy * gy);
  }
  return qualify_feature_map(magnitude, h, w, edges.report, ws);
}

QualifierVerdict ShapeQualifier::qualify_feature_map(
    const tensor::Tensor& feature_map,
    const reliable::ExecutionReport& report) const {
  const auto& sh = feature_map.shape();
  if (sh.rank() != 2) {
    throw std::invalid_argument("qualify_feature_map: expected [H, W]");
  }
  return qualify_feature_map(feature_map.data(), sh[0], sh[1], report,
                             runtime::thread_scratch());
}

QualifierVerdict ShapeQualifier::qualify_feature_map(
    std::span<const float> feature_map, std::size_t h, std::size_t w,
    const reliable::ExecutionReport& report, runtime::Workspace& ws) const {
  QualifierVerdict verdict;
  verdict.report = report;
  verdict.reliable = report.ok;
  if (!report.ok) {
    // A failed reliable execution can never qualify anything: the paper's
    // design rule that unqualified values must not propagate.
    return verdict;
  }

  runtime::Workspace::Scope scope(ws);
  const vision::MaskView silhouette{h, w, ws.alloc_as<std::uint8_t>(h * w)};
  vision::mask_from_feature_map(feature_map, h, w, silhouette, ws);

  const std::span<double> series =
      ws.alloc_span_as<double>(config_.samples);
  const std::size_t got =
      vision::shape_signature(silhouette, series, ws);
  if (got < config_.match.sax.word_length) {
    return verdict;  // no usable shape found; not a match
  }

  if (matcher_) {
    verdict.shape = matcher_->match(series.first(got), ws);
  } else {
    // matcher_ is only absent when its construction rejected the config.
    // The samples-shorter-than-word case never reaches here (the early
    // return above fires first), so this branch exists purely to rethrow
    // the legacy per-call invalid_argument (sides < 3, word_length == 0,
    // bad alphabet) at use time instead of construction time — it never
    // produces a verdict.
    verdict.shape = sax::match_shape(
        std::vector<double>(series.begin(), series.begin() + got),
        config_.sides, config_.match);
  }
  verdict.match = verdict.shape.match;
  return verdict;
}

}  // namespace hybridcnn::core
