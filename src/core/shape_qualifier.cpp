#include "core/shape_qualifier.hpp"

#include <cmath>

#include "nn/filters.hpp"
#include "vision/edge_map.hpp"
#include "vision/gray.hpp"
#include "vision/radial.hpp"

namespace hybridcnn::core {

ShapeQualifier::ShapeQualifier(ShapeQualifierConfig config)
    : config_(config) {}

namespace {

/// Builds the 2-filter (Sobel-x, Sobel-y) reliable convolution used for
/// full-resolution dependable edge extraction.
reliable::ReliableConv2d make_sobel_conv(
    const reliable::ReliabilityPolicy& policy) {
  tensor::Tensor weights(tensor::Shape{2, 1, 3, 3});
  const tensor::Tensor kx = nn::sobel_kernel(3, nn::SobelAxis::kX,
                                             /*normalized=*/false);
  const tensor::Tensor ky = nn::sobel_kernel(3, nn::SobelAxis::kY,
                                             /*normalized=*/false);
  for (std::size_t i = 0; i < 9; ++i) {
    weights[i] = kx[i];
    weights[9 + i] = ky[i];
  }
  tensor::Tensor bias(tensor::Shape{2});
  return {std::move(weights), std::move(bias),
          reliable::ConvSpec{/*stride=*/1, /*pad=*/1}, policy};
}

}  // namespace

QualifierVerdict ShapeQualifier::qualify(const tensor::Tensor& image,
                                         reliable::Executor& exec) const {
  const tensor::Tensor gray = vision::to_gray(image);
  tensor::Tensor gray_chw = gray;
  gray_chw.reshape(tensor::Shape{1, gray.shape()[0], gray.shape()[1]});

  const reliable::ReliableConv2d sobel = make_sobel_conv(config_.policy);
  const reliable::ReliableResult edges = sobel.forward(gray_chw, exec);

  // Magnitude map from the two dependable responses.
  const std::size_t h = edges.output.shape()[1];
  const std::size_t w = edges.output.shape()[2];
  tensor::Tensor magnitude(tensor::Shape{h, w});
  for (std::size_t i = 0; i < h * w; ++i) {
    const float gx = edges.output[i];
    const float gy = edges.output[h * w + i];
    magnitude[i] = std::sqrt(gx * gx + gy * gy);
  }
  return qualify_feature_map(magnitude, edges.report);
}

QualifierVerdict ShapeQualifier::qualify_feature_map(
    const tensor::Tensor& feature_map,
    const reliable::ExecutionReport& report) const {
  QualifierVerdict verdict;
  verdict.report = report;
  verdict.reliable = report.ok;
  if (!report.ok) {
    // A failed reliable execution can never qualify anything: the paper's
    // design rule that unqualified values must not propagate.
    return verdict;
  }

  const vision::BinaryMask silhouette =
      vision::mask_from_feature_map(feature_map);
  const std::vector<double> series =
      vision::shape_signature(silhouette, config_.samples);
  if (series.size() < config_.match.sax.word_length) {
    return verdict;  // no usable shape found; not a match
  }

  verdict.shape = sax::match_shape(series, config_.sides, config_.match);
  verdict.match = verdict.shape.match;
  return verdict;
}

}  // namespace hybridcnn::core
