// Octagon shape qualifier: reliable Sobel edges -> silhouette -> radial
// signature -> SAX match (the paper's Fig. 2/3 pipeline).
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "core/qualifier.hpp"
#include "reliable/reliable_conv.hpp"
#include "runtime/workspace.hpp"
#include "sax/shape_match.hpp"

namespace hybridcnn::core {

/// Where the qualifier takes its dependable edge information from.
enum class QualifierSource {
  /// Reliable 3x3 Sobel convolution on the full-resolution luminance
  /// image (default; the paper notes 227x227 is "barely acceptable for
  /// deterministic edge recognition", so resolution is precious).
  kFullResolution,
  /// The bifurcated dependable feature map produced by the reliably
  /// executed first CNN layer's single Sobel x/y/x filter — the paper's
  /// naive choice. Collapsing both gradient axes into one map leaves
  /// directional nulls on the shape boundary; the ablation bench shows
  /// this source failing, which is why it is not the default.
  kDependableFeatureMap,
  /// Extension: a PAIR of dependable conv1 filters (pure Sobel-x and
  /// Sobel-y) whose joint magnitude restores a gap-free boundary on the
  /// bifurcated path at a second feature map's cost.
  kDependableFeatureMapPair,
};

/// Parameters of the shape qualifier.
struct ShapeQualifierConfig {
  std::size_t sides = 8;          ///< octagon (stop sign)
  std::size_t samples = 360;      ///< radial scan resolution
  sax::ShapeMatchConfig match{};  ///< SAX word/alphabet/threshold
  reliable::ReliabilityPolicy policy{};
  QualifierSource source = QualifierSource::kFullResolution;
};

/// Deterministic, reliably executed shape qualifier.
///
/// Construction precomputes everything shared across images — the
/// reliable Sobel convolution weights and the SAX ShapeMatcher (distance
/// table + polygon template words) — so the per-image qualify paths only
/// draw transient scratch from a runtime::Workspace arena. The object is
/// immutable after construction; qualify calls are const and safe to run
/// concurrently from campaign/batch workers.
class ShapeQualifier final : public Qualifier {
 public:
  explicit ShapeQualifier(ShapeQualifierConfig config = {});

  /// Full pipeline from an image; the Sobel stage runs through `exec`.
  [[nodiscard]] QualifierVerdict qualify(
      const tensor::Tensor& image, reliable::Executor& exec) const override;

  /// Explicit-scratch overload of qualify(); vision/SAX intermediates
  /// come from `ws` (the reliable Sobel stage still produces owning
  /// tensors — reliable execution evidence outlives the call).
  [[nodiscard]] QualifierVerdict qualify(const tensor::Tensor& image,
                                         reliable::Executor& exec,
                                         runtime::Workspace& ws) const;

  /// Qualifies an already reliably-computed edge feature map [H, W]
  /// (the kDependableFeatureMap bifurcation). `report` is the reliable
  /// conv's execution report and is folded into the verdict.
  [[nodiscard]] QualifierVerdict qualify_feature_map(
      const tensor::Tensor& feature_map,
      const reliable::ExecutionReport& report) const;

  /// Explicit-scratch overload over a flat h x w feature-map plane.
  [[nodiscard]] QualifierVerdict qualify_feature_map(
      std::span<const float> feature_map, std::size_t h, std::size_t w,
      const reliable::ExecutionReport& report, runtime::Workspace& ws) const;

  [[nodiscard]] const ShapeQualifierConfig& config() const noexcept {
    return config_;
  }

 private:
  ShapeQualifierConfig config_;
  /// Absent when the configuration cannot form a SAX word (samples
  /// shorter than the word length) — those series never qualify anyway.
  std::optional<sax::ShapeMatcher> matcher_;
  reliable::ReliableConv2d sobel_conv_;
};

}  // namespace hybridcnn::core
