#include "data/dataset.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/rng.hpp"

namespace hybridcnn::data {

std::vector<Example> make_dataset(std::size_t per_class,
                                  const DatasetConfig& config,
                                  std::uint64_t seed) {
  util::Rng rng(seed, /*stream=*/0xDA7A);
  std::vector<Example> out;
  out.reserve(per_class * kNumClasses);

  constexpr double kDegToRad = 6.283185307179586 / 360.0;
  for (const SignClass cls : all_classes()) {
    for (std::size_t i = 0; i < per_class; ++i) {
      RenderParams p;
      p.cls = cls;
      p.size = config.image_size;
      p.rotation = rng.uniform(-config.max_rotation_deg,
                               config.max_rotation_deg) *
                   kDegToRad;
      p.scale = rng.uniform(config.min_scale, config.max_scale);
      const double max_off =
          config.max_offset_frac * static_cast<double>(config.image_size);
      p.offset_y = rng.uniform(-max_off, max_off);
      p.offset_x = rng.uniform(-max_off, max_off);
      p.brightness = rng.uniform(config.min_brightness, config.max_brightness);
      p.noise_sigma = config.noise_sigma;
      // Drawn as two sequenced statements: both halves in one expression
      // would leave the draw order unspecified, making the rendered noise
      // (and thus the whole dataset) differ between compilers.
      const auto seed_hi = static_cast<std::uint64_t>(rng());
      const auto seed_lo = static_cast<std::uint64_t>(rng());
      p.noise_seed = (seed_hi << 32) | seed_lo;
      out.emplace_back(render_sign(p), static_cast<int>(cls));
    }
  }

  // Fisher-Yates shuffle for class-mixed batches.
  for (std::size_t i = out.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

Batch make_batch(const std::vector<Example>& examples, std::size_t first,
                 std::size_t count) {
  if (count == 0 || first + count > examples.size()) {
    throw std::out_of_range("make_batch: bad range");
  }
  const auto& sh = examples[first].image.shape();
  if (sh.rank() != 3) throw std::invalid_argument("make_batch: expect CHW");

  Batch batch{tensor::Tensor(tensor::Shape{count, sh[0], sh[1], sh[2]}), {}};
  const std::size_t stride = sh.count();
  for (std::size_t i = 0; i < count; ++i) {
    const Example& ex = examples[first + i];
    if (ex.image.shape() != sh) {
      throw std::invalid_argument("make_batch: inhomogeneous image shapes");
    }
    std::memcpy(batch.images.data().data() + i * stride,
                ex.image.data().data(), stride * sizeof(float));
    batch.labels.push_back(ex.label);
  }
  return batch;
}

}  // namespace hybridcnn::data
