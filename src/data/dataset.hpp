// Labelled synthetic sign dataset with GTSRB-style nuisance factors.
#pragma once

#include <cstdint>
#include <vector>

#include "data/renderer.hpp"
#include "data/shapes.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::data {

/// One labelled image.
struct Example {
  tensor::Tensor image;  // [3, size, size] in [0, 1]
  int label = 0;
};

/// Jitter ranges applied per rendered example.
struct DatasetConfig {
  std::size_t image_size = 32;
  double max_rotation_deg = 12.0;
  double min_scale = 0.62;
  double max_scale = 0.92;
  double max_offset_frac = 0.08;   ///< of image size
  double min_brightness = 0.75;
  double max_brightness = 1.20;
  double noise_sigma = 0.03;
};

/// Renders `per_class` examples of every class with jitter drawn from
/// `seed`; output order is class-interleaved then shuffled.
std::vector<Example> make_dataset(std::size_t per_class,
                                  const DatasetConfig& config,
                                  std::uint64_t seed);

/// Stacks examples [first, first+count) into a batch tensor [count, 3, s, s]
/// and collects labels. Throws std::out_of_range on bad ranges.
struct Batch {
  tensor::Tensor images;
  std::vector<int> labels;
};
Batch make_batch(const std::vector<Example>& examples, std::size_t first,
                 std::size_t count);

}  // namespace hybridcnn::data
