#include "data/renderer.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace hybridcnn::data {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

struct Rgb {
  float r, g, b;
};

/// Exact inside test for a regular polygon of `sides` sides with
/// circumradius `radius`, rotated so that one vertex sits at angle
/// `vertex_angle`. Uses the polar edge-distance formula.
bool inside_polygon(double dy, double dx, std::size_t sides, double radius,
                    double vertex_angle) {
  const double r = std::hypot(dy, dx);
  if (r < 1e-12) return true;
  if (sides == 0) return r <= radius;  // circle
  const double sector = kTwoPi / static_cast<double>(sides);
  double theta = std::atan2(dy, dx) - vertex_angle;
  theta = std::fmod(std::fmod(theta, sector) + sector, sector);
  const double half = sector / 2.0;
  const double edge_r = radius * std::cos(half) / std::cos(theta - half);
  return r <= edge_r;
}

/// Canonical vertex angle per class (flat-top octagon, point-down yield,
/// point-up diamond, axis-aligned square).
double vertex_angle_of(SignClass cls) {
  switch (cls) {
    case SignClass::kStop:
      return kTwoPi / 16.0;  // pi/8: flat top and bottom
    case SignClass::kYield:
      return -kTwoPi / 4.0;  // vertex pointing down
    case SignClass::kPriority:
      return kTwoPi / 4.0;  // diamond: vertex up
    case SignClass::kParking:
      return kTwoPi / 8.0;  // square: flat top
    case SignClass::kSpeedLimit:
      return 0.0;
  }
  return 0.0;
}

struct ClassStyle {
  Rgb border;
  Rgb fill;
};

ClassStyle style_of(SignClass cls) {
  switch (cls) {
    case SignClass::kStop:
      return {{0.95f, 0.95f, 0.95f}, {0.72f, 0.08f, 0.12f}};
    case SignClass::kSpeedLimit:
      return {{0.78f, 0.10f, 0.12f}, {0.92f, 0.92f, 0.92f}};
    case SignClass::kYield:
      return {{0.78f, 0.10f, 0.12f}, {0.93f, 0.93f, 0.90f}};
    case SignClass::kPriority:
      return {{0.95f, 0.95f, 0.92f}, {0.95f, 0.78f, 0.10f}};
    case SignClass::kParking:
      return {{0.92f, 0.92f, 0.95f}, {0.10f, 0.25f, 0.70f}};
  }
  return {{1.0f, 1.0f, 1.0f}, {0.5f, 0.5f, 0.5f}};
}

/// Interior legend decoration in the sign's local (unrotated) frame with
/// coordinates normalised by the circumradius.
bool legend_pixel(SignClass cls, double ny, double nx) {
  switch (cls) {
    case SignClass::kStop:
      // Horizontal white band standing in for the STOP lettering.
      return std::fabs(ny) < 0.16 && std::fabs(nx) < 0.62;
    case SignClass::kSpeedLimit:
      // Central dark numeral blob.
      return std::hypot(ny, nx) < 0.32;
    case SignClass::kParking:
      // Vertical white bar ("P" stem).
      return std::fabs(nx + 0.08) < 0.10 && ny > -0.45 && ny < 0.45;
    case SignClass::kYield:
    case SignClass::kPriority:
      return false;
  }
  return false;
}

Rgb legend_colour(SignClass cls, const ClassStyle& style) {
  switch (cls) {
    case SignClass::kStop:
      return style.border;  // white band on red
    case SignClass::kSpeedLimit:
      return {0.15f, 0.15f, 0.18f};  // dark numerals
    case SignClass::kParking:
      return style.border;  // white bar on blue
    default:
      return style.fill;
  }
}

}  // namespace

tensor::Tensor render_sign(const RenderParams& params) {
  const std::size_t n = params.size;
  tensor::Tensor img(tensor::Shape{3, n, n});
  util::Rng rng(params.noise_seed, /*stream=*/0xB6);

  const double half = static_cast<double>(n) / 2.0;
  const double cy = half + params.offset_y;
  const double cx = half + params.offset_x;
  const double radius = params.scale * half;
  const double border_radius = radius;
  const double fill_radius = radius * 0.82;
  const std::size_t sides = silhouette_sides(params.cls);
  const double vangle = vertex_angle_of(params.cls) + params.rotation;
  const ClassStyle style = style_of(params.cls);

  // Muted asphalt-green background.
  const Rgb bg{0.32f, 0.36f, 0.30f};

  const std::size_t plane = n * n;
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      // 2x2 supersampling for smooth edges.
      float acc_r = 0.0f;
      float acc_g = 0.0f;
      float acc_b = 0.0f;
      for (int sy = 0; sy < 2; ++sy) {
        for (int sx = 0; sx < 2; ++sx) {
          const double py = static_cast<double>(y) + 0.25 + 0.5 * sy - cy;
          const double px = static_cast<double>(x) + 0.25 + 0.5 * sx - cx;
          Rgb c = bg;
          if (inside_polygon(py, px, sides, border_radius, vangle)) {
            c = style.border;
            if (inside_polygon(py, px, sides, fill_radius, vangle)) {
              c = style.fill;
              // Legend test in the unrotated local frame.
              const double cosr = std::cos(-params.rotation);
              const double sinr = std::sin(-params.rotation);
              const double ly = (py * cosr - px * sinr) / radius;
              const double lx = (px * cosr + py * sinr) / radius;
              if (legend_pixel(params.cls, ly, lx)) {
                c = legend_colour(params.cls, style);
              }
            }
          }
          acc_r += c.r;
          acc_g += c.g;
          acc_b += c.b;
        }
      }
      const std::size_t idx = y * n + x;
      const auto shade = [&](float v) {
        const double noisy =
            static_cast<double>(v) / 4.0 * params.brightness +
            rng.normal(0.0, params.noise_sigma);
        return static_cast<float>(std::clamp(noisy, 0.0, 1.0));
      };
      img[idx] = shade(acc_r);
      img[plane + idx] = shade(acc_g);
      img[2 * plane + idx] = shade(acc_b);
    }
  }
  return img;
}

tensor::Tensor render_stop_sign(std::size_t size, double angle_deg) {
  RenderParams p;
  p.cls = SignClass::kStop;
  p.size = size;
  p.rotation = angle_deg * kTwoPi / 360.0;
  p.scale = 0.85;
  p.noise_sigma = 0.015;
  return render_sign(p);
}

}  // namespace hybridcnn::data
