// Parametric traffic-sign renderer: the synthetic GTSRB stand-in.
//
// Renders the silhouette families of German traffic signs (octagon,
// circle, triangle, diamond, square) with class-typical colouring, simple
// interior legends, geometric jitter (rotation, scale, translation),
// photometric jitter (brightness) and pixel noise. Images are float CHW in
// [0, 1]. The renderer is fully deterministic in its parameters, so every
// experiment image can be regenerated exactly.
#pragma once

#include <cstdint>

#include "data/shapes.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::data {

/// All degrees of freedom of one rendered sign.
struct RenderParams {
  SignClass cls = SignClass::kStop;
  std::size_t size = 64;     ///< square image side in pixels
  double rotation = 0.0;     ///< sign rotation in radians ("slightly angled")
  double scale = 0.8;        ///< circumradius as fraction of size/2
  double offset_y = 0.0;     ///< centre offset in pixels
  double offset_x = 0.0;
  double brightness = 1.0;   ///< photometric gain
  double noise_sigma = 0.02; ///< additive Gaussian pixel noise
  std::uint64_t noise_seed = 1;
};

/// Renders one sign; returns a [3, size, size] tensor in [0, 1].
tensor::Tensor render_sign(const RenderParams& params);

/// Convenience for the paper's Fig. 3 input: a stop sign tilted by
/// `angle_deg` degrees at the given image size, mild noise.
tensor::Tensor render_stop_sign(std::size_t size, double angle_deg);

}  // namespace hybridcnn::data
