#include "data/shapes.hpp"

#include <stdexcept>

namespace hybridcnn::data {

std::size_t silhouette_sides(SignClass c) {
  switch (c) {
    case SignClass::kStop:
      return 8;
    case SignClass::kSpeedLimit:
      return 0;  // circle
    case SignClass::kYield:
      return 3;
    case SignClass::kPriority:
      return 4;  // diamond
    case SignClass::kParking:
      return 4;  // square
  }
  throw std::invalid_argument("silhouette_sides: unknown class");
}

std::string class_name(SignClass c) {
  switch (c) {
    case SignClass::kStop:
      return "stop";
    case SignClass::kSpeedLimit:
      return "speed_limit";
    case SignClass::kYield:
      return "yield";
    case SignClass::kPriority:
      return "priority";
    case SignClass::kParking:
      return "parking";
  }
  throw std::invalid_argument("class_name: unknown class");
}

std::vector<SignClass> all_classes() {
  return {SignClass::kStop, SignClass::kSpeedLimit, SignClass::kYield,
          SignClass::kPriority, SignClass::kParking};
}

}  // namespace hybridcnn::data
