// Sign classes of the synthetic GTSRB stand-in.
//
// The paper experiments on GTSRB stop signs, whose defining dependable
// feature is the octagonal silhouette. The synthetic dataset renders the
// silhouette families found on real traffic signs; the octagon (stop) is
// the safety-critical class, the others play the role of "classifications
// that are not considered safety critical (e.g., a parking prohibition)".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hybridcnn::data {

/// Synthetic sign classes. Values are the training labels.
enum class SignClass : int {
  kStop = 0,        ///< octagon — safety-critical, qualifier-protected
  kSpeedLimit = 1,  ///< circle
  kYield = 2,       ///< triangle (point down)
  kPriority = 3,    ///< diamond (square rotated 45 degrees)
  kParking = 4,     ///< square — the paper's non-critical example
};

/// Number of classes in the synthetic dataset.
inline constexpr std::size_t kNumClasses = 5;

/// Polygon side count of a class silhouette (circle approximated by a
/// 64-gon for rendering; reported as 0 sides).
std::size_t silhouette_sides(SignClass c);

/// Human-readable class name.
std::string class_name(SignClass c);

/// All classes in label order.
std::vector<SignClass> all_classes();

}  // namespace hybridcnn::data
