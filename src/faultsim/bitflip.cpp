#include "faultsim/bitflip.hpp"

#include <cstring>

namespace hybridcnn::faultsim {

std::uint32_t float_bits(float v) noexcept {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

float bits_float(std::uint32_t bits) noexcept {
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

float flip_bit(float v, int bit) noexcept {
  const auto b = static_cast<std::uint32_t>(bit) & 31u;
  return bits_float(float_bits(v) ^ (1u << b));
}

}  // namespace hybridcnn::faultsim
