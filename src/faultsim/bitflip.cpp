#include "faultsim/bitflip.hpp"

namespace hybridcnn::faultsim {

float flip_bit(float v, int bit) noexcept {
  const auto b = static_cast<std::uint32_t>(bit) & 31u;
  return bits_float(float_bits(v) ^ (1u << b));
}

}  // namespace hybridcnn::faultsim
