// IEEE-754 bit manipulation for single-event-upset (SEU) modelling.
// The paper's failure model is radiation-caused single event upsets acting
// on processing elements or corrupting weights/input data (Sections I-II);
// we realise an SEU as a bit flip in the 32-bit float representation.
//
// float_bits/bits_float are defined inline: the redundancy comparisons of
// the DMR/TMR executors run them once per physical execution, inside the
// statically dispatched qualified kernels (src/reliable), so they must
// inline into the hot loop.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

#include "util/contracts.hpp"

namespace hybridcnn::faultsim {

// The whole SEU model — bit positions, SEC-DED codeword layout, the
// DMR/TMR bitwise comparisons — is written against 32-bit IEEE-754
// single precision. A platform where float is anything else would
// silently change every fault-site distribution.
HYBRIDCNN_CONTRACT(sizeof(float) == sizeof(std::uint32_t),
                   "SEU modelling flips bits of a 32-bit float");
HYBRIDCNN_CONTRACT(std::numeric_limits<float>::is_iec559,
                   "fault-site semantics (sign/exponent/mantissa split) "
                   "assume IEEE-754 binary32");

/// Reinterprets a float as its raw 32-bit pattern.
inline std::uint32_t float_bits(float v) noexcept {
  return std::bit_cast<std::uint32_t>(v);
}

/// Reinterprets a 32-bit pattern as a float.
inline float bits_float(std::uint32_t bits) noexcept {
  return std::bit_cast<float>(bits);
}

/// Returns `v` with bit `bit` (0 = LSB of mantissa, 31 = sign) flipped.
/// `bit` is taken modulo 32 so callers may pass raw random draws.
float flip_bit(float v, int bit) noexcept;

}  // namespace hybridcnn::faultsim
