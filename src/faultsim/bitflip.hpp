// IEEE-754 bit manipulation for single-event-upset (SEU) modelling.
// The paper's failure model is radiation-caused single event upsets acting
// on processing elements or corrupting weights/input data (Sections I-II);
// we realise an SEU as a bit flip in the 32-bit float representation.
#pragma once

#include <cstdint>

namespace hybridcnn::faultsim {

/// Reinterprets a float as its raw 32-bit pattern.
std::uint32_t float_bits(float v) noexcept;

/// Reinterprets a 32-bit pattern as a float.
float bits_float(std::uint32_t bits) noexcept;

/// Returns `v` with bit `bit` (0 = LSB of mantissa, 31 = sign) flipped.
/// `bit` is taken modulo 32 so callers may pass raw random draws.
float flip_bit(float v, int bit) noexcept;

}  // namespace hybridcnn::faultsim
