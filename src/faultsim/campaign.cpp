#include "faultsim/campaign.hpp"

#include <vector>

namespace hybridcnn::faultsim {

Outcome classify(bool faults_activated, bool aborted, bool matches_golden) {
  if (aborted) return Outcome::kDetectedAbort;
  if (!matches_golden) return Outcome::kSilentCorruption;
  return faults_activated ? Outcome::kCorrected : Outcome::kCorrect;
}

std::string outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCorrect:
      return "correct";
    case Outcome::kCorrected:
      return "corrected";
    case Outcome::kDetectedAbort:
      return "detected_abort";
    case Outcome::kSilentCorruption:
      return "silent_corruption";
  }
  return "unknown";
}

void CampaignSummary::add(Outcome o) {
  ++runs;
  switch (o) {
    case Outcome::kCorrect:
      ++correct;
      break;
    case Outcome::kCorrected:
      ++corrected;
      break;
    case Outcome::kDetectedAbort:
      ++detected_abort;
      break;
    case Outcome::kSilentCorruption:
      ++silent_corruption;
      break;
  }
}

CampaignSummary& CampaignSummary::operator+=(
    const CampaignSummary& other) noexcept {
  runs += other.runs;
  correct += other.correct;
  corrected += other.corrected;
  detected_abort += other.detected_abort;
  silent_corruption += other.silent_corruption;
  return *this;
}

double CampaignSummary::availability() const {
  if (runs == 0) return 0.0;
  return static_cast<double>(correct + corrected) /
         static_cast<double>(runs);
}

double CampaignSummary::safety() const {
  if (runs == 0) return 0.0;
  return static_cast<double>(runs - silent_corruption) /
         static_cast<double>(runs);
}

double CampaignSummary::sdc_rate() const {
  if (runs == 0) return 0.0;
  return static_cast<double>(silent_corruption) / static_cast<double>(runs);
}

CampaignSummary run_campaign(
    std::size_t runs, const std::function<Outcome(std::size_t)>& run_one,
    runtime::ComputeContext& ctx) {
  std::vector<Outcome> outcomes(runs, Outcome::kCorrect);
  ctx.pool().parallel_for(0, runs,
                          [&](std::size_t run) { outcomes[run] = run_one(run); });
  CampaignSummary summary;
  for (const Outcome o : outcomes) summary.add(o);
  return summary;
}

}  // namespace hybridcnn::faultsim
