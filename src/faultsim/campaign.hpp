// Fault-injection campaign bookkeeping.
//
// A campaign repeatedly executes a workload under a fault model and
// classifies every run against a golden (fault-free) reference into the
// standard dependability outcome classes. The benches use this to produce
// the reliability-guarantee evidence: with DMR + operation rollback, runs
// either match the golden output or abort — silent data corruption is the
// failure mode the paper's design eliminates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "runtime/compute_context.hpp"

namespace hybridcnn::faultsim {

/// Dependability outcome of a single workload run.
enum class Outcome : std::uint8_t {
  kCorrect,           ///< no fault activated; output matches golden
  kCorrected,         ///< faults activated; rollback recovered; output matches
  kDetectedAbort,     ///< persistent failure detected and reported (leaky
                      ///< bucket ceiling reached) — fail-stop behaviour
  kSilentCorruption,  ///< output differs from golden with no report — SDC
};

/// Classifies a run from its observable facts.
/// `faults_activated`: the injector corrupted at least one execution.
/// `aborted`: the reliable kernel reported an unrecoverable condition.
/// `matches_golden`: outputs are bit-identical to the fault-free run.
Outcome classify(bool faults_activated, bool aborted, bool matches_golden);

/// Human-readable outcome label ("correct", "corrected", ...).
std::string outcome_name(Outcome o);

/// Aggregated campaign counts.
struct CampaignSummary {
  std::uint64_t runs = 0;
  std::uint64_t correct = 0;
  std::uint64_t corrected = 0;
  std::uint64_t detected_abort = 0;
  std::uint64_t silent_corruption = 0;

  /// Records one classified run.
  void add(Outcome o);

  /// Shard-merge operator: field-wise accumulation of a partial summary.
  /// Because every field is an integer count, merging the per-shard
  /// summaries of any disjoint cover of a run range — in any order —
  /// yields exactly the summary of the monolithic campaign; the campaign
  /// fabric still merges in shard-index order by contract.
  CampaignSummary& operator+=(const CampaignSummary& other) noexcept;
  friend CampaignSummary operator+(CampaignSummary a,
                                   const CampaignSummary& b) noexcept {
    a += b;
    return a;
  }

  friend bool operator==(const CampaignSummary&,
                         const CampaignSummary&) noexcept = default;

  /// Fraction of runs that delivered a correct result (fail-operational).
  [[nodiscard]] double availability() const;

  /// Fraction of runs that were either correct or fail-stopped; the
  /// complement is the SDC rate — the quantity a safety case bounds.
  [[nodiscard]] double safety() const;

  /// Fraction of runs with silent data corruption.
  [[nodiscard]] double sdc_rate() const;
};

/// Executes `runs` independent workload runs across the thread pool and
/// reduces their outcomes into a summary in run-index order.
///
/// `run_one(run)` performs one complete workload execution and classifies
/// it. It is called exactly once per run index, possibly from worker
/// threads and in any order, so it must derive every piece of stochastic
/// state (fault-injector seed, executors, RNG streams) from the run index
/// alone — the pattern the benches already follow with `seed_base + run`.
/// Under that contract the returned CampaignSummary is bit-identical for
/// every thread count.
CampaignSummary run_campaign(
    std::size_t runs, const std::function<Outcome(std::size_t)>& run_one,
    runtime::ComputeContext& ctx = runtime::ComputeContext::global());

}  // namespace hybridcnn::faultsim
