#include "faultsim/ecc.hpp"

#include <array>

#include "faultsim/bitflip.hpp"

namespace hybridcnn::faultsim {

namespace {

/// Codeword positions (1-based, Hamming convention) of the 32 data bits:
/// every position in [1, 38] that is not a power of two.
constexpr std::array<std::uint8_t, 32> data_positions() {
  std::array<std::uint8_t, 32> pos{};
  std::size_t n = 0;
  for (std::uint8_t p = 1; n < 32; ++p) {
    if ((p & (p - 1)) != 0) pos[n++] = p;  // skip powers of two
  }
  return pos;
}

constexpr std::array<std::uint8_t, 32> kDataPos = data_positions();

/// Six Hamming check bits over the data word.
std::uint8_t hamming_bits(std::uint32_t data) noexcept {
  std::uint8_t check = 0;
  for (int j = 0; j < 6; ++j) {
    std::uint32_t parity = 0;
    for (int d = 0; d < 32; ++d) {
      if ((kDataPos[static_cast<std::size_t>(d)] >> j) & 1u) {
        parity ^= (data >> d) & 1u;
      }
    }
    check = static_cast<std::uint8_t>(check | (parity << j));
  }
  return check;
}

std::uint32_t popcount32(std::uint32_t v) noexcept {
  return static_cast<std::uint32_t>(__builtin_popcount(v));
}

}  // namespace

std::uint8_t SecDed::encode(std::uint32_t data) noexcept {
  const std::uint8_t hamming = hamming_bits(data);
  // Overall parity over data and the six Hamming bits (even parity).
  const std::uint32_t ones =
      popcount32(data) + popcount32(hamming);
  return static_cast<std::uint8_t>(hamming | ((ones & 1u) << 6));
}

SecDed::Outcome SecDed::decode(std::uint32_t& data,
                               std::uint8_t& check) noexcept {
  const std::uint8_t stored_hamming = check & 0x3F;
  const std::uint8_t stored_parity = (check >> 6) & 1;

  const std::uint8_t computed_hamming = hamming_bits(data);
  const std::uint8_t syndrome = stored_hamming ^ computed_hamming;
  const std::uint32_t ones = popcount32(data) +
                             popcount32(stored_hamming) + stored_parity;
  const bool parity_ok = (ones & 1u) == 0;

  if (syndrome == 0 && parity_ok) return Outcome::kClean;

  if (!parity_ok) {
    // Odd number of flipped bits: with a single-error assumption the
    // syndrome locates it.
    if (syndrome == 0) {
      // The overall parity bit itself flipped.
      check = static_cast<std::uint8_t>(check ^ 0x40);
      return Outcome::kCorrectedCheck;
    }
    if ((syndrome & (syndrome - 1)) == 0) {
      // Syndrome is a power of two: a Hamming check bit flipped.
      check = static_cast<std::uint8_t>(
          check ^ (syndrome & 0x3F));
      return Outcome::kCorrectedCheck;
    }
    // Locate the data bit whose codeword position equals the syndrome.
    for (int d = 0; d < 32; ++d) {
      if (kDataPos[static_cast<std::size_t>(d)] == syndrome) {
        data ^= (1u << d);
        return Outcome::kCorrectedData;
      }
    }
    // Syndrome points outside the codeword: multi-bit corruption.
    return Outcome::kDoubleError;
  }

  // Parity even but syndrome non-zero: an even number of flips.
  return Outcome::kDoubleError;
}

ProtectedTensor::ProtectedTensor(tensor::Tensor values)
    : data_(std::move(values)), checks_(data_.count(), 0) {
  for (std::size_t i = 0; i < data_.count(); ++i) {
    checks_[i] = SecDed::encode(float_bits(data_[i]));
  }
}

void ProtectedTensor::store(std::size_t i, float value) {
  data_.at(i) = value;
  checks_[i] = SecDed::encode(float_bits(value));
}

ScrubReport ProtectedTensor::scrub() {
  ScrubReport report;
  report.words = data_.count();
  for (std::size_t i = 0; i < data_.count(); ++i) {
    std::uint32_t word = float_bits(data_[i]);
    const SecDed::Outcome outcome = SecDed::decode(word, checks_[i]);
    switch (outcome) {
      case SecDed::Outcome::kClean:
        break;
      case SecDed::Outcome::kCorrectedData:
        data_[i] = bits_float(word);
        ++report.corrected_data;
        break;
      case SecDed::Outcome::kCorrectedCheck:
        ++report.corrected_check;
        break;
      case SecDed::Outcome::kDoubleError:
        ++report.uncorrectable;
        break;
    }
  }
  return report;
}

ScrubReport ProtectedTensor::verify() const {
  ScrubReport report;
  report.words = data_.count();
  for (std::size_t i = 0; i < data_.count(); ++i) {
    std::uint32_t word = float_bits(data_[i]);
    std::uint8_t check = checks_[i];
    switch (SecDed::decode(word, check)) {
      case SecDed::Outcome::kClean:
        break;
      case SecDed::Outcome::kCorrectedData:
        ++report.corrected_data;
        break;
      case SecDed::Outcome::kCorrectedCheck:
        ++report.corrected_check;
        break;
      case SecDed::Outcome::kDoubleError:
        ++report.uncorrectable;
        break;
    }
  }
  return report;
}

}  // namespace hybridcnn::faultsim
