// SEC-DED protected tensor storage.
//
// The paper's failure model includes "data corruption of the weights and
// input data" and notes that GPU vendors address it with error-correcting
// codes in RAM and data paths (Section II.C). This module provides that
// substrate in simulation: tensors whose words carry a Hamming(38,32)
// SEC-DED code — single-bit errors are corrected on scrub, double-bit
// errors are detected and reported — so campaigns can combine
// execution-level redundancy (src/reliable) with memory-level protection
// and measure the residual.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/contracts.hpp"

namespace hybridcnn::faultsim {

/// Result of one scrub pass over a protected tensor. Corrected-data and
/// corrected-check outcomes are counted separately: only the former means
/// the stored payload was actually at risk, and campaign reports that
/// conflate them cannot attribute upsets to the data vs the check words.
struct ScrubReport {
  std::uint64_t words = 0;              ///< words checked
  std::uint64_t corrected_data = 0;     ///< single-bit payload errors corrected
  std::uint64_t corrected_check = 0;    ///< single-bit check-word errors corrected
  std::uint64_t uncorrectable = 0;      ///< double-bit errors detected
  /// Total single-bit corrections (data + check).
  [[nodiscard]] std::uint64_t corrected() const noexcept {
    return corrected_data + corrected_check;
  }
  [[nodiscard]] bool clean() const noexcept {
    return corrected() == 0 && uncorrectable == 0;
  }
};

// Scrub reports are accumulated across campaign runs by plain field
// addition and compared in the thread-count bit-identity sweeps.
HYBRIDCNN_CONTRACT_TRIVIAL_PAYLOAD(ScrubReport);

/// Hamming SEC-DED codec for one 32-bit word: 6 Hamming check bits plus
/// an overall parity bit.
struct SecDed {
  /// Computes the 7 check bits for a data word.
  static std::uint8_t encode(std::uint32_t data) noexcept;

  /// Decode outcome for one word.
  enum class Outcome : std::uint8_t {
    kClean,          ///< no error
    kCorrectedData,  ///< single-bit error in the data word, corrected
    kCorrectedCheck, ///< single-bit error in the check bits, corrected
    kDoubleError,    ///< two-bit error: detected, not correctable
  };

  /// Checks `data` against `check`; corrects single-bit errors in place.
  static Outcome decode(std::uint32_t& data, std::uint8_t& check) noexcept;
};

/// A float tensor whose storage is covered by per-word SEC-DED codes.
/// Writes go through store(); reads are plain (memory faults are injected
/// on the raw storage between scrubs, as in DRAM).
class ProtectedTensor {
 public:
  /// Protects a copy of `values`, computing all check bits.
  explicit ProtectedTensor(tensor::Tensor values);

  /// The protected payload (mutable so campaigns can inject faults into
  /// "memory"; a real system would fault the DRAM cells underneath).
  [[nodiscard]] tensor::Tensor& data() noexcept { return data_; }
  [[nodiscard]] const tensor::Tensor& data() const noexcept { return data_; }

  /// Rewrites element `i` and refreshes its check bits.
  void store(std::size_t i, float value);

  /// Scrubs the whole tensor: corrects every single-bit upset, counts
  /// double-bit detections (which a system must treat as data loss).
  ScrubReport scrub();

  /// Verifies without correcting (read-only integrity check).
  [[nodiscard]] ScrubReport verify() const;

 private:
  tensor::Tensor data_;
  std::vector<std::uint8_t> checks_;
};

}  // namespace hybridcnn::faultsim
