// Fault model configuration for the simulated compute unit.
//
// The paper (Sections II and IV) considers single event upsets that are
// random and transient ("will not be present once the system has
// re-booted"), permanent errors ("given a permanent error, the platform
// becomes unusable"), and data corruption of weights and inputs. We model a
// compute unit in the OpenCL sense: a set of processing elements (PEs) over
// which scalar operations are scheduled round-robin, each of which may be
// healthy, intermittently faulty or permanently faulty.
#pragma once

#include <cstdint>

namespace hybridcnn::faultsim {

/// Kind of fault a processing element may exhibit.
enum class FaultKind : std::uint8_t {
  kNone,         ///< golden execution, no faults ever
  kTransient,    ///< SEU: each op independently corrupted with `probability`
  kIntermittent, ///< bursty: once a fault fires it persists on the same PE
                 ///< with `burst_continue` probability per subsequent op
  kPermanent,    ///< a fixed fraction of PEs corrupt every op they execute
};

/// Which value of an operation the fault corrupts.
enum class FaultTarget : std::uint8_t {
  kResult,    ///< the output of the multiplier/adder
  kOperandA,  ///< first input latch
  kOperandB,  ///< second input latch
};

/// Complete description of a fault campaign environment.
struct FaultConfig {
  FaultKind kind = FaultKind::kNone;
  FaultTarget target = FaultTarget::kResult;

  /// Per-operation fault probability (transient / burst ignition /
  /// per-PE permanently-faulty fraction depending on `kind`).
  double probability = 0.0;

  /// Bit to flip; -1 selects a uniformly random bit per fault.
  int bit = -1;

  /// Number of processing elements in the simulated compute unit. The
  /// Jetson-class devices the paper targets feature ~128 cores.
  int num_pes = 128;

  /// For kIntermittent: probability that an ignited fault persists into
  /// the next operation executed on the same PE.
  double burst_continue = 0.5;
};

}  // namespace hybridcnn::faultsim
