#include "faultsim/injector.hpp"

#include <algorithm>
#include <cassert>

#include "faultsim/bitflip.hpp"

namespace hybridcnn::faultsim {

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed, /*stream=*/0xFA17) {
  const int pes = std::max(1, config_.num_pes);
  pe_permanently_faulty_.assign(static_cast<std::size_t>(pes), 0);
  pe_burst_active_.assign(static_cast<std::size_t>(pes), 0);
  if (config_.kind == FaultKind::kPermanent) {
    for (auto& flag : pe_permanently_faulty_) {
      flag = rng_.bernoulli(config_.probability) ? 1 : 0;
    }
  }
}

bool FaultInjector::next_is_faulty() const noexcept {
  if (config_.kind == FaultKind::kPermanent) {
    return pe_permanently_faulty_[static_cast<std::size_t>(next_pe_)] != 0;
  }
  return false;  // stochastic kinds are not predictable
}

void FaultInjector::advance_clean(std::uint64_t n) noexcept {
  assert(guaranteed_fault_free());
  stats_.executions += n;
  const auto pes = static_cast<std::uint64_t>(pe_permanently_faulty_.size());
  next_pe_ = static_cast<int>(
      (static_cast<std::uint64_t>(next_pe_) + n % pes) % pes);
}

int FaultInjector::permanent_faulty_pes() const noexcept {
  int n = 0;
  for (const auto flag : pe_permanently_faulty_) n += flag;
  return n;
}

float FaultInjector::filter(float clean) noexcept {
  ++stats_.executions;
  const auto pe = static_cast<std::size_t>(next_pe_);
  next_pe_ = (next_pe_ + 1) % static_cast<int>(pe_permanently_faulty_.size());

  bool fault = false;
  switch (config_.kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kTransient:
      fault = rng_.bernoulli(config_.probability);
      break;
    case FaultKind::kIntermittent:
      if (pe_burst_active_[pe] != 0) {
        fault = true;
        if (!rng_.bernoulli(config_.burst_continue)) {
          pe_burst_active_[pe] = 0;
        }
      } else if (rng_.bernoulli(config_.probability)) {
        fault = true;
        pe_burst_active_[pe] = rng_.bernoulli(config_.burst_continue) ? 1 : 0;
      }
      break;
    case FaultKind::kPermanent:
      fault = pe_permanently_faulty_[pe] != 0;
      break;
  }

  if (!fault) return clean;
  ++stats_.faults;
  const int bit = config_.bit >= 0
                      ? config_.bit
                      : static_cast<int>(rng_.uniform_int(0, 31));
  return flip_bit(clean, bit);
}

}  // namespace hybridcnn::faultsim
