// Operation-level fault injector.
//
// The reliable executors (src/reliable) route every scalar multiply and
// add through an injector; the injector decides, per execution, whether to
// corrupt the value according to the configured fault model. This is the
// library's equivalent of PyTorchFI-style frameworks, but at the
// granularity the paper's Algorithm 3 operates on: a single arithmetic
// operation on a single processing element.
#pragma once

#include <cstdint>
#include <vector>

#include "faultsim/fault_model.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace hybridcnn::faultsim {

/// Statistics accumulated by an injector across a campaign.
struct InjectorStats {
  std::uint64_t executions = 0;  ///< scalar op executions observed
  std::uint64_t faults = 0;      ///< executions that were corrupted
};

// Campaign workers snapshot and diff these counters by value; the
// equivalence tests compare them bit-for-bit against the generic path.
HYBRIDCNN_CONTRACT_TRIVIAL_PAYLOAD(InjectorStats);

/// Decides per scalar-operation execution whether an SEU corrupts it.
///
/// Deterministic for a given (config, seed) pair; the round-robin PE
/// schedule makes permanent and intermittent faults reproducible as well.
class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultConfig{}, 0) {}

  FaultInjector(const FaultConfig& config, std::uint64_t seed);

  /// Filters one operand/result value for the next operation execution.
  /// Returns `clean` unchanged when no fault fires, otherwise the value
  /// with one bit flipped per the fault model.
  float filter(float clean) noexcept;

  /// True if the *next* call to filter() will corrupt its value. Only
  /// meaningful for deterministic test scenarios (kPermanent).
  [[nodiscard]] bool next_is_faulty() const noexcept;

  /// True iff this injector can never corrupt a value: FaultKind::kNone.
  /// Hoistable: the answer is fixed at construction, so reliable kernels
  /// query it once per forward and select a fault-free fast path that
  /// skips filter() entirely, replaying the bookkeeping in bulk with
  /// advance_clean(). Stochastic kinds return false even at probability 0
  /// — they still consume RNG draws per call, which bulk replay cannot
  /// reproduce.
  [[nodiscard]] bool guaranteed_fault_free() const noexcept {
    return config_.kind == FaultKind::kNone;
  }

  /// Replays `n` filter() calls in bulk for a guaranteed_fault_free()
  /// injector: advances the execution count and the round-robin PE cursor
  /// exactly as `n` individual kNone filter() calls would, leaving stats()
  /// and next_pe() bit-identical to the per-op path. Precondition:
  /// guaranteed_fault_free() (asserted in debug builds).
  void advance_clean(std::uint64_t n) noexcept;

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }
  [[nodiscard]] const InjectorStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = InjectorStats{}; }

  /// Index of the PE the next operation will be scheduled on.
  [[nodiscard]] int next_pe() const noexcept { return next_pe_; }

  /// Number of permanently faulty PEs in this compute unit (kPermanent).
  [[nodiscard]] int permanent_faulty_pes() const noexcept;

 private:
  FaultConfig config_;
  util::Rng rng_;
  InjectorStats stats_;
  int next_pe_ = 0;
  std::vector<std::uint8_t> pe_permanently_faulty_;
  std::vector<std::uint8_t> pe_burst_active_;
};

}  // namespace hybridcnn::faultsim
