#include "faultsim/memory_faults.hpp"

#include <cmath>
#include <unordered_set>

#include "faultsim/bitflip.hpp"

namespace hybridcnn::faultsim {

namespace {

inline void flip_site(tensor::Tensor& t, std::uint64_t site) {
  const auto word = static_cast<std::size_t>(site >> 5);
  const auto bit = static_cast<int>(site & 31u);
  t[word] = flip_bit(t[word], bit);
}

}  // namespace

MemoryFaultReport inject_bit_errors(tensor::Tensor& t, double bit_error_rate,
                                    util::Rng& rng) {
  MemoryFaultReport report;
  report.words_visited = t.count();
  const std::uint64_t total_bits = static_cast<std::uint64_t>(t.count()) * 32;
  if (total_bits == 0 || bit_error_rate <= 0.0) return report;
  if (bit_error_rate >= 1.0) {
    for (std::uint64_t site = 0; site < total_bits; ++site) {
      flip_site(t, site);
    }
    report.bits_flipped = total_bits;
    return report;
  }

  // Geometric skip sampling over the flattened bit space: with per-bit
  // flip probability p, the number of clean bits before the next flip is
  // Geometric(p), sampled by inversion as floor(log(1-u) / log(1-p)).
  // One uniform draw per flip replaces one Bernoulli trial per bit
  // (O(32N) -> O(p * 32N) draws) while producing the exact i.i.d.
  // Bernoulli(p) flip-site distribution.
  const double log_keep = std::log1p(-bit_error_rate);  // log(1-p) < 0
  std::uint64_t pos = 0;  // next candidate site
  while (pos < total_bits) {
    const double u = rng.uniform();  // [0, 1); 1-u in (0, 1]
    ++report.rng_draws;
    const double skip = std::floor(std::log1p(-u) / log_keep);
    if (!(skip < static_cast<double>(total_bits - pos))) break;
    pos += static_cast<std::uint64_t>(skip);
    flip_site(t, pos);
    ++report.bits_flipped;
    ++pos;
  }
  return report;
}

MemoryFaultReport inject_exact_flips(tensor::Tensor& t, std::uint64_t count,
                                     util::Rng& rng) {
  MemoryFaultReport report;
  report.words_visited = t.count();
  const std::uint64_t total_bits = static_cast<std::uint64_t>(t.count()) * 32;
  if (total_bits == 0 || count == 0) return report;
  if (count >= total_bits) {
    for (std::uint64_t site = 0; site < total_bits; ++site) {
      flip_site(t, site);
    }
    report.bits_flipped = total_bits;
    return report;
  }

  // Floyd's sampling: `count` distinct sites drawn uniformly from
  // [0, total_bits) without replacement, so duplicates can never un-flip
  // a bit and "exactly N flips" holds even on small tensors. XOR flips
  // commute, so applying the set in draw order is deterministic.
  std::unordered_set<std::uint64_t> sites;
  sites.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t j = total_bits - count; j < total_bits; ++j) {
    const auto draw = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(j)));
    ++report.rng_draws;
    const std::uint64_t site = sites.contains(draw) ? j : draw;
    sites.insert(site);
    flip_site(t, site);
    ++report.bits_flipped;
  }
  return report;
}

std::string memory_outcome_name(MemoryOutcome o) {
  switch (o) {
    case MemoryOutcome::kIntact:
      return "intact";
    case MemoryOutcome::kCorrected:
      return "corrected";
    case MemoryOutcome::kUncorrectable:
      return "uncorrectable";
    case MemoryOutcome::kQualifierCaught:
      return "qualifier_caught";
    case MemoryOutcome::kSilentCorruption:
      return "silent_corruption";
  }
  return "unknown";
}

MemoryCampaignSummary& MemoryCampaignSummary::operator+=(
    const MemoryCampaignSummary& o) noexcept {
  runs += o.runs;
  intact += o.intact;
  corrected += o.corrected;
  uncorrectable += o.uncorrectable;
  qualifier_caught += o.qualifier_caught;
  silent_corruption += o.silent_corruption;
  bits_flipped += o.bits_flipped;
  ecc_corrected_data += o.ecc_corrected_data;
  ecc_corrected_check += o.ecc_corrected_check;
  ecc_uncorrectable_words += o.ecc_uncorrectable_words;
  return *this;
}

void MemoryCampaignSummary::add(MemoryOutcome o) {
  ++runs;
  switch (o) {
    case MemoryOutcome::kIntact:
      ++intact;
      break;
    case MemoryOutcome::kCorrected:
      ++corrected;
      break;
    case MemoryOutcome::kUncorrectable:
      ++uncorrectable;
      break;
    case MemoryOutcome::kQualifierCaught:
      ++qualifier_caught;
      break;
    case MemoryOutcome::kSilentCorruption:
      ++silent_corruption;
      break;
  }
}

double MemoryCampaignSummary::availability() const {
  if (runs == 0) return 0.0;
  return static_cast<double>(intact + corrected) / static_cast<double>(runs);
}

double MemoryCampaignSummary::safety() const {
  if (runs == 0) return 0.0;
  return static_cast<double>(runs - silent_corruption) /
         static_cast<double>(runs);
}

double MemoryCampaignSummary::sdc_rate() const {
  if (runs == 0) return 0.0;
  return static_cast<double>(silent_corruption) / static_cast<double>(runs);
}

}  // namespace hybridcnn::faultsim
