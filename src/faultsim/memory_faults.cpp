#include "faultsim/memory_faults.hpp"

#include "faultsim/bitflip.hpp"

namespace hybridcnn::faultsim {

MemoryFaultReport inject_bit_errors(tensor::Tensor& t, double bit_error_rate,
                                    util::Rng& rng) {
  MemoryFaultReport report;
  for (float& v : t.data()) {
    ++report.words_visited;
    for (int bit = 0; bit < 32; ++bit) {
      if (rng.bernoulli(bit_error_rate)) {
        v = flip_bit(v, bit);
        ++report.bits_flipped;
      }
    }
  }
  return report;
}

MemoryFaultReport inject_exact_flips(tensor::Tensor& t, std::uint64_t count,
                                     util::Rng& rng) {
  MemoryFaultReport report;
  report.words_visited = t.count();
  if (t.count() == 0) return report;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(t.count()) - 1));
    const int bit = static_cast<int>(rng.uniform_int(0, 31));
    t[idx] = flip_bit(t[idx], bit);
    ++report.bits_flipped;
  }
  return report;
}

}  // namespace hybridcnn::faultsim
