// Memory-resident fault injection: SEUs in stored weights and input data.
// The paper names "data corruption of the weights and input data" as a
// failure source alongside processing-element upsets (Section II); these
// helpers corrupt tensors at rest for the campaign benches, and the
// MemoryFaultModel/MemoryCampaignSummary types carry the memory-fault
// campaign surface (core::MemoryFaultCampaign drives them through the
// hybrid classify path).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hybridcnn::faultsim {

/// Result of a memory corruption pass.
struct MemoryFaultReport {
  std::uint64_t words_visited = 0;
  std::uint64_t bits_flipped = 0;
  /// Uniform variates consumed from the caller's Rng. Geometric skip
  /// sampling makes this O(bits_flipped), not O(32 * words) — the
  /// regression tests lock the >=10x reduction at realistic bit-error
  /// rates.
  std::uint64_t rng_draws = 0;
};

/// Flips each bit of each float in `t` independently with probability
/// `bit_error_rate`. Models DRAM/SRAM upsets accumulated between scrubs.
///
/// Implemented as geometric skip sampling over the flattened bit space
/// [0, 32 * count): the gap to the next flipped bit is Geometric(p), so
/// one uniform draw is consumed per flip instead of one Bernoulli trial
/// per bit. Deterministic for a given Rng state; the flip-site
/// distribution is exactly i.i.d. Bernoulli(p) per bit, as before.
MemoryFaultReport inject_bit_errors(tensor::Tensor& t, double bit_error_rate,
                                    util::Rng& rng);

/// Flips exactly min(count, 32 * t.count()) DISTINCT uniformly chosen
/// (word, bit) sites in `t` — sampling is without replacement (Floyd's
/// algorithm), so "exactly N flips" means exactly N corrupted bits even
/// on small tensors. A `count` at or above the bit capacity flips every
/// bit. Models a bounded SEU burst; used by the targeted
/// weight-corruption experiments.
MemoryFaultReport inject_exact_flips(tensor::Tensor& t, std::uint64_t count,
                                     util::Rng& rng);

// --------------------------------------------------------------------------
// Memory-fault campaign surface (driven by core::MemoryFaultCampaign).

/// Which tensors of an inference a memory-fault campaign corrupts.
enum class MemoryTarget : std::uint8_t {
  kWeights,          ///< stored conv1 (DCNN) parameters
  kInput,            ///< the input image buffer
  kWeightsAndInput,  ///< both
};

/// Per-run corruption model. Exactly one of `bit_error_rate` /
/// `exact_flips` should be non-zero; `exact_flips` takes precedence.
struct MemoryFaultModel {
  MemoryTarget target = MemoryTarget::kWeights;
  /// Per-bit upset probability per exposure epoch (inject_bit_errors).
  double bit_error_rate = 0.0;
  /// Exact distinct flips per exposure epoch (inject_exact_flips).
  std::uint64_t exact_flips = 0;
};

/// Dependability outcome of one memory-fault campaign run.
enum class MemoryOutcome : std::uint8_t {
  kIntact,           ///< result matches golden; no ECC correction needed
  kCorrected,        ///< ECC scrub corrected upsets; result matches golden
  kUncorrectable,    ///< ECC detected an uncorrectable word — fail-stop
  kQualifierCaught,  ///< result differs but the hybrid evidence chain
                     ///< (demotion, fail-stop or qualifier/class
                     ///< inconsistency) flags it — detected
  kSilentCorruption, ///< result differs with no flag — SDC
};

/// Human-readable outcome label ("intact", "corrected", ...).
std::string memory_outcome_name(MemoryOutcome o);

/// Aggregated memory-fault campaign counts. Outcome counters plus the
/// injection/ECC totals (corrected_data vs corrected_check kept separate
/// — see ScrubReport).
struct MemoryCampaignSummary {
  std::uint64_t runs = 0;
  std::uint64_t intact = 0;
  std::uint64_t corrected = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t qualifier_caught = 0;
  std::uint64_t silent_corruption = 0;

  std::uint64_t bits_flipped = 0;          ///< injected upsets, all runs
  std::uint64_t ecc_corrected_data = 0;    ///< scrub-corrected payload bits
  std::uint64_t ecc_corrected_check = 0;   ///< scrub-corrected check bits
  std::uint64_t ecc_uncorrectable_words = 0;  ///< double-error words

  /// Records one classified run.
  void add(MemoryOutcome o);

  /// Shard-merge operator: field-wise accumulation of a partial summary.
  /// Integer counts only, so merging the shards of a disjoint run-range
  /// cover equals the monolithic summary exactly (the campaign fabric's
  /// bit-identity contract).
  MemoryCampaignSummary& operator+=(const MemoryCampaignSummary& o) noexcept;
  friend MemoryCampaignSummary operator+(
      MemoryCampaignSummary a, const MemoryCampaignSummary& b) noexcept {
    a += b;
    return a;
  }

  /// Fraction of runs that delivered the golden result.
  [[nodiscard]] double availability() const;

  /// Fraction of runs that were correct or detectably flagged; the
  /// complement is the silent-corruption rate.
  [[nodiscard]] double safety() const;

  /// Fraction of runs with silent data corruption.
  [[nodiscard]] double sdc_rate() const;

  friend bool operator==(const MemoryCampaignSummary&,
                         const MemoryCampaignSummary&) noexcept = default;
};

}  // namespace hybridcnn::faultsim
