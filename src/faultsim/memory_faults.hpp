// Memory-resident fault injection: SEUs in stored weights and input data.
// The paper names "data corruption of the weights and input data" as a
// failure source alongside processing-element upsets (Section II); these
// helpers corrupt tensors at rest for the campaign benches.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hybridcnn::faultsim {

/// Result of a memory corruption pass.
struct MemoryFaultReport {
  std::uint64_t words_visited = 0;
  std::uint64_t bits_flipped = 0;
};

/// Flips each bit of each float in `t` independently with probability
/// `bit_error_rate`. Models DRAM/SRAM upsets accumulated between scrubs.
MemoryFaultReport inject_bit_errors(tensor::Tensor& t, double bit_error_rate,
                                    util::Rng& rng);

/// Flips exactly `count` uniformly chosen (word, bit) sites in `t`.
/// Models a bounded SEU burst; used by the targeted weight-corruption
/// experiments. `count` may exceed the tensor size; sites may repeat.
MemoryFaultReport inject_exact_flips(tensor::Tensor& t, std::uint64_t count,
                                     util::Rng& rng);

}  // namespace hybridcnn::faultsim
