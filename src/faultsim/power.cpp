#include "faultsim/power.hpp"

namespace hybridcnn::faultsim {

PowerTrace PowerTrace::periodic(std::size_t budget, std::size_t periods) {
  PowerTrace trace;
  trace.budgets.assign(periods, budget);
  return trace;
}

PowerTrace PowerTrace::sampled(util::Rng& rng, std::size_t periods,
                               std::size_t min_budget,
                               std::size_t max_budget) {
  PowerTrace trace;
  trace.budgets.reserve(periods);
  for (std::size_t k = 0; k < periods; ++k) {
    trace.budgets.push_back(static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(min_budget),
                        static_cast<std::int64_t>(max_budget))));
  }
  return trace;
}

}  // namespace hybridcnn::faultsim
