// Intermittent-power fault model.
//
// Long-lived unattended electronics (energy-harvesting nodes, detector
// front-ends) lose power mid-inference; the Stateful-CNN line of work
// answers with checkpointed execution that resumes from non-volatile
// progress instead of restarting. A PowerTrace describes one such
// environment as a sequence of power-on step budgets; PowerSchedule is
// the cursor the checkpointed executor consults once per step.
// HybridNetwork::classify_intermittent runs layer-granular checkpointed
// inference under a trace and is bit-identical to the uninterrupted
// classification for every trace (tests/test_intermittent.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace hybridcnn::faultsim {

/// A deterministic power-cycle trace: period k of powered execution
/// completes `budgets[k]` checkpointed steps, then power fails mid-step —
/// the in-flight step's work is lost. After the last entry power is
/// stable. An empty trace is stable power; a zero budget is a brown-out
/// that makes no progress at all before failing again.
struct PowerTrace {
  std::vector<std::size_t> budgets;

  /// `periods` power-on windows of `budget` steps each.
  [[nodiscard]] static PowerTrace periodic(std::size_t budget,
                                           std::size_t periods);

  /// `periods` windows with budgets drawn uniformly from
  /// [min_budget, max_budget]; deterministic for a given Rng state.
  [[nodiscard]] static PowerTrace sampled(util::Rng& rng, std::size_t periods,
                                          std::size_t min_budget,
                                          std::size_t max_budget);
};

/// Consuming cursor over a PowerTrace.
class PowerSchedule {
 public:
  explicit PowerSchedule(const PowerTrace& trace) noexcept
      : trace_(&trace) {}

  /// Accounts one step of work in the current power-on period. Returns
  /// true if the step completes (budget remained); false if power fails
  /// while the step is in flight — its work is lost and the next period
  /// begins. Once the trace is exhausted power is stable and every step
  /// completes, so checkpointed execution always terminates.
  bool step() noexcept {
    if (period_ >= trace_->budgets.size()) return true;
    if (used_ < trace_->budgets[period_]) {
      ++used_;
      return true;
    }
    ++period_;
    used_ = 0;
    ++cycles_;
    return false;
  }

  /// Power failures observed so far.
  [[nodiscard]] std::size_t cycles() const noexcept { return cycles_; }

 private:
  const PowerTrace* trace_;
  std::size_t period_ = 0;
  std::size_t used_ = 0;
  std::size_t cycles_ = 0;
};

}  // namespace hybridcnn::faultsim
