#include "nn/alexnet.hpp"

#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/lrn.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"

namespace hybridcnn::nn {

std::unique_ptr<Sequential> make_alexnet(const AlexNetConfig& config) {
  auto net = std::make_unique<Sequential>();

  net->emplace<Conv2d>(3, 96, 11, 4, 0);  // 227 -> 55
  net->emplace<ReLU>();
  net->emplace<Lrn>();
  net->emplace<MaxPool>(3, 2);  // 55 -> 27

  net->emplace<Conv2d>(96, 256, 5, 1, 2);  // 27 -> 27
  net->emplace<ReLU>();
  net->emplace<Lrn>();
  net->emplace<MaxPool>(3, 2);  // 27 -> 13

  net->emplace<Conv2d>(256, 384, 3, 1, 1);
  net->emplace<ReLU>();
  net->emplace<Conv2d>(384, 384, 3, 1, 1);
  net->emplace<ReLU>();
  net->emplace<Conv2d>(384, 256, 3, 1, 1);
  net->emplace<ReLU>();
  net->emplace<MaxPool>(3, 2);  // 13 -> 6

  net->emplace<Flatten>();  // 256 * 6 * 6 = 9216
  net->emplace<Linear>(9216, 4096);
  net->emplace<ReLU>();
  if (config.with_dropout) net->emplace<Dropout>(0.5f);
  net->emplace<Linear>(4096, 4096);
  net->emplace<ReLU>();
  if (config.with_dropout) net->emplace<Dropout>(0.5f);
  net->emplace<Linear>(4096, config.num_classes);

  init_network(*net, config.seed);
  return net;
}

}  // namespace hybridcnn::nn
