// AlexNet (Krizhevsky et al.) for 227x227x3 input.
//
// The paper picks AlexNet "as this requires a barely acceptable for
// deterministic edge recognition 227*227*3 input image"; its first
// convolution layer — 96 filters of 11x11x3 at stride 4 — is the layer the
// hybrid architecture executes reliably and whose filters are replaced /
// pre-initialised with Sobel kernels. Groups are not modelled (the
// original splits conv2/4/5 across two GPUs purely for memory reasons).
#pragma once

#include <cstdint>
#include <memory>

#include "nn/sequential.hpp"

namespace hybridcnn::nn {

/// Construction parameters for AlexNet.
struct AlexNetConfig {
  std::size_t num_classes = 43;  ///< GTSRB has 43 classes
  std::uint64_t seed = 42;       ///< weight init seed
  bool with_dropout = true;      ///< classifier dropout (training only)
};

/// Layer indices in the Sequential returned by make_alexnet(); the hybrid
/// pipeline uses kConv1 and kAfterConv1 to splice reliable execution in.
inline constexpr std::size_t kAlexNetConv1 = 0;
inline constexpr std::size_t kAlexNetAfterConv1 = 1;

/// Builds AlexNet:
///   0 conv1 3->96 k11 s4          1 relu   2 lrn   3 maxpool 3/2
///   4 conv2 96->256 k5 p2         5 relu   6 lrn   7 maxpool 3/2
///   8 conv3 256->384 k3 p1        9 relu
///  10 conv4 384->384 k3 p1       11 relu
///  12 conv5 384->256 k3 p1       13 relu  14 maxpool 3/2
///  15 flatten
///  16 fc 9216->4096  17 relu  [18 dropout]
///  19/18 fc 4096->4096  relu  [dropout]
///  last fc 4096->num_classes (logits; apply Softmax separately)
std::unique_ptr<Sequential> make_alexnet(const AlexNetConfig& config = {});

/// Input image side length AlexNet expects.
inline constexpr std::size_t kAlexNetInput = 227;

/// Number of first-layer filters (the Fig. 4 sweep length).
inline constexpr std::size_t kAlexNetConv1Filters = 96;

}  // namespace hybridcnn::nn
