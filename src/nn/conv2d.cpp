#include "nn/conv2d.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/gemm.hpp"
#include "runtime/compute_context.hpp"

namespace hybridcnn::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      weights_(tensor::Shape{out_channels, in_channels, kernel, kernel}),
      bias_(tensor::Shape{out_channels}),
      grad_weights_(tensor::Shape{out_channels, in_channels, kernel, kernel}),
      grad_bias_(tensor::Shape{out_channels}),
      frozen_(out_channels, 0) {
  if (stride == 0) throw std::invalid_argument("Conv2d: stride must be >= 1");
}

std::size_t Conv2d::out_size(std::size_t in) const {
  const std::size_t padded = in + 2 * pad_;
  if (padded < k_) throw std::invalid_argument("Conv2d: kernel > input");
  return (padded - k_) / stride_ + 1;
}

void Conv2d::init_he(util::Rng& rng) {
  const double fan_in = static_cast<double>(in_c_ * k_ * k_);
  weights_.fill_normal(rng, 0.0f,
                       static_cast<float>(std::sqrt(2.0 / fan_in)));
  bias_.fill(0.0f);
}

void Conv2d::im2col(const float* src, std::size_t in_h, std::size_t in_w,
                    std::size_t out_h, std::size_t out_w, float* col) const {
  // col is [in_c * k * k, out_h * out_w]
  const std::size_t plane = out_h * out_w;
  for (std::size_t c = 0; c < in_c_; ++c) {
    for (std::size_t ky = 0; ky < k_; ++ky) {
      for (std::size_t kx = 0; kx < k_; ++kx) {
        float* dst = col + ((c * k_ + ky) * k_ + kx) * plane;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const auto iy = static_cast<std::int64_t>(oy * stride_ + ky) -
                          static_cast<std::int64_t>(pad_);
          if (iy < 0 || iy >= static_cast<std::int64_t>(in_h)) {
            std::memset(dst + oy * out_w, 0, out_w * sizeof(float));
            continue;
          }
          const float* srow =
              src + (c * in_h + static_cast<std::size_t>(iy)) * in_w;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const auto ix = static_cast<std::int64_t>(ox * stride_ + kx) -
                            static_cast<std::int64_t>(pad_);
            dst[oy * out_w + ox] =
                (ix < 0 || ix >= static_cast<std::int64_t>(in_w))
                    ? 0.0f
                    : srow[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void Conv2d::col2im_acc(const float* col, std::size_t in_h, std::size_t in_w,
                        std::size_t out_h, std::size_t out_w,
                        float* dst) const {
  const std::size_t plane = out_h * out_w;
  for (std::size_t c = 0; c < in_c_; ++c) {
    for (std::size_t ky = 0; ky < k_; ++ky) {
      for (std::size_t kx = 0; kx < k_; ++kx) {
        const float* src = col + ((c * k_ + ky) * k_ + kx) * plane;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const auto iy = static_cast<std::int64_t>(oy * stride_ + ky) -
                          static_cast<std::int64_t>(pad_);
          if (iy < 0 || iy >= static_cast<std::int64_t>(in_h)) continue;
          float* drow =
              dst + (c * in_h + static_cast<std::size_t>(iy)) * in_w;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const auto ix = static_cast<std::int64_t>(ox * stride_ + kx) -
                            static_cast<std::int64_t>(pad_);
            if (ix < 0 || ix >= static_cast<std::int64_t>(in_w)) continue;
            drow[static_cast<std::size_t>(ix)] += src[oy * out_w + ox];
          }
        }
      }
    }
  }
}

tensor::Tensor Conv2d::infer(const tensor::Tensor& input,
                             runtime::Workspace& ws) const {
  const auto& in = input.shape();
  if (in.rank() != 4 || in[1] != in_c_) {
    throw std::invalid_argument("Conv2d: expected [N, " +
                                std::to_string(in_c_) + ", H, W], got " +
                                in.str());
  }
  const std::size_t n = in[0];
  const std::size_t in_h = in[2];
  const std::size_t in_w = in[3];
  const std::size_t out_h = out_size(in_h);
  const std::size_t out_w = out_size(in_w);
  const std::size_t plane = out_h * out_w;
  const std::size_t ick2 = in_c_ * k_ * k_;

  tensor::Tensor output(tensor::Shape{n, out_c_, out_h, out_w});

  // Samples are independent: with enough of them, split the batch across
  // the pool, each slot drawing its im2col panel from its own workspace
  // arena. Small batches (fewer samples than slots) instead run the
  // sample loop serially on the caller's arena so the nested GEMM tile
  // loop can use the whole pool — avoids the utilisation cliff at e.g.
  // batch 2 on 8 slots.
  auto& ctx = runtime::ComputeContext::global();
  const auto sample = [&](std::size_t s, runtime::Workspace& arena) {
    runtime::Workspace::Scope scope(arena);
    float* col = arena.alloc(ick2 * plane);

    const float* src = input.data().data() + s * in_c_ * in_h * in_w;
    float* dst = output.data().data() + s * out_c_ * plane;
    im2col(src, in_h, in_w, out_h, out_w, col);
    gemm(out_c_, ick2, plane, weights_.data().data(), col, dst, ctx);
    for (std::size_t o = 0; o < out_c_; ++o) {
      const float b = bias_[o];
      float* orow = dst + o * plane;
      for (std::size_t i = 0; i < plane; ++i) orow[i] += b;
    }
  };
  if (n >= ctx.pool().slot_count()) {
    ctx.pool().parallel_for(
        0, n, [&](std::size_t s) { sample(s, ctx.workspace()); });
  } else {
    for (std::size_t s = 0; s < n; ++s) sample(s, ws);
  }

  return output;
}

tensor::Tensor Conv2d::forward_train(const tensor::Tensor& input,
                                     LayerCache& cache) {
  tensor::Tensor output =
      infer(input, runtime::ComputeContext::global().workspace());
  cache.input = input;
  return output;
}

tensor::Tensor Conv2d::forward_train(tensor::Tensor&& input,
                                     LayerCache& cache) {
  tensor::Tensor output =
      infer(input, runtime::ComputeContext::global().workspace());
  cache.input = std::move(input);
  return output;
}

namespace {
// Samples per gradient-accumulation group. Fixed per batch size (never
// derived from the thread count) so the reduction order — and therefore
// the result — is identical no matter how many threads run the groups.
constexpr std::size_t kGradGroup = 4;
// Cap on the number of groups: partial-dW scratch is groups * |dW|, so
// large batches widen the groups instead of multiplying the scratch.
constexpr std::size_t kMaxGradGroups = 16;

std::size_t grad_group_size(std::size_t n) noexcept {
  return std::max(kGradGroup, (n + kMaxGradGroups - 1) / kMaxGradGroups);
}
}  // namespace

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_output,
                                LayerCache& cache) {
  const tensor::Tensor& cached_input = cache.input;
  const auto& in = cached_input.shape();
  if (in.rank() != 4) {
    throw std::logic_error("Conv2d::backward before forward_train");
  }
  const std::size_t n = in[0];
  const std::size_t in_h = in[2];
  const std::size_t in_w = in[3];
  const std::size_t out_h = out_size(in_h);
  const std::size_t out_w = out_size(in_w);
  const std::size_t plane = out_h * out_w;
  const std::size_t ick2 = in_c_ * k_ * k_;

  if (grad_output.shape() != tensor::Shape{n, out_c_, out_h, out_w}) {
    throw std::invalid_argument("Conv2d::backward: grad shape mismatch");
  }

  tensor::Tensor grad_input(in);

  // dL/dinput is per-sample disjoint, but dW/db accumulate across the
  // batch. Samples are grouped into fixed-size blocks, each block sums
  // its contribution into a private partial buffer in sample order, and
  // the partials are reduced in block order afterwards — deterministic
  // for every thread count.
  auto& ctx = runtime::ComputeContext::global();
  const std::size_t group_size = grad_group_size(n);
  const std::size_t groups = (n + group_size - 1) / group_size;
  const std::size_t wsize = out_c_ * ick2;

  runtime::Workspace& shared = ctx.workspace();
  runtime::Workspace::Scope shared_scope(shared);
  float* partial_w = shared.alloc(groups * wsize);
  float* partial_b = shared.alloc(groups * out_c_);
  std::memset(partial_w, 0, groups * wsize * sizeof(float));
  std::memset(partial_b, 0, groups * out_c_ * sizeof(float));

  const auto run_group = [&](std::size_t g) {
    runtime::Workspace& ws = ctx.workspace();
    runtime::Workspace::Scope scope(ws);
    float* col = ws.alloc(ick2 * plane);
    float* grad_col = ws.alloc(ick2 * plane);
    float* pw = partial_w + g * wsize;
    float* pb = partial_b + g * out_c_;

    const std::size_t s_end = std::min(n, (g + 1) * group_size);
    for (std::size_t s = g * group_size; s < s_end; ++s) {
      const float* src =
          cached_input.data().data() + s * in_c_ * in_h * in_w;
      const float* gout = grad_output.data().data() + s * out_c_ * plane;
      float* gin = grad_input.data().data() + s * in_c_ * in_h * in_w;

      im2col(src, in_h, in_w, out_h, out_w, col);

      // dW[out_c, ick2] += dOut[out_c, plane] * col^T
      gemm_a_bt(out_c_, plane, ick2, gout, col, pw, ctx);

      // db[o] += sum over plane
      for (std::size_t o = 0; o < out_c_; ++o) {
        float acc = 0.0f;
        const float* grow = gout + o * plane;
        for (std::size_t i = 0; i < plane; ++i) acc += grow[i];
        pb[o] += acc;
      }

      // dcol[ick2, plane] = W^T * dOut ; then scatter back to input grads.
      gemm_at_b_assign(ick2, out_c_, plane, weights_.data().data(), gout,
                       grad_col, ctx);
      col2im_acc(grad_col, in_h, in_w, out_h, out_w, gin);
    }
  };
  // Same cliff-avoidance as forward: few groups → serial group loop with
  // pool-parallel GEMMs inside. Grouping (and thus the result) is
  // unchanged either way.
  if (groups >= ctx.pool().slot_count()) {
    ctx.pool().parallel_for(0, groups, run_group);
  } else {
    for (std::size_t g = 0; g < groups; ++g) run_group(g);
  }

  float* gw = grad_weights_.data().data();
  ctx.pool().parallel_for_chunks(
      0, wsize, 1024,
      [&](std::size_t b, std::size_t e, std::size_t /*slot*/) {
        for (std::size_t idx = b; idx < e; ++idx) {
          float acc = gw[idx];
          for (std::size_t g = 0; g < groups; ++g) {
            acc += partial_w[g * wsize + idx];
          }
          gw[idx] = acc;
        }
      });
  for (std::size_t o = 0; o < out_c_; ++o) {
    float acc = grad_bias_[o];
    for (std::size_t g = 0; g < groups; ++g) {
      acc += partial_b[g * out_c_ + o];
    }
    grad_bias_[o] = acc;
  }

  apply_freeze_masks();
  return grad_input;
}

void Conv2d::apply_freeze_masks() {
  const std::size_t filter_size = in_c_ * k_ * k_;
  for (std::size_t o = 0; o < out_c_; ++o) {
    if (frozen_[o] == 0) continue;
    float* gw = grad_weights_.data().data() + o * filter_size;
    std::memset(gw, 0, filter_size * sizeof(float));
    grad_bias_[o] = 0.0f;
  }
}

std::vector<Param> Conv2d::params() {
  return {{&weights_, &grad_weights_, "conv2d.weights"},
          {&bias_, &grad_bias_, "conv2d.bias"}};
}

tensor::Tensor Conv2d::filter(std::size_t o) const {
  if (o >= out_c_) throw std::out_of_range("Conv2d::filter");
  tensor::Tensor f(tensor::Shape{in_c_, k_, k_});
  const std::size_t filter_size = in_c_ * k_ * k_;
  std::memcpy(f.data().data(), weights_.data().data() + o * filter_size,
              filter_size * sizeof(float));
  return f;
}

void Conv2d::set_filter(std::size_t o, const tensor::Tensor& f) {
  if (o >= out_c_) throw std::out_of_range("Conv2d::set_filter");
  if (f.shape() != tensor::Shape{in_c_, k_, k_}) {
    throw std::invalid_argument("Conv2d::set_filter: filter must be " +
                                tensor::Shape{in_c_, k_, k_}.str());
  }
  const std::size_t filter_size = in_c_ * k_ * k_;
  std::memcpy(weights_.data().data() + o * filter_size, f.data().data(),
              filter_size * sizeof(float));
}

void Conv2d::set_filter_frozen(std::size_t o, bool frozen) {
  if (o >= out_c_) throw std::out_of_range("Conv2d::set_filter_frozen");
  frozen_[o] = frozen ? 1 : 0;
}

bool Conv2d::filter_frozen(std::size_t o) const {
  if (o >= out_c_) throw std::out_of_range("Conv2d::filter_frozen");
  return frozen_[o] != 0;
}

}  // namespace hybridcnn::nn
