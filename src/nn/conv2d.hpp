// 2-D convolution layer (im2col + GEMM forward, full backward) with the
// per-filter surgery hooks the paper's experiments need: individual
// filters can be read, replaced (e.g. by Sobel kernels) and frozen so the
// optimizer leaves them untouched — the "pre-initialise one of the
// three-dimensional AlexNet filters to Sobel filters and train the network
// keeping this initialisation constant" workflow of Section III.B.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hybridcnn::nn {

/// Convolution over batched NCHW input with square kernels.
/// Cache usage: `input` (the forward input, consumed by backward).
class Conv2d final : public Layer {
 public:
  /// Creates the layer with zero weights; callers initialise via
  /// init_he() or set explicit weights.
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t pad);

  [[nodiscard]] tensor::Tensor infer(const tensor::Tensor& input,
                                     runtime::Workspace& ws) const override;
  tensor::Tensor forward_train(const tensor::Tensor& input,
                               LayerCache& cache) override;
  tensor::Tensor forward_train(tensor::Tensor&& input,
                               LayerCache& cache) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output,
                          LayerCache& cache) override;

  std::vector<Param> params() override;
  [[nodiscard]] std::string name() const override { return "conv2d"; }

  /// He-normal weight init (fan-in), zero bias.
  void init_he(util::Rng& rng);

  [[nodiscard]] std::size_t in_channels() const noexcept { return in_c_; }
  [[nodiscard]] std::size_t out_channels() const noexcept { return out_c_; }
  [[nodiscard]] std::size_t kernel() const noexcept { return k_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  [[nodiscard]] std::size_t pad() const noexcept { return pad_; }

  [[nodiscard]] const tensor::Tensor& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] tensor::Tensor& weights() noexcept { return weights_; }
  [[nodiscard]] const tensor::Tensor& bias() const noexcept { return bias_; }
  [[nodiscard]] tensor::Tensor& bias() noexcept { return bias_; }

  // -------------------------------------------------- filter surgery

  /// Copy of filter `o` as an [in_c, k, k] tensor.
  [[nodiscard]] tensor::Tensor filter(std::size_t o) const;

  /// Replaces filter `o`; `f` must be [in_c, k, k].
  void set_filter(std::size_t o, const tensor::Tensor& f);

  /// Marks filter `o` (weights + bias element) frozen: its gradients are
  /// zeroed after every backward, so no optimizer can move it.
  void set_filter_frozen(std::size_t o, bool frozen);
  [[nodiscard]] bool filter_frozen(std::size_t o) const;

  /// Output spatial size for an input of `in` pixels.
  [[nodiscard]] std::size_t out_size(std::size_t in) const;

 private:
  void im2col(const float* src, std::size_t in_h, std::size_t in_w,
              std::size_t out_h, std::size_t out_w, float* col) const;
  void col2im_acc(const float* col, std::size_t in_h, std::size_t in_w,
                  std::size_t out_h, std::size_t out_w, float* dst) const;
  void apply_freeze_masks();

  std::size_t in_c_;
  std::size_t out_c_;
  std::size_t k_;
  std::size_t stride_;
  std::size_t pad_;

  tensor::Tensor weights_;  // OIHW
  tensor::Tensor bias_;     // O
  tensor::Tensor grad_weights_;
  tensor::Tensor grad_bias_;
  std::vector<std::uint8_t> frozen_;
};

}  // namespace hybridcnn::nn
