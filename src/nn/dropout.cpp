#include "nn/dropout.hpp"

#include <memory>
#include <stdexcept>

namespace hybridcnn::nn {

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), seed_(seed) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

tensor::Tensor Dropout::infer(const tensor::Tensor& input,
                              runtime::Workspace& /*ws*/) const {
  return input;  // inverted dropout: inference is the identity
}

tensor::Tensor Dropout::infer(tensor::Tensor&& input,
                              runtime::Workspace& /*ws*/) const {
  return std::move(input);  // identity without the copy
}

tensor::Tensor Dropout::forward_train(const tensor::Tensor& input,
                                      LayerCache& cache) {
  if (p_ == 0.0f) {
    cache.aux = tensor::Tensor();  // identity; backward passes grads through
    return input;
  }
  if (!cache.rng) {
    // (layer seed, context stream): stream 0 — the serial trainer and the
    // legacy wrappers — reproduces the historical layer-owned generator;
    // micro-batch contexts get statistically independent streams.
    cache.rng = std::make_unique<util::Rng>(seed_, cache.rng_stream);
  }
  const float keep = 1.0f - p_;
  cache.aux = tensor::Tensor(input.shape());
  tensor::Tensor out(input.shape());
  for (std::size_t i = 0; i < input.count(); ++i) {
    const float m = cache.rng->bernoulli(p_) ? 0.0f : 1.0f / keep;
    cache.aux[i] = m;
    out[i] = input[i] * m;
  }
  return out;
}

tensor::Tensor Dropout::backward(const tensor::Tensor& grad_output,
                                 LayerCache& cache) {
  // No recorded mask: the preceding forward was an identity (p == 0, or
  // an inference-mode forward cleared the cache). Gradients pass through
  // unscaled — deliberately not an error, because dropout's inference
  // behaviour *is* the identity; this mirrors the historical layer.
  if (cache.aux.count() == 0) return grad_output;
  if (grad_output.shape() != cache.aux.shape()) {
    throw std::invalid_argument("Dropout::backward: shape mismatch");
  }
  tensor::Tensor grad(grad_output.shape());
  for (std::size_t i = 0; i < grad.count(); ++i) {
    grad[i] = grad_output[i] * cache.aux[i];
  }
  return grad;
}

}  // namespace hybridcnn::nn
