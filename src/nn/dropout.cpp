#include "nn/dropout.hpp"

#include <stdexcept>

namespace hybridcnn::nn {

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

tensor::Tensor Dropout::forward(const tensor::Tensor& input) {
  if (!training_ || p_ == 0.0f) {
    mask_ = tensor::Tensor();  // identity; backward passes grads through
    return input;
  }
  const float keep = 1.0f - p_;
  mask_ = tensor::Tensor(input.shape());
  tensor::Tensor out(input.shape());
  for (std::size_t i = 0; i < input.count(); ++i) {
    const float m = rng_.bernoulli(p_) ? 0.0f : 1.0f / keep;
    mask_[i] = m;
    out[i] = input[i] * m;
  }
  return out;
}

tensor::Tensor Dropout::backward(const tensor::Tensor& grad_output) {
  if (mask_.count() == 0) return grad_output;  // was identity
  if (grad_output.shape() != mask_.shape()) {
    throw std::invalid_argument("Dropout::backward: shape mismatch");
  }
  tensor::Tensor grad(grad_output.shape());
  for (std::size_t i = 0; i < grad.count(); ++i) {
    grad[i] = grad_output[i] * mask_[i];
  }
  return grad;
}

}  // namespace hybridcnn::nn
