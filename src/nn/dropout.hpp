// Inverted dropout: identity at inference, random masking during training.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace hybridcnn::nn {

/// Drops activations with probability p during training and rescales the
/// survivors by 1/(1-p), so inference is the identity (inverted dropout).
/// Cache usage: `aux` (the scale-factor mask applied in the last training
/// forward), `rng` (the mask stream — owned by the cache context, created
/// on first use from (layer seed, context rng_stream), so each concurrent
/// micro-batch context draws an independent deterministic stream and
/// stream 0 replays the historical layer-owned generator). A backward
/// with no recorded mask passes gradients through unchanged — the
/// identity, matching dropout's inference behaviour — rather than
/// throwing like state-caching layers do.
class Dropout final : public Layer {
 public:
  /// p in [0, 1); throws std::invalid_argument otherwise.
  explicit Dropout(float p, std::uint64_t seed = 0xD20);

  [[nodiscard]] tensor::Tensor infer(const tensor::Tensor& input,
                                     runtime::Workspace& ws) const override;
  [[nodiscard]] tensor::Tensor infer(tensor::Tensor&& input,
                                     runtime::Workspace& ws) const override;
  tensor::Tensor forward_train(const tensor::Tensor& input,
                               LayerCache& cache) override;
  using Layer::forward_train;
  tensor::Tensor backward(const tensor::Tensor& grad_output,
                          LayerCache& cache) override;

  [[nodiscard]] std::string name() const override { return "dropout"; }

 private:
  float p_;
  std::uint64_t seed_;
};

}  // namespace hybridcnn::nn
