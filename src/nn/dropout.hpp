// Inverted dropout: identity at inference, random masking during training.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace hybridcnn::nn {

/// Drops activations with probability p during training and rescales the
/// survivors by 1/(1-p), so inference is the identity (inverted dropout).
class Dropout final : public Layer {
 public:
  /// p in [0, 1); throws std::invalid_argument otherwise. The mask stream
  /// is owned by the layer and seeded deterministically.
  explicit Dropout(float p, std::uint64_t seed = 0xD20);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "dropout"; }

 private:
  float p_;
  util::Rng rng_;
  tensor::Tensor mask_;  // scale factors applied in the last forward
};

}  // namespace hybridcnn::nn
