#include "nn/filters.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/conv2d.hpp"

namespace hybridcnn::nn {

namespace {

std::vector<float> convolve(const std::vector<float>& a,
                            const std::vector<float>& b) {
  std::vector<float> out(a.size() + b.size() - 1, 0.0f);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

std::vector<float> binomial(std::size_t n) {
  std::vector<float> row{1.0f};
  for (std::size_t i = 1; i < n; ++i) row = convolve(row, {1.0f, 1.0f});
  return row;
}

}  // namespace

tensor::Tensor binomial_row(std::size_t n) {
  if (n == 0) throw std::invalid_argument("binomial_row: n must be >= 1");
  return {tensor::Shape{n}, binomial(n)};
}

tensor::Tensor difference_row(std::size_t n) {
  if (n < 3 || n % 2 == 0) {
    throw std::invalid_argument("difference_row: n must be odd and >= 3");
  }
  const std::vector<float> diff =
      convolve(binomial(n - 2), {-1.0f, 0.0f, 1.0f});
  return {tensor::Shape{n}, diff};
}

tensor::Tensor sobel_kernel(std::size_t n, SobelAxis axis, bool normalized) {
  const tensor::Tensor smooth = binomial_row(n);
  const tensor::Tensor diff = difference_row(n);

  float scale = 1.0f;
  if (normalized) {
    float smooth_sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i) smooth_sum += smooth[i];
    float pos_diff = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      if (diff[i] > 0.0f) pos_diff += diff[i];
    }
    scale = 1.0f / (smooth_sum * pos_diff);
  }

  tensor::Tensor k(tensor::Shape{n, n});
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      const float v = (axis == SobelAxis::kX) ? smooth[y] * diff[x]
                                              : diff[y] * smooth[x];
      k[y * n + x] = v * scale;
    }
  }
  return k;
}

tensor::Tensor sobel_filter(std::size_t channels, std::size_t n,
                            bool normalized) {
  if (channels == 0) {
    throw std::invalid_argument("sobel_filter: channels must be >= 1");
  }
  const tensor::Tensor kx = sobel_kernel(n, SobelAxis::kX, normalized);
  const tensor::Tensor ky = sobel_kernel(n, SobelAxis::kY, normalized);
  tensor::Tensor f(tensor::Shape{channels, n, n});
  for (std::size_t c = 0; c < channels; ++c) {
    const tensor::Tensor& src = (c % 2 == 0) ? kx : ky;
    for (std::size_t i = 0; i < n * n; ++i) {
      f[c * n * n + i] = src[i];
    }
  }
  return f;
}

tensor::Tensor sobel_axis_filter(std::size_t channels, std::size_t n,
                                 SobelAxis axis, bool normalized) {
  if (channels == 0) {
    throw std::invalid_argument("sobel_axis_filter: channels must be >= 1");
  }
  const tensor::Tensor k = sobel_kernel(n, axis, normalized);
  tensor::Tensor f(tensor::Shape{channels, n, n});
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t i = 0; i < n * n; ++i) {
      f[c * n * n + i] = k[i];
    }
  }
  return f;
}

tensor::Tensor replace_filter_with_sobel(Conv2d& conv, std::size_t o) {
  tensor::Tensor previous = conv.filter(o);
  conv.set_filter(o, sobel_filter(conv.in_channels(), conv.kernel()));
  return previous;
}

}  // namespace hybridcnn::nn
