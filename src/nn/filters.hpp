// Sobel kernel construction and conv-filter surgery.
//
// The paper replaces learnt first-layer AlexNet filters (11x11x3) with "a
// Sobel-x, Sobel-y, Sobel-x filter" across the three input channels. Sobel
// operators generalise beyond 3x3 by composing a binomial smoothing vector
// with a central-difference vector; sobel_kernel() implements that
// construction for any odd size, so the same code produces the classic 3x3
// operator for the vision qualifier and the 11x11 operators inserted into
// AlexNet.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace hybridcnn::nn {

class Conv2d;

/// Gradient axis of a Sobel operator.
enum class SobelAxis { kX, kY };

/// Binomial (Pascal) smoothing row of length n, e.g. n=3 -> {1, 2, 1}.
tensor::Tensor binomial_row(std::size_t n);

/// Central-difference row of length n (odd), e.g. n=3 -> {-1, 0, 1},
/// n=5 -> {-1, -2, 0, 2, 1}: conv(binomial(n-2), {-1, 0, 1}).
tensor::Tensor difference_row(std::size_t n);

/// n x n Sobel kernel for the given axis (n odd, n >= 3). When
/// `normalized`, the kernel is scaled so the positive taps sum to 1, which
/// keeps activation magnitudes comparable to learnt filters.
tensor::Tensor sobel_kernel(std::size_t n, SobelAxis axis,
                            bool normalized = true);

/// Multi-channel filter [channels, n, n] with the per-channel axis pattern
/// the paper uses: x, y, x, y, ... (three channels -> Sobel-x/y/x).
tensor::Tensor sobel_filter(std::size_t channels, std::size_t n,
                            bool normalized = true);

/// Multi-channel filter [channels, n, n] with the SAME axis on every
/// channel. A pair of these (one x, one y) yields a proper gradient
/// magnitude — the extension that fixes the directional nulls of the
/// paper's single mixed x/y/x filter (see QualifierSource).
tensor::Tensor sobel_axis_filter(std::size_t channels, std::size_t n,
                                 SobelAxis axis, bool normalized = true);

/// Replaces filter `o` of `conv` with the Sobel x/y/x filter; returns the
/// previous filter so callers can restore it (the Fig. 4 sweep).
tensor::Tensor replace_filter_with_sobel(Conv2d& conv, std::size_t o);

}  // namespace hybridcnn::nn
