#include "nn/flatten.hpp"

#include <stdexcept>

namespace hybridcnn::nn {

namespace {

tensor::Tensor flatten_impl(const tensor::Tensor& input) {
  const auto& in = input.shape();
  if (in.rank() < 2) {
    throw std::invalid_argument("Flatten: expected rank >= 2, got " +
                                in.str());
  }
  tensor::Tensor out = input;
  out.reshape(tensor::Shape{in[0], input.count() / in[0]});
  return out;
}

}  // namespace

tensor::Tensor Flatten::infer(const tensor::Tensor& input,
                              runtime::Workspace& /*ws*/) const {
  return flatten_impl(input);
}

tensor::Tensor Flatten::infer(tensor::Tensor&& input,
                              runtime::Workspace& /*ws*/) const {
  const auto& in = input.shape();
  if (in.rank() < 2) {
    throw std::invalid_argument("Flatten: expected rank >= 2, got " +
                                in.str());
  }
  input.reshape(tensor::Shape{in[0], input.count() / in[0]});
  return std::move(input);
}

tensor::Tensor Flatten::forward_train(const tensor::Tensor& input,
                                      LayerCache& cache) {
  tensor::Tensor out = flatten_impl(input);  // validates rank first
  cache.in_shape = input.shape();
  return out;
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_output,
                                 LayerCache& cache) {
  if (cache.in_shape.rank() < 2) {
    throw std::logic_error("Flatten::backward before forward_train");
  }
  if (grad_output.count() != cache.in_shape.count()) {
    throw std::invalid_argument("Flatten::backward: count mismatch");
  }
  tensor::Tensor grad = grad_output;
  grad.reshape(cache.in_shape);
  return grad;
}

}  // namespace hybridcnn::nn
