#include "nn/flatten.hpp"

#include <stdexcept>

namespace hybridcnn::nn {

tensor::Tensor Flatten::forward(const tensor::Tensor& input) {
  const auto& in = input.shape();
  if (in.rank() < 2) {
    throw std::invalid_argument("Flatten: expected rank >= 2, got " +
                                in.str());
  }
  cached_in_shape_ = in;
  tensor::Tensor out = input;
  out.reshape(tensor::Shape{in[0], input.count() / in[0]});
  return out;
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_output) {
  if (grad_output.count() != cached_in_shape_.count()) {
    throw std::invalid_argument("Flatten::backward: count mismatch");
  }
  tensor::Tensor grad = grad_output;
  grad.reshape(cached_in_shape_);
  return grad;
}

}  // namespace hybridcnn::nn
