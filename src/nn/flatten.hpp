// Flattens NCHW activations to [N, C*H*W] for the classifier head.
#pragma once

#include "nn/layer.hpp"

namespace hybridcnn::nn {

/// Shape adapter between convolutional and dense stages.
/// Cache usage: `in_shape` (restored onto the gradient by backward).
class Flatten final : public Layer {
 public:
  [[nodiscard]] tensor::Tensor infer(const tensor::Tensor& input,
                                     runtime::Workspace& ws) const override;
  [[nodiscard]] tensor::Tensor infer(tensor::Tensor&& input,
                                     runtime::Workspace& ws) const override;
  tensor::Tensor forward_train(const tensor::Tensor& input,
                               LayerCache& cache) override;
  using Layer::forward_train;
  tensor::Tensor backward(const tensor::Tensor& grad_output,
                          LayerCache& cache) override;

  [[nodiscard]] std::string name() const override { return "flatten"; }
};

}  // namespace hybridcnn::nn
