// Flattens NCHW activations to [N, C*H*W] for the classifier head.
#pragma once

#include "nn/layer.hpp"

namespace hybridcnn::nn {

/// Shape adapter between convolutional and dense stages.
class Flatten final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "flatten"; }

 private:
  tensor::Shape cached_in_shape_;
};

}  // namespace hybridcnn::nn
