#include "nn/fwd_cache.hpp"

namespace hybridcnn::nn {

// Out of line: LayerCache holds a unique_ptr to the then-incomplete
// FwdCache, so its special members must see the full definition.
LayerCache::LayerCache() = default;
LayerCache::~LayerCache() = default;
LayerCache::LayerCache(LayerCache&&) noexcept = default;
LayerCache& LayerCache::operator=(LayerCache&&) noexcept = default;

void LayerCache::clear() {
  input = tensor::Tensor();
  aux = tensor::Tensor();
  in_shape = tensor::Shape{};
  argmax.clear();
  if (nested) nested->clear();
}

LayerCache& FwdCache::slot(std::size_t i) {
  while (i >= slots_.size()) {
    LayerCache& s = slots_.emplace_back();
    s.rng_stream = rng_stream_;
  }
  return slots_[i];
}

void FwdCache::clear() {
  for (LayerCache& s : slots_) s.clear();
}

}  // namespace hybridcnn::nn
