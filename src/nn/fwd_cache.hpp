// Explicit forward-cache contexts for the CNN engine.
//
// Layers used to stash their backward state (cached inputs, LRN
// denominators, pooling argmax routes, dropout masks) in member fields,
// which made every forward a mutation and ruled out running one shared
// model from many threads. The state now lives in caller-owned cache
// objects: a training forward writes into the LayerCache it is handed,
// backward reads the same cache, and the const inference path touches no
// caches at all. Whoever owns the cache owns the micro-batch — Trainer
// keeps one FwdCache per micro-batch slot.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hybridcnn::nn {

class FwdCache;

/// Backward state one layer records during one training forward. A plain
/// bag of fields rather than a per-layer hierarchy: every layer uses the
/// subset it needs and documents the mapping in its header.
struct LayerCache {
  LayerCache();
  ~LayerCache();
  LayerCache(LayerCache&&) noexcept;
  LayerCache& operator=(LayerCache&&) noexcept;
  LayerCache(const LayerCache&) = delete;
  LayerCache& operator=(const LayerCache&) = delete;

  /// Input as seen by forward (Conv2d, Linear, ReLU, Lrn).
  tensor::Tensor input;
  /// Secondary tensor: Lrn denominators, Softmax output, Dropout mask.
  tensor::Tensor aux;
  /// Input shape for pure shape adapters (Flatten, MaxPool).
  tensor::Shape in_shape{};
  /// MaxPool argmax routing (flat input index per output element).
  std::vector<std::size_t> argmax;
  /// Dropout mask stream. Owned by the cache so concurrent micro-batch
  /// contexts draw independent streams: the layer creates it lazily from
  /// (layer seed, `rng_stream`) and it persists across steps, so the
  /// default stream 0 replays the exact stream the old layer-owned
  /// generator produced.
  std::unique_ptr<util::Rng> rng;
  /// RNG stream id stamped by the owning FwdCache (0 for the serial /
  /// legacy context; Trainer numbers its micro-batch contexts).
  std::uint64_t rng_stream = 0;
  /// Child caches of a container layer (Sequential).
  std::unique_ptr<FwdCache> nested;

  /// Drops all recorded forward state (a later backward fails loudly).
  /// The dropout rng stream is kept: clearing state must not replay
  /// masks.
  void clear();
};

/// One forward-cache context: a LayerCache per layer of a Sequential,
/// indexed by layer position and grown on demand. One FwdCache serves one
/// forward/backward pair at a time; concurrent micro-batches need one
/// context each (they are cheap and reusable across steps).
class FwdCache {
 public:
  FwdCache() = default;
  /// Context with an explicit RNG stream id: every slot (and nested
  /// child context) draws dropout masks from (layer seed, `rng_stream`),
  /// so concurrently trained micro-batches get statistically
  /// independent, deterministic streams.
  explicit FwdCache(std::uint64_t rng_stream) : rng_stream_(rng_stream) {}

  /// Cache slot of layer `i`, created on first use.
  [[nodiscard]] LayerCache& slot(std::size_t i);

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  [[nodiscard]] std::uint64_t rng_stream() const noexcept {
    return rng_stream_;
  }

  /// Clears every slot (see LayerCache::clear).
  void clear();

 private:
  std::vector<LayerCache> slots_;
  std::uint64_t rng_stream_ = 0;
};

}  // namespace hybridcnn::nn
