#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "nn/gemm_ref.hpp"
#include "runtime/isa.hpp"
#include "runtime/workspace.hpp"

namespace hybridcnn::nn {

namespace {

// Register tile of the micro-kernel, sized from the shared ISA ladder
// (runtime/isa.hpp) so the accumulator block fills (but does not spill)
// the vector register file: 16 zmm accumulators on AVX-512 (8x2 vectors),
// 12 ymm on AVX (6x2), 8 on 128-bit targets (4x2). Other compilers get a
// correct scalar fallback with the 128-bit tile shape. GCC's
// auto-vectoriser does not handle this loop nest (tested: ~10x slower),
// hence the explicit vectors.
#ifdef HYBRIDCNN_ISA_SIMD
using Vf = runtime::isa::VecF;
constexpr std::size_t kVec = runtime::isa::kFloatLanes;
constexpr std::size_t kMr = kVec == 16 ? 8 : kVec == 8 ? 6 : 4;
constexpr std::size_t kNrVec = 2;
#define HYBRIDCNN_GEMM_SIMD 1
#else
constexpr std::size_t kVec = 4;
constexpr std::size_t kMr = 4;
constexpr std::size_t kNrVec = 2;
#endif
constexpr std::size_t kNr = kVec * kNrVec;
// K-panel depth: one A micro-panel (kMr * kKc floats) plus one B
// micro-panel (kNr * kKc floats) stay cache-resident.
constexpr std::size_t kKc = 256;
// Below this op count the packing + dispatch overhead beats the win;
// fall through to the reference kernels.
constexpr std::size_t kSmallProblem = 48 * 48 * 48;

#ifdef HYBRIDCNN_GEMM_SIMD
using runtime::isa::splat;
#endif

/// Element accessor for a logical [rows x cols] matrix that may be stored
/// transposed: stored row-major [rows x cols] (ld = cols) or, when
/// `trans`, as [cols x rows] (ld = rows).
inline std::size_t at(std::size_t r, std::size_t c, std::size_t ld,
                      bool trans) noexcept {
  return trans ? c * ld + r : r * ld + c;
}

/// Packs A panel rows [i0, i0+mr) x cols [kb, kb+kc) into p-major
/// micro-panel layout dst[p * kMr + r], zero-padding rows past mr.
void pack_a_panel(const float* a, std::size_t lda, bool trans,
                  std::size_t i0, std::size_t mr, std::size_t kb,
                  std::size_t kc, float* dst) {
  for (std::size_t p = 0; p < kc; ++p) {
    for (std::size_t r = 0; r < kMr; ++r) {
      dst[p * kMr + r] =
          r < mr ? a[at(i0 + r, kb + p, lda, trans)] : 0.0f;
    }
  }
}

/// Packs B panel rows [kb, kb+kc) x cols [j0, j0+nr) into p-major
/// micro-panel layout dst[p * kNr + c], zero-padding cols past nr.
void pack_b_panel(const float* b, std::size_t ldb, bool trans,
                  std::size_t j0, std::size_t nr, std::size_t kb,
                  std::size_t kc, float* dst) {
  for (std::size_t p = 0; p < kc; ++p) {
    for (std::size_t c = 0; c < kNr; ++c) {
      dst[p * kNr + c] =
          c < nr ? b[at(kb + p, j0 + c, ldb, trans)] : 0.0f;
    }
  }
}

/// acc[kMr x kNr] = Apanel * Bpanel over kc (acc fully overwritten).
#ifdef HYBRIDCNN_GEMM_SIMD
void micro_kernel(const float* __restrict ap, const float* __restrict bp,
                  std::size_t kc, float* __restrict acc) {
  Vf a[kMr][kNrVec];
  for (auto& row : a) {
    for (auto& v : row) v = Vf{};
  }
  for (std::size_t p = 0; p < kc; ++p) {
    Vf b[kNrVec];
    for (std::size_t q = 0; q < kNrVec; ++q) {
      b[q] = runtime::isa::loadu(bp + p * kNr + q * kVec);
    }
    for (std::size_t i = 0; i < kMr; ++i) {
      const Vf av = splat(ap[p * kMr + i]);
      for (std::size_t q = 0; q < kNrVec; ++q) a[i][q] += av * b[q];
    }
  }
  for (std::size_t i = 0; i < kMr; ++i) {
    for (std::size_t q = 0; q < kNrVec; ++q) {
      runtime::isa::storeu(acc + i * kNr + q * kVec, a[i][q]);
    }
  }
}
#else
void micro_kernel(const float* ap, const float* bp, std::size_t kc,
                  float* acc) {
  for (std::size_t x = 0; x < kMr * kNr; ++x) acc[x] = 0.0f;
  for (std::size_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMr;
    const float* brow = bp + p * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const float av = arow[i];
      float* crow = acc + i * kNr;
      for (std::size_t j = 0; j < kNr; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}
#endif

/// Blocked driver: C[m x n] (+)= op(A) * op(B) with op(A) logically
/// [m x k] and op(B) logically [k x n]. `accumulate` selects += vs =.
///
/// Loop order is kb (serial) -> pack panels -> C tiles (parallel). Each C
/// element is accumulated in fixed k order inside one tile, so the result
/// does not depend on the thread count.
void gemm_blocked(std::size_t m, std::size_t k, std::size_t n,
                  const float* a, std::size_t lda, bool trans_a,
                  const float* b, std::size_t ldb, bool trans_b, float* c,
                  bool accumulate, runtime::ComputeContext& ctx) {
  const std::size_t mblocks = (m + kMr - 1) / kMr;
  const std::size_t nblocks = (n + kNr - 1) / kNr;

  runtime::Workspace& shared = ctx.workspace();
  runtime::Workspace::Scope scope(shared);
  float* apack = shared.alloc(mblocks * kMr * kKc);
  float* bpack = shared.alloc(nblocks * kNr * kKc);

  for (std::size_t kb = 0; kb < k; kb += kKc) {
    const std::size_t kc = std::min(kKc, k - kb);
    const bool acc_tile = accumulate || kb > 0;

    // One dispatch packs both panels: indices [0, mblocks) are A panels,
    // [mblocks, mblocks + nblocks) are B panels — disjoint writes.
    ctx.pool().parallel_for(0, mblocks + nblocks, [&](std::size_t t) {
      if (t < mblocks) {
        const std::size_t ib = t;
        pack_a_panel(a, lda, trans_a, ib * kMr, std::min(kMr, m - ib * kMr),
                     kb, kc, apack + ib * kMr * kKc);
      } else {
        const std::size_t jb = t - mblocks;
        pack_b_panel(b, ldb, trans_b, jb * kNr, std::min(kNr, n - jb * kNr),
                     kb, kc, bpack + jb * kNr * kKc);
      }
    });

    // Row-major tile order: consecutive tiles in a chunk reuse one A
    // micro-panel.
    ctx.pool().parallel_for(0, mblocks * nblocks, [&](std::size_t t) {
      const std::size_t ib = t / nblocks;
      const std::size_t jb = t % nblocks;
      const std::size_t i0 = ib * kMr;
      const std::size_t j0 = jb * kNr;
      const std::size_t mr = std::min(kMr, m - i0);
      const std::size_t nr = std::min(kNr, n - j0);

      float acc[kMr * kNr];  // fully written by the micro-kernel
      micro_kernel(apack + ib * kMr * kKc, bpack + jb * kNr * kKc, kc, acc);

      for (std::size_t i = 0; i < mr; ++i) {
        float* crow = c + (i0 + i) * n + j0;
        const float* arow = acc + i * kNr;
        if (acc_tile) {
          for (std::size_t j = 0; j < nr; ++j) crow[j] += arow[j];
        } else {
          for (std::size_t j = 0; j < nr; ++j) crow[j] = arow[j];
        }
      }
    });
  }
}

inline bool small_problem(std::size_t m, std::size_t k,
                          std::size_t n) noexcept {
  return m * k * n <= kSmallProblem;
}

}  // namespace

void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c, runtime::ComputeContext& ctx) {
  if (m == 0 || n == 0) return;
  if (k == 0 || small_problem(m, k, n)) {
    ref::gemm(m, k, n, a, b, c);
    return;
  }
  gemm_blocked(m, k, n, a, k, false, b, n, false, c, /*accumulate=*/false,
               ctx);
}

void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c) {
  if (m == 0 || n == 0) return;
  if (k == 0 || small_problem(m, k, n)) {
    ref::gemm(m, k, n, a, b, c);
    return;
  }
  gemm(m, k, n, a, b, c, runtime::ComputeContext::global());
}

void gemm_acc(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c, runtime::ComputeContext& ctx) {
  if (small_problem(m, k, n)) {
    ref::gemm_acc(m, k, n, a, b, c);
    return;
  }
  gemm_blocked(m, k, n, a, k, false, b, n, false, c, /*accumulate=*/true,
               ctx);
}

void gemm_acc(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c) {
  if (small_problem(m, k, n)) {
    ref::gemm_acc(m, k, n, a, b, c);
    return;
  }
  gemm_acc(m, k, n, a, b, c, runtime::ComputeContext::global());
}

void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c, runtime::ComputeContext& ctx) {
  if (small_problem(m, k, n)) {
    ref::gemm_at_b(m, k, n, a, b, c);
    return;
  }
  gemm_blocked(m, k, n, a, m, true, b, n, false, c, /*accumulate=*/true,
               ctx);
}

void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c) {
  if (small_problem(m, k, n)) {
    ref::gemm_at_b(m, k, n, a, b, c);
    return;
  }
  gemm_at_b(m, k, n, a, b, c, runtime::ComputeContext::global());
}

void gemm_at_b_assign(std::size_t m, std::size_t k, std::size_t n,
                      const float* a, const float* b, float* c,
                      runtime::ComputeContext& ctx) {
  if (m == 0 || n == 0) return;
  if (k == 0 || small_problem(m, k, n)) {
    std::memset(c, 0, m * n * sizeof(float));
    ref::gemm_at_b(m, k, n, a, b, c);
    return;
  }
  gemm_blocked(m, k, n, a, m, true, b, n, false, c, /*accumulate=*/false,
               ctx);
}

void gemm_at_b_assign(std::size_t m, std::size_t k, std::size_t n,
                      const float* a, const float* b, float* c) {
  if (m == 0 || n == 0) return;
  if (k == 0 || small_problem(m, k, n)) {
    std::memset(c, 0, m * n * sizeof(float));
    ref::gemm_at_b(m, k, n, a, b, c);
    return;
  }
  gemm_at_b_assign(m, k, n, a, b, c, runtime::ComputeContext::global());
}

void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c, runtime::ComputeContext& ctx) {
  if (small_problem(m, k, n)) {
    ref::gemm_a_bt(m, k, n, a, b, c);
    return;
  }
  gemm_blocked(m, k, n, a, k, false, b, k, true, c, /*accumulate=*/true,
               ctx);
}

void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c) {
  if (small_problem(m, k, n)) {
    ref::gemm_a_bt(m, k, n, a, b, c);
    return;
  }
  gemm_a_bt(m, k, n, a, b, c, runtime::ComputeContext::global());
}

}  // namespace hybridcnn::nn
