// Dense matrix multiply used by the convolution (im2col) and linear
// layers. Row-major throughout.
//
// The kernels are cache-blocked and panel-packed (GotoBLAS-style KC/MR/NR
// blocking with a register-tiled micro-kernel) and split C tiles across
// the runtime thread pool. The K dimension is never parallelised and the
// per-element accumulation order is a pure function of the problem shape,
// so results are bit-identical regardless of thread count — the property
// the fault-campaign analysis relies on. Small problems fall through to
// the naive reference kernels (nn/gemm_ref.hpp) where packing overhead
// would dominate.
//
// Every operation, including a multiplication by zero, is executed: the
// reliability analysis depends on knowing exactly which scalar operations
// run, and skipping zero operands would change NaN/Inf propagation.
#pragma once

#include <cstddef>

#include "runtime/compute_context.hpp"

namespace hybridcnn::nn {

// Each kernel comes in two overloads: one taking the ComputeContext to
// run on, and one that resolves the global context lazily — only after
// the small-problem check, so callers doing nothing but tiny GEMMs never
// spin up the global thread pool.

/// C[m x n] = A[m x k] * B[k x n]  (C is overwritten).
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c, runtime::ComputeContext& ctx);
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c);

/// C[m x n] += A[m x k] * B[k x n].
void gemm_acc(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c, runtime::ComputeContext& ctx);
void gemm_acc(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c);

/// C[m x n] += A^T[k x m] * B[k x n]  (A stored k-major, i.e. [k x m]).
void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c, runtime::ComputeContext& ctx);
void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c);

/// C[m x n] = A^T[k x m] * B[k x n] (C is overwritten — saves the callers
/// that want a fresh product the memset + accumulate round trip).
void gemm_at_b_assign(std::size_t m, std::size_t k, std::size_t n,
                      const float* a, const float* b, float* c,
                      runtime::ComputeContext& ctx);
void gemm_at_b_assign(std::size_t m, std::size_t k, std::size_t n,
                      const float* a, const float* b, float* c);

/// C[m x n] += A[m x k] * B^T[n x k]  (B stored n-major, i.e. [n x k]).
void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c, runtime::ComputeContext& ctx);
void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c);

}  // namespace hybridcnn::nn
