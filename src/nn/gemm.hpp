// Minimal dense matrix multiply used by the convolution (im2col) and
// linear layers. Row-major throughout. Not tuned beyond a cache-friendly
// loop order — the library's subject is reliability, not peak FLOPs — but
// fast enough to stand in for the paper's "native TensorFlow execution"
// reference row in Table 1.
#pragma once

#include <cstddef>

namespace hybridcnn::nn {

/// C[m x n] = A[m x k] * B[k x n]  (C is overwritten).
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c);

/// C[m x n] += A[m x k] * B[k x n].
void gemm_acc(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c);

/// C[m x n] += A^T[k x m] * B[k x n]  (A stored k-major, i.e. [k x m]).
void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c);

/// C[m x n] += A[m x k] * B^T[n x k]  (B stored n-major, i.e. [n x k]).
void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c);

}  // namespace hybridcnn::nn
