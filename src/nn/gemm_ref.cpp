#include "nn/gemm_ref.hpp"

#include <cstring>

namespace hybridcnn::nn::ref {

void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c) {
  std::memset(c, 0, m * n * sizeof(float));
  gemm_acc(m, k, n, a, b, c);
}

void gemm_acc(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c) {
  // i-k-j order: the inner loop streams B and C rows, which autovectorises.
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      const float* brow = b + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c) {
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        acc += arow[p] * brow[p];
      }
      crow[j] += acc;
    }
  }
}

}  // namespace hybridcnn::nn::ref
