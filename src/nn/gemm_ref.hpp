// Naive single-threaded GEMM reference kernels.
//
// These are the seed library's original loop nests (minus the incorrect
// `a == 0.0f` operation skip, which silently changed NaN/Inf propagation).
// They serve three purposes: the correctness oracle the blocked kernels
// are tested against over randomized shapes, the "seed kernel" baseline
// row in bench_micro_ops, and the small-matrix fast path where packing
// overhead would dominate.
#pragma once

#include <cstddef>

namespace hybridcnn::nn::ref {

/// C[m x n] = A[m x k] * B[k x n]  (C is overwritten).
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c);

/// C[m x n] += A[m x k] * B[k x n].
void gemm_acc(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c);

/// C[m x n] += A^T[k x m] * B[k x n]  (A stored k-major, i.e. [k x m]).
void gemm_at_b(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c);

/// C[m x n] += A[m x k] * B^T[n x k]  (B stored n-major, i.e. [n x k]).
void gemm_a_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c);

}  // namespace hybridcnn::nn::ref
