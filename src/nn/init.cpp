#include "nn/init.hpp"

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "util/rng.hpp"

namespace hybridcnn::nn {

void init_network(Sequential& net, std::uint64_t seed) {
  util::Rng rng(seed, /*stream=*/0x1417);
  for (std::size_t i = 0; i < net.size(); ++i) {
    Layer& l = net.layer(i);
    if (auto* conv = dynamic_cast<Conv2d*>(&l)) {
      util::Rng layer_rng = rng.fork();
      conv->init_he(layer_rng);
    } else if (auto* fc = dynamic_cast<Linear*>(&l)) {
      util::Rng layer_rng = rng.fork();
      fc->init_he(layer_rng);
    }
  }
}

}  // namespace hybridcnn::nn
