// Whole-network weight initialisation.
#pragma once

#include <cstdint>

#include "nn/sequential.hpp"

namespace hybridcnn::nn {

/// He-normal initialises every Conv2d and Linear layer in `net` from a
/// deterministic stream derived from `seed`. Other layers are untouched.
void init_network(Sequential& net, std::uint64_t seed);

}  // namespace hybridcnn::nn
