#include "nn/layer.hpp"

#include <stdexcept>
#include <utility>

#include "runtime/workspace.hpp"

namespace hybridcnn::nn {

tensor::Tensor Layer::backward(const tensor::Tensor& /*grad_output*/,
                               LayerCache& /*cache*/) {
  throw std::logic_error("backward not implemented for layer '" + name() +
                         "'");
}

tensor::Tensor Layer::forward(const tensor::Tensor& input) {
  if (training_) return forward_train(input, legacy_cache_);
  legacy_cache_.clear();
  return infer(input, runtime::thread_scratch());
}

tensor::Tensor Layer::forward(tensor::Tensor&& input) {
  if (training_) return forward_train(std::move(input), legacy_cache_);
  legacy_cache_.clear();
  return infer(std::move(input), runtime::thread_scratch());
}

tensor::Tensor Layer::backward(const tensor::Tensor& grad_output) {
  return backward(grad_output, legacy_cache_);
}

void Layer::zero_grad() {
  for (const Param& p : params()) {
    if (p.grad != nullptr) p.grad->fill(0.0f);
  }
}

std::size_t Layer::param_count() {
  std::size_t n = 0;
  for (const Param& p : params()) {
    if (p.value != nullptr) n += p.value->count();
  }
  return n;
}

}  // namespace hybridcnn::nn
