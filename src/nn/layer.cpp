#include "nn/layer.hpp"

#include <stdexcept>

namespace hybridcnn::nn {

tensor::Tensor Layer::backward(const tensor::Tensor& /*grad_output*/,
                               LayerCache& /*cache*/) {
  throw std::logic_error("backward not implemented for layer '" + name() +
                         "'");
}

void Layer::zero_grad() {
  for (const Param& p : params()) {
    if (p.grad != nullptr) p.grad->fill(0.0f);
  }
}

std::size_t Layer::param_count() {
  std::size_t n = 0;
  for (const Param& p : params()) {
    if (p.value != nullptr) n += p.value->count();
  }
  return n;
}

}  // namespace hybridcnn::nn
