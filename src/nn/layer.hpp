// Layer interface of the CNN engine.
//
// The engine is the library's stand-in for the paper's TensorFlow
// execution path: batched NCHW forward inference for AlexNet-class
// networks plus enough backpropagation to reproduce the paper's training
// experiments (Sobel pre-initialisation, filter freezing). Layers own
// their parameters and gradients and expose them generically so the SGD
// optimizer and the filter-surgery tools need no per-layer knowledge.
//
// Forward is split into two paths:
//
//   - infer(): const, re-entrant. Touches no layer state, draws any
//     calling-thread scratch from the Workspace it is handed, and may be
//     called on one shared model from any number of threads
//     concurrently. Layers that parallelise internally draw per-slot
//     arenas from the global ComputeContext inside their own parallel
//     regions.
//   - forward_train(): writes the state backward needs into the
//     caller-owned LayerCache instead of member fields; backward() reads
//     the same cache. One cache serves one forward/backward pair —
//     concurrent micro-batches use one cache context each.
//
// These are the only two forward paths: the historical mutating
// forward()/backward() wrappers (per-layer hidden cache) are gone.
#pragma once

#include <string>
#include <vector>

#include "nn/fwd_cache.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::runtime {
class Workspace;
}  // namespace hybridcnn::runtime

namespace hybridcnn::nn {

/// A parameter tensor paired with its gradient accumulator.
struct Param {
  tensor::Tensor* value = nullptr;
  tensor::Tensor* grad = nullptr;
  std::string name;
};

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  // ------------------------------------------------ const inference path

  /// Computes the layer output for a batched NCHW (or [N, features])
  /// input without touching any layer state. `ws` provides the calling
  /// thread's scratch arena. Safe to call concurrently on one shared
  /// layer. Throws std::invalid_argument on shape mismatch.
  [[nodiscard]] virtual tensor::Tensor infer(const tensor::Tensor& input,
                                             runtime::Workspace& ws) const = 0;

  /// Rvalue overload: layers whose output can reuse the (dead) input
  /// tensor — ReLU's in-place clamp, Dropout's identity, Flatten's
  /// reshape — avoid one full-activation allocation per call, which a
  /// chained inference (Sequential moving intermediates along) exploits.
  /// Bit-identical to the lvalue path. Default delegates to it.
  [[nodiscard]] virtual tensor::Tensor infer(tensor::Tensor&& input,
                                             runtime::Workspace& ws) const {
    return infer(static_cast<const tensor::Tensor&>(input), ws);
  }

  // ------------------------------------------- explicit-cache training

  /// Training forward: computes the output and records whatever backward
  /// needs into `cache` (never into members).
  virtual tensor::Tensor forward_train(const tensor::Tensor& input,
                                       LayerCache& cache) = 0;

  /// Rvalue overload: layers that cache their input for backward (conv,
  /// linear, lrn, relu) take ownership instead of deep-copying it, so a
  /// training step over a Sequential does no per-layer input copies.
  /// Default delegates to the const-lvalue overload.
  virtual tensor::Tensor forward_train(tensor::Tensor&& input,
                                       LayerCache& cache) {
    return forward_train(static_cast<const tensor::Tensor&>(input), cache);
  }

  /// Propagates the loss gradient using the state `cache` recorded;
  /// returns dL/dinput and accumulates parameter gradients. Default:
  /// unsupported (inference-only layer).
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output,
                                  LayerCache& cache);

  // ----------------------------------------------------- parameters etc.

  /// Parameters with their gradients; empty for stateless layers.
  virtual std::vector<Param> params() { return {}; }

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// Toggles training-mode behaviour (dropout masking under
  /// forward_train).
  virtual void set_training(bool training) { training_ = training; }
  [[nodiscard]] bool training() const noexcept { return training_; }

  /// Layer type name for diagnostics ("conv2d", "relu", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Total trainable scalar count.
  [[nodiscard]] std::size_t param_count();

 protected:
  bool training_ = false;
};

}  // namespace hybridcnn::nn
