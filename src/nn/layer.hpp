// Layer interface of the CNN engine.
//
// The engine is the library's stand-in for the paper's TensorFlow
// execution path: batched NCHW forward inference for AlexNet-class
// networks plus enough backpropagation to reproduce the paper's training
// experiments (Sobel pre-initialisation, filter freezing). Layers own
// their parameters and gradients and expose them generically so the SGD
// optimizer and the filter-surgery tools need no per-layer knowledge.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace hybridcnn::nn {

/// A parameter tensor paired with its gradient accumulator.
struct Param {
  tensor::Tensor* value = nullptr;
  tensor::Tensor* grad = nullptr;
  std::string name;
};

/// Base class for all layers. Forward must be called before backward;
/// layers cache whatever forward state backward needs.
class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output for a batched NCHW (or [N, features])
  /// input. Throws std::invalid_argument on shape mismatch.
  virtual tensor::Tensor forward(const tensor::Tensor& input) = 0;

  /// Rvalue overload: layers that cache their input for backward (conv,
  /// linear, lrn, relu) take ownership instead of deep-copying it, so a
  /// training step over a Sequential does no per-layer input copies.
  /// Default delegates to the const-lvalue overload.
  virtual tensor::Tensor forward(tensor::Tensor&& input) {
    return forward(static_cast<const tensor::Tensor&>(input));
  }

  /// Propagates the loss gradient; returns dL/dinput and accumulates
  /// parameter gradients. Default: unsupported (inference-only layer).
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output);

  /// Parameters with their gradients; empty for stateless layers.
  virtual std::vector<Param> params() { return {}; }

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// Toggles training behaviour (dropout masks, cache retention).
  virtual void set_training(bool training) { training_ = training; }
  [[nodiscard]] bool training() const noexcept { return training_; }

  /// Layer type name for diagnostics ("conv2d", "relu", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Total trainable scalar count.
  [[nodiscard]] std::size_t param_count();

 protected:
  bool training_ = false;
};

}  // namespace hybridcnn::nn
