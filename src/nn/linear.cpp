#include "nn/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/gemm.hpp"

namespace hybridcnn::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weights_(tensor::Shape{out_features, in_features}),
      bias_(tensor::Shape{out_features}),
      grad_weights_(tensor::Shape{out_features, in_features}),
      grad_bias_(tensor::Shape{out_features}) {}

void Linear::init_he(util::Rng& rng) {
  weights_.fill_normal(
      rng, 0.0f, static_cast<float>(std::sqrt(2.0 / static_cast<double>(in_))));
  bias_.fill(0.0f);
}

tensor::Tensor Linear::infer(const tensor::Tensor& input,
                             runtime::Workspace& /*ws*/) const {
  const auto& in = input.shape();
  if (in.rank() != 2 || in[1] != in_) {
    throw std::invalid_argument("Linear: expected [N, " +
                                std::to_string(in_) + "], got " + in.str());
  }
  const std::size_t n = in[0];
  tensor::Tensor out(tensor::Shape{n, out_});
  // out[n, out] += x[n, in] * W^T (W stored [out, in]); GEMM packing
  // scratch comes from the global context's per-slot arenas.
  gemm_a_bt(n, in_, out_, input.data().data(), weights_.data().data(),
            out.data().data());
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t o = 0; o < out_; ++o) out[s * out_ + o] += bias_[o];
  }
  return out;
}

tensor::Tensor Linear::forward_train(const tensor::Tensor& input,
                                     LayerCache& cache) {
  tensor::Tensor out =
      infer(input, runtime::ComputeContext::global().workspace());
  cache.input = input;
  return out;
}

tensor::Tensor Linear::forward_train(tensor::Tensor&& input,
                                     LayerCache& cache) {
  tensor::Tensor out =
      infer(input, runtime::ComputeContext::global().workspace());
  cache.input = std::move(input);
  return out;
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_output,
                                LayerCache& cache) {
  const tensor::Tensor& cached_input = cache.input;
  const auto& in = cached_input.shape();
  if (in.rank() != 2) {
    throw std::logic_error("Linear::backward before forward_train");
  }
  const std::size_t n = in[0];
  if (grad_output.shape() != tensor::Shape{n, out_}) {
    throw std::invalid_argument("Linear::backward: grad shape mismatch");
  }

  // dW[out, in] += dOut^T[out, n] * x[n, in]
  gemm_at_b(out_, n, in_, grad_output.data().data(),
            cached_input.data().data(), grad_weights_.data().data());
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t o = 0; o < out_; ++o) {
      grad_bias_[o] += grad_output[s * out_ + o];
    }
  }

  // dx[n, in] = dOut[n, out] * W[out, in]
  tensor::Tensor grad_input(in);
  gemm_acc(n, out_, in_, grad_output.data().data(), weights_.data().data(),
           grad_input.data().data());
  return grad_input;
}

std::vector<Param> Linear::params() {
  return {{&weights_, &grad_weights_, "linear.weights"},
          {&bias_, &grad_bias_, "linear.bias"}};
}

}  // namespace hybridcnn::nn
