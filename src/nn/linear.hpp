// Fully connected layer.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace hybridcnn::nn {

/// y = x W^T + b over batched [N, in] input. Weights are [out, in].
/// Cache usage: `input` (the forward input, consumed by backward).
class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  [[nodiscard]] tensor::Tensor infer(const tensor::Tensor& input,
                                     runtime::Workspace& ws) const override;
  tensor::Tensor forward_train(const tensor::Tensor& input,
                               LayerCache& cache) override;
  tensor::Tensor forward_train(tensor::Tensor&& input,
                               LayerCache& cache) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output,
                          LayerCache& cache) override;

  std::vector<Param> params() override;
  [[nodiscard]] std::string name() const override { return "linear"; }

  /// He-normal init (fan-in), zero bias.
  void init_he(util::Rng& rng);

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }
  [[nodiscard]] const tensor::Tensor& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] tensor::Tensor& weights() noexcept { return weights_; }
  [[nodiscard]] const tensor::Tensor& bias() const noexcept { return bias_; }
  [[nodiscard]] tensor::Tensor& bias() noexcept { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  tensor::Tensor weights_;  // [out, in]
  tensor::Tensor bias_;     // [out]
  tensor::Tensor grad_weights_;
  tensor::Tensor grad_bias_;
};

}  // namespace hybridcnn::nn
