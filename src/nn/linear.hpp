// Fully connected layer.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace hybridcnn::nn {

/// y = x W^T + b over batched [N, in] input. Weights are [out, in].
class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor forward(tensor::Tensor&& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param> params() override;
  [[nodiscard]] std::string name() const override { return "linear"; }

  /// He-normal init (fan-in), zero bias.
  void init_he(util::Rng& rng);

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }
  [[nodiscard]] const tensor::Tensor& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] tensor::Tensor& weights() noexcept { return weights_; }
  [[nodiscard]] const tensor::Tensor& bias() const noexcept { return bias_; }
  [[nodiscard]] tensor::Tensor& bias() noexcept { return bias_; }

 private:
  tensor::Tensor forward_impl(const tensor::Tensor& input);

  std::size_t in_;
  std::size_t out_;
  tensor::Tensor weights_;  // [out, in]
  tensor::Tensor bias_;     // [out]
  tensor::Tensor grad_weights_;
  tensor::Tensor grad_bias_;
  tensor::Tensor cached_input_;
};

}  // namespace hybridcnn::nn
