#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace hybridcnn::nn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<int>& labels) {
  const auto& sh = logits.shape();
  if (sh.rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: logits must be [N, C]");
  }
  const std::size_t n = sh[0];
  const std::size_t c = sh[1];
  if (labels.size() != n) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }

  LossResult result;
  result.grad_logits = tensor::Tensor(sh);
  double total = 0.0;

  for (std::size_t s = 0; s < n; ++s) {
    const int label = labels[s];
    if (label < 0 || static_cast<std::size_t>(label) >= c) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    float mx = logits[s * c];
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, logits[s * c + j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      denom += std::exp(static_cast<double>(logits[s * c + j]) - mx);
    }
    const double log_denom = std::log(denom);
    const double log_p =
        static_cast<double>(logits[s * c + static_cast<std::size_t>(label)]) -
        mx - log_denom;
    total -= log_p;

    for (std::size_t j = 0; j < c; ++j) {
      const double p =
          std::exp(static_cast<double>(logits[s * c + j]) - mx - log_denom);
      const double onehot = (static_cast<std::size_t>(label) == j) ? 1.0 : 0.0;
      result.grad_logits[s * c + j] =
          static_cast<float>((p - onehot) / static_cast<double>(n));
    }
  }

  result.loss = total / static_cast<double>(n);
  return result;
}

}  // namespace hybridcnn::nn
