// Fused softmax + cross-entropy loss for classifier training.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace hybridcnn::nn {

/// Loss value and the gradient w.r.t. the logits.
struct LossResult {
  double loss = 0.0;          ///< mean cross-entropy over the batch
  tensor::Tensor grad_logits; ///< [N, C], already divided by N
};

/// Computes mean cross-entropy of softmax(logits) against integer labels.
/// logits: [N, C]; labels.size() == N, each in [0, C).
/// Throws std::invalid_argument on shape/label violations.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<int>& labels);

}  // namespace hybridcnn::nn
