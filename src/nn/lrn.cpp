#include "nn/lrn.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "runtime/compute_context.hpp"

namespace hybridcnn::nn {

Lrn::Lrn(std::size_t size, float k, float alpha, float beta)
    : size_(size), k_(k), alpha_(alpha), beta_(beta) {
  if (size == 0) throw std::invalid_argument("Lrn: size must be >= 1");
}

tensor::Tensor Lrn::forward_impl(const tensor::Tensor& input,
                                 tensor::Tensor* denom) const {
  const auto& in = input.shape();
  if (in.rank() != 4) {
    throw std::invalid_argument("Lrn: expected NCHW, got " + in.str());
  }
  const std::size_t n = in[0];
  const std::size_t c = in[1];
  const std::size_t plane = in[2] * in[3];
  const auto half = static_cast<std::int64_t>(size_ / 2);
  const float scale = alpha_ / static_cast<float>(size_);

  tensor::Tensor out(in);
  if (denom != nullptr) *denom = tensor::Tensor(in);

  // Every (sample, channel) plane writes disjoint out/denom slots.
  runtime::ComputeContext::global().pool().parallel_for(
      0, n * c, [&](std::size_t sc) {
        const std::size_t s = sc / c;
        const std::size_t ch = sc % c;
        const auto lo = std::max<std::int64_t>(
            0, static_cast<std::int64_t>(ch) - half);
        const auto hi = std::min<std::int64_t>(
            static_cast<std::int64_t>(c) - 1,
            static_cast<std::int64_t>(ch) + half);
        for (std::size_t p = 0; p < plane; ++p) {
          float ssum = 0.0f;
          for (std::int64_t j = lo; j <= hi; ++j) {
            const float v =
                input[(s * c + static_cast<std::size_t>(j)) * plane + p];
            ssum += v * v;
          }
          const std::size_t idx = (s * c + ch) * plane + p;
          const float d = k_ + scale * ssum;
          if (denom != nullptr) (*denom)[idx] = d;
          out[idx] = input[idx] * std::pow(d, -beta_);
        }
      });

  return out;
}

tensor::Tensor Lrn::infer(const tensor::Tensor& input,
                          runtime::Workspace& /*ws*/) const {
  return forward_impl(input, nullptr);
}

tensor::Tensor Lrn::forward_train(const tensor::Tensor& input,
                                  LayerCache& cache) {
  tensor::Tensor out = forward_impl(input, &cache.aux);
  cache.input = input;
  return out;
}

tensor::Tensor Lrn::forward_train(tensor::Tensor&& input, LayerCache& cache) {
  tensor::Tensor out = forward_impl(input, &cache.aux);
  cache.input = std::move(input);
  return out;
}

tensor::Tensor Lrn::backward(const tensor::Tensor& grad_output,
                             LayerCache& cache) {
  const tensor::Tensor& cached_input = cache.input;
  const tensor::Tensor& cached_denom = cache.aux;
  const auto& in = cached_input.shape();
  if (in.rank() != 4) {
    throw std::logic_error("Lrn::backward before forward_train");
  }
  if (grad_output.shape() != in) {
    throw std::invalid_argument("Lrn::backward: shape mismatch");
  }
  const std::size_t n = in[0];
  const std::size_t c = in[1];
  const std::size_t plane = in[2] * in[3];
  const auto half = static_cast<std::int64_t>(size_ / 2);
  const float scale = alpha_ / static_cast<float>(size_);

  // dL/dx_m = g_m * D_m^-beta
  //           - 2*scale*beta * x_m * sum_{i: m in window(i)} g_i x_i D_i^{-beta-1}
  tensor::Tensor grad(in);
  runtime::ComputeContext::global().pool().parallel_for(
      0, n * c, [&](std::size_t sc) {
        const std::size_t s = sc / c;
        const std::size_t ch = sc % c;
        // window(i) centred at i: m is in window(i) iff |i - m| <= half.
        const auto lo = std::max<std::int64_t>(
            0, static_cast<std::int64_t>(ch) - half);
        const auto hi = std::min<std::int64_t>(
            static_cast<std::int64_t>(c) - 1,
            static_cast<std::int64_t>(ch) + half);
        for (std::size_t p = 0; p < plane; ++p) {
          const std::size_t m = (s * c + ch) * plane + p;
          float cross = 0.0f;
          for (std::int64_t i = lo; i <= hi; ++i) {
            const std::size_t ii =
                (s * c + static_cast<std::size_t>(i)) * plane + p;
            cross += grad_output[ii] * cached_input[ii] *
                     std::pow(cached_denom[ii], -beta_ - 1.0f);
          }
          grad[m] = grad_output[m] * std::pow(cached_denom[m], -beta_) -
                    2.0f * scale * beta_ * cached_input[m] * cross;
        }
      });
  return grad;
}

}  // namespace hybridcnn::nn
