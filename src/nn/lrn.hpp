// Local response normalisation, the cross-channel variant AlexNet uses:
//   y_i = x_i / (k + (alpha / n) * sum_{j in window(i)} x_j^2)^beta
// with the AlexNet defaults n = 5, k = 2, alpha = 1e-4, beta = 0.75.
#pragma once

#include "nn/layer.hpp"

namespace hybridcnn::nn {

/// Cross-channel LRN with exact backward.
/// Cache usage: `input`, `aux` (per-element denominators D_i).
class Lrn final : public Layer {
 public:
  explicit Lrn(std::size_t size = 5, float k = 2.0f, float alpha = 1e-4f,
               float beta = 0.75f);

  [[nodiscard]] tensor::Tensor infer(const tensor::Tensor& input,
                                     runtime::Workspace& ws) const override;
  tensor::Tensor forward_train(const tensor::Tensor& input,
                               LayerCache& cache) override;
  tensor::Tensor forward_train(tensor::Tensor&& input,
                               LayerCache& cache) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output,
                          LayerCache& cache) override;

  [[nodiscard]] std::string name() const override { return "lrn"; }

 private:
  /// Shared forward computation; stores per-element denominators into
  /// `denom` when non-null (training path, needed by backward).
  tensor::Tensor forward_impl(const tensor::Tensor& input,
                              tensor::Tensor* denom) const;

  std::size_t size_;
  float k_;
  float alpha_;
  float beta_;
};

}  // namespace hybridcnn::nn
