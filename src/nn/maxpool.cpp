#include "nn/maxpool.hpp"

#include <stdexcept>

#include "runtime/compute_context.hpp"

namespace hybridcnn::nn {

MaxPool::MaxPool(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride) {
  if (window == 0 || stride == 0) {
    throw std::invalid_argument("MaxPool: window and stride must be >= 1");
  }
}

std::size_t MaxPool::out_size(std::size_t in) const {
  if (in < window_) throw std::invalid_argument("MaxPool: window > input");
  return (in - window_) / stride_ + 1;
}

tensor::Tensor MaxPool::forward_impl(const tensor::Tensor& input,
                                     std::vector<std::size_t>* argmax) const {
  const auto& in = input.shape();
  if (in.rank() != 4) {
    throw std::invalid_argument("MaxPool: expected NCHW, got " + in.str());
  }
  const std::size_t n = in[0];
  const std::size_t c = in[1];
  const std::size_t in_h = in[2];
  const std::size_t in_w = in[3];
  const std::size_t out_h = out_size(in_h);
  const std::size_t out_w = out_size(in_w);

  tensor::Tensor out(tensor::Shape{n, c, out_h, out_w});
  if (argmax != nullptr) argmax->assign(out.count(), 0);

  // Each (sample, channel) plane is independent; split across the pool.
  const std::size_t out_plane = out_h * out_w;
  runtime::ComputeContext::global().pool().parallel_for(
      0, n * c, [&](std::size_t sc) {
        const std::size_t base = sc * in_h * in_w;
        std::size_t oi = sc * out_plane;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          for (std::size_t ox = 0; ox < out_w; ++ox, ++oi) {
            std::size_t best_idx =
                base + (oy * stride_) * in_w + ox * stride_;
            float best = input[best_idx];
            for (std::size_t wy = 0; wy < window_; ++wy) {
              for (std::size_t wx = 0; wx < window_; ++wx) {
                const std::size_t idx =
                    base + (oy * stride_ + wy) * in_w + (ox * stride_ + wx);
                if (input[idx] > best) {
                  best = input[idx];
                  best_idx = idx;
                }
              }
            }
            out[oi] = best;
            if (argmax != nullptr) (*argmax)[oi] = best_idx;
          }
        }
      });
  return out;
}

tensor::Tensor MaxPool::infer(const tensor::Tensor& input,
                              runtime::Workspace& /*ws*/) const {
  return forward_impl(input, nullptr);
}

tensor::Tensor MaxPool::forward_train(const tensor::Tensor& input,
                                      LayerCache& cache) {
  tensor::Tensor out = forward_impl(input, &cache.argmax);
  cache.in_shape = input.shape();
  return out;
}

tensor::Tensor MaxPool::backward(const tensor::Tensor& grad_output,
                                 LayerCache& cache) {
  if (cache.argmax.empty() || cache.in_shape.rank() != 4) {
    throw std::logic_error("MaxPool::backward before forward_train");
  }
  if (grad_output.count() != cache.argmax.size()) {
    throw std::invalid_argument("MaxPool::backward: shape mismatch");
  }
  const auto& in = cache.in_shape;
  tensor::Tensor grad(in);
  const std::size_t out_plane = cache.argmax.size() / (in[0] * in[1]);
  // argmax indices of one (sample, channel) plane stay inside that
  // plane's input slots, so the scatter is race-free per plane.
  runtime::ComputeContext::global().pool().parallel_for(
      0, in[0] * in[1], [&](std::size_t sc) {
        const std::size_t lo = sc * out_plane;
        for (std::size_t i = lo; i < lo + out_plane; ++i) {
          grad[cache.argmax[i]] += grad_output[i];
        }
      });
  return grad;
}

}  // namespace hybridcnn::nn
