// Max pooling with argmax routing for the backward pass.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace hybridcnn::nn {

/// Max pooling over batched NCHW input with a square window. AlexNet uses
/// overlapping pooling (window 3, stride 2), which this supports.
class MaxPool final : public Layer {
 public:
  MaxPool(std::size_t window, std::size_t stride);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "maxpool"; }

  [[nodiscard]] std::size_t out_size(std::size_t in) const;

 private:
  std::size_t window_;
  std::size_t stride_;
  tensor::Shape cached_in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

}  // namespace hybridcnn::nn
