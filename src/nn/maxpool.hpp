// Max pooling with argmax routing for the backward pass.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace hybridcnn::nn {

/// Max pooling over batched NCHW input with a square window. AlexNet uses
/// overlapping pooling (window 3, stride 2), which this supports.
/// Cache usage: `in_shape`, `argmax` (flat input index per output
/// element); the inference path recomputes maxima without recording them.
class MaxPool final : public Layer {
 public:
  MaxPool(std::size_t window, std::size_t stride);

  [[nodiscard]] tensor::Tensor infer(const tensor::Tensor& input,
                                     runtime::Workspace& ws) const override;
  tensor::Tensor forward_train(const tensor::Tensor& input,
                               LayerCache& cache) override;
  using Layer::forward_train;
  tensor::Tensor backward(const tensor::Tensor& grad_output,
                          LayerCache& cache) override;

  [[nodiscard]] std::string name() const override { return "maxpool"; }

  [[nodiscard]] std::size_t out_size(std::size_t in) const;

 private:
  /// Shared pooling loop; records argmax routes when `argmax` non-null.
  tensor::Tensor forward_impl(const tensor::Tensor& input,
                              std::vector<std::size_t>* argmax) const;

  std::size_t window_;
  std::size_t stride_;
};

}  // namespace hybridcnn::nn
