#include "nn/minicnn.hpp"

#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"

namespace hybridcnn::nn {

std::unique_ptr<Sequential> make_minicnn(const MiniCnnConfig& config) {
  auto net = std::make_unique<Sequential>();
  const std::size_t f = config.conv1_filters;

  net->emplace<Conv2d>(3, f, 5, 1, 2);  // 32 -> 32
  net->emplace<ReLU>();
  net->emplace<MaxPool>(2, 2);  // 32 -> 16

  net->emplace<Conv2d>(f, 2 * f, 3, 1, 1);  // 16 -> 16
  net->emplace<ReLU>();
  net->emplace<MaxPool>(2, 2);  // 16 -> 8

  net->emplace<Flatten>();  // 2F * 8 * 8
  net->emplace<Linear>(2 * f * 8 * 8, 128);
  net->emplace<ReLU>();
  net->emplace<Linear>(128, config.num_classes);

  init_network(*net, config.seed);
  return net;
}

}  // namespace hybridcnn::nn
