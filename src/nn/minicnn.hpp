// MiniCNN: a trainable AlexNet-family network for CPU-budget experiments.
//
// The paper's trained-model experiments (Sobel filter replacement with
// confusion-matrix comparison, pre-initialised frozen filters) require
// actually training a network. Training full AlexNet on a CPU is outside
// any reasonable budget, so the trained variants of those experiments run
// on MiniCNN: same structural family (conv -> pool stacks into a dense
// classifier, first layer surgically accessible), sized for 32x32 synthetic
// sign images. DESIGN.md documents this substitution.
#pragma once

#include <cstdint>
#include <memory>

#include "nn/sequential.hpp"

namespace hybridcnn::nn {

/// Construction parameters for MiniCNN.
struct MiniCnnConfig {
  std::size_t num_classes = 5;
  std::size_t conv1_filters = 16;  ///< sweep length of the trained Fig. 4
  std::uint64_t seed = 42;
};

/// Layer index of the first convolution (filter-surgery target).
inline constexpr std::size_t kMiniCnnConv1 = 0;

/// Index of the first layer after conv1 (hybrid re-entry point).
inline constexpr std::size_t kMiniCnnAfterConv1 = 1;

/// Input image side length MiniCNN expects.
inline constexpr std::size_t kMiniCnnInput = 32;

/// Builds MiniCNN:
///   0 conv1 3->F k5 p2   1 relu   2 maxpool 2/2   (32 -> 16)
///   3 conv2 F->2F k3 p1  4 relu   5 maxpool 2/2   (16 -> 8)
///   6 flatten  7 fc 2F*64->128  8 relu  9 fc 128->classes (logits)
std::unique_ptr<Sequential> make_minicnn(const MiniCnnConfig& config = {});

}  // namespace hybridcnn::nn
