#include "nn/relu.hpp"

#include <stdexcept>
#include <utility>

namespace hybridcnn::nn {

namespace {

tensor::Tensor clamp_copy(const tensor::Tensor& input) {
  tensor::Tensor out(input.shape());
  for (std::size_t i = 0; i < input.count(); ++i) {
    out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  }
  return out;
}

// Owning the input, clamp in place — the exact same select as
// clamp_copy, so copy and in-place paths are bit-identical (incl.
// NaN -> 0 and -0.0 -> +0.0).
void clamp_in_place(tensor::Tensor& t) {
  for (std::size_t i = 0; i < t.count(); ++i) {
    t[i] = t[i] > 0.0f ? t[i] : 0.0f;
  }
}

}  // namespace

tensor::Tensor ReLU::infer(const tensor::Tensor& input,
                           runtime::Workspace& /*ws*/) const {
  return clamp_copy(input);
}

tensor::Tensor ReLU::infer(tensor::Tensor&& input,
                           runtime::Workspace& /*ws*/) const {
  clamp_in_place(input);
  return std::move(input);
}

tensor::Tensor ReLU::forward_train(const tensor::Tensor& input,
                                   LayerCache& cache) {
  tensor::Tensor out = clamp_copy(input);
  cache.input = input;
  return out;
}

tensor::Tensor ReLU::forward_train(tensor::Tensor&& input,
                                   LayerCache& cache) {
  // Caching the clamped tensor keeps backward intact: x > 0 holds for
  // exactly the same elements before and after the clamp.
  clamp_in_place(input);
  cache.input = input;
  return std::move(input);
}

tensor::Tensor ReLU::backward(const tensor::Tensor& grad_output,
                              LayerCache& cache) {
  if (grad_output.shape() != cache.input.shape()) {
    throw std::invalid_argument("ReLU::backward: shape mismatch");
  }
  tensor::Tensor grad(grad_output.shape());
  for (std::size_t i = 0; i < grad.count(); ++i) {
    grad[i] = cache.input[i] > 0.0f ? grad_output[i] : 0.0f;
  }
  return grad;
}

}  // namespace hybridcnn::nn
