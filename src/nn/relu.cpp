#include "nn/relu.hpp"

#include <stdexcept>

namespace hybridcnn::nn {

namespace {

tensor::Tensor relu_impl(const tensor::Tensor& input) {
  tensor::Tensor out(input.shape());
  for (std::size_t i = 0; i < input.count(); ++i) {
    out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  }
  return out;
}

}  // namespace

tensor::Tensor ReLU::forward(const tensor::Tensor& input) {
  tensor::Tensor out = relu_impl(input);
  if (training_) cached_input_ = input;
  return out;
}

tensor::Tensor ReLU::forward(tensor::Tensor&& input) {
  // Owning the input, clamp in place instead of allocating a fresh
  // output — with the exact same select as the lvalue path so both
  // overloads are bit-identical (incl. NaN -> 0 and -0.0 -> +0.0).
  // Caching the clamped tensor keeps backward intact: x > 0 holds for
  // exactly the same elements before and after the clamp.
  for (std::size_t i = 0; i < input.count(); ++i) {
    input[i] = input[i] > 0.0f ? input[i] : 0.0f;
  }
  if (training_) cached_input_ = input;
  return std::move(input);
}

tensor::Tensor ReLU::backward(const tensor::Tensor& grad_output) {
  if (grad_output.shape() != cached_input_.shape()) {
    throw std::invalid_argument("ReLU::backward: shape mismatch");
  }
  tensor::Tensor grad(grad_output.shape());
  for (std::size_t i = 0; i < grad.count(); ++i) {
    grad[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
  }
  return grad;
}

}  // namespace hybridcnn::nn
