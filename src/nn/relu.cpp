#include "nn/relu.hpp"

#include <stdexcept>

namespace hybridcnn::nn {

tensor::Tensor ReLU::forward(const tensor::Tensor& input) {
  tensor::Tensor out(input.shape());
  for (std::size_t i = 0; i < input.count(); ++i) {
    out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  }
  if (training_) cached_input_ = input;
  return out;
}

tensor::Tensor ReLU::backward(const tensor::Tensor& grad_output) {
  if (grad_output.shape() != cached_input_.shape()) {
    throw std::invalid_argument("ReLU::backward: shape mismatch");
  }
  tensor::Tensor grad(grad_output.shape());
  for (std::size_t i = 0; i < grad.count(); ++i) {
    grad[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
  }
  return grad;
}

}  // namespace hybridcnn::nn
