// Rectified linear unit.
#pragma once

#include "nn/layer.hpp"

namespace hybridcnn::nn {

/// Elementwise max(0, x). Shape-preserving, any rank.
/// Cache usage: `input` (clamped input works too: x > 0 holds for exactly
/// the same elements before and after the clamp).
class ReLU final : public Layer {
 public:
  [[nodiscard]] tensor::Tensor infer(const tensor::Tensor& input,
                                     runtime::Workspace& ws) const override;
  [[nodiscard]] tensor::Tensor infer(tensor::Tensor&& input,
                                     runtime::Workspace& ws) const override;
  tensor::Tensor forward_train(const tensor::Tensor& input,
                               LayerCache& cache) override;
  tensor::Tensor forward_train(tensor::Tensor&& input,
                               LayerCache& cache) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output,
                          LayerCache& cache) override;

  [[nodiscard]] std::string name() const override { return "relu"; }
};

}  // namespace hybridcnn::nn
