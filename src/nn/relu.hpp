// Rectified linear unit.
#pragma once

#include "nn/layer.hpp"

namespace hybridcnn::nn {

/// Elementwise max(0, x). Shape-preserving, any rank.
class ReLU final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor forward(tensor::Tensor&& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "relu"; }

 private:
  tensor::Tensor cached_input_;
};

}  // namespace hybridcnn::nn
