#include "nn/sequential.hpp"

#include <stdexcept>
#include <utility>

namespace hybridcnn::nn {

void Sequential::append(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Sequential::append: null layer");
  layers_.push_back(std::move(layer));
}

// ------------------------------------------------- const inference path

tensor::Tensor Sequential::infer(const tensor::Tensor& input,
                                 runtime::Workspace& ws) const {
  return infer_from(0, input, ws);
}

tensor::Tensor Sequential::infer_from(std::size_t start,
                                      const tensor::Tensor& input,
                                      runtime::Workspace& ws) const {
  if (start > layers_.size()) {
    throw std::out_of_range("Sequential::infer_from");
  }
  if (start == layers_.size()) return input;
  // First layer reads the caller's tensor in place; dead intermediates
  // are moved along so rvalue-aware layers (relu, dropout, flatten)
  // reuse them instead of allocating.
  tensor::Tensor x = layers_[start]->infer(input, ws);
  for (std::size_t i = start + 1; i < layers_.size(); ++i) {
    x = layers_[i]->infer(std::move(x), ws);
  }
  return x;
}

tensor::Tensor Sequential::infer_until(std::size_t stop,
                                       const tensor::Tensor& input,
                                       runtime::Workspace& ws) const {
  if (stop > layers_.size()) {
    throw std::out_of_range("Sequential::infer_until");
  }
  if (stop == 0) return input;
  tensor::Tensor x = layers_[0]->infer(input, ws);
  for (std::size_t i = 1; i < stop; ++i) {
    x = layers_[i]->infer(std::move(x), ws);
  }
  return x;
}

// -------------------------------------------- explicit-cache training

tensor::Tensor Sequential::forward_train(const tensor::Tensor& input,
                                         FwdCache& ctx) {
  if (layers_.empty()) return input;
  // First layer reads the caller's tensor in place; intermediates are
  // moved along the chain so caching layers keep them without copies.
  tensor::Tensor x = layers_[0]->forward_train(input, ctx.slot(0));
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    x = layers_[i]->forward_train(std::move(x), ctx.slot(i));
  }
  return x;
}

tensor::Tensor Sequential::forward_train(tensor::Tensor&& input,
                                         FwdCache& ctx) {
  if (layers_.empty()) return std::move(input);
  tensor::Tensor x = layers_[0]->forward_train(std::move(input), ctx.slot(0));
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    x = layers_[i]->forward_train(std::move(x), ctx.slot(i));
  }
  return x;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_output,
                                    FwdCache& ctx) {
  tensor::Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->backward(g, ctx.slot(i));
  }
  return g;
}

FwdCache& Sequential::nested_ctx(LayerCache& cache) {
  // The child context inherits the RNG stream so dropout layers inside a
  // nested container still key off the owning micro-batch context.
  if (!cache.nested) {
    cache.nested = std::make_unique<FwdCache>(cache.rng_stream);
  }
  return *cache.nested;
}

tensor::Tensor Sequential::forward_train(const tensor::Tensor& input,
                                         LayerCache& cache) {
  return forward_train(input, nested_ctx(cache));
}

tensor::Tensor Sequential::forward_train(tensor::Tensor&& input,
                                         LayerCache& cache) {
  return forward_train(std::move(input), nested_ctx(cache));
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_output,
                                    LayerCache& cache) {
  return backward(grad_output, nested_ctx(cache));
}

// ------------------------------------------------------------ plumbing

std::vector<Param> Sequential::params() {
  std::vector<Param> all;
  for (const auto& l : layers_) {
    for (const Param& p : l->params()) all.push_back(p);
  }
  return all;
}

void Sequential::set_training(bool training) {
  Layer::set_training(training);
  for (const auto& l : layers_) l->set_training(training);
}

Layer& Sequential::layer(std::size_t i) {
  if (i >= layers_.size()) throw std::out_of_range("Sequential::layer");
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  if (i >= layers_.size()) throw std::out_of_range("Sequential::layer");
  return *layers_[i];
}

}  // namespace hybridcnn::nn
