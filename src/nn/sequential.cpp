#include "nn/sequential.hpp"

#include <stdexcept>

namespace hybridcnn::nn {

void Sequential::append(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Sequential::append: null layer");
  layers_.push_back(std::move(layer));
}

tensor::Tensor Sequential::forward(const tensor::Tensor& input) {
  return forward_from(0, input);
}

tensor::Tensor Sequential::forward(tensor::Tensor&& input) {
  if (layers_.empty()) return std::move(input);
  tensor::Tensor x = layers_[0]->forward(std::move(input));
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    x = layers_[i]->forward(std::move(x));
  }
  return x;
}

tensor::Tensor Sequential::forward_from(std::size_t start,
                                        const tensor::Tensor& input) {
  if (start > layers_.size()) {
    throw std::out_of_range("Sequential::forward_from");
  }
  if (start == layers_.size()) return input;
  // First layer reads the caller's tensor in place; intermediates are
  // moved along the chain.
  tensor::Tensor x = layers_[start]->forward(input);
  for (std::size_t i = start + 1; i < layers_.size(); ++i) {
    x = layers_[i]->forward(std::move(x));
  }
  return x;
}

tensor::Tensor Sequential::forward_until(std::size_t stop,
                                         const tensor::Tensor& input) {
  if (stop > layers_.size()) {
    throw std::out_of_range("Sequential::forward_until");
  }
  if (stop == 0) return input;
  tensor::Tensor x = layers_[0]->forward(input);
  for (std::size_t i = 1; i < stop; ++i) {
    x = layers_[i]->forward(std::move(x));
  }
  return x;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->backward(g);
  }
  return g;
}

std::vector<Param> Sequential::params() {
  std::vector<Param> all;
  for (const auto& l : layers_) {
    for (const Param& p : l->params()) all.push_back(p);
  }
  return all;
}

void Sequential::set_training(bool training) {
  Layer::set_training(training);
  for (const auto& l : layers_) l->set_training(training);
}

Layer& Sequential::layer(std::size_t i) {
  if (i >= layers_.size()) throw std::out_of_range("Sequential::layer");
  return *layers_[i];
}

}  // namespace hybridcnn::nn
