// Sequential network container.
//
// Besides the usual forward/backward chaining, Sequential supports the
// hybrid execution the paper's Figure 2 requires: forward_from() resumes
// inference at an arbitrary layer index so the first convolution can be
// executed externally by the reliable kernel and its (bifurcated) output
// injected back into the non-reliable remainder of the CNN.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace hybridcnn::nn {

/// Owning ordered list of layers.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer and returns a reference to it (builder style).
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  /// Appends an already-built layer.
  void append(std::unique_ptr<Layer> layer);

  tensor::Tensor forward(const tensor::Tensor& input) override;

  /// Rvalue chain: moves the input into the first layer and every
  /// intermediate activation into the next, so caching layers keep their
  /// backward state without deep copies.
  tensor::Tensor forward(tensor::Tensor&& input) override;

  /// Runs layers [start, size()) on `input` — the hybrid re-entry point.
  tensor::Tensor forward_from(std::size_t start, const tensor::Tensor& input);

  /// Runs layers [0, stop) on `input` — e.g. just the reliable prefix.
  tensor::Tensor forward_until(std::size_t stop, const tensor::Tensor& input);

  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param> params() override;
  void set_training(bool training) override;
  [[nodiscard]] std::string name() const override { return "sequential"; }

  [[nodiscard]] std::size_t size() const noexcept { return layers_.size(); }

  /// Layer access; throws std::out_of_range.
  [[nodiscard]] Layer& layer(std::size_t i);

  /// Typed layer access; throws std::bad_cast if the type does not match.
  template <typename L>
  [[nodiscard]] L& layer_as(std::size_t i) {
    return dynamic_cast<L&>(layer(i));
  }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace hybridcnn::nn
