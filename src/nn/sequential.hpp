// Sequential network container.
//
// Besides the usual forward/backward chaining, Sequential supports the
// hybrid execution the paper's Figure 2 requires: infer_from() resumes
// inference at an arbitrary layer index so the first convolution can be
// executed externally by the reliable kernel and its (bifurcated) output
// injected back into the non-reliable remainder of the CNN.
//
// The const infer*() chain is re-entrant: any number of threads may run
// one shared Sequential concurrently, each with its own scratch arena.
// Training forwards thread a caller-owned FwdCache through the layers
// (slot i belongs to layer i); one FwdCache per concurrent micro-batch.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace hybridcnn::nn {

/// Owning ordered list of layers.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer and returns a reference to it (builder style).
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  /// Appends an already-built layer.
  void append(std::unique_ptr<Layer> layer);

  // ------------------------------------------------ const inference path

  /// Runs the whole chain without touching any state.
  [[nodiscard]] tensor::Tensor infer(const tensor::Tensor& input,
                                     runtime::Workspace& ws) const override;

  /// Runs layers [start, size()) on `input` — the hybrid re-entry point.
  [[nodiscard]] tensor::Tensor infer_from(std::size_t start,
                                          const tensor::Tensor& input,
                                          runtime::Workspace& ws) const;

  /// Runs layers [0, stop) on `input` — e.g. just the reliable prefix.
  [[nodiscard]] tensor::Tensor infer_until(std::size_t stop,
                                           const tensor::Tensor& input,
                                           runtime::Workspace& ws) const;

  // ------------------------------------------- explicit-cache training

  /// Training forward over a whole cache context (slot i = layer i).
  tensor::Tensor forward_train(const tensor::Tensor& input, FwdCache& ctx);

  /// Rvalue chain: moves the input into the first layer and every
  /// intermediate activation into the next, so caching layers keep their
  /// backward state without deep copies.
  tensor::Tensor forward_train(tensor::Tensor&& input, FwdCache& ctx);

  /// Backward over the context the matching forward_train filled.
  tensor::Tensor backward(const tensor::Tensor& grad_output, FwdCache& ctx);

  // Layer interface (nested container use): the Sequential's own cache
  // slot holds the child context.
  tensor::Tensor forward_train(const tensor::Tensor& input,
                               LayerCache& cache) override;
  tensor::Tensor forward_train(tensor::Tensor&& input,
                               LayerCache& cache) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output,
                          LayerCache& cache) override;

  // ----------------------------------------------------------- plumbing

  std::vector<Param> params() override;
  void set_training(bool training) override;
  [[nodiscard]] std::string name() const override { return "sequential"; }

  [[nodiscard]] std::size_t size() const noexcept { return layers_.size(); }

  /// Layer access; throws std::out_of_range.
  [[nodiscard]] Layer& layer(std::size_t i);
  [[nodiscard]] const Layer& layer(std::size_t i) const;

  /// Typed layer access; throws std::bad_cast if the type does not match.
  template <typename L>
  [[nodiscard]] L& layer_as(std::size_t i) {
    return dynamic_cast<L&>(layer(i));
  }
  template <typename L>
  [[nodiscard]] const L& layer_as(std::size_t i) const {
    return dynamic_cast<const L&>(layer(i));
  }

 private:
  /// Child context living in this container's own cache slot.
  static FwdCache& nested_ctx(LayerCache& cache);

  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace hybridcnn::nn
