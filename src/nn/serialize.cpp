#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace hybridcnn::nn {

namespace {

constexpr std::uint32_t kMagic = 0x48594257;  // "HYBW"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::ifstream& in, const std::string& path) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("load_weights: truncated file " + path);
  return v;
}

}  // namespace

void save_weights(Sequential& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);

  const auto params = net.params();
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const Param& p : params) {
    write_u32(out, static_cast<std::uint32_t>(p.name.size()));
    out.write(p.name.data(),
              static_cast<std::streamsize>(p.name.size()));
    const auto& shape = p.value->shape();
    write_u32(out, static_cast<std::uint32_t>(shape.rank()));
    for (std::size_t d = 0; d < shape.rank(); ++d) {
      write_u32(out, static_cast<std::uint32_t>(shape[d]));
    }
    out.write(reinterpret_cast<const char*>(p.value->data().data()),
              static_cast<std::streamsize>(p.value->count() *
                                           sizeof(float)));
  }
  if (!out) {
    throw std::runtime_error("save_weights: write failed for " + path);
  }
}

void load_weights(Sequential& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);

  if (read_u32(in, path) != kMagic) {
    throw std::runtime_error("load_weights: bad magic in " + path);
  }
  if (read_u32(in, path) != kVersion) {
    throw std::runtime_error("load_weights: unsupported version in " + path);
  }

  const auto params = net.params();
  const std::uint32_t count = read_u32(in, path);
  if (count != params.size()) {
    throw std::invalid_argument(
        "load_weights: artefact has " + std::to_string(count) +
        " parameters, network has " + std::to_string(params.size()));
  }

  for (const Param& p : params) {
    const std::uint32_t name_len = read_u32(in, path);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in) throw std::runtime_error("load_weights: truncated " + path);
    if (name != p.name) {
      throw std::invalid_argument("load_weights: expected parameter '" +
                                  p.name + "', artefact has '" + name + "'");
    }
    const std::uint32_t rank = read_u32(in, path);
    const auto& shape = p.value->shape();
    if (rank != shape.rank()) {
      throw std::invalid_argument("load_weights: rank mismatch for " +
                                  p.name);
    }
    for (std::uint32_t d = 0; d < rank; ++d) {
      if (read_u32(in, path) != shape[d]) {
        throw std::invalid_argument("load_weights: shape mismatch for " +
                                    p.name);
      }
    }
    in.read(reinterpret_cast<char*>(p.value->data().data()),
            static_cast<std::streamsize>(p.value->count() * sizeof(float)));
    if (!in) throw std::runtime_error("load_weights: truncated " + path);
  }
}

}  // namespace hybridcnn::nn
