// Binary weight serialization for trained networks.
//
// The safety workflow the paper sketches (Section V.B) needs trained
// models to move between the training tool and the (certified) inference
// runtime; this module provides the library's interchange format: a
// versioned little-endian container of named parameter tensors. Loading
// validates parameter count, order and shapes against the target network
// — a mismatched artefact is rejected rather than partially applied.
#pragma once

#include <string>

#include "nn/sequential.hpp"

namespace hybridcnn::nn {

/// Writes every parameter of `net` to `path`.
/// Throws std::runtime_error on IO failure.
void save_weights(Sequential& net, const std::string& path);

/// Loads parameters saved by save_weights() into `net`.
/// Throws std::runtime_error on IO/format failure and
/// std::invalid_argument if the artefact does not match the network
/// (count, name or shape of any parameter).
void load_weights(Sequential& net, const std::string& path);

}  // namespace hybridcnn::nn
