#include "nn/sgd.hpp"

#include <stdexcept>

namespace hybridcnn::nn {

Sgd::Sgd(float learning_rate, float momentum, float weight_decay)
    : lr_(learning_rate), momentum_(momentum), weight_decay_(weight_decay) {
  if (learning_rate <= 0.0f) {
    throw std::invalid_argument("Sgd: learning rate must be positive");
  }
  if (momentum < 0.0f || momentum >= 1.0f) {
    throw std::invalid_argument("Sgd: momentum must be in [0, 1)");
  }
}

void Sgd::step(Layer& net) {
  for (const Param& p : net.params()) {
    if (p.value == nullptr || p.grad == nullptr) continue;
    tensor::Tensor& value = *p.value;
    const tensor::Tensor& grad = *p.grad;
    if (value.shape() != grad.shape()) {
      throw std::logic_error("Sgd: grad shape mismatch for " + p.name);
    }

    if (momentum_ == 0.0f) {
      for (std::size_t i = 0; i < value.count(); ++i) {
        const float g = grad[i] + weight_decay_ * value[i];
        value[i] -= lr_ * g;
      }
      continue;
    }

    auto [it, inserted] = velocity_.try_emplace(p.value, value.shape());
    tensor::Tensor& vel = it->second;
    if (!inserted && vel.shape() != value.shape()) {
      throw std::logic_error("Sgd: velocity shape mismatch for " + p.name);
    }
    for (std::size_t i = 0; i < value.count(); ++i) {
      const float g = grad[i] + weight_decay_ * value[i];
      vel[i] = momentum_ * vel[i] - lr_ * g;
      value[i] += vel[i];
    }
  }
}

void Sgd::zero_grad(Layer& net) { net.zero_grad(); }

}  // namespace hybridcnn::nn
