// Stochastic gradient descent with classical momentum.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::nn {

/// SGD over a layer's (or network's) parameters. Velocity buffers are
/// keyed by parameter identity, so filter freezing implemented as
/// zeroed gradients keeps frozen filters perfectly stationary (their
/// velocity also decays to zero).
class Sgd {
 public:
  explicit Sgd(float learning_rate, float momentum = 0.0f,
               float weight_decay = 0.0f);

  /// Applies one update step to every parameter of `net` using the
  /// gradients accumulated since the last zero_grad().
  void step(Layer& net);

  /// Clears gradients of every parameter of `net`.
  static void zero_grad(Layer& net);

  [[nodiscard]] float learning_rate() const noexcept { return lr_; }
  void set_learning_rate(float lr) noexcept { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::unordered_map<const tensor::Tensor*, tensor::Tensor> velocity_;
};

}  // namespace hybridcnn::nn
