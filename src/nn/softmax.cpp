#include "nn/softmax.hpp"

#include <cmath>
#include <stdexcept>

namespace hybridcnn::nn {

namespace {

tensor::Tensor softmax_rows(const tensor::Tensor& input) {
  const auto& in = input.shape();
  if (in.rank() != 2) {
    throw std::invalid_argument("Softmax: expected [N, C], got " + in.str());
  }
  const std::size_t n = in[0];
  const std::size_t c = in[1];
  tensor::Tensor out(in);
  for (std::size_t s = 0; s < n; ++s) {
    float mx = input[s * c];
    for (std::size_t j = 1; j < c; ++j) {
      mx = std::max(mx, input[s * c + j]);
    }
    float denom = 0.0f;
    for (std::size_t j = 0; j < c; ++j) {
      const float e = std::exp(input[s * c + j] - mx);
      out[s * c + j] = e;
      denom += e;
    }
    for (std::size_t j = 0; j < c; ++j) out[s * c + j] /= denom;
  }
  return out;
}

}  // namespace

tensor::Tensor Softmax::infer(const tensor::Tensor& input,
                              runtime::Workspace& /*ws*/) const {
  return softmax_rows(input);
}

tensor::Tensor Softmax::forward_train(const tensor::Tensor& input,
                                      LayerCache& cache) {
  tensor::Tensor out = softmax_rows(input);
  cache.aux = out;
  return out;
}

tensor::Tensor Softmax::backward(const tensor::Tensor& grad_output,
                                 LayerCache& cache) {
  const tensor::Tensor& cached_output = cache.aux;
  const auto& sh = cached_output.shape();
  if (grad_output.shape() != sh) {
    throw std::invalid_argument("Softmax::backward: shape mismatch");
  }
  const std::size_t n = sh[0];
  const std::size_t c = sh[1];
  tensor::Tensor grad(sh);
  for (std::size_t s = 0; s < n; ++s) {
    float dot = 0.0f;
    for (std::size_t j = 0; j < c; ++j) {
      dot += grad_output[s * c + j] * cached_output[s * c + j];
    }
    for (std::size_t j = 0; j < c; ++j) {
      grad[s * c + j] =
          cached_output[s * c + j] * (grad_output[s * c + j] - dot);
    }
  }
  return grad;
}

}  // namespace hybridcnn::nn
