// Softmax layer (inference head). Training uses the fused
// softmax-cross-entropy in loss.hpp for numerical stability.
#pragma once

#include "nn/layer.hpp"

namespace hybridcnn::nn {

/// Row-wise softmax over [N, C] logits (max-subtracted for stability).
class Softmax final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "softmax"; }

 private:
  tensor::Tensor cached_output_;
};

}  // namespace hybridcnn::nn
