// Softmax layer (inference head). Training uses the fused
// softmax-cross-entropy in loss.hpp for numerical stability.
#pragma once

#include "nn/layer.hpp"

namespace hybridcnn::nn {

/// Row-wise softmax over [N, C] logits (max-subtracted for stability).
/// Cache usage: `aux` (the softmax output, consumed by backward). The
/// inference path keeps no copy of the output — it used to deep-copy the
/// result on every call, a pure cache tax on the classify hot path.
class Softmax final : public Layer {
 public:
  [[nodiscard]] tensor::Tensor infer(const tensor::Tensor& input,
                                     runtime::Workspace& ws) const override;
  tensor::Tensor forward_train(const tensor::Tensor& input,
                               LayerCache& cache) override;
  using Layer::forward_train;
  tensor::Tensor backward(const tensor::Tensor& grad_output,
                          LayerCache& cache) override;

  [[nodiscard]] std::string name() const override { return "softmax"; }
};

}  // namespace hybridcnn::nn
