#include "nn/trainer.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/loss.hpp"
#include "nn/sgd.hpp"

namespace hybridcnn::nn {

std::vector<EpochStats> train(Sequential& net,
                              const std::vector<data::Example>& examples,
                              const TrainConfig& config) {
  if (examples.empty()) throw std::invalid_argument("train: no examples");
  Sgd sgd(config.learning_rate, config.momentum, config.weight_decay);
  net.set_training(true);

  std::vector<EpochStats> history;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    EpochStats stats;
    std::size_t batches = 0;
    std::size_t correct = 0;
    for (std::size_t first = 0; first < examples.size();
         first += config.batch_size) {
      const std::size_t count =
          std::min(config.batch_size, examples.size() - first);
      data::Batch batch = data::make_batch(examples, first, count);

      net.zero_grad();
      // The batch tensor is freshly stacked each step; moving it into the
      // chain lets caching layers keep it without a deep copy.
      const tensor::Tensor logits = net.forward(std::move(batch.images));
      const LossResult loss = softmax_cross_entropy(logits, batch.labels);
      net.backward(loss.grad_logits);
      sgd.step(net);
      if (config.after_step) config.after_step(net);

      stats.mean_loss += loss.loss;
      ++batches;
      const std::size_t classes = logits.shape()[1];
      for (std::size_t s = 0; s < count; ++s) {
        std::size_t best = 0;
        for (std::size_t j = 1; j < classes; ++j) {
          if (logits[s * classes + j] > logits[s * classes + best]) best = j;
        }
        if (static_cast<int>(best) == batch.labels[s]) ++correct;
      }
    }
    stats.mean_loss /= static_cast<double>(batches);
    stats.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(examples.size());
    history.push_back(stats);
  }
  net.set_training(false);
  return history;
}

namespace {

/// Softmax probabilities of a [1, C] logits row.
std::vector<double> softmax_row(const tensor::Tensor& logits,
                                std::size_t row, std::size_t classes) {
  double mx = logits[row * classes];
  for (std::size_t j = 1; j < classes; ++j) {
    mx = std::max(mx, static_cast<double>(logits[row * classes + j]));
  }
  std::vector<double> p(classes);
  double denom = 0.0;
  for (std::size_t j = 0; j < classes; ++j) {
    p[j] = std::exp(static_cast<double>(logits[row * classes + j]) - mx);
    denom += p[j];
  }
  for (double& v : p) v /= denom;
  return p;
}

}  // namespace

Evaluation evaluate(Sequential& net,
                    const std::vector<data::Example>& examples,
                    std::size_t num_classes) {
  if (examples.empty()) throw std::invalid_argument("evaluate: no examples");
  net.set_training(false);

  Evaluation eval;
  eval.confusion.assign(num_classes,
                        std::vector<std::uint64_t>(num_classes, 0));
  std::size_t correct = 0;
  double confidence_sum = 0.0;

  constexpr std::size_t kEvalBatch = 32;
  for (std::size_t first = 0; first < examples.size(); first += kEvalBatch) {
    const std::size_t count =
        std::min(kEvalBatch, examples.size() - first);
    const data::Batch batch = data::make_batch(examples, first, count);
    const tensor::Tensor logits = net.forward(batch.images);
    const std::size_t classes = logits.shape()[1];
    if (classes != num_classes) {
      throw std::invalid_argument("evaluate: class count mismatch");
    }
    for (std::size_t s = 0; s < count; ++s) {
      const auto p = softmax_row(logits, s, classes);
      std::size_t best = 0;
      for (std::size_t j = 1; j < classes; ++j) {
        if (p[j] > p[best]) best = j;
      }
      const auto label = static_cast<std::size_t>(batch.labels[s]);
      ++eval.confusion[label][best];
      if (best == label) ++correct;
      confidence_sum += p[label];
    }
  }
  eval.accuracy =
      static_cast<double>(correct) / static_cast<double>(examples.size());
  eval.mean_true_class_confidence =
      confidence_sum / static_cast<double>(examples.size());
  return eval;
}

double mean_class_confidence(Sequential& net,
                             const std::vector<data::Example>& examples,
                             int target_class) {
  if (examples.empty()) {
    throw std::invalid_argument("mean_class_confidence: no examples");
  }
  net.set_training(false);
  double sum = 0.0;
  constexpr std::size_t kEvalBatch = 32;
  for (std::size_t first = 0; first < examples.size(); first += kEvalBatch) {
    const std::size_t count =
        std::min(kEvalBatch, examples.size() - first);
    const data::Batch batch = data::make_batch(examples, first, count);
    const tensor::Tensor logits = net.forward(batch.images);
    const std::size_t classes = logits.shape()[1];
    if (target_class < 0 ||
        static_cast<std::size_t>(target_class) >= classes) {
      throw std::invalid_argument("mean_class_confidence: bad class");
    }
    for (std::size_t s = 0; s < count; ++s) {
      sum += softmax_row(logits, s,
                         classes)[static_cast<std::size_t>(target_class)];
    }
  }
  return sum / static_cast<double>(examples.size());
}

}  // namespace hybridcnn::nn
