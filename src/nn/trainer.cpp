#include "nn/trainer.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/loss.hpp"
#include "nn/sgd.hpp"
#include "runtime/compute_context.hpp"

namespace hybridcnn::nn {

namespace {

/// One training step's forward pass, micro-batched: splits the examples
/// [first, first + count) into up to `slots` contiguous micro-batches,
/// fans their training forwards across the pool (micro-batch m writes
/// context ctxs[m] and its own logits slot — disjoint everywhere), and
/// re-assembles full-batch logits/labels in example order. Returns the
/// per-micro-batch row offsets so backward can slice the loss gradient.
struct MicroForward {
  tensor::Tensor logits;            // [count, classes]
  std::vector<int> labels;          // count
  std::vector<std::size_t> offset;  // row offset per micro-batch
  std::vector<std::size_t> rows;    // row count per micro-batch
};

MicroForward micro_forward(Sequential& net,
                           const std::vector<data::Example>& examples,
                           std::size_t first, std::size_t count,
                           std::vector<FwdCache>& ctxs) {
  const std::size_t slots = std::min(ctxs.size(), count);
  MicroForward fwd;
  fwd.offset.resize(slots);
  fwd.rows.resize(slots);
  for (std::size_t m = 0; m < slots; ++m) {
    // Contiguous split; the remainder rows land on the trailing
    // micro-batches (count*m/slots rounds down).
    fwd.offset[m] = count * m / slots;
    fwd.rows[m] = count * (m + 1) / slots - fwd.offset[m];
  }

  std::vector<tensor::Tensor> part(slots);
  std::vector<std::vector<int>> part_labels(slots);
  runtime::ComputeContext::global().pool().parallel_for(
      0, slots, [&](std::size_t m) {
        data::Batch batch =
            data::make_batch(examples, first + fwd.offset[m], fwd.rows[m]);
        part_labels[m] = std::move(batch.labels);
        part[m] = net.forward_train(std::move(batch.images), ctxs[m]);
      });

  const std::size_t classes = part[0].shape()[1];
  fwd.logits = tensor::Tensor(tensor::Shape{count, classes});
  fwd.labels.reserve(count);
  for (std::size_t m = 0; m < slots; ++m) {
    std::memcpy(fwd.logits.data().data() + fwd.offset[m] * classes,
                part[m].data().data(), fwd.rows[m] * classes * sizeof(float));
    fwd.labels.insert(fwd.labels.end(), part_labels[m].begin(),
                      part_labels[m].end());
  }
  return fwd;
}

/// Backward over the micro-batch contexts, serially in micro-batch order:
/// parameter gradients accumulate in a fixed order regardless of how the
/// forwards were scheduled.
void micro_backward(Sequential& net, const MicroForward& fwd,
                    const tensor::Tensor& grad_logits,
                    std::vector<FwdCache>& ctxs) {
  const std::size_t classes = grad_logits.shape()[1];
  for (std::size_t m = 0; m < fwd.offset.size(); ++m) {
    tensor::Tensor g(tensor::Shape{fwd.rows[m], classes});
    std::memcpy(g.data().data(),
                grad_logits.data().data() + fwd.offset[m] * classes,
                fwd.rows[m] * classes * sizeof(float));
    net.backward(g, ctxs[m]);
  }
}

}  // namespace

std::vector<EpochStats> train(Sequential& net,
                              const std::vector<data::Example>& examples,
                              const TrainConfig& config) {
  if (examples.empty()) throw std::invalid_argument("train: no examples");
  Sgd sgd(config.learning_rate, config.momentum, config.weight_decay);
  net.set_training(true);

  // Cache contexts persist across steps (and epochs) so dropout layers
  // see one continuous mask stream per context. Context m draws RNG
  // stream m; the serial context's stream 0 replays the historical
  // layer-owned generator. (A second train() call builds fresh contexts,
  // so its mask streams restart from the seed rather than continuing.)
  const std::size_t slots = std::max<std::size_t>(1, config.micro_batch_slots);
  FwdCache serial_ctx;
  std::vector<FwdCache> micro_ctxs;
  if (slots > 1) {
    micro_ctxs.reserve(slots);
    for (std::size_t m = 0; m < slots; ++m) micro_ctxs.emplace_back(m);
  }

  std::vector<EpochStats> history;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    EpochStats stats;
    std::size_t batches = 0;
    std::size_t correct = 0;
    for (std::size_t first = 0; first < examples.size();
         first += config.batch_size) {
      const std::size_t count =
          std::min(config.batch_size, examples.size() - first);

      net.zero_grad();
      tensor::Tensor logits;
      std::vector<int> labels;
      LossResult loss;
      if (slots <= 1) {
        // Serial step: one full-batch forward/backward — the historical
        // trainer, op for op. The batch tensor is freshly stacked each
        // step; moving it into the chain lets caching layers keep it
        // without a deep copy.
        data::Batch batch = data::make_batch(examples, first, count);
        labels = std::move(batch.labels);
        logits = net.forward_train(std::move(batch.images), serial_ctx);
        loss = softmax_cross_entropy(logits, labels);
        net.backward(loss.grad_logits, serial_ctx);
      } else {
        MicroForward fwd =
            micro_forward(net, examples, first, count, micro_ctxs);
        loss = softmax_cross_entropy(fwd.logits, fwd.labels);
        micro_backward(net, fwd, loss.grad_logits, micro_ctxs);
        logits = std::move(fwd.logits);
        labels = std::move(fwd.labels);
      }
      sgd.step(net);
      if (config.after_step) config.after_step(net);

      stats.mean_loss += loss.loss;
      ++batches;
      const std::size_t classes = logits.shape()[1];
      for (std::size_t s = 0; s < count; ++s) {
        std::size_t best = 0;
        for (std::size_t j = 1; j < classes; ++j) {
          if (logits[s * classes + j] > logits[s * classes + best]) best = j;
        }
        if (static_cast<int>(best) == labels[s]) ++correct;
      }
    }
    stats.mean_loss /= static_cast<double>(batches);
    stats.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(examples.size());
    history.push_back(stats);
  }
  net.set_training(false);
  return history;
}

namespace {

/// Softmax probabilities of a [1, C] logits row.
std::vector<double> softmax_row(const tensor::Tensor& logits,
                                std::size_t row, std::size_t classes) {
  double mx = logits[row * classes];
  for (std::size_t j = 1; j < classes; ++j) {
    mx = std::max(mx, static_cast<double>(logits[row * classes + j]));
  }
  std::vector<double> p(classes);
  double denom = 0.0;
  for (std::size_t j = 0; j < classes; ++j) {
    p[j] = std::exp(static_cast<double>(logits[row * classes + j]) - mx);
    denom += p[j];
  }
  for (double& v : p) v /= denom;
  return p;
}

}  // namespace

Evaluation evaluate(Sequential& net,
                    const std::vector<data::Example>& examples,
                    std::size_t num_classes) {
  if (examples.empty()) throw std::invalid_argument("evaluate: no examples");
  net.set_training(false);

  Evaluation eval;
  eval.confusion.assign(num_classes,
                        std::vector<std::uint64_t>(num_classes, 0));
  std::size_t correct = 0;
  double confidence_sum = 0.0;

  runtime::Workspace& ws = runtime::thread_scratch();
  constexpr std::size_t kEvalBatch = 32;
  for (std::size_t first = 0; first < examples.size(); first += kEvalBatch) {
    const std::size_t count =
        std::min(kEvalBatch, examples.size() - first);
    const data::Batch batch = data::make_batch(examples, first, count);
    const tensor::Tensor logits = net.infer(batch.images, ws);
    const std::size_t classes = logits.shape()[1];
    if (classes != num_classes) {
      throw std::invalid_argument("evaluate: class count mismatch");
    }
    for (std::size_t s = 0; s < count; ++s) {
      const auto p = softmax_row(logits, s, classes);
      std::size_t best = 0;
      for (std::size_t j = 1; j < classes; ++j) {
        if (p[j] > p[best]) best = j;
      }
      const auto label = static_cast<std::size_t>(batch.labels[s]);
      ++eval.confusion[label][best];
      if (best == label) ++correct;
      confidence_sum += p[label];
    }
  }
  eval.accuracy =
      static_cast<double>(correct) / static_cast<double>(examples.size());
  eval.mean_true_class_confidence =
      confidence_sum / static_cast<double>(examples.size());
  return eval;
}

double mean_class_confidence(Sequential& net,
                             const std::vector<data::Example>& examples,
                             int target_class) {
  if (examples.empty()) {
    throw std::invalid_argument("mean_class_confidence: no examples");
  }
  net.set_training(false);
  double sum = 0.0;
  runtime::Workspace& ws = runtime::thread_scratch();
  constexpr std::size_t kEvalBatch = 32;
  for (std::size_t first = 0; first < examples.size(); first += kEvalBatch) {
    const std::size_t count =
        std::min(kEvalBatch, examples.size() - first);
    const data::Batch batch = data::make_batch(examples, first, count);
    const tensor::Tensor logits = net.infer(batch.images, ws);
    const std::size_t classes = logits.shape()[1];
    if (target_class < 0 ||
        static_cast<std::size_t>(target_class) >= classes) {
      throw std::invalid_argument("mean_class_confidence: bad class");
    }
    for (std::size_t s = 0; s < count; ++s) {
      sum += softmax_row(logits, s,
                         classes)[static_cast<std::size_t>(target_class)];
    }
  }
  return sum / static_cast<double>(examples.size());
}

}  // namespace hybridcnn::nn
