// Mini-batch SGD training loop and evaluation utilities shared by the
// tests, benches and examples (the library's stand-in for the paper's
// TensorFlow training workflow, including the per-batch filter re-set
// regime the paper observed).
//
// The loop owns its forward-cache contexts (nn::FwdCache): one for the
// serial path, one per micro-batch slot when `micro_batch_slots > 1`. In
// the micro-batched regime each step splits its batch into contiguous
// micro-batches whose training forwards fan out across the global thread
// pool (each writing its own context), the loss is computed over the
// re-assembled full-batch logits, and the backwards run serially in
// micro-batch order so parameter gradients accumulate in a fixed order —
// the training trajectory is bit-identical at every thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/dataset.hpp"
#include "nn/sequential.hpp"

namespace hybridcnn::nn {

/// Training hyperparameters.
struct TrainConfig {
  std::size_t epochs = 5;
  std::size_t batch_size = 16;
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  /// Concurrent micro-batch contexts per step. 1 (default) runs the
  /// classic serial step — one full-batch forward/backward — and is
  /// bit-identical to the historical trainer. Values > 1 fan the forward
  /// across the pool as up to that many micro-batches; deterministic for
  /// every thread count, but a different (equally valid) float reduction
  /// order than the serial step, and dropout layers draw per-context
  /// mask streams.
  std::size_t micro_batch_slots = 1;
  /// Invoked after every optimizer step; the paper's "re-set after every
  /// batch" filter regime is implemented by restoring a filter here.
  std::function<void(Sequential&)> after_step;
};

/// Per-epoch training record.
struct EpochStats {
  double mean_loss = 0.0;
  double train_accuracy = 0.0;
};

/// Trains `net` on `examples` in place; returns per-epoch statistics.
std::vector<EpochStats> train(Sequential& net,
                              const std::vector<data::Example>& examples,
                              const TrainConfig& config);

/// Classification evaluation results.
struct Evaluation {
  double accuracy = 0.0;
  std::vector<std::vector<std::uint64_t>> confusion;  // [true][predicted]
  /// Mean softmax confidence assigned to the true class.
  double mean_true_class_confidence = 0.0;
};

/// Evaluates `net` (logits output) on `examples` over `num_classes`.
/// Runs the const inference path; `net` is only non-const to reset its
/// training flag.
Evaluation evaluate(Sequential& net,
                    const std::vector<data::Example>& examples,
                    std::size_t num_classes);

/// Mean softmax probability that `net` assigns to `target_class` over
/// `examples` (the Fig. 4 "confidence value" metric).
double mean_class_confidence(Sequential& net,
                             const std::vector<data::Example>& examples,
                             int target_class);

}  // namespace hybridcnn::nn
