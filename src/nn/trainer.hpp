// Mini-batch SGD training loop and evaluation utilities shared by the
// tests, benches and examples (the library's stand-in for the paper's
// TensorFlow training workflow, including the per-batch filter re-set
// regime the paper observed).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/dataset.hpp"
#include "nn/sequential.hpp"

namespace hybridcnn::nn {

/// Training hyperparameters.
struct TrainConfig {
  std::size_t epochs = 5;
  std::size_t batch_size = 16;
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  /// Invoked after every optimizer step; the paper's "re-set after every
  /// batch" filter regime is implemented by restoring a filter here.
  std::function<void(Sequential&)> after_step;
};

/// Per-epoch training record.
struct EpochStats {
  double mean_loss = 0.0;
  double train_accuracy = 0.0;
};

/// Trains `net` on `examples` in place; returns per-epoch statistics.
std::vector<EpochStats> train(Sequential& net,
                              const std::vector<data::Example>& examples,
                              const TrainConfig& config);

/// Classification evaluation results.
struct Evaluation {
  double accuracy = 0.0;
  std::vector<std::vector<std::uint64_t>> confusion;  // [true][predicted]
  /// Mean softmax confidence assigned to the true class.
  double mean_true_class_confidence = 0.0;
};

/// Evaluates `net` (logits output) on `examples` over `num_classes`.
Evaluation evaluate(Sequential& net,
                    const std::vector<data::Example>& examples,
                    std::size_t num_classes);

/// Mean softmax probability that `net` assigns to `target_class` over
/// `examples` (the Fig. 4 "confidence value" metric).
double mean_class_confidence(Sequential& net,
                             const std::vector<data::Example>& examples,
                             int target_class);

}  // namespace hybridcnn::nn
