// ScalarCheckpoint is header-only; this TU anchors the target.
#include "reliable/checkpoint.hpp"
