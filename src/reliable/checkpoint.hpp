// Operation-granular checkpoint/rollback.
//
// The paper reduces the rollback distance inside a convolution to a single
// operation: "a redundantly executed multiplication with result comparison
// (checkpoint) and a re-multiplication (rollback) should the first have
// failed" (Section II.E). ScalarCheckpoint makes that explicit: the
// convolution accumulator is committed after every qualified operation and
// restored before a retry, so an erroneous execution can never propagate
// into committed state.
#pragma once

#include <cstdint>

namespace hybridcnn::reliable {

/// Committed-state cell for a scalar accumulator with rollback counters.
class ScalarCheckpoint {
 public:
  /// Initialises committed state to `initial`.
  explicit ScalarCheckpoint(float initial = 0.0f) noexcept
      : committed_(initial) {}

  /// Commits a qualified value as the new safe state.
  void commit(float value) noexcept {
    committed_ = value;
    ++commits_;
  }

  /// Rolls back: returns the last committed value, discarding whatever the
  /// failed execution produced.
  float rollback() noexcept {
    ++rollbacks_;
    return committed_;
  }

  /// Last committed value (the checkpoint).
  [[nodiscard]] float value() const noexcept { return committed_; }

  [[nodiscard]] std::uint64_t commits() const noexcept { return commits_; }
  [[nodiscard]] std::uint64_t rollbacks() const noexcept {
    return rollbacks_;
  }

 private:
  float committed_;
  std::uint64_t commits_ = 0;
  std::uint64_t rollbacks_ = 0;
};

}  // namespace hybridcnn::reliable
