// Operation-granular checkpoint/rollback.
//
// The paper reduces the rollback distance inside a convolution to a single
// operation: "a redundantly executed multiplication with result comparison
// (checkpoint) and a re-multiplication (rollback) should the first have
// failed" (Section II.E). ScalarCheckpoint makes that explicit: the
// convolution accumulator is committed after every qualified operation and
// restored before a retry, so an erroneous execution can never propagate
// into committed state.
//
// ProgressCheckpoint lifts the same commit/rollback discipline from one
// scalar accumulator to whole-inference progress: the committed state is
// (step index, activation tensor), the granularity the intermittent
// execution mode (HybridNetwork::classify_intermittent) checkpoints at —
// one CNN layer per commit, Stateful-CNN style. A power failure rolls
// back to the committed step; because every step is a pure function of
// the committed state, re-execution is bit-identical.
#pragma once

#include <cstdint>
#include <optional>

#include "faultsim/ecc.hpp"
#include "tensor/tensor.hpp"
#include "util/contracts.hpp"

namespace hybridcnn::reliable {

/// Committed-state cell for a scalar accumulator with rollback counters.
class ScalarCheckpoint {
 public:
  /// Initialises committed state to `initial`.
  explicit ScalarCheckpoint(float initial = 0.0f) noexcept
      : committed_(initial) {}

  /// Commits a qualified value as the new safe state.
  void commit(float value) noexcept {
    committed_ = value;
    ++commits_;
  }

  /// Rolls back: returns the last committed value, discarding whatever the
  /// failed execution produced.
  float rollback() noexcept {
    ++rollbacks_;
    return committed_;
  }

  /// Last committed value (the checkpoint).
  [[nodiscard]] float value() const noexcept { return committed_; }

  [[nodiscard]] std::uint64_t commits() const noexcept { return commits_; }
  [[nodiscard]] std::uint64_t rollbacks() const noexcept {
    return rollbacks_;
  }

 private:
  float committed_;
  std::uint64_t commits_ = 0;
  std::uint64_t rollbacks_ = 0;
};

// The scalar checkpoint models a committed NVM cell: commit/rollback are
// atomic raw-byte writes, which is only an honest model for a
// memcpy-able type. (ProgressCheckpoint owns a Tensor and is excluded by
// design — its commit is modelled as a double-buffered slot swap, not a
// byte copy; see the class comment.)
HYBRIDCNN_CONTRACT_TRIVIAL_PAYLOAD(ScalarCheckpoint);

/// Committed-progress cell for checkpointed (intermittent) inference:
/// the non-volatile (step, activation) pair execution resumes from after
/// a power failure. Commits are modelled as atomic — a real system
/// double-buffers the NVM slot so a cut mid-write preserves the previous
/// checkpoint.
///
/// The slot sits in (simulated) memory across power cycles, so it is
/// itself exposed to SEUs. Constructed with `ecc = true`, the committed
/// activation is routed through faultsim::ProtectedTensor: every commit
/// recomputes per-word SEC-DED check bits, campaigns inject upsets into
/// mutable_state() (the raw "NVM cells"), and scrub() corrects every
/// single-bit upset before the resumed step reads the activation — a
/// corrected checkpoint resumes bit-identically to an uncorrupted one
/// (tests/test_checkpoint.cpp + test_intermittent.cpp lock this).
class ProgressCheckpoint {
 public:
  /// Initial state: no progress, empty activation, resume at step 0.
  /// `ecc` opts the committed activation into SEC-DED protected storage.
  explicit ProgressCheckpoint(bool ecc = false) noexcept : ecc_(ecc) {}

  /// Commits `state` as the activation produced by all steps < `next_step`;
  /// execution resumes at `next_step`. With ECC on, check bits for every
  /// word of `state` are (re)computed here — commit is the write path of
  /// the protected slot.
  void commit(std::size_t next_step, tensor::Tensor state) {
    if (ecc_) {
      protected_.emplace(std::move(state));
    } else {
      state_ = std::move(state);
    }
    step_ = next_step;
    ++commits_;
  }

  /// Rolls back after a power failure: whatever the in-flight step
  /// produced is discarded, and the committed step index to resume from
  /// is returned.
  std::size_t rollback() noexcept {
    ++rollbacks_;
    return step_;
  }

  /// The committed activation (input of step `step()`).
  [[nodiscard]] const tensor::Tensor& state() const noexcept {
    return ecc_ && protected_.has_value() ? protected_->data() : state_;
  }

  /// The raw committed storage — the simulated memory cells campaigns
  /// inject upsets into between scrub passes. Mutations through this
  /// handle model DRAM/NVM corruption at rest; they do NOT refresh the
  /// ECC check bits (that is the point).
  [[nodiscard]] tensor::Tensor& mutable_state() noexcept {
    return ecc_ && protected_.has_value() ? protected_->data() : state_;
  }

  /// Scrubs the protected slot: corrects every single-bit upset in the
  /// committed activation (and its check words), reports double-bit
  /// detections. Returns an empty report when ECC is off or nothing has
  /// been committed. Call on the reboot path, before the resumed step
  /// reads state().
  faultsim::ScrubReport scrub() {
    if (!ecc_ || !protected_.has_value()) return {};
    return protected_->scrub();
  }

  [[nodiscard]] bool ecc() const noexcept { return ecc_; }

  /// The step execution resumes at (number of committed steps).
  [[nodiscard]] std::size_t step() const noexcept { return step_; }

  [[nodiscard]] std::uint64_t commits() const noexcept { return commits_; }
  [[nodiscard]] std::uint64_t rollbacks() const noexcept {
    return rollbacks_;
  }

 private:
  tensor::Tensor state_;
  std::optional<faultsim::ProtectedTensor> protected_;
  bool ecc_ = false;
  std::size_t step_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t rollbacks_ = 0;
};

}  // namespace hybridcnn::reliable
