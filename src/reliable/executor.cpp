#include "reliable/executor.hpp"

#include <stdexcept>

namespace hybridcnn::reliable {

Executor::Executor(std::shared_ptr<faultsim::FaultInjector> injector)
    : injector_(std::move(injector)) {}

// ---------------------------------------------------------------- factory

Scheme parse_scheme(const std::string& scheme) {
  if (scheme == "simplex") return Scheme::kSimplex;
  if (scheme == "dmr") return Scheme::kDmr;
  if (scheme == "tmr") return Scheme::kTmr;
  throw std::invalid_argument("parse_scheme: unknown scheme '" + scheme +
                              "'");
}

std::unique_ptr<Executor> make_executor(
    Scheme scheme, std::shared_ptr<faultsim::FaultInjector> injector) {
  switch (scheme) {
    case Scheme::kSimplex:
      return std::make_unique<SimplexExecutor>(std::move(injector));
    case Scheme::kDmr:
      return std::make_unique<DmrExecutor>(std::move(injector));
    case Scheme::kTmr:
      return std::make_unique<TmrExecutor>(std::move(injector));
    case Scheme::kCustom:
      break;
  }
  throw std::invalid_argument("make_executor: no factory for custom schemes");
}

std::unique_ptr<Executor> make_executor(
    const std::string& scheme,
    std::shared_ptr<faultsim::FaultInjector> injector) {
  return make_executor(parse_scheme(scheme), std::move(injector));
}

}  // namespace hybridcnn::reliable
