#include "reliable/executor.hpp"

#include <stdexcept>

#include "faultsim/bitflip.hpp"

namespace hybridcnn::reliable {

Executor::Executor(std::shared_ptr<faultsim::FaultInjector> injector)
    : injector_(std::move(injector)) {}

float Executor::corrupt(float /*a*/, float /*b*/, float result) noexcept {
  if (!injector_) return result;
  return injector_->filter(result);
}

float Executor::raw_mul(float a, float b) noexcept {
  ++stats_.executions;
  float av = a;
  float bv = b;
  if (injector_) {
    // Operand-targeted faults corrupt an input latch before the multiply;
    // result-targeted faults corrupt the product.
    switch (injector_->config().target) {
      case faultsim::FaultTarget::kOperandA:
        av = injector_->filter(av);
        return av * bv;
      case faultsim::FaultTarget::kOperandB:
        bv = injector_->filter(bv);
        return av * bv;
      case faultsim::FaultTarget::kResult:
        break;
    }
  }
  return corrupt(a, b, av * bv);
}

float Executor::raw_add(float a, float b) noexcept {
  ++stats_.executions;
  float av = a;
  float bv = b;
  if (injector_) {
    switch (injector_->config().target) {
      case faultsim::FaultTarget::kOperandA:
        av = injector_->filter(av);
        return av + bv;
      case faultsim::FaultTarget::kOperandB:
        bv = injector_->filter(bv);
        return av + bv;
      case faultsim::FaultTarget::kResult:
        break;
    }
  }
  return corrupt(a, b, av + bv);
}

// ---------------------------------------------------------------- simplex

Qualified<float> SimplexExecutor::mul(float a, float b) {
  ++stats_.logical_ops;
  // Algorithm 1: return the product and a predefined qualifier (true).
  return {raw_mul(a, b), true};
}

Qualified<float> SimplexExecutor::add(float a, float b) {
  ++stats_.logical_ops;
  return {raw_add(a, b), true};
}

// -------------------------------------------------------------------- dmr

namespace {

/// Bit-identical comparison. Plain `==` would declare two NaNs unequal and
/// +0 == -0 equal; redundancy checking compares what the hardware actually
/// produced, so we compare representations.
bool same_bits(float x, float y) noexcept {
  return faultsim::float_bits(x) == faultsim::float_bits(y);
}

}  // namespace

Qualified<float> DmrExecutor::mul(float a, float b) {
  ++stats_.logical_ops;
  // Algorithm 2: execute twice; qualifier true iff products agree.
  const float p1 = raw_mul(a, b);
  const float p2 = raw_mul(a, b);
  const bool ok = same_bits(p1, p2);
  if (!ok) ++stats_.disagreements;
  return {p1, ok};
}

Qualified<float> DmrExecutor::add(float a, float b) {
  ++stats_.logical_ops;
  const float s1 = raw_add(a, b);
  const float s2 = raw_add(a, b);
  const bool ok = same_bits(s1, s2);
  if (!ok) ++stats_.disagreements;
  return {s1, ok};
}

// -------------------------------------------------------------------- tmr

namespace {

/// Majority vote over three results. Returns the agreed value and whether
/// a majority exists.
Qualified<float> vote(float r1, float r2, float r3) noexcept {
  if (same_bits(r1, r2) || same_bits(r1, r3)) return {r1, true};
  if (same_bits(r2, r3)) return {r2, true};
  return {r1, false};
}

}  // namespace

Qualified<float> TmrExecutor::mul(float a, float b) {
  ++stats_.logical_ops;
  const float r1 = raw_mul(a, b);
  const float r2 = raw_mul(a, b);
  const float r3 = raw_mul(a, b);
  const Qualified<float> v = vote(r1, r2, r3);
  if (!same_bits(r1, r2) || !same_bits(r2, r3)) ++stats_.disagreements;
  return v;
}

Qualified<float> TmrExecutor::add(float a, float b) {
  ++stats_.logical_ops;
  const float r1 = raw_add(a, b);
  const float r2 = raw_add(a, b);
  const float r3 = raw_add(a, b);
  const Qualified<float> v = vote(r1, r2, r3);
  if (!same_bits(r1, r2) || !same_bits(r2, r3)) ++stats_.disagreements;
  return v;
}

// ---------------------------------------------------------------- factory

std::unique_ptr<Executor> make_executor(
    const std::string& scheme,
    std::shared_ptr<faultsim::FaultInjector> injector) {
  if (scheme == "simplex") {
    return std::make_unique<SimplexExecutor>(std::move(injector));
  }
  if (scheme == "dmr") {
    return std::make_unique<DmrExecutor>(std::move(injector));
  }
  if (scheme == "tmr") {
    return std::make_unique<TmrExecutor>(std::move(injector));
  }
  throw std::invalid_argument("make_executor: unknown scheme '" + scheme +
                              "'");
}

}  // namespace hybridcnn::reliable
