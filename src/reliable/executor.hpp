// Overloaded arithmetic executors: Algorithms 1 and 2 of the paper, plus a
// triple-modular-redundancy variant.
//
// The paper overloads multiplication and accumulation so that "multiple
// methods" can be attached to a basic operation: a non-redundant execution
// that always asserts success (Algorithm 1, used for baseline performance
// characteristics), and a redundant execution whose qualifier is true only
// if the two products agree (Algorithm 2). Executors route every physical
// execution through a faultsim::FaultInjector, which models the unreliable
// compute unit; the executor itself is the architecture-independent
// reliability wrapper the paper proposes.
//
// Two dispatch surfaces coexist (see src/reliable/README.md):
//   * the virtual mul()/add() interface — the generic path, kept as the
//     oracle the static-dispatch equivalence tests diff against, and the
//     extension point for executor schemes this library does not know;
//   * the non-virtual mul_inline()/add_inline() methods on the three
//     concrete schemes — identical arithmetic and bookkeeping, defined
//     inline so the statically dispatched qualified kernels
//     (static_dispatch.hpp) fold them into the convolution inner loop
//     with no virtual calls.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "faultsim/bitflip.hpp"
#include "faultsim/injector.hpp"
#include "reliable/qualified.hpp"
#include "util/contracts.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define HYBRIDCNN_RELIABLE_ALWAYS_INLINE inline __attribute__((always_inline))
#define HYBRIDCNN_RELIABLE_NOINLINE __attribute__((noinline))
#else
#define HYBRIDCNN_RELIABLE_ALWAYS_INLINE inline
#define HYBRIDCNN_RELIABLE_NOINLINE
#endif

namespace hybridcnn::reliable {

/// Statistics an executor accumulates over its lifetime.
struct ExecutorStats {
  std::uint64_t logical_ops = 0;    ///< mul/add requests
  std::uint64_t executions = 0;     ///< physical executions (incl. redundant)
  std::uint64_t disagreements = 0;  ///< redundant executions that disagreed
};

/// Identity of an executor's redundancy scheme, used by the reliable
/// kernels to select a statically dispatched (devirtualized) inner loop
/// once per forward. kCustom means "not one of the library's schemes" and
/// routes to the generic virtual-dispatch path.
enum class Scheme : std::uint8_t { kSimplex, kDmr, kTmr, kCustom };

/// Number of Scheme enumerators. Every table keyed on Scheme (factory
/// switch, name table, redundancy table) asserts agreement against this
/// so adding a scheme without extending the tables fails to compile.
inline constexpr std::size_t kSchemeCount = 4;

HYBRIDCNN_CONTRACT_AGREE(static_cast<std::size_t>(Scheme::kCustom) + 1,
                         kSchemeCount,
                         "Scheme enumerators must stay dense 0..kCustom so "
                         "kSchemeCount-sized tables cover every value");

namespace detail {

/// Bit-identical comparison. Plain `==` would declare two NaNs unequal and
/// +0 == -0 equal; redundancy checking compares what the hardware actually
/// produced, so we compare representations.
inline bool same_bits(float x, float y) noexcept {
  return faultsim::float_bits(x) == faultsim::float_bits(y);
}

/// Majority vote over three results. Returns the agreed value and whether
/// a majority exists.
inline Qualified<float> vote(float r1, float r2, float r3) noexcept {
  if (same_bits(r1, r2) || same_bits(r1, r3)) return {r1, true};
  if (same_bits(r2, r3)) return {r2, true};
  return {r1, false};
}

}  // namespace detail

/// Interface for qualified scalar arithmetic. Implementations differ in
/// the redundancy scheme; all of them report through Qualified<float>.
class Executor {
 public:
  /// Constructs over a fault injector. A null injector means fault-free
  /// hardware (used for golden runs and micro-benchmarks).
  explicit Executor(std::shared_ptr<faultsim::FaultInjector> injector);
  virtual ~Executor() = default;

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Qualified multiplication a*b.
  virtual Qualified<float> mul(float a, float b) = 0;

  /// Qualified addition a+b (the convolution's accumulate step).
  virtual Qualified<float> add(float a, float b) = 0;

  /// Scheme name for reports ("simplex", "dmr", "tmr").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Physical executions per logical operation in the fault-free case.
  [[nodiscard]] virtual int redundancy() const = 0;

  /// Scheme identity for static dispatch. The default (kCustom) keeps
  /// out-of-library executor subclasses on the generic virtual path.
  [[nodiscard]] virtual Scheme scheme_kind() const noexcept {
    return Scheme::kCustom;
  }

  [[nodiscard]] const ExecutorStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = ExecutorStats{}; }

  [[nodiscard]] faultsim::FaultInjector* injector() noexcept {
    return injector_.get();
  }

  /// True iff no physical execution through this executor can ever be
  /// corrupted: no injector, or an injector whose fault kind is kNone.
  /// Hoistable — reliable kernels query it once per forward to select the
  /// fault-free fast path.
  [[nodiscard]] bool guaranteed_fault_free() const noexcept {
    return injector_ == nullptr || injector_->guaranteed_fault_free();
  }

  /// Bulk accounting on behalf of an inlined fault-free kernel that
  /// computed `logical` qualified operations as raw arithmetic: credits
  /// logical_ops and the scheme's physical executions, and replays the
  /// elided filter() calls on the injector (execution count + PE cursor)
  /// via advance_clean(). Leaves stats() and injector state bit-identical
  /// to `logical` per-op mul/add calls on fault-free hardware.
  /// Precondition: guaranteed_fault_free().
  void credit_fault_free_ops(std::uint64_t logical) noexcept {
    stats_.logical_ops += logical;
    const std::uint64_t physical =
        logical * static_cast<std::uint64_t>(redundancy());
    stats_.executions += physical;
    if (injector_) injector_->advance_clean(physical);
  }

 protected:
  /// One physical multiply on the (possibly faulty) compute unit.
  HYBRIDCNN_RELIABLE_ALWAYS_INLINE float raw_mul(float a, float b) noexcept {
    ++stats_.executions;
    float av = a;
    float bv = b;
    if (injector_) {
      // Operand-targeted faults corrupt an input latch before the
      // multiply; result-targeted faults corrupt the product.
      switch (injector_->config().target) {
        case faultsim::FaultTarget::kOperandA:
          av = injector_->filter(av);
          return av * bv;
        case faultsim::FaultTarget::kOperandB:
          bv = injector_->filter(bv);
          return av * bv;
        case faultsim::FaultTarget::kResult:
          return injector_->filter(av * bv);
      }
    }
    return av * bv;
  }

  /// One physical add on the (possibly faulty) compute unit.
  HYBRIDCNN_RELIABLE_ALWAYS_INLINE float raw_add(float a, float b) noexcept {
    ++stats_.executions;
    float av = a;
    float bv = b;
    if (injector_) {
      switch (injector_->config().target) {
        case faultsim::FaultTarget::kOperandA:
          av = injector_->filter(av);
          return av + bv;
        case faultsim::FaultTarget::kOperandB:
          bv = injector_->filter(bv);
          return av + bv;
        case faultsim::FaultTarget::kResult:
          return injector_->filter(av + bv);
      }
    }
    return av + bv;
  }

  ExecutorStats stats_;

 private:
  std::shared_ptr<faultsim::FaultInjector> injector_;
};

/// Algorithm 1: non-redundant execution. Returns the product and a
/// predefined qualifier set to true. Baseline performance reference.
class SimplexExecutor final : public Executor {
 public:
  static constexpr Scheme kScheme = Scheme::kSimplex;
  static constexpr int kRedundancy = 1;

  using Executor::Executor;
  Qualified<float> mul(float a, float b) override { return mul_inline(a, b); }
  Qualified<float> add(float a, float b) override { return add_inline(a, b); }
  [[nodiscard]] std::string name() const override { return "simplex"; }
  [[nodiscard]] int redundancy() const override { return kRedundancy; }
  [[nodiscard]] Scheme scheme_kind() const noexcept override {
    return kScheme;
  }

  HYBRIDCNN_RELIABLE_ALWAYS_INLINE Qualified<float> mul_inline(float a,
                                                               float b) {
    ++stats_.logical_ops;
    // Algorithm 1: return the product and a predefined qualifier (true).
    return {raw_mul(a, b), true};
  }
  HYBRIDCNN_RELIABLE_ALWAYS_INLINE Qualified<float> add_inline(float a,
                                                               float b) {
    ++stats_.logical_ops;
    return {raw_add(a, b), true};
  }
};

/// Algorithm 2: dual-modular-redundant execution. The operation is
/// executed twice; the qualifier is true iff both results are
/// bit-identical. Detects (but cannot mask) any single-execution fault.
class DmrExecutor final : public Executor {
 public:
  static constexpr Scheme kScheme = Scheme::kDmr;
  static constexpr int kRedundancy = 2;

  using Executor::Executor;
  Qualified<float> mul(float a, float b) override { return mul_inline(a, b); }
  Qualified<float> add(float a, float b) override { return add_inline(a, b); }
  [[nodiscard]] std::string name() const override { return "dmr"; }
  [[nodiscard]] int redundancy() const override { return kRedundancy; }
  [[nodiscard]] Scheme scheme_kind() const noexcept override {
    return kScheme;
  }

  HYBRIDCNN_RELIABLE_ALWAYS_INLINE Qualified<float> mul_inline(float a,
                                                               float b) {
    ++stats_.logical_ops;
    // Algorithm 2: execute twice; qualifier true iff products agree.
    const float p1 = raw_mul(a, b);
    const float p2 = raw_mul(a, b);
    const bool ok = detail::same_bits(p1, p2);
    if (!ok) ++stats_.disagreements;
    return {p1, ok};
  }
  HYBRIDCNN_RELIABLE_ALWAYS_INLINE Qualified<float> add_inline(float a,
                                                               float b) {
    ++stats_.logical_ops;
    const float s1 = raw_add(a, b);
    const float s2 = raw_add(a, b);
    const bool ok = detail::same_bits(s1, s2);
    if (!ok) ++stats_.disagreements;
    return {s1, ok};
  }
};

/// Triple-modular-redundant execution with majority voting: the value is
/// "agreed upon by execution of the algorithm three times and voting on
/// the result" (Section IV). Masks any single-execution fault; the
/// qualifier is false only when all three results differ.
class TmrExecutor final : public Executor {
 public:
  static constexpr Scheme kScheme = Scheme::kTmr;
  static constexpr int kRedundancy = 3;

  using Executor::Executor;
  Qualified<float> mul(float a, float b) override { return mul_inline(a, b); }
  Qualified<float> add(float a, float b) override { return add_inline(a, b); }
  [[nodiscard]] std::string name() const override { return "tmr"; }
  [[nodiscard]] int redundancy() const override { return kRedundancy; }
  [[nodiscard]] Scheme scheme_kind() const noexcept override {
    return kScheme;
  }

  HYBRIDCNN_RELIABLE_ALWAYS_INLINE Qualified<float> mul_inline(float a,
                                                               float b) {
    ++stats_.logical_ops;
    const float r1 = raw_mul(a, b);
    const float r2 = raw_mul(a, b);
    const float r3 = raw_mul(a, b);
    const Qualified<float> v = detail::vote(r1, r2, r3);
    if (!detail::same_bits(r1, r2) || !detail::same_bits(r2, r3)) {
      ++stats_.disagreements;
    }
    return v;
  }
  HYBRIDCNN_RELIABLE_ALWAYS_INLINE Qualified<float> add_inline(float a,
                                                               float b) {
    ++stats_.logical_ops;
    const float r1 = raw_add(a, b);
    const float r2 = raw_add(a, b);
    const float r3 = raw_add(a, b);
    const Qualified<float> v = detail::vote(r1, r2, r3);
    if (!detail::same_bits(r1, r2) || !detail::same_bits(r2, r3)) {
      ++stats_.disagreements;
    }
    return v;
  }
};

// Executor-layer contracts. The statically dispatched qualified kernels
// (static_dispatch.hpp) fold mul_inline/add_inline straight into the
// convolution inner loop and credit fault-free ops in closed form from
// kRedundancy — both are sound only while the concrete schemes stay
// final, their class constants agree with the virtual interface's
// answers, and the stats payloads stay memcpy-able.
HYBRIDCNN_CONTRACT_FINAL(SimplexExecutor);
HYBRIDCNN_CONTRACT_FINAL(DmrExecutor);
HYBRIDCNN_CONTRACT_FINAL(TmrExecutor);
HYBRIDCNN_CONTRACT_TRIVIAL_PAYLOAD(ExecutorStats);
HYBRIDCNN_CONTRACT_AGREE(SimplexExecutor::kScheme, Scheme::kSimplex,
                         "SimplexExecutor must dispatch as kSimplex");
HYBRIDCNN_CONTRACT_AGREE(DmrExecutor::kScheme, Scheme::kDmr,
                         "DmrExecutor must dispatch as kDmr");
HYBRIDCNN_CONTRACT_AGREE(TmrExecutor::kScheme, Scheme::kTmr,
                         "TmrExecutor must dispatch as kTmr");
HYBRIDCNN_CONTRACT_AGREE(SimplexExecutor::kRedundancy, 1,
                         "simplex executes each logical op exactly once");
HYBRIDCNN_CONTRACT_AGREE(DmrExecutor::kRedundancy, 2,
                         "dmr executes each logical op exactly twice");
HYBRIDCNN_CONTRACT_AGREE(TmrExecutor::kRedundancy, 3,
                         "tmr executes each logical op exactly three times");

/// Parses a scheme name ("simplex", "dmr", "tmr"); throws
/// std::invalid_argument on unknown names. Callers that classify per
/// image resolve the name once (e.g. at network construction) and use the
/// Scheme overload of make_executor afterwards.
[[nodiscard]] Scheme parse_scheme(const std::string& scheme);

/// Executor factory over a resolved scheme id; throws
/// std::invalid_argument for Scheme::kCustom.
std::unique_ptr<Executor> make_executor(
    Scheme scheme, std::shared_ptr<faultsim::FaultInjector> injector);

/// Factory for the three schemes by name; throws std::invalid_argument on
/// unknown names. Convenient for bench parameter sweeps.
std::unique_ptr<Executor> make_executor(
    const std::string& scheme,
    std::shared_ptr<faultsim::FaultInjector> injector);

}  // namespace hybridcnn::reliable
