// Overloaded arithmetic executors: Algorithms 1 and 2 of the paper, plus a
// triple-modular-redundancy variant.
//
// The paper overloads multiplication and accumulation so that "multiple
// methods" can be attached to a basic operation: a non-redundant execution
// that always asserts success (Algorithm 1, used for baseline performance
// characteristics), and a redundant execution whose qualifier is true only
// if the two products agree (Algorithm 2). Executors route every physical
// execution through a faultsim::FaultInjector, which models the unreliable
// compute unit; the executor itself is the architecture-independent
// reliability wrapper the paper proposes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "faultsim/injector.hpp"
#include "reliable/qualified.hpp"

namespace hybridcnn::reliable {

/// Statistics an executor accumulates over its lifetime.
struct ExecutorStats {
  std::uint64_t logical_ops = 0;    ///< mul/add requests
  std::uint64_t executions = 0;     ///< physical executions (incl. redundant)
  std::uint64_t disagreements = 0;  ///< redundant executions that disagreed
};

/// Interface for qualified scalar arithmetic. Implementations differ in
/// the redundancy scheme; all of them report through Qualified<float>.
class Executor {
 public:
  /// Constructs over a fault injector. A null injector means fault-free
  /// hardware (used for golden runs and micro-benchmarks).
  explicit Executor(std::shared_ptr<faultsim::FaultInjector> injector);
  virtual ~Executor() = default;

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Qualified multiplication a*b.
  virtual Qualified<float> mul(float a, float b) = 0;

  /// Qualified addition a+b (the convolution's accumulate step).
  virtual Qualified<float> add(float a, float b) = 0;

  /// Scheme name for reports ("simplex", "dmr", "tmr").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Physical executions per logical operation in the fault-free case.
  [[nodiscard]] virtual int redundancy() const = 0;

  [[nodiscard]] const ExecutorStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = ExecutorStats{}; }

  [[nodiscard]] faultsim::FaultInjector* injector() noexcept {
    return injector_.get();
  }

 protected:
  /// One physical multiply on the (possibly faulty) compute unit.
  float raw_mul(float a, float b) noexcept;

  /// One physical add on the (possibly faulty) compute unit.
  float raw_add(float a, float b) noexcept;

  ExecutorStats stats_;

 private:
  float corrupt(float a, float b, float result) noexcept;

  std::shared_ptr<faultsim::FaultInjector> injector_;
};

/// Algorithm 1: non-redundant execution. Returns the product and a
/// predefined qualifier set to true. Baseline performance reference.
class SimplexExecutor final : public Executor {
 public:
  using Executor::Executor;
  Qualified<float> mul(float a, float b) override;
  Qualified<float> add(float a, float b) override;
  [[nodiscard]] std::string name() const override { return "simplex"; }
  [[nodiscard]] int redundancy() const override { return 1; }
};

/// Algorithm 2: dual-modular-redundant execution. The operation is
/// executed twice; the qualifier is true iff both results are
/// bit-identical. Detects (but cannot mask) any single-execution fault.
class DmrExecutor final : public Executor {
 public:
  using Executor::Executor;
  Qualified<float> mul(float a, float b) override;
  Qualified<float> add(float a, float b) override;
  [[nodiscard]] std::string name() const override { return "dmr"; }
  [[nodiscard]] int redundancy() const override { return 2; }
};

/// Triple-modular-redundant execution with majority voting: the value is
/// "agreed upon by execution of the algorithm three times and voting on
/// the result" (Section IV). Masks any single-execution fault; the
/// qualifier is false only when all three results differ.
class TmrExecutor final : public Executor {
 public:
  using Executor::Executor;
  Qualified<float> mul(float a, float b) override;
  Qualified<float> add(float a, float b) override;
  [[nodiscard]] std::string name() const override { return "tmr"; }
  [[nodiscard]] int redundancy() const override { return 3; }
};

/// Factory for the three schemes by name; throws std::invalid_argument on
/// unknown names. Convenient for bench parameter sweeps.
std::unique_ptr<Executor> make_executor(
    const std::string& scheme,
    std::shared_ptr<faultsim::FaultInjector> injector);

}  // namespace hybridcnn::reliable
