// Shared implementation of the reliable kernels' forward_campaign: fan a
// fixed number of independent qualified executions of one kernel across
// the thread pool and reduce the classified outcomes in run order. Works
// for any kernel exposing `ReliableResult forward(const Tensor&,
// Executor&) const` (ReliableConv2d, ReliableLinear).
#pragma once

#include <functional>
#include <memory>

#include "faultsim/campaign.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "runtime/compute_context.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::reliable::detail {

template <typename Kernel>
faultsim::CampaignSummary kernel_campaign(
    const Kernel& kernel, const tensor::Tensor& input, std::size_t runs,
    const std::function<std::unique_ptr<Executor>(std::size_t)>& make_exec,
    const std::function<faultsim::Outcome(std::size_t, const ReliableResult&,
                                          Executor&)>& classify,
    ReportMode mode, runtime::ComputeContext& ctx) {
  // Fault-free runs hit the packed fast path from every worker at once;
  // build the cached pack serially up front instead.
  kernel.prepare_fast_path();
  return faultsim::run_campaign(
      runs,
      [&](std::size_t run) {
        const auto exec = make_exec(run);
        const ReliableResult result = kernel.forward(input, *exec, mode);
        return classify(run, result, *exec);
      },
      ctx);
}

}  // namespace hybridcnn::reliable::detail
