#include "reliable/leaky_bucket.hpp"

#include <algorithm>
#include <stdexcept>

namespace hybridcnn::reliable {

LeakyBucket::LeakyBucket(std::uint32_t factor, std::uint32_t ceiling)
    : factor_(factor), ceiling_(ceiling) {
  if (factor == 0) {
    throw std::invalid_argument("LeakyBucket: factor must be >= 1");
  }
  if (ceiling == 0) {
    throw std::invalid_argument("LeakyBucket: ceiling must be >= 1");
  }
}

bool LeakyBucket::record_error() noexcept {
  ++errors_;
  // Saturating add; ceiling_ is the trip point.
  level_ = (level_ > ceiling_ - std::min(factor_, ceiling_))
               ? ceiling_
               : level_ + factor_;
  level_ = std::min(level_, ceiling_);
  peak_ = std::max(peak_, level_);
  if (level_ >= ceiling_) exhausted_ = true;
  return exhausted_;
}

void LeakyBucket::record_success() noexcept {
  ++successes_;
  if (level_ > 0) --level_;
}

void LeakyBucket::reset() noexcept {
  level_ = 0;
  peak_ = 0;
  errors_ = 0;
  successes_ = 0;
  exhausted_ = false;
}

}  // namespace hybridcnn::reliable
