// Leaky-bucket error counter (fault-tolerant telecommunication pattern).
//
// Algorithm 3 of the paper: "If an error occurs during the execution of an
// operation then, following the leaky bucket pattern, an error counter is
// incremented by a value (factor) and checked against a ceiling. For every
// correct operation this error counter is decremented by one, floor zero.
// In this way a stream of correctly executed operations will cancel one,
// but not two successive errors."
//
// With the default factor 2 and ceiling 4: one error raises the level to 2
// and subsequent successes drain it back to 0; two successive errors reach
// 4 == ceiling and the condition is reported as persistent.
#pragma once

#include <cstdint>

namespace hybridcnn::reliable {

/// Leaky bucket with error increment `factor`, success decrement 1,
/// floor 0 and saturation ceiling. Exhaustion latches until reset().
class LeakyBucket {
 public:
  /// Constructs with the given parameters. Requires factor >= 1 and
  /// ceiling >= 1; throws std::invalid_argument otherwise.
  explicit LeakyBucket(std::uint32_t factor = 2, std::uint32_t ceiling = 4);

  /// Records a failed operation: level += factor. Returns true if the
  /// bucket is now exhausted (level >= ceiling).
  bool record_error() noexcept;

  /// Records a correct operation: level -= 1, floor 0.
  void record_success() noexcept;

  /// True once level has reached the ceiling; latched until reset().
  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }

  /// Current fill level.
  [[nodiscard]] std::uint32_t level() const noexcept { return level_; }

  /// Highest level observed since construction or reset().
  [[nodiscard]] std::uint32_t peak() const noexcept { return peak_; }

  [[nodiscard]] std::uint32_t factor() const noexcept { return factor_; }
  [[nodiscard]] std::uint32_t ceiling() const noexcept { return ceiling_; }

  /// Total errors and successes recorded since construction or reset().
  [[nodiscard]] std::uint64_t errors() const noexcept { return errors_; }
  [[nodiscard]] std::uint64_t successes() const noexcept {
    return successes_;
  }

  /// Drains the bucket and clears the latched exhaustion (system reboot /
  /// new inference).
  void reset() noexcept;

 private:
  std::uint32_t factor_;
  std::uint32_t ceiling_;
  std::uint32_t level_ = 0;
  std::uint32_t peak_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t successes_ = 0;
  bool exhausted_ = false;
};

}  // namespace hybridcnn::reliable
