// Qualified value: the paper's core abstraction.
//
// "We do however expect that the basic operators return a value [...] The
// basic operators should also return a qualifier indicating whether the
// operation was carried out correctly or not." (Section IV)
#pragma once

#include "util/contracts.hpp"

namespace hybridcnn::reliable {

/// A value paired with the qualifier of the operation that produced it.
/// `ok == true` asserts the operation is believed to have executed
/// correctly (e.g. both DMR executions agreed); Algorithm 3 assumes every
/// operation failed unless explicitly asserted otherwise.
template <typename T>
struct Qualified {
  T value{};
  bool ok = false;
};

// The qualified kernels pass Qualified<float> through registers in the
// per-op hot loop and compare the value half bit-for-bit; both need a
// trivially copyable aggregate.
HYBRIDCNN_CONTRACT_TRIVIAL_PAYLOAD(Qualified<float>);

}  // namespace hybridcnn::reliable
