#include "reliable/reliable_conv.hpp"

#include <optional>
#include <stdexcept>

#include "faultsim/bitflip.hpp"
#include "reliable/checkpoint.hpp"
#include "reliable/kernel_campaign.hpp"

namespace hybridcnn::reliable {

namespace {

void validate_conv_params(const tensor::Tensor& weights,
                          const tensor::Tensor& bias) {
  if (weights.shape().rank() != 4) {
    throw std::invalid_argument("ReliableConv2d: weights must be OIHW, got " +
                                weights.shape().str());
  }
  if (bias.shape().rank() != 1 || bias.shape()[0] != weights.shape()[0]) {
    throw std::invalid_argument(
        "ReliableConv2d: bias must be [out_channels]");
  }
}

}  // namespace

ReliableConv2d::ReliableConv2d(tensor::Tensor weights, tensor::Tensor bias,
                               ConvSpec spec, ReliabilityPolicy policy)
    : weights_(std::move(weights)),
      bias_(std::move(bias)),
      spec_(spec),
      policy_(policy) {
  validate_conv_params(weights_, bias_);
  if (spec_.stride == 0) {
    throw std::invalid_argument("ReliableConv2d: stride must be >= 1");
  }
}

tensor::Shape ReliableConv2d::output_shape(const tensor::Shape& in) const {
  if (in.rank() != 3) {
    throw std::invalid_argument("ReliableConv2d: input must be CHW, got " +
                                in.str());
  }
  if (in[0] != weights_.shape()[1]) {
    throw std::invalid_argument(
        "ReliableConv2d: input channels " + std::to_string(in[0]) +
        " do not match weights " + weights_.shape().str());
  }
  const std::size_t kh = weights_.shape()[2];
  const std::size_t kw = weights_.shape()[3];
  const std::size_t padded_h = in[1] + 2 * spec_.pad;
  const std::size_t padded_w = in[2] + 2 * spec_.pad;
  if (padded_h < kh || padded_w < kw) {
    throw std::invalid_argument("ReliableConv2d: kernel larger than input");
  }
  const std::size_t oh = (padded_h - kh) / spec_.stride + 1;
  const std::size_t ow = (padded_w - kw) / spec_.stride + 1;
  return tensor::Shape{weights_.shape()[0], oh, ow};
}

std::uint64_t ReliableConv2d::mac_count(const tensor::Shape& in) const {
  const tensor::Shape out = output_shape(in);
  const std::size_t kh = weights_.shape()[2];
  const std::size_t kw = weights_.shape()[3];
  const std::size_t in_c = in[0];
  std::uint64_t macs = 0;
  for (std::size_t oy = 0; oy < out[1]; ++oy) {
    for (std::size_t ox = 0; ox < out[2]; ++ox) {
      std::uint64_t taps = 0;
      for (std::size_t ky = 0; ky < kh; ++ky) {
        const auto iy = static_cast<std::int64_t>(oy * spec_.stride + ky) -
                        static_cast<std::int64_t>(spec_.pad);
        if (iy < 0 || iy >= static_cast<std::int64_t>(in[1])) continue;
        for (std::size_t kx = 0; kx < kw; ++kx) {
          const auto ix = static_cast<std::int64_t>(ox * spec_.stride + kx) -
                          static_cast<std::int64_t>(spec_.pad);
          if (ix < 0 || ix >= static_cast<std::int64_t>(in[2])) continue;
          ++taps;
        }
      }
      macs += taps * in_c;
    }
  }
  return macs * out[0];
}

ReliableResult ReliableConv2d::forward(const tensor::Tensor& input,
                                       Executor& exec) const {
  const tensor::Shape out_shape = output_shape(input.shape());
  ReliableResult result{tensor::Tensor(out_shape), {}};
  ExecutionReport& report = result.report;
  report.stage = "reliable_conv2d";
  report.scheme = exec.name();

  LeakyBucket bucket(policy_.bucket_factor, policy_.bucket_ceiling);

  const std::size_t out_c = out_shape[0];
  const std::size_t out_h = out_shape[1];
  const std::size_t out_w = out_shape[2];
  const std::size_t in_c = input.shape()[0];
  const std::size_t in_h = input.shape()[1];
  const std::size_t in_w = input.shape()[2];
  const std::size_t kh = weights_.shape()[2];
  const std::size_t kw = weights_.shape()[3];

  std::int64_t op_index = 0;

  // Executes one qualified operation with single-op rollback (Algorithm 3
  // body). Returns std::nullopt when the error is persistent: either the
  // bucket reached its ceiling or the per-op retry cap was exceeded.
  const auto run_qualified =
      [&](const auto& op, ScalarCheckpoint& cp) -> std::optional<float> {
    ++report.logical_ops;
    for (std::uint32_t attempt = 0;; ++attempt) {
      const Qualified<float> q = op();
      if (q.ok) {
        bucket.record_success();
        if (attempt > 0) ++report.corrected_errors;
        cp.commit(q.value);
        ++report.commits;
        return q.value;
      }
      ++report.detected_errors;
      (void)cp.rollback();  // discard the unqualified value
      ++report.rollbacks;
      if (bucket.record_error()) {
        return std::nullopt;  // persistent: ceiling reached
      }
      if (attempt + 1 >= policy_.max_retries_per_op) {
        return std::nullopt;  // persistent: retry cap
      }
      ++report.retries;  // rollback distance: exactly one operation
    }
  };

  const auto abort_with = [&](std::int64_t failed_at) {
    report.ok = false;
    report.failed_op_index = failed_at;
    report.bucket_peak = bucket.peak();
    report.bucket_exhausted = bucket.exhausted();
  };

  for (std::size_t o = 0; o < out_c; ++o) {
    const float b = bias_[o];
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        // The accumulator starts from the bias, loaded from (assumed
        // ECC-protected) parameter memory; all arithmetic on it is
        // qualified.
        ScalarCheckpoint acc(b);
        bool aborted = false;
        for (std::size_t c = 0; c < in_c && !aborted; ++c) {
          for (std::size_t ky = 0; ky < kh && !aborted; ++ky) {
            const auto iy =
                static_cast<std::int64_t>(oy * spec_.stride + ky) -
                static_cast<std::int64_t>(spec_.pad);
            if (iy < 0 || iy >= static_cast<std::int64_t>(in_h)) continue;
            for (std::size_t kx = 0; kx < kw; ++kx) {
              const auto ix =
                  static_cast<std::int64_t>(ox * spec_.stride + kx) -
                  static_cast<std::int64_t>(spec_.pad);
              if (ix < 0 || ix >= static_cast<std::int64_t>(in_w)) continue;

              const float x = input[(c * in_h + static_cast<std::size_t>(iy)) *
                                        in_w +
                                    static_cast<std::size_t>(ix)];
              const float w =
                  weights_[((o * in_c + c) * kh + ky) * kw + kx];

              // Qualified multiply, checkpointed into a product cell.
              ScalarCheckpoint prod(0.0f);
              const auto p =
                  run_qualified([&] { return exec.mul(x, w); }, prod);
              ++op_index;
              if (!p) {
                abort_with(op_index - 1);
                aborted = true;
                break;
              }

              // Qualified accumulate onto the committed accumulator.
              const float before = acc.value();
              const auto s = run_qualified(
                  [&] { return exec.add(before, *p); }, acc);
              ++op_index;
              if (!s) {
                abort_with(op_index - 1);
                aborted = true;
                break;
              }
            }
          }
        }
        result.output[(o * out_h + oy) * out_w + ox] = acc.value();
        if (aborted) {
          // Error propagation stops here: committed prefix is returned,
          // the failure is reported, nothing downstream consumes
          // unqualified values.
          return result;
        }
      }
    }
  }

  report.bucket_peak = bucket.peak();
  report.bucket_exhausted = bucket.exhausted();
  return result;
}

faultsim::CampaignSummary ReliableConv2d::forward_campaign(
    const tensor::Tensor& input, std::size_t runs,
    const std::function<std::unique_ptr<Executor>(std::size_t)>& make_exec,
    const std::function<faultsim::Outcome(std::size_t, const ReliableResult&,
                                          Executor&)>& classify,
    runtime::ComputeContext& ctx) const {
  return detail::kernel_campaign(*this, input, runs, make_exec, classify,
                                 ctx);
}

tensor::Tensor ReliableConv2d::reference_forward(
    const tensor::Tensor& input) const {
  const tensor::Shape out_shape = output_shape(input.shape());
  tensor::Tensor out(out_shape);
  const std::size_t out_h = out_shape[1];
  const std::size_t out_w = out_shape[2];
  const std::size_t in_c = input.shape()[0];
  const std::size_t in_h = input.shape()[1];
  const std::size_t in_w = input.shape()[2];
  const std::size_t kh = weights_.shape()[2];
  const std::size_t kw = weights_.shape()[3];

  for (std::size_t o = 0; o < out_shape[0]; ++o) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        // Same operation order as forward() so results are bit-identical.
        float acc = bias_[o];
        for (std::size_t c = 0; c < in_c; ++c) {
          for (std::size_t ky = 0; ky < kh; ++ky) {
            const auto iy =
                static_cast<std::int64_t>(oy * spec_.stride + ky) -
                static_cast<std::int64_t>(spec_.pad);
            if (iy < 0 || iy >= static_cast<std::int64_t>(in_h)) continue;
            for (std::size_t kx = 0; kx < kw; ++kx) {
              const auto ix =
                  static_cast<std::int64_t>(ox * spec_.stride + kx) -
                  static_cast<std::int64_t>(spec_.pad);
              if (ix < 0 || ix >= static_cast<std::int64_t>(in_w)) continue;
              const float x = input[(c * in_h + static_cast<std::size_t>(iy)) *
                                        in_w +
                                    static_cast<std::size_t>(ix)];
              const float w =
                  weights_[((o * in_c + c) * kh + ky) * kw + kx];
              acc = acc + x * w;
            }
          }
        }
        out[(o * out_h + oy) * out_w + ox] = acc;
      }
    }
  }
  return out;
}

// ------------------------------------------------------------ layer DMR

LayerDmrConv2d::LayerDmrConv2d(tensor::Tensor weights, tensor::Tensor bias,
                               ConvSpec spec, ReliabilityPolicy policy)
    : inner_(std::move(weights), std::move(bias), spec, policy) {}

namespace {

/// Runs the layer once through the executor's (possibly faulty) raw
/// arithmetic with no per-op qualification — the execution style that
/// layer-granular redundancy wraps.
tensor::Tensor unqualified_forward(const ReliableConv2d& conv,
                                   const tensor::Tensor& input,
                                   Executor& exec,
                                   ExecutionReport& report) {
  const tensor::Shape out_shape = conv.output_shape(input.shape());
  tensor::Tensor out(out_shape);
  const auto& weights = conv.weights();
  const auto& bias = conv.bias();
  const auto& spec = conv.spec();
  const std::size_t out_h = out_shape[1];
  const std::size_t out_w = out_shape[2];
  const std::size_t in_c = input.shape()[0];
  const std::size_t in_h = input.shape()[1];
  const std::size_t in_w = input.shape()[2];
  const std::size_t kh = weights.shape()[2];
  const std::size_t kw = weights.shape()[3];

  for (std::size_t o = 0; o < out_shape[0]; ++o) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float acc = bias[o];
        for (std::size_t c = 0; c < in_c; ++c) {
          for (std::size_t ky = 0; ky < kh; ++ky) {
            const auto iy = static_cast<std::int64_t>(oy * spec.stride + ky) -
                            static_cast<std::int64_t>(spec.pad);
            if (iy < 0 || iy >= static_cast<std::int64_t>(in_h)) continue;
            for (std::size_t kx = 0; kx < kw; ++kx) {
              const auto ix =
                  static_cast<std::int64_t>(ox * spec.stride + kx) -
                  static_cast<std::int64_t>(spec.pad);
              if (ix < 0 || ix >= static_cast<std::int64_t>(in_w)) continue;
              const float x = input[(c * in_h + static_cast<std::size_t>(iy)) *
                                        in_w +
                                    static_cast<std::size_t>(ix)];
              const float w =
                  weights[((o * in_c + c) * kh + ky) * kw + kx];
              const float p = exec.mul(x, w).value;
              acc = exec.add(acc, p).value;
              report.logical_ops += 2;
            }
          }
        }
        out[(o * out_h + oy) * out_w + ox] = acc;
      }
    }
  }
  return out;
}

bool tensors_bit_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (std::size_t i = 0; i < a.count(); ++i) {
    if (faultsim::float_bits(a[i]) != faultsim::float_bits(b[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

ReliableResult LayerDmrConv2d::forward(const tensor::Tensor& input,
                                       Executor& exec) const {
  ReliableResult result{tensor::Tensor(inner_.output_shape(input.shape())),
                        {}};
  ExecutionReport& report = result.report;
  report.stage = "layer_dmr_conv2d";
  report.scheme = "layer-dmr(" + exec.name() + ")";

  LeakyBucket bucket(inner_.policy().bucket_factor,
                     inner_.policy().bucket_ceiling);

  for (std::uint32_t attempt = 0;; ++attempt) {
    const tensor::Tensor first =
        unqualified_forward(inner_, input, exec, report);
    const tensor::Tensor second =
        unqualified_forward(inner_, input, exec, report);
    if (tensors_bit_identical(first, second)) {
      bucket.record_success();
      if (attempt > 0) ++report.corrected_errors;
      ++report.commits;
      result.output = first;
      report.bucket_peak = bucket.peak();
      return result;
    }
    ++report.detected_errors;
    ++report.rollbacks;  // rollback distance: the entire layer
    if (bucket.record_error() ||
        attempt + 1 >= inner_.policy().max_retries_per_op) {
      report.ok = false;
      report.bucket_peak = bucket.peak();
      report.bucket_exhausted = bucket.exhausted();
      report.failed_op_index = 0;
      result.output = first;  // best effort; marked failed
      return result;
    }
    ++report.retries;
  }
}

}  // namespace hybridcnn::reliable
