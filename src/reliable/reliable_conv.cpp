#include "reliable/reliable_conv.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "reliable/checkpoint.hpp"
#include "reliable/kernel_campaign.hpp"
#include "reliable/static_dispatch.hpp"

namespace hybridcnn::reliable {

namespace {

void validate_conv_params(const tensor::Tensor& weights,
                          const tensor::Tensor& bias) {
  if (weights.shape().rank() != 4) {
    throw std::invalid_argument("ReliableConv2d: weights must be OIHW, got " +
                                weights.shape().str());
  }
  if (bias.shape().rank() != 1 || bias.shape()[0] != weights.shape()[0]) {
    throw std::invalid_argument(
        "ReliableConv2d: bias must be [out_channels]");
  }
}

}  // namespace

ReliableConv2d::ReliableConv2d(tensor::Tensor weights, tensor::Tensor bias,
                               ConvSpec spec, ReliabilityPolicy policy)
    : weights_(std::move(weights)),
      bias_(std::move(bias)),
      spec_(spec),
      policy_(policy) {
  validate_conv_params(weights_, bias_);
  if (spec_.stride == 0) {
    throw std::invalid_argument("ReliableConv2d: stride must be >= 1");
  }
}

tensor::Shape ReliableConv2d::output_shape(const tensor::Shape& in) const {
  if (in.rank() != 3) {
    throw std::invalid_argument("ReliableConv2d: input must be CHW, got " +
                                in.str());
  }
  if (in[0] != weights_.shape()[1]) {
    throw std::invalid_argument(
        "ReliableConv2d: input channels " + std::to_string(in[0]) +
        " do not match weights " + weights_.shape().str());
  }
  const std::size_t kh = weights_.shape()[2];
  const std::size_t kw = weights_.shape()[3];
  const std::size_t padded_h = in[1] + 2 * spec_.pad;
  const std::size_t padded_w = in[2] + 2 * spec_.pad;
  if (padded_h < kh || padded_w < kw) {
    throw std::invalid_argument("ReliableConv2d: kernel larger than input");
  }
  const std::size_t oh = (padded_h - kh) / spec_.stride + 1;
  const std::size_t ow = (padded_w - kw) / spec_.stride + 1;
  return tensor::Shape{weights_.shape()[0], oh, ow};
}

void ReliableConv2d::set_weights(tensor::Tensor weights) {
  if (!(weights.shape() == weights_.shape())) {
    throw std::invalid_argument(
        "ReliableConv2d::set_weights: shape mismatch, expected " +
        weights_.shape().str() + " got " + weights.shape().str());
  }
  weights_ = std::move(weights);
  ++weight_generation_;
}

std::shared_ptr<const detail::WeightPack> ReliableConv2d::channel_pack()
    const {
#ifdef HYBRIDCNN_ISA_SIMD
  std::lock_guard<std::mutex> lock(pack_mutex_);
  if (!pack_ || pack_->generation != weight_generation_) {
    pack_ = std::make_shared<const detail::WeightPack>(
        detail::build_weight_pack(weights_.shape()[0], weights_.shape()[1],
                                  weights_.shape()[2], weights_.shape()[3],
                                  weights_.data().data(),
                                  bias_.data().data(), weight_generation_));
  }
  return pack_;
#else
  // Only the SIMD channel kernel consumes the pack; building one on
  // scalar targets would be dead weight.
  return nullptr;
#endif
}

std::uint64_t ReliableConv2d::mac_count(const tensor::Shape& in) const {
  const tensor::Shape out = output_shape(in);
  // The valid-tap count of one output coordinate separates into
  // rows(oy) * cols(ox), so the full sum is the product of the two
  // per-axis totals — closed-form per-row arithmetic instead of walking
  // every (oy, ox, ky, kx) tap.
  const std::uint64_t row_taps = detail::total_valid_taps(
      out[1], spec_.stride, spec_.pad, weights_.shape()[2], in[1]);
  const std::uint64_t col_taps = detail::total_valid_taps(
      out[2], spec_.stride, spec_.pad, weights_.shape()[3], in[2]);
  return static_cast<std::uint64_t>(out[0]) * in[0] * row_taps * col_taps;
}

ReliableResult ReliableConv2d::forward(const tensor::Tensor& input,
                                       Executor& exec,
                                       ReportMode mode) const {
  const Scheme scheme = exec.scheme_kind();
  if (scheme == Scheme::kCustom) {
    // Unknown executor subclass: only the virtual interface is available
    // (and only the full-report oracle path exists for it).
    return forward_generic(input, exec);
  }

  const tensor::Shape out_shape = output_shape(input.shape());
  const detail::ConvPlan plan(out_shape, input.shape(), weights_.shape(),
                              spec_.stride, spec_.pad);
  ReliableResult result{tensor::Tensor(out_shape), {}};
  result.report.stage = "reliable_conv2d";
  result.report.scheme = exec.name();

  const float* in = input.data().data();
  const float* wgt = weights_.data().data();
  const float* b = bias_.data().data();

  if (exec.guaranteed_fault_free()) {
    // Golden fast path: no operation can fail, so the qualified schedule
    // collapses to raw arithmetic in the identical order (vectorized
    // across output channels or pixels where the target allows, fanned
    // across the pool); the per-op bookkeeping is credited in closed
    // form after the join.
    const auto pack = channel_pack();
    detail::conv_raw_compute(plan, pack.get(), in, wgt, b,
                             result.output.data().data());
    const std::uint64_t ops = 2 * plan.macs();  // mul + accumulate per MAC
    if (mode == ReportMode::kFull) {
      result.report.logical_ops = ops;
      result.report.commits = ops;
    }
    exec.credit_fault_free_ops(ops);
    return result;
  }

  detail::with_concrete_executor(scheme, exec, [&](auto& concrete) {
    if (mode == ReportMode::kFull) {
      detail::conv_forward_qualified<true>(plan, in, wgt, b, policy_,
                                           concrete, result);
    } else {
      detail::conv_forward_qualified<false>(plan, in, wgt, b, policy_,
                                            concrete, result);
    }
  });
  return result;
}

ReliableResult ReliableConv2d::forward_generic(const tensor::Tensor& input,
                                               Executor& exec) const {
  const tensor::Shape out_shape = output_shape(input.shape());
  ReliableResult result{tensor::Tensor(out_shape), {}};
  ExecutionReport& report = result.report;
  report.stage = "reliable_conv2d";
  report.scheme = exec.name();

  LeakyBucket bucket(policy_.bucket_factor, policy_.bucket_ceiling);

  const std::size_t out_c = out_shape[0];
  const std::size_t out_h = out_shape[1];
  const std::size_t out_w = out_shape[2];
  const std::size_t in_c = input.shape()[0];
  const std::size_t in_h = input.shape()[1];
  const std::size_t in_w = input.shape()[2];
  const std::size_t kh = weights_.shape()[2];
  const std::size_t kw = weights_.shape()[3];

  std::int64_t op_index = 0;

  // Executes one qualified operation with single-op rollback (Algorithm 3
  // body). Returns std::nullopt when the error is persistent: either the
  // bucket reached its ceiling or the per-op retry cap was exceeded.
  const auto run_qualified =
      [&](const auto& op, ScalarCheckpoint& cp) -> std::optional<float> {
    ++report.logical_ops;
    for (std::uint32_t attempt = 0;; ++attempt) {
      const Qualified<float> q = op();
      if (q.ok) {
        bucket.record_success();
        if (attempt > 0) ++report.corrected_errors;
        cp.commit(q.value);
        ++report.commits;
        return q.value;
      }
      ++report.detected_errors;
      (void)cp.rollback();  // discard the unqualified value
      ++report.rollbacks;
      if (bucket.record_error()) {
        return std::nullopt;  // persistent: ceiling reached
      }
      if (attempt + 1 >= policy_.max_retries_per_op) {
        return std::nullopt;  // persistent: retry cap
      }
      ++report.retries;  // rollback distance: exactly one operation
    }
  };

  const auto abort_with = [&](std::int64_t failed_at) {
    report.ok = false;
    report.failed_op_index = failed_at;
    report.bucket_peak = bucket.peak();
    report.bucket_exhausted = bucket.exhausted();
  };

  for (std::size_t o = 0; o < out_c; ++o) {
    const float b = bias_[o];
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        // The accumulator starts from the bias, loaded from (assumed
        // ECC-protected) parameter memory; all arithmetic on it is
        // qualified.
        ScalarCheckpoint acc(b);
        bool aborted = false;
        for (std::size_t c = 0; c < in_c && !aborted; ++c) {
          for (std::size_t ky = 0; ky < kh && !aborted; ++ky) {
            const auto iy =
                static_cast<std::int64_t>(oy * spec_.stride + ky) -
                static_cast<std::int64_t>(spec_.pad);
            if (iy < 0 || iy >= static_cast<std::int64_t>(in_h)) continue;
            for (std::size_t kx = 0; kx < kw; ++kx) {
              const auto ix =
                  static_cast<std::int64_t>(ox * spec_.stride + kx) -
                  static_cast<std::int64_t>(spec_.pad);
              if (ix < 0 || ix >= static_cast<std::int64_t>(in_w)) continue;

              const float x = input[(c * in_h + static_cast<std::size_t>(iy)) *
                                        in_w +
                                    static_cast<std::size_t>(ix)];
              const float w =
                  weights_[((o * in_c + c) * kh + ky) * kw + kx];

              // Qualified multiply, checkpointed into a product cell.
              ScalarCheckpoint prod(0.0f);
              const auto p =
                  run_qualified([&] { return exec.mul(x, w); }, prod);
              ++op_index;
              if (!p) {
                abort_with(op_index - 1);
                aborted = true;
                break;
              }

              // Qualified accumulate onto the committed accumulator.
              const float before = acc.value();
              const auto s = run_qualified(
                  [&] { return exec.add(before, *p); }, acc);
              ++op_index;
              if (!s) {
                abort_with(op_index - 1);
                aborted = true;
                break;
              }
            }
          }
        }
        result.output[(o * out_h + oy) * out_w + ox] = acc.value();
        if (aborted) {
          // Error propagation stops here: committed prefix is returned,
          // the failure is reported, nothing downstream consumes
          // unqualified values.
          return result;
        }
      }
    }
  }

  report.bucket_peak = bucket.peak();
  report.bucket_exhausted = bucket.exhausted();
  return result;
}

faultsim::CampaignSummary ReliableConv2d::forward_campaign(
    const tensor::Tensor& input, std::size_t runs,
    const std::function<std::unique_ptr<Executor>(std::size_t)>& make_exec,
    const std::function<faultsim::Outcome(std::size_t, const ReliableResult&,
                                          Executor&)>& classify,
    ReportMode mode, runtime::ComputeContext& ctx) const {
  return detail::kernel_campaign(*this, input, runs, make_exec, classify,
                                 mode, ctx);
}

tensor::Tensor ReliableConv2d::reference_forward(
    const tensor::Tensor& input) const {
  const tensor::Shape out_shape = output_shape(input.shape());
  const detail::ConvPlan plan(out_shape, input.shape(), weights_.shape(),
                              spec_.stride, spec_.pad);
  tensor::Tensor out(out_shape);
  // Same operation order as forward() so results are bit-identical.
  const auto pack = channel_pack();
  detail::conv_raw_compute(plan, pack.get(), input.data().data(),
                           weights_.data().data(), bias_.data().data(),
                           out.data().data());
  return out;
}

// ------------------------------------------------------------ layer DMR

LayerDmrConv2d::LayerDmrConv2d(tensor::Tensor weights, tensor::Tensor bias,
                               ConvSpec spec, ReliabilityPolicy policy)
    : inner_(std::move(weights), std::move(bias), spec, policy) {}

namespace {

/// Runs the layer once through the executor's (possibly faulty) raw
/// arithmetic with no per-op qualification — the execution style that
/// layer-granular redundancy wraps. Virtual-dispatch variant; writes into
/// the caller's buffer so attempts reuse their allocations.
void unqualified_forward_generic(const detail::ConvPlan& plan,
                                 const float* input, const float* weights,
                                 const float* bias, Executor& exec,
                                 ExecutionReport& report, float* out) {
  for (std::size_t o = 0; o < plan.out_c; ++o) {
    const float b = bias[o];
    for (std::size_t oy = 0; oy < plan.out_h; ++oy) {
      const detail::TapRange ry = plan.row_taps[oy];
      for (std::size_t ox = 0; ox < plan.out_w; ++ox) {
        const detail::TapRange rx = plan.col_taps[ox];
        float acc = b;
        for (std::size_t c = 0; c < plan.in_c; ++c) {
          for (std::size_t ky = ry.begin; ky < ry.end; ++ky) {
            const std::size_t iy = oy * plan.stride + ky - plan.pad;
            const std::size_t in_base = (c * plan.in_h + iy) * plan.in_w;
            const float* w_row =
                weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
            for (std::size_t kx = rx.begin; kx < rx.end; ++kx) {
              const std::size_t ix = ox * plan.stride + kx - plan.pad;
              const float p = exec.mul(input[in_base + ix], w_row[kx]).value;
              acc = exec.add(acc, p).value;
              report.logical_ops += 2;
            }
          }
        }
        out[(o * plan.out_h + oy) * plan.out_w + ox] = acc;
      }
    }
  }
}

/// One unqualified pass through the statically dispatched inline kernel
/// for the three library schemes.
void unqualified_forward_inline(const detail::ConvPlan& plan,
                                const float* input, const float* weights,
                                const float* bias, Executor& exec,
                                Scheme scheme, ExecutionReport& report,
                                float* out) {
  detail::with_concrete_executor(scheme, exec, [&](auto& concrete) {
    detail::conv_unqualified_inline(plan, input, weights, bias, concrete,
                                    report, out);
  });
}

/// Shared layer-DMR control loop: `pass(buffer, report)` executes one
/// unqualified layer attempt into the buffer, accounting into the
/// result's report. Attempt buffers are allocated once and reused; the
/// agreeing (or best-effort) attempt is moved into the result.
template <typename Pass>
ReliableResult layer_dmr_loop(const ReliableConv2d& inner,
                              const tensor::Shape& out_shape,
                              const std::string& scheme_label,
                              const Pass& pass) {
  ReliableResult result{tensor::Tensor(), {}};
  ExecutionReport& report = result.report;
  report.stage = "layer_dmr_conv2d";
  report.scheme = scheme_label;

  LeakyBucket bucket(inner.policy().bucket_factor,
                     inner.policy().bucket_ceiling);

  tensor::Tensor first(out_shape);
  tensor::Tensor second(out_shape);
  for (std::uint32_t attempt = 0;; ++attempt) {
    pass(first, report);
    pass(second, report);
    if (tensor::bit_identical(first, second)) {
      bucket.record_success();
      if (attempt > 0) ++report.corrected_errors;
      ++report.commits;
      result.output = std::move(first);
      report.bucket_peak = bucket.peak();
      return result;
    }
    ++report.detected_errors;
    ++report.rollbacks;  // rollback distance: the entire layer
    if (bucket.record_error() ||
        attempt + 1 >= inner.policy().max_retries_per_op) {
      report.ok = false;
      report.bucket_peak = bucket.peak();
      report.bucket_exhausted = bucket.exhausted();
      report.failed_op_index = 0;
      result.output = std::move(first);  // best effort; marked failed
      return result;
    }
    ++report.retries;
  }
}

}  // namespace

ReliableResult LayerDmrConv2d::forward(const tensor::Tensor& input,
                                       Executor& exec) const {
  const Scheme scheme = exec.scheme_kind();
  if (scheme == Scheme::kCustom) return forward_generic(input, exec);

  const tensor::Shape out_shape = inner_.output_shape(input.shape());
  const detail::ConvPlan plan(out_shape, input.shape(),
                              inner_.weights().shape(), inner_.spec().stride,
                              inner_.spec().pad);
  const float* in = input.data().data();
  const float* wgt = inner_.weights().data().data();
  const float* b = inner_.bias().data().data();

  if (exec.guaranteed_fault_free()) {
    // Both attempts are raw arithmetic on fault-free hardware: they agree
    // by construction, so one computation serves as the committed layer
    // and the second pass's bookkeeping is credited in closed form.
    ReliableResult result{tensor::Tensor(out_shape), {}};
    ExecutionReport& report = result.report;
    report.stage = "layer_dmr_conv2d";
    report.scheme = "layer-dmr(" + exec.name() + ")";
    LeakyBucket bucket(inner_.policy().bucket_factor,
                       inner_.policy().bucket_ceiling);
    const auto pack = inner_.channel_pack();
    detail::conv_raw_compute(plan, pack.get(), in, wgt, b,
                             result.output.data().data());
    const std::uint64_t ops = 2 * (2 * plan.macs());  // two layer passes
    report.logical_ops = ops;
    exec.credit_fault_free_ops(ops);
    bucket.record_success();
    ++report.commits;
    report.bucket_peak = bucket.peak();
    return result;
  }

  return layer_dmr_loop(
      inner_, out_shape, "layer-dmr(" + exec.name() + ")",
      [&](tensor::Tensor& buffer, ExecutionReport& report) {
        unqualified_forward_inline(plan, in, wgt, b, exec, scheme, report,
                                   buffer.data().data());
      });
}

ReliableResult LayerDmrConv2d::forward_generic(const tensor::Tensor& input,
                                               Executor& exec) const {
  const tensor::Shape out_shape = inner_.output_shape(input.shape());
  const detail::ConvPlan plan(out_shape, input.shape(),
                              inner_.weights().shape(), inner_.spec().stride,
                              inner_.spec().pad);
  const float* in = input.data().data();
  const float* wgt = inner_.weights().data().data();
  const float* b = inner_.bias().data().data();

  return layer_dmr_loop(
      inner_, out_shape, "layer-dmr(" + exec.name() + ")",
      [&](tensor::Tensor& buffer, ExecutionReport& report) {
        unqualified_forward_generic(plan, in, wgt, b, exec, report,
                                    buffer.data().data());
      });
}

}  // namespace hybridcnn::reliable
