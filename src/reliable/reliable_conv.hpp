// Reliable convolution kernel: the paper's Algorithm 3.
//
// Calculates a 2-D convolution layer where every multiplication and
// accumulation is executed through an overloaded, qualified operator
// (Algorithm 1 or 2). The kernel "assumes that every operation fails
// unless explicitly asserted otherwise"; a failed operation is retried
// after a rollback to the last committed accumulator value (rollback
// distance = one operation) and feeds the leaky-bucket error counter.
// Exit conditions are success or failure: failure is reported once the
// bucket reaches its ceiling, i.e. the error is considered persistent.
//
// A layer-granular DMR variant (LayerDmrConv2d) is provided for the
// rollback-distance ablation: it re-executes the *entire* layer on
// mismatch, the strategy the paper argues against for deadline-bound
// systems.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "faultsim/campaign.hpp"
#include "reliable/executor.hpp"
#include "reliable/leaky_bucket.hpp"
#include "reliable/report.hpp"
#include "runtime/compute_context.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::reliable {

namespace detail {
// Channel-lane repacked weights for the fault-free fast path; defined in
// reliable/static_dispatch.hpp (which includes this header).
struct WeightPack;
}  // namespace detail

/// Spatial parameters of a convolution.
struct ConvSpec {
  std::size_t stride = 1;
  std::size_t pad = 0;
};

/// Parameters of the reliability envelope around a kernel.
struct ReliabilityPolicy {
  std::uint32_t bucket_factor = 2;
  std::uint32_t bucket_ceiling = 4;
  /// Hard cap on retries of one operation, guarding forward progress under
  /// permanent faults even with large buckets.
  std::uint32_t max_retries_per_op = 16;
};

/// Output of a reliable kernel: the tensor plus the execution report.
struct ReliableResult {
  tensor::Tensor output;
  ExecutionReport report;
};

/// Reliably executed convolution layer (Algorithm 3 generalised from one
/// convolution operation to a full layer). Weights are OIHW, bias is O,
/// input and output are CHW (single image — the hybrid pipeline operates
/// per frame).
class ReliableConv2d {
 public:
  /// Constructs from weights [out_c, in_c, kh, kw] and bias [out_c].
  /// Throws std::invalid_argument on inconsistent shapes.
  ReliableConv2d(tensor::Tensor weights, tensor::Tensor bias, ConvSpec spec,
                 ReliabilityPolicy policy = {});

  /// Executes the layer with qualified operations from `exec`.
  /// On bucket exhaustion the report has ok == false and the output is
  /// whatever had been committed up to the failed operation (explicitly
  /// bounded error propagation).
  ///
  /// Dispatches once per call on the executor's scheme and injector
  /// state: the three library schemes run a devirtualized inner kernel
  /// (with a raw-arithmetic fast path — SIMD pixel lanes where the
  /// target supports them — when the executor is
  /// guaranteed_fault_free()); custom executors fall back to
  /// forward_generic(). Outputs, reports, executor stats and injector
  /// state are bit-identical across the paths — the contract
  /// tests/test_static_dispatch.cpp and tests/test_simd_dispatch.cpp
  /// enforce.
  ///
  /// `mode` selects the report detail (see reliable::ReportMode):
  /// kStatsOnly skips the per-op report counters for campaign sweeps
  /// that only consume the summary; output bits, report.ok and all
  /// executor/injector statistics are unaffected. Custom executors
  /// always produce a full report.
  [[nodiscard]] ReliableResult forward(
      const tensor::Tensor& input, Executor& exec,
      ReportMode mode = ReportMode::kFull) const;

  /// The retained virtual-dispatch qualified path: every mul/add goes
  /// through Executor's virtual interface, per-op retry lambda and
  /// per-tap boundary checks. Semantically identical to forward(); kept
  /// as the oracle the specialized kernels are diffed against and as the
  /// path for out-of-library executor schemes.
  [[nodiscard]] ReliableResult forward_generic(const tensor::Tensor& input,
                                               Executor& exec) const;

  /// Golden reference: plain non-instrumented convolution (fault-free
  /// scalar arithmetic, same loop order so results are bit-comparable).
  [[nodiscard]] tensor::Tensor reference_forward(
      const tensor::Tensor& input) const;

  /// Fault-injection campaign over this layer: `runs` independent
  /// qualified executions split across the thread pool. `make_exec(run)`
  /// builds the run-local executor (seed it from `run` — it may be called
  /// from any worker, in any order); `classify(run, result, exec)` maps
  /// the finished run to a dependability outcome. Outcomes are reduced in
  /// run order, so the summary is bit-identical at every thread count.
  /// `mode` is forwarded to every per-run forward(); kStatsOnly sweeps
  /// produce the identical summary without per-op report assembly.
  [[nodiscard]] faultsim::CampaignSummary forward_campaign(
      const tensor::Tensor& input, std::size_t runs,
      const std::function<std::unique_ptr<Executor>(std::size_t)>& make_exec,
      const std::function<faultsim::Outcome(std::size_t,
                                            const ReliableResult&, Executor&)>&
          classify,
      ReportMode mode = ReportMode::kFull,
      runtime::ComputeContext& ctx =
          runtime::ComputeContext::global()) const;

  /// Output shape for a given input shape; validates channel count.
  [[nodiscard]] tensor::Shape output_shape(const tensor::Shape& in) const;

  [[nodiscard]] const tensor::Tensor& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] const tensor::Tensor& bias() const noexcept { return bias_; }
  [[nodiscard]] const ConvSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const ReliabilityPolicy& policy() const noexcept {
    return policy_;
  }

  /// Logical multiply-accumulate count for one forward on `in` shape.
  [[nodiscard]] std::uint64_t mac_count(const tensor::Shape& in) const;

  /// Replaces the layer's weights (shape must match; throws
  /// std::invalid_argument otherwise) and bumps the weight generation,
  /// invalidating the cached channel-lane weight pack. Not safe against
  /// concurrent forwards — like mutating any layer parameter, it is a
  /// setup-time operation.
  void set_weights(tensor::Tensor weights);

  /// Monotonic counter of weight replacements; the channel-lane pack is
  /// keyed on it.
  [[nodiscard]] std::uint64_t weight_generation() const noexcept {
    return weight_generation_;
  }

  /// The channel-lane repacked weights for the fault-free fast path,
  /// built lazily (thread-safe) and cached until the weight generation
  /// changes. Null on targets without vectors — only the SIMD channel
  /// kernel consumes it. Engine-internal; exposed for the dispatch tests
  /// and layer-granular wrappers.
  [[nodiscard]] std::shared_ptr<const detail::WeightPack> channel_pack()
      const;

  /// Pre-builds the cached pack so batch/campaign paths pay the repack
  /// once up front instead of contending on first concurrent use.
  void prepare_fast_path() const { (void)channel_pack(); }

 private:
  tensor::Tensor weights_;  // OIHW
  tensor::Tensor bias_;     // O
  ConvSpec spec_;
  ReliabilityPolicy policy_;
  std::uint64_t weight_generation_ = 0;
  mutable std::mutex pack_mutex_;
  mutable std::shared_ptr<const detail::WeightPack> pack_;
};

/// Layer-granular DMR: runs the whole (unqualified) layer twice through
/// the faulty compute unit and compares; on mismatch rolls back and
/// re-executes the entire layer. Used by the rollback-distance ablation.
class LayerDmrConv2d {
 public:
  LayerDmrConv2d(tensor::Tensor weights, tensor::Tensor bias, ConvSpec spec,
                 ReliabilityPolicy policy = {});

  /// `exec` supplies the faulty raw arithmetic via a SimplexExecutor-style
  /// single execution; redundancy is applied at layer granularity.
  /// Scheme-dispatched like ReliableConv2d::forward; the two attempt
  /// buffers are allocated once and reused across retries, and the
  /// agreeing attempt is moved (not copied) into the result.
  [[nodiscard]] ReliableResult forward(const tensor::Tensor& input,
                                       Executor& exec) const;

  /// Virtual-dispatch oracle path (same buffer-reuse shape, raw ops go
  /// through Executor's virtual mul/add).
  [[nodiscard]] ReliableResult forward_generic(const tensor::Tensor& input,
                                               Executor& exec) const;

 private:
  ReliableConv2d inner_;
};

}  // namespace hybridcnn::reliable
