#include "reliable/reliable_linear.hpp"

#include <optional>
#include <stdexcept>

#include "reliable/checkpoint.hpp"
#include "reliable/kernel_campaign.hpp"
#include "reliable/static_dispatch.hpp"

namespace hybridcnn::reliable {

namespace {

void validate_linear_input(const tensor::Tensor& input, std::size_t in_n) {
  if (input.shape().rank() != 1 || input.shape()[0] != in_n) {
    throw std::invalid_argument("ReliableLinear: input must be [" +
                                std::to_string(in_n) + "]");
  }
}

}  // namespace

ReliableLinear::ReliableLinear(tensor::Tensor weights, tensor::Tensor bias,
                               ReliabilityPolicy policy)
    : weights_(std::move(weights)),
      bias_(std::move(bias)),
      policy_(policy) {
  if (weights_.shape().rank() != 2) {
    throw std::invalid_argument("ReliableLinear: weights must be [out, in]");
  }
  if (bias_.shape().rank() != 1 || bias_.shape()[0] != weights_.shape()[0]) {
    throw std::invalid_argument("ReliableLinear: bias must be [out]");
  }
}

void ReliableLinear::set_weights(tensor::Tensor weights) {
  if (!(weights.shape() == weights_.shape())) {
    throw std::invalid_argument(
        "ReliableLinear::set_weights: shape mismatch, expected " +
        weights_.shape().str() + " got " + weights.shape().str());
  }
  weights_ = std::move(weights);
  ++weight_generation_;
}

std::shared_ptr<const detail::LinearWeightPack> ReliableLinear::neuron_pack()
    const {
#ifdef HYBRIDCNN_ISA_SIMD
  std::lock_guard<std::mutex> lock(pack_mutex_);
  if (!pack_ || pack_->generation != weight_generation_) {
    pack_ = std::make_shared<const detail::LinearWeightPack>(
        detail::build_linear_pack(weights_.shape()[0], weights_.shape()[1],
                                  weights_.data().data(),
                                  bias_.data().data(), weight_generation_));
  }
  return pack_;
#else
  return nullptr;
#endif
}

ReliableResult ReliableLinear::forward(const tensor::Tensor& input,
                                       Executor& exec,
                                       ReportMode mode) const {
  const Scheme scheme = exec.scheme_kind();
  if (scheme == Scheme::kCustom) return forward_generic(input, exec);

  const std::size_t out_n = weights_.shape()[0];
  const std::size_t in_n = weights_.shape()[1];
  validate_linear_input(input, in_n);

  ReliableResult result{tensor::Tensor(tensor::Shape{out_n}), {}};
  result.report.stage = "reliable_linear";
  result.report.scheme = exec.name();

  const float* in = input.data().data();
  const float* wgt = weights_.data().data();
  const float* b = bias_.data().data();

  if (exec.guaranteed_fault_free()) {
    const auto pack = neuron_pack();
    detail::linear_raw_compute(out_n, in_n, pack.get(), in, wgt, b,
                               result.output.data().data());
    const std::uint64_t ops = 2 * static_cast<std::uint64_t>(out_n) * in_n;
    if (mode == ReportMode::kFull) {
      result.report.logical_ops = ops;
      result.report.commits = ops;
    }
    exec.credit_fault_free_ops(ops);
    return result;
  }

  detail::with_concrete_executor(scheme, exec, [&](auto& concrete) {
    if (mode == ReportMode::kFull) {
      detail::linear_forward_qualified<true>(out_n, in_n, in, wgt, b,
                                             policy_, concrete, result);
    } else {
      detail::linear_forward_qualified<false>(out_n, in_n, in, wgt, b,
                                              policy_, concrete, result);
    }
  });
  return result;
}

ReliableResult ReliableLinear::forward_generic(const tensor::Tensor& input,
                                               Executor& exec) const {
  const std::size_t out_n = weights_.shape()[0];
  const std::size_t in_n = weights_.shape()[1];
  validate_linear_input(input, in_n);

  ReliableResult result{tensor::Tensor(tensor::Shape{out_n}), {}};
  ExecutionReport& report = result.report;
  report.stage = "reliable_linear";
  report.scheme = exec.name();

  LeakyBucket bucket(policy_.bucket_factor, policy_.bucket_ceiling);
  std::int64_t op_index = 0;

  const auto run_qualified =
      [&](const auto& op, ScalarCheckpoint& cp) -> std::optional<float> {
    ++report.logical_ops;
    for (std::uint32_t attempt = 0;; ++attempt) {
      const Qualified<float> q = op();
      if (q.ok) {
        bucket.record_success();
        if (attempt > 0) ++report.corrected_errors;
        cp.commit(q.value);
        ++report.commits;
        return q.value;
      }
      ++report.detected_errors;
      (void)cp.rollback();
      ++report.rollbacks;
      if (bucket.record_error()) return std::nullopt;
      if (attempt + 1 >= policy_.max_retries_per_op) return std::nullopt;
      ++report.retries;
    }
  };

  for (std::size_t o = 0; o < out_n; ++o) {
    ScalarCheckpoint acc(bias_[o]);
    for (std::size_t i = 0; i < in_n; ++i) {
      const float x = input[i];
      const float w = weights_[o * in_n + i];

      ScalarCheckpoint prod(0.0f);
      const auto p = run_qualified([&] { return exec.mul(x, w); }, prod);
      ++op_index;
      if (!p) {
        report.ok = false;
        report.failed_op_index = op_index - 1;
        report.bucket_peak = bucket.peak();
        report.bucket_exhausted = bucket.exhausted();
        result.output[o] = acc.value();
        return result;
      }

      const float before = acc.value();
      const auto s =
          run_qualified([&] { return exec.add(before, *p); }, acc);
      ++op_index;
      if (!s) {
        report.ok = false;
        report.failed_op_index = op_index - 1;
        report.bucket_peak = bucket.peak();
        report.bucket_exhausted = bucket.exhausted();
        result.output[o] = acc.value();
        return result;
      }
    }
    result.output[o] = acc.value();
  }

  report.bucket_peak = bucket.peak();
  report.bucket_exhausted = bucket.exhausted();
  return result;
}

faultsim::CampaignSummary ReliableLinear::forward_campaign(
    const tensor::Tensor& input, std::size_t runs,
    const std::function<std::unique_ptr<Executor>(std::size_t)>& make_exec,
    const std::function<faultsim::Outcome(std::size_t, const ReliableResult&,
                                          Executor&)>& classify,
    ReportMode mode, runtime::ComputeContext& ctx) const {
  return detail::kernel_campaign(*this, input, runs, make_exec, classify,
                                 mode, ctx);
}

tensor::Tensor ReliableLinear::reference_forward(
    const tensor::Tensor& input) const {
  const std::size_t out_n = weights_.shape()[0];
  const std::size_t in_n = weights_.shape()[1];
  validate_linear_input(input, in_n);
  tensor::Tensor out(tensor::Shape{out_n});
  const auto pack = neuron_pack();
  detail::linear_raw_compute(out_n, in_n, pack.get(), input.data().data(),
                             weights_.data().data(), bias_.data().data(),
                             out.data().data());
  return out;
}

}  // namespace hybridcnn::reliable
