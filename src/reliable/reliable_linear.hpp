// Reliably executed fully-connected layer.
//
// The paper limits its evaluation to one convolution layer but names the
// harnessing of subsequent layers as the direction of further work
// (Section V). ReliableLinear extends Algorithm 3's qualified
// multiply-accumulate scheme to dense layers so hybrid partitions can
// place the reliability boundary after any layer.
#pragma once

#include <memory>
#include <mutex>

#include "reliable/executor.hpp"
#include "reliable/leaky_bucket.hpp"
#include "reliable/reliable_conv.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::reliable {

namespace detail {
// Neuron-lane repacked weights for the dense fault-free fast path;
// defined in reliable/static_dispatch.hpp.
struct LinearWeightPack;
}  // namespace detail

/// Qualified dense layer: y = W x + b with every scalar operation executed
/// through an overloaded executor, single-op rollback and a leaky bucket.
class ReliableLinear {
 public:
  /// Weights [out, in], bias [out]. Throws std::invalid_argument on
  /// inconsistent shapes.
  ReliableLinear(tensor::Tensor weights, tensor::Tensor bias,
                 ReliabilityPolicy policy = {});

  /// Input must be rank-1 of length `in`. Same contract as
  /// ReliableConv2d::forward, including the once-per-call scheme dispatch
  /// onto devirtualized kernels, the guaranteed-fault-free fast path
  /// (vectorized across output neurons where the target allows) and the
  /// ReportMode::kStatsOnly variant.
  [[nodiscard]] ReliableResult forward(
      const tensor::Tensor& input, Executor& exec,
      ReportMode mode = ReportMode::kFull) const;

  /// Retained virtual-dispatch qualified path (oracle / custom-scheme
  /// fallback); see ReliableConv2d::forward_generic.
  [[nodiscard]] ReliableResult forward_generic(const tensor::Tensor& input,
                                               Executor& exec) const;

  /// Golden reference with identical operation order.
  [[nodiscard]] tensor::Tensor reference_forward(
      const tensor::Tensor& input) const;

  /// Parallel fault-injection campaign; same contract as
  /// ReliableConv2d::forward_campaign.
  [[nodiscard]] faultsim::CampaignSummary forward_campaign(
      const tensor::Tensor& input, std::size_t runs,
      const std::function<std::unique_ptr<Executor>(std::size_t)>& make_exec,
      const std::function<faultsim::Outcome(std::size_t,
                                            const ReliableResult&, Executor&)>&
          classify,
      ReportMode mode = ReportMode::kFull,
      runtime::ComputeContext& ctx =
          runtime::ComputeContext::global()) const;

  [[nodiscard]] const tensor::Tensor& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] const tensor::Tensor& bias() const noexcept { return bias_; }

  /// Replaces the layer's weights (shape must match; throws
  /// std::invalid_argument otherwise) and bumps the weight generation,
  /// invalidating the cached neuron-lane pack. Setup-time only.
  void set_weights(tensor::Tensor weights);

  [[nodiscard]] std::uint64_t weight_generation() const noexcept {
    return weight_generation_;
  }

  /// Neuron-lane repacked weights for the fault-free fast path; same
  /// lifetime/caching contract as ReliableConv2d::channel_pack(). Null
  /// on targets without vectors.
  [[nodiscard]] std::shared_ptr<const detail::LinearWeightPack>
  neuron_pack() const;

  /// Pre-builds the cached pack (see ReliableConv2d::prepare_fast_path).
  void prepare_fast_path() const { (void)neuron_pack(); }

 private:
  tensor::Tensor weights_;  // [out, in]
  tensor::Tensor bias_;     // [out]
  ReliabilityPolicy policy_;
  std::uint64_t weight_generation_ = 0;
  mutable std::mutex pack_mutex_;
  mutable std::shared_ptr<const detail::LinearWeightPack> pack_;
};

}  // namespace hybridcnn::reliable
