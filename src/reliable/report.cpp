#include "reliable/report.hpp"

#include <algorithm>
#include <sstream>

namespace hybridcnn::reliable {

void ExecutionReport::merge(const ExecutionReport& other) {
  ok = ok && other.ok;
  logical_ops += other.logical_ops;
  detected_errors += other.detected_errors;
  retries += other.retries;
  corrected_errors += other.corrected_errors;
  commits += other.commits;
  rollbacks += other.rollbacks;
  bucket_peak = std::max(bucket_peak, other.bucket_peak);
  bucket_exhausted = bucket_exhausted || other.bucket_exhausted;
  if (failed_op_index < 0) failed_op_index = other.failed_op_index;
}

std::string ExecutionReport::summary() const {
  std::ostringstream os;
  os << (stage.empty() ? "kernel" : stage) << " [" << scheme << "] "
     << (ok ? "OK" : "FAILED") << ": ops=" << logical_ops
     << " detected=" << detected_errors << " retries=" << retries
     << " corrected=" << corrected_errors << " bucket_peak=" << bucket_peak;
  if (bucket_exhausted) os << " (bucket exhausted)";
  if (failed_op_index >= 0) os << " failed_at=" << failed_op_index;
  return os.str();
}

}  // namespace hybridcnn::reliable
