// Execution report for reliably executed kernels.
//
// The paper's Algorithm 3 maintains an error counter and exits with
// failure or success "in this version we do not return diagnostic
// information other than maintain an error counter as a global variable".
// As a library we do better: every reliable kernel returns a structured
// report a safety case can log.
#pragma once

#include <cstdint>
#include <string>

namespace hybridcnn::reliable {

/// How much of the ExecutionReport a reliable kernel assembles.
///
/// kFull is the default: every counter below is maintained per op.
/// kStatsOnly elides the per-op counter updates inside the qualified
/// inner loops — for campaign sweeps that only consume the
/// CampaignSummary (and the executor/injector statistics, which are
/// unaffected), the report bookkeeping is pure overhead. Under
/// kStatsOnly only `ok`, `stage` and `scheme` are meaningful; every
/// numeric counter keeps its default. Output bits, ExecutorStats,
/// InjectorStats and the abort decision itself are bit-identical to
/// kFull. Custom (out-of-library) executors always take the generic
/// full-report path.
enum class ReportMode : std::uint8_t { kFull, kStatsOnly };

/// Observable facts about one reliable kernel execution.
struct ExecutionReport {
  bool ok = true;              ///< kernel completed; result is qualified
  std::string stage;           ///< kernel label, e.g. "conv1"
  std::string scheme;          ///< executor scheme used ("dmr", ...)

  std::uint64_t logical_ops = 0;       ///< multiplies + accumulates requested
  std::uint64_t detected_errors = 0;   ///< ops whose qualifier was false
  std::uint64_t retries = 0;           ///< single-op rollbacks performed
  std::uint64_t corrected_errors = 0;  ///< detected errors recovered by retry
  std::uint64_t commits = 0;           ///< checkpoint commits
  std::uint64_t rollbacks = 0;         ///< checkpoint rollbacks

  std::uint32_t bucket_peak = 0;       ///< highest bucket level observed
  bool bucket_exhausted = false;       ///< persistent-failure latch
  std::int64_t failed_op_index = -1;   ///< flat op index at abort, -1 if none

  /// Field-wise equality — the bit-identity contract's report half; the
  /// static-dispatch equivalence checks compare through this so a new
  /// field can never silently escape coverage.
  friend bool operator==(const ExecutionReport&,
                         const ExecutionReport&) = default;

  /// Merges counters of a sub-kernel report (ok is AND-ed, peaks max-ed).
  void merge(const ExecutionReport& other);

  /// One-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

}  // namespace hybridcnn::reliable
