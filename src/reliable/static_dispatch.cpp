#include "reliable/static_dispatch.hpp"

#include <cstdlib>

namespace hybridcnn::reliable::detail {

namespace {

bool read_env_simd_enabled() {
  // Kill-switch semantics: only the literal "0" disables. Unset or any
  // other value leaves the vectorized fast path on.
  const char* v = std::getenv("HYBRIDCNN_RELIABLE_SIMD");
  return !(v != nullptr && v[0] == '0' && v[1] == '\0');
}

bool& simd_flag() noexcept {
  static bool flag = read_env_simd_enabled();
  return flag;
}

}  // namespace

bool reliable_simd_enabled() noexcept { return simd_flag(); }

void set_reliable_simd_enabled(bool enabled) noexcept {
  simd_flag() = enabled;
}

}  // namespace hybridcnn::reliable::detail
