#include "reliable/static_dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace hybridcnn::reliable::detail {

namespace {

bool read_env_simd_enabled() {
  // Kill-switch semantics: only the literal "0" disables. Unset or any
  // other value leaves the vectorized fast path on.
  const char* v = std::getenv("HYBRIDCNN_RELIABLE_SIMD");
  return !(v != nullptr && v[0] == '0' && v[1] == '\0');
}

bool& simd_flag() noexcept {
  static bool flag = read_env_simd_enabled();
  return flag;
}

ConvKernel read_env_kernel_choice() {
  // Unset or unrecognised values fall back to the heuristic; only the
  // exact spellings force a kernel (mirrors the SIMD kill-switch's
  // strictness so typos cannot silently pin a strategy).
  return parse_reliable_kernel(std::getenv("HYBRIDCNN_RELIABLE_KERNEL"))
      .value_or(ConvKernel::kAuto);
}

ConvKernel& kernel_flag() noexcept {
  static ConvKernel choice = read_env_kernel_choice();
  return choice;
}

}  // namespace

bool reliable_simd_enabled() noexcept { return simd_flag(); }

void set_reliable_simd_enabled(bool enabled) noexcept {
  simd_flag() = enabled;
}

ConvKernel reliable_kernel_choice() noexcept { return kernel_flag(); }

void set_reliable_kernel_choice(ConvKernel choice) noexcept {
  kernel_flag() = choice;
}

std::optional<ConvKernel> parse_reliable_kernel(const char* value) noexcept {
  if (value == nullptr) return std::nullopt;
  if (std::strcmp(value, "pixel") == 0) return ConvKernel::kPixel;
  if (std::strcmp(value, "channel") == 0) return ConvKernel::kChannel;
  if (std::strcmp(value, "auto") == 0) return ConvKernel::kAuto;
  return std::nullopt;
}

}  // namespace hybridcnn::reliable::detail
