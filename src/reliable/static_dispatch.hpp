// Statically dispatched qualified kernels.
//
// The generic reliable kernels (ReliableConv2d::forward_generic, ...) pay
// two virtual Executor calls, a generic retry lambda, and per-tap padding
// branches per scalar MAC — C++ dispatch overhead the paper's Table-1
// numbers should not include. This header provides the devirtualized
// machinery the public forward() entry points select once per call:
//
//   * valid_taps/tap_ranges — per-output-coordinate valid kernel-tap
//     intervals, hoisting the iy/ix boundary branches out of the inner
//     loop. The set and order of executed taps is exactly that of the
//     generic loop's `continue` filtering.
//   * QualifiedOpRunner — Algorithm 3's per-operation retry machinery
//     split into an always-inline success fast path and a cold noinline
//     slow path (rollback / retry / leaky-bucket escalation). Counter
//     updates replicate the generic retry loop step for step.
//   * conv_forward_qualified / linear_forward_qualified /
//     conv_unqualified_inline — inner kernels templated over the concrete
//     executor type (Simplex/Dmr/Tmr are final), so mul/add fold into the
//     loop with no virtual calls or per-op lambdas surviving to codegen.
//   * conv_raw_compute / linear_raw_compute — the fault-free fast path:
//     raw arithmetic in the identical operation order, used when the
//     executor is guaranteed_fault_free(); callers then credit the
//     elided bookkeeping in closed form (credit_fault_free_ops). On
//     SIMD-capable targets (runtime/isa.hpp) two vector strategies
//     exist, both vectorizing across *independent outputs* — never the
//     (c, ky, kx) reduction — so bit-identity with the scalar loop holds
//     by construction:
//       - pixel lanes (conv_simd_rows): kFloatLanes interior output
//         pixels of one row per vector, weights re-broadcast per tap;
//         border pixels and narrow interiors stay scalar.
//       - channel lanes (conv_channel_blocks): kFloatLanes output
//         channels per vector over a once-per-weight-generation
//         repacked [ky][kx][c][o] WeightPack, so every tap is one
//         contiguous weight vector load times a scalar input broadcast.
//         All lanes of a vector share (oy, ox) and therefore the tap
//         ranges, so borders run through the same kernel — no
//         interior/border split; the padded channel tail scatters only
//         its valid lanes.
//     HYBRIDCNN_RELIABLE_KERNEL=pixel|channel|auto (or
//     set_reliable_kernel_choice) picks the strategy; auto prefers
//     channel lanes whenever a pack exists and out_c fills a vector.
//     The fault-free fast path additionally fans its disjoint output
//     slices across the global runtime::ThreadPool (channel-block
//     chunks, (channel x row-group) units, or whole channels for the
//     scalar loop); the elided bookkeeping is credited in closed form
//     after the join, so outputs and statistics are bit-identical at
//     every thread count. The runtime kill-switch
//     HYBRIDCNN_RELIABLE_SIMD=0 (or set_reliable_simd_enabled(false))
//     forces the scalar fast path for debugging and A/B benching.
//
// The qualified kernels are additionally templated on a WithReport flag:
// ReportMode::kStatsOnly instantiations skip every per-op
// ExecutionReport counter update (campaign sweeps that only consume the
// CampaignSummary pay no report-assembly cost) while preserving output
// bits, abort behaviour, report.ok and all executor/injector statistics.
//
// Bit-identity contract: for every (input, executor, injector-seed), a
// specialized kernel must produce the same output bits, the same
// ExecutionReport fields, the same ExecutorStats/InjectorStats, and the
// same injector cursor as the generic path. tests/test_static_dispatch.cpp
// and tests/test_simd_dispatch.cpp enforce this across schemes, fault
// kinds, geometries and report modes.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "reliable/checkpoint.hpp"
#include "reliable/executor.hpp"
#include "reliable/leaky_bucket.hpp"
#include "util/contracts.hpp"
#include "reliable/reliable_conv.hpp"
#include "reliable/report.hpp"
#include "runtime/compute_context.hpp"
#include "runtime/isa.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::reliable::detail {

/// Whether the fault-free fast path may use the vectorized kernels.
/// Initialised once from the environment (HYBRIDCNN_RELIABLE_SIMD=0
/// disables; anything else — including unset — enables); tests and
/// benches flip it at runtime for A/B comparisons. On targets without
/// HYBRIDCNN_ISA_SIMD the flag is ignored — only the scalar path exists.
[[nodiscard]] bool reliable_simd_enabled() noexcept;
void set_reliable_simd_enabled(bool enabled) noexcept;

/// Fault-free conv fast-path vector strategy. kAuto picks per call:
/// channel lanes whenever the caller supplies a WeightPack and out_c
/// fills at least one vector, pixel lanes otherwise (which themselves
/// fall back to scalar on ineligible geometries). Initialised once from
/// HYBRIDCNN_RELIABLE_KERNEL=pixel|channel|auto — unset or unrecognised
/// values mean kAuto — and overridable at runtime for A/B benching.
/// Moot when SIMD is compiled out or the kill-switch is closed: only the
/// scalar path exists then.
enum class ConvKernel : std::uint8_t { kAuto, kPixel, kChannel };

[[nodiscard]] ConvKernel reliable_kernel_choice() noexcept;
void set_reliable_kernel_choice(ConvKernel choice) noexcept;

/// Parses an HYBRIDCNN_RELIABLE_KERNEL value; nullopt for null or
/// unrecognised strings (the env reader maps those to kAuto). Exposed so
/// the override-handling tests can exercise the exact mapping.
[[nodiscard]] std::optional<ConvKernel> parse_reliable_kernel(
    const char* value) noexcept;

/// Half-open interval of kernel-tap indices that land in-bounds.
struct TapRange {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive; begin == end when no tap is valid
  [[nodiscard]] std::size_t count() const noexcept { return end - begin; }
};

/// Valid taps for output coordinate `o`: the k in [0, k_size) with
/// 0 <= o*stride + k - pad < n. The interval is contiguous, so the
/// per-tap boundary test of the generic loop reduces to two bounds.
inline TapRange valid_taps(std::size_t o, std::size_t stride,
                           std::size_t pad, std::size_t k_size,
                           std::size_t n) noexcept {
  const auto base =
      static_cast<std::int64_t>(o * stride) - static_cast<std::int64_t>(pad);
  std::int64_t lo = base < 0 ? -base : 0;
  std::int64_t hi = static_cast<std::int64_t>(n) - base;
  if (hi > static_cast<std::int64_t>(k_size)) {
    hi = static_cast<std::int64_t>(k_size);
  }
  if (hi < lo) hi = lo;
  return {static_cast<std::size_t>(lo), static_cast<std::size_t>(hi)};
}

/// Valid-tap intervals for every output coordinate along one axis.
inline std::vector<TapRange> tap_ranges(std::size_t out_n, std::size_t stride,
                                        std::size_t pad, std::size_t k_size,
                                        std::size_t in_n) {
  std::vector<TapRange> ranges(out_n);
  for (std::size_t o = 0; o < out_n; ++o) {
    ranges[o] = valid_taps(o, stride, pad, k_size, in_n);
  }
  return ranges;
}

/// Sum of valid-tap counts along one axis — the closed-form per-row
/// arithmetic mac_count() builds on (O(out_n) instead of out_n * k_size).
inline std::uint64_t total_valid_taps(std::size_t out_n, std::size_t stride,
                                      std::size_t pad, std::size_t k_size,
                                      std::size_t in_n) noexcept {
  std::uint64_t total = 0;
  for (std::size_t o = 0; o < out_n; ++o) {
    total += valid_taps(o, stride, pad, k_size, in_n).count();
  }
  return total;
}

/// Invokes `fn` with `exec` downcast to its concrete scheme type, so the
/// callee instantiates against the final class and the compiler inlines
/// mul_inline/add_inline. The single place that maps Scheme to a type —
/// every forward() dispatch site routes through here. Precondition:
/// scheme != Scheme::kCustom (the public entry points filter custom
/// executors onto the generic path first).
template <typename Fn>
void with_concrete_executor(Scheme scheme, Executor& exec, Fn&& fn) {
  switch (scheme) {
    case Scheme::kSimplex:
      fn(static_cast<SimplexExecutor&>(exec));
      return;
    case Scheme::kDmr:
      fn(static_cast<DmrExecutor&>(exec));
      return;
    case Scheme::kTmr:
      fn(static_cast<TmrExecutor&>(exec));
      return;
    case Scheme::kCustom:
      break;
  }
  assert(false && "with_concrete_executor: custom scheme has no concrete type");
}

/// Algorithm 3's per-operation envelope, split so the fault-free common
/// case stays on a straight-line inlined path. run() evaluates the op
/// once; qualified success commits and returns immediately. The first
/// failure drops to the cold slow path, which replicates the generic
/// retry loop exactly: rollback, leaky-bucket escalation, per-op retry
/// cap, re-execution.
///
/// WithReport=false (ReportMode::kStatsOnly) compiles out every report
/// counter update; control flow, checkpoint traffic and executor calls
/// are untouched, so outputs and executor/injector statistics stay
/// bit-identical to the full-report instantiation.
template <typename Exec, bool WithReport = true>
struct QualifiedOpRunner {
  Exec& exec;
  ExecutionReport& report;
  LeakyBucket& bucket;
  std::uint32_t max_retries_per_op;

  template <typename Op>
  HYBRIDCNN_RELIABLE_ALWAYS_INLINE std::optional<float> run(
      Op op, ScalarCheckpoint& cp) {
    if constexpr (WithReport) ++report.logical_ops;
    const Qualified<float> q = op(exec);
    if (q.ok) [[likely]] {
      bucket.record_success();
      cp.commit(q.value);
      if constexpr (WithReport) ++report.commits;
      return q.value;
    }
    return run_slow(op, cp);
  }

  /// Cold path; returns std::nullopt when the error is persistent (bucket
  /// ceiling or retry cap), mirroring the generic run_qualified loop from
  /// its first detected error onwards.
  template <typename Op>
  HYBRIDCNN_RELIABLE_NOINLINE std::optional<float> run_slow(
      Op op, ScalarCheckpoint& cp) {
    for (std::uint32_t attempt = 0;; ++attempt) {
      if constexpr (WithReport) ++report.detected_errors;
      (void)cp.rollback();  // discard the unqualified value
      if constexpr (WithReport) ++report.rollbacks;
      if (bucket.record_error()) {
        return std::nullopt;  // persistent: ceiling reached
      }
      if (attempt + 1 >= max_retries_per_op) {
        return std::nullopt;  // persistent: retry cap
      }
      if constexpr (WithReport) {
        ++report.retries;  // rollback distance: exactly one operation
      }
      const Qualified<float> q = op(exec);
      if (q.ok) {
        bucket.record_success();
        if constexpr (WithReport) {
          ++report.corrected_errors;  // recovered on a retry
        }
        cp.commit(q.value);
        if constexpr (WithReport) ++report.commits;
        return q.value;
      }
    }
  }
};

/// Flat dimensions of a CHW-in / OIHW-weights convolution, plus the
/// hoisted valid-tap intervals.
struct ConvPlan {
  std::size_t out_c = 0, out_h = 0, out_w = 0;
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t kh = 0, kw = 0;
  std::size_t stride = 0, pad = 0;
  std::vector<TapRange> row_taps;  ///< valid ky per oy
  std::vector<TapRange> col_taps;  ///< valid kx per ox
  /// Interior ox span: the contiguous [interior_x_begin, interior_x_end)
  /// where col_taps[ox] is the full [0, kw) — every kx tap of every lane
  /// lands in-bounds, which is what lets the SIMD fast path run whole
  /// kx rows without per-tap boundary tests. Empty (begin == end == 0)
  /// when no ox has a full tap range. Rows need no such split: lanes
  /// within one vector share oy, so any row tap range works.
  std::size_t interior_x_begin = 0;
  std::size_t interior_x_end = 0;

  ConvPlan(const tensor::Shape& out_shape, const tensor::Shape& in_shape,
           const tensor::Shape& w_shape, std::size_t stride_,
           std::size_t pad_)
      : out_c(out_shape[0]), out_h(out_shape[1]), out_w(out_shape[2]),
        in_c(in_shape[0]), in_h(in_shape[1]), in_w(in_shape[2]),
        kh(w_shape[2]), kw(w_shape[3]), stride(stride_), pad(pad_),
        row_taps(tap_ranges(out_h, stride, pad, kh, in_h)),
        col_taps(tap_ranges(out_w, stride, pad, kw, in_w)) {
    // Full tap ranges form one contiguous run (begin hits 0 once ox*stride
    // >= pad and stays there; end drops below kw only near the right
    // border), so a single scan finds the interior.
    while (interior_x_begin < out_w &&
           !(col_taps[interior_x_begin].begin == 0 &&
             col_taps[interior_x_begin].end == kw)) {
      ++interior_x_begin;
    }
    interior_x_end = interior_x_begin;
    while (interior_x_end < out_w && col_taps[interior_x_end].begin == 0 &&
           col_taps[interior_x_end].end == kw) {
      ++interior_x_end;
    }
    if (interior_x_begin == out_w) interior_x_begin = interior_x_end = 0;
  }

  /// Logical MACs of one forward: separable closed form.
  [[nodiscard]] std::uint64_t macs() const noexcept {
    std::uint64_t row_total = 0;
    for (const TapRange& r : row_taps) row_total += r.count();
    std::uint64_t col_total = 0;
    for (const TapRange& r : col_taps) col_total += r.count();
    return static_cast<std::uint64_t>(out_c) * in_c * row_total * col_total;
  }
};

/// Output-channel extent rounded up to the vector width (identity on
/// targets without vectors), the lane padding the channel-lane pack uses.
inline constexpr std::size_t channel_pack_width(std::size_t oc) noexcept {
#ifdef HYBRIDCNN_ISA_SIMD
  constexpr std::size_t lanes = runtime::isa::kFloatLanes;
#else
  constexpr std::size_t lanes = 1;
#endif
  return (oc + lanes - 1) / lanes * lanes;
}

// Pack-padding contracts: the channel-lane kernel loads whole vectors at
// block offsets o0 = k * kFloatLanes and relies on the padded extent
// being the *tightest* lane multiple — looser padding would add a
// phantom all-zero block the block-unit slicing fans out as real work.
HYBRIDCNN_CONTRACT(util::contracts::is_padded_to(
                       channel_pack_width(1), 1, channel_pack_width(1)) &&
                       channel_pack_width(1) == runtime::isa::kFloatLanes,
                   "one output channel pads to exactly one vector block");
HYBRIDCNN_CONTRACT(channel_pack_width(runtime::isa::kFloatLanes) ==
                       runtime::isa::kFloatLanes,
                   "a full block must not grow a padding block");
HYBRIDCNN_CONTRACT(channel_pack_width(96) % runtime::isa::kFloatLanes == 0 &&
                       channel_pack_width(96) - 96 <
                           runtime::isa::kFloatLanes,
                   "padding is the tightest lane multiple (AlexNet conv1's "
                   "96 maps are the load-bearing case)");

/// Channel-lane weight layout for the fault-free fast path: the OIHW
/// weights repacked into [ky][kx][c][o] panels with the output-channel
/// axis padded to the vector width, so every (c, ky, kx) tap of a
/// channel block is one contiguous vector load (the pixel-lane kernel
/// instead re-broadcasts each weight scalar per tap). Padding lanes
/// carry zero weights/bias and are never stored back, so they cannot
/// perturb outputs. The pack is input-shape independent — one pack
/// serves every forward geometry — and is built once per weight
/// generation: owners (ReliableConv2d) cache it and compare `generation`
/// against their current weight generation to invalidate.
struct WeightPack {
  std::vector<float> weights;  ///< [(ky*kw + kx)*in_c + c][padded_oc]
  std::vector<float> bias;     ///< [padded_oc], zero beyond oc
  std::size_t oc = 0;
  std::size_t padded_oc = 0;
  std::size_t in_c = 0;
  std::size_t kh = 0;
  std::size_t kw = 0;
  std::uint64_t generation = 0;  ///< weight generation the pack reflects
};

inline WeightPack build_weight_pack(std::size_t oc, std::size_t in_c,
                                    std::size_t kh, std::size_t kw,
                                    const float* weights, const float* bias,
                                    std::uint64_t generation) {
  WeightPack pack;
  pack.oc = oc;
  pack.padded_oc = channel_pack_width(oc);
  pack.in_c = in_c;
  pack.kh = kh;
  pack.kw = kw;
  pack.generation = generation;
  pack.weights.assign(kh * kw * in_c * pack.padded_oc, 0.0f);
  pack.bias.assign(pack.padded_oc, 0.0f);
  for (std::size_t o = 0; o < oc; ++o) {
    pack.bias[o] = bias[o];
    for (std::size_t c = 0; c < in_c; ++c) {
      for (std::size_t ky = 0; ky < kh; ++ky) {
        for (std::size_t kx = 0; kx < kw; ++kx) {
          pack.weights[((ky * kw + kx) * in_c + c) * pack.padded_oc + o] =
              weights[((o * in_c + c) * kh + ky) * kw + kx];
        }
      }
    }
  }
  return pack;
}

/// Qualified convolution inner kernel over a concrete executor type.
/// Loop nest order (o, oy, ox, c, ky, kx), committed outputs, op_index
/// accounting and abort semantics are exactly those of the generic path.
/// WithReport=false elides all report counters (ok is still latched on
/// abort); see QualifiedOpRunner.
template <bool WithReport = true, typename Exec>
void conv_forward_qualified(const ConvPlan& plan, const float* input,
                            const float* weights, const float* bias,
                            const ReliabilityPolicy& policy, Exec& exec,
                            ReliableResult& result) {
  ExecutionReport& report = result.report;
  LeakyBucket bucket(policy.bucket_factor, policy.bucket_ceiling);
  QualifiedOpRunner<Exec, WithReport> runner{exec, report, bucket,
                                             policy.max_retries_per_op};
  float* out = result.output.data().data();

  std::int64_t op_index = 0;
  const auto abort_with = [&](std::int64_t failed_at) {
    report.ok = false;
    if constexpr (WithReport) {
      report.failed_op_index = failed_at;
      report.bucket_peak = bucket.peak();
      report.bucket_exhausted = bucket.exhausted();
    } else {
      (void)failed_at;
    }
  };

  for (std::size_t o = 0; o < plan.out_c; ++o) {
    const float b = bias[o];
    for (std::size_t oy = 0; oy < plan.out_h; ++oy) {
      const TapRange ry = plan.row_taps[oy];
      for (std::size_t ox = 0; ox < plan.out_w; ++ox) {
        const TapRange rx = plan.col_taps[ox];
        // The accumulator starts from the bias, loaded from (assumed
        // ECC-protected) parameter memory; all arithmetic on it is
        // qualified.
        ScalarCheckpoint acc(b);
        bool aborted = false;
        for (std::size_t c = 0; c < plan.in_c && !aborted; ++c) {
          for (std::size_t ky = ry.begin; ky < ry.end && !aborted; ++ky) {
            // iy/ix are non-negative by construction of the tap ranges:
            // ky >= pad - oy*stride, so the unsigned arithmetic is safe.
            const std::size_t iy = oy * plan.stride + ky - plan.pad;
            const std::size_t in_base = (c * plan.in_h + iy) * plan.in_w;
            const float* w_row =
                weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
            for (std::size_t kx = rx.begin; kx < rx.end; ++kx) {
              const std::size_t ix = ox * plan.stride + kx - plan.pad;
              const float x = input[in_base + ix];
              const float w = w_row[kx];

              // Qualified multiply, checkpointed into a product cell.
              ScalarCheckpoint prod(0.0f);
              const auto p = runner.run(
                  [x, w](Exec& e) { return e.mul_inline(x, w); }, prod);
              ++op_index;
              if (!p) {
                abort_with(op_index - 1);
                aborted = true;
                break;
              }

              // Qualified accumulate onto the committed accumulator.
              const float before = acc.value();
              const float pv = *p;
              const auto s = runner.run(
                  [before, pv](Exec& e) { return e.add_inline(before, pv); },
                  acc);
              ++op_index;
              if (!s) {
                abort_with(op_index - 1);
                aborted = true;
                break;
              }
            }
          }
        }
        out[(o * plan.out_h + oy) * plan.out_w + ox] = acc.value();
        if (aborted) {
          // Error propagation stops here: committed prefix is returned,
          // the failure is reported, nothing downstream consumes
          // unqualified values.
          return;
        }
      }
    }
  }

  if constexpr (WithReport) {
    report.bucket_peak = bucket.peak();
    report.bucket_exhausted = bucket.exhausted();
  }
}

/// One fault-free output pixel: the scalar reduction every path — scalar
/// loop, SIMD lane, generic oracle — must reproduce bit for bit.
HYBRIDCNN_RELIABLE_ALWAYS_INLINE float conv_raw_pixel(
    const ConvPlan& plan, const float* input, const float* weights, float b,
    std::size_t o, std::size_t oy, std::size_t ox,
    const TapRange ry) noexcept {
  const TapRange rx = plan.col_taps[ox];
  float acc = b;
  for (std::size_t c = 0; c < plan.in_c; ++c) {
    for (std::size_t ky = ry.begin; ky < ry.end; ++ky) {
      const std::size_t iy = oy * plan.stride + ky - plan.pad;
      const std::size_t in_base = (c * plan.in_h + iy) * plan.in_w;
      const float* w_row =
          weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
      for (std::size_t kx = rx.begin; kx < rx.end; ++kx) {
        const std::size_t ix = ox * plan.stride + kx - plan.pad;
        acc = acc + input[in_base + ix] * w_row[kx];
      }
    }
  }
  return acc;
}

/// Every fault-free output pixel of one output channel, scalar form —
/// the per-channel unit both the serial scalar loop and the pooled
/// scalar fan-out execute.
inline void conv_scalar_channel(const ConvPlan& plan, const float* input,
                                const float* weights, float b, std::size_t o,
                                float* out) noexcept {
  for (std::size_t oy = 0; oy < plan.out_h; ++oy) {
    const TapRange ry = plan.row_taps[oy];
    float* out_row = out + (o * plan.out_h + oy) * plan.out_w;
    for (std::size_t ox = 0; ox < plan.out_w; ++ox) {
      out_row[ox] = conv_raw_pixel(plan, input, weights, b, o, oy, ox, ry);
    }
  }
}

/// Fault-free convolution fast path, scalar form: plain arithmetic in the
/// exact qualified operation order (mul then accumulate, same loop nest),
/// no per-op bookkeeping. Callers credit the elided counters in closed
/// form. Kept callable directly for A/B tests and benches.
inline void conv_raw_compute_scalar(const ConvPlan& plan, const float* input,
                                    const float* weights, const float* bias,
                                    float* out) noexcept {
  for (std::size_t o = 0; o < plan.out_c; ++o) {
    conv_scalar_channel(plan, input, weights, bias[o], o, out);
  }
}

#ifdef HYBRIDCNN_ISA_SIMD

/// Strided convs go through a row-deinterleave pack (see
/// conv_simd_rows); the pack buffer lives on the stack, so cap the
/// strides and kernel widths it serves. Anything wider stays scalar
/// (no real CNN layer is near these bounds).
inline constexpr std::size_t kMaxSimdStride = 8;
inline constexpr std::size_t kMaxSimdKw = 32;

/// Output rows with full vertical tap ranges are processed in groups of
/// up to this many rows at once. Each row keeps its own accumulator (its
/// own scalar-order chain — bit-identity is per lane per row), but the
/// chains are independent, so interleaving them hides the vector-add
/// latency a single chain is bound by, and the per-tap weight broadcast
/// is shared across the group.
inline constexpr std::size_t kSimdRowUnroll = 4;

#if defined(__GNUC__) && !defined(__clang__)
/// GCC's __builtin_shuffle takes a runtime integer-vector mask, which
/// lets the strided-pack deinterleave stay lane-count generic. Clang
/// only has the constant-index variant; it keeps the scalar pack.
#define HYBRIDCNN_RELIABLE_VEC_SHUFFLE 1
typedef std::int32_t VecShufI __attribute__((
    vector_size(sizeof(std::int32_t) * runtime::isa::kFloatLanes)));
// __builtin_shuffle requires the mask vector to match the shuffled
// vector's size and lane count exactly; a drifting VecShufI would be a
// compile error on some targets and silent lane garbage on others.
HYBRIDCNN_CONTRACT(sizeof(VecShufI) == sizeof(runtime::isa::VecF),
                   "shuffle mask vector must match VecF lane-for-lane");
#endif

/// dst[i] = src[i * s] for i in [0, n): the strided-row deinterleave the
/// SIMD conv kernel runs per (channel, kernel row). For the common conv
/// strides 2 and 4 the gather is a register deinterleave: load the
/// contiguous span and shuffle out every s-th lane. A full vector chunk
/// reads s*lanes contiguous floats, which exceeds the strided extent
/// (n-1)*s + 1 unless one more strided element follows the chunk, so
/// chunks stop one element early (i + lanes < n) and the tail — and any
/// other stride — goes element-wise. Shuffles only move values:
/// bit-identity is untouched.
HYBRIDCNN_RELIABLE_ALWAYS_INLINE void pack_strided(const float* src,
                                                   float* dst, std::size_t n,
                                                   std::size_t s) noexcept {
  namespace isa = runtime::isa;
  std::size_t i = 0;
#ifdef HYBRIDCNN_RELIABLE_VEC_SHUFFLE
  constexpr int kLc = static_cast<int>(isa::kFloatLanes);
  if (s == 2) {
    VecShufI m2;
    for (int j = 0; j < kLc; ++j) m2[j] = 2 * j;
    for (; i + isa::kFloatLanes < n; i += isa::kFloatLanes) {
      const float* p = src + i * 2;
      isa::storeu(dst + i,
                  __builtin_shuffle(isa::loadu(p), isa::loadu(p + kLc), m2));
    }
  } else if (s == 4) {
    // Two-stage stride-4 deinterleave: each pair of input vectors yields
    // its every-4th lanes in its low half (mask indices wrap modulo the
    // two-operand width, so the upper-half entries are don't-cares),
    // then the halves concatenate.
    VecShufI m4;
    VecShufI mcat;
    for (int j = 0; j < kLc; ++j) m4[j] = (4 * j) & (2 * kLc - 1);
    for (int j = 0; j < kLc; ++j) {
      mcat[j] = j < kLc / 2 ? j : kLc + (j - kLc / 2);
    }
    for (; i + isa::kFloatLanes < n; i += isa::kFloatLanes) {
      const float* p = src + i * 4;
      const isa::VecF a =
          __builtin_shuffle(isa::loadu(p), isa::loadu(p + kLc), m4);
      const isa::VecF b =
          __builtin_shuffle(isa::loadu(p + 2 * kLc), isa::loadu(p + 3 * kLc),
                            m4);
      isa::storeu(dst + i, __builtin_shuffle(a, b, mcat));
    }
  }
#endif
  for (; i < n; ++i) dst[i] = src[i * s];
}

/// One lane-width block of interior output pixels for R adjacent output
/// rows: lane l of acc[r] accumulates output pixel (oy0+r, ox0+l). The
/// reduction runs in the scalar order — per (c, ky, kx) one weight
/// broadcast and one per-lane mul-then-add — so every lane performs
/// exactly the scalar pixel's operation sequence (vector mul/add are
/// lane-wise IEEE ops and the reliable subsystem compiles with
/// -ffp-contract=off, so no fusion can reassociate them). For R > 1 the
/// caller guarantees all R rows share the full vertical tap range `ry`;
/// R == 1 accepts any row's range.
///
/// kStride1 hoists the contiguous-load case: with stride 1 the lane
/// inputs are adjacent and one unaligned vector load serves each tap.
/// With stride s > 1 the lane inputs are s apart, but taps sharing a
/// residue kx mod s read the same strided sequence shifted by whole
/// lanes: tap kx = q*s + res needs in_row[base + res + (q+l)*s] for lane
/// l. So each (c, ky) input row is deinterleaved once into s
/// residue-packed buffers — buf_res[i] = in_row[base + res + i*s] — and
/// every tap becomes one contiguous vector load at buf_res + q,
/// replacing a per-tap per-lane gather with one pack amortized over the
/// kw/s taps of each residue. Packing only moves values, and the kx loop
/// still walks taps in scalar order, so bit-identity is untouched.
template <bool kStride1, std::size_t R>
HYBRIDCNN_RELIABLE_ALWAYS_INLINE void conv_simd_rows(
    const ConvPlan& plan, const float* input, const float* weights, float b,
    std::size_t o, std::size_t oy0, std::size_t ox0, const TapRange ry,
    float* out) noexcept {
  namespace isa = runtime::isa;
  static_assert(R >= 1 && R <= kSimdRowUnroll);
  isa::VecF acc[R];
  for (std::size_t r = 0; r < R; ++r) acc[r] = isa::splat(b);
  const std::size_t s = plan.stride;
  // Interior ox: ox*stride >= pad (tap 0 valid), so the unsigned
  // subtraction cannot wrap, and tap kw-1 lands in-bounds for every
  // lane.
  const std::size_t base = ox0 * s - plan.pad;
  // Per-residue buffer length: residue 0 has the most taps,
  // (kw-1)/s + 1, and the load at its last tap reads lanes up to
  // (kw-1)/s + kFloatLanes - 1.
  [[maybe_unused]] const std::size_t len =
      kStride1 ? 0 : isa::kFloatLanes + (plan.kw - 1) / s;
  [[maybe_unused]] float
      buf[kSimdRowUnroll * kMaxSimdStride * (isa::kFloatLanes + kMaxSimdKw)];
  for (std::size_t c = 0; c < plan.in_c; ++c) {
    for (std::size_t ky = ry.begin; ky < ry.end; ++ky) {
      const std::size_t iy0 = oy0 * s + ky - plan.pad;
      const float* in_row = input + (c * plan.in_h + iy0) * plan.in_w;
      // Adjacent output rows are `stride` input rows apart.
      const std::size_t row_step = s * plan.in_w;
      const float* w_row =
          weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
      if constexpr (kStride1) {
        for (std::size_t kx = 0; kx < plan.kw; ++kx) {
          const isa::VecF wv = isa::splat(w_row[kx]);
          for (std::size_t r = 0; r < R; ++r) {
            acc[r] =
                acc[r] + isa::loadu(in_row + r * row_step + base + kx) * wv;
          }
        }
      } else {
        for (std::size_t r = 0; r < R; ++r) {
          for (std::size_t res = 0; res < s && res < plan.kw; ++res) {
            // Last element packed for a residue is exactly the last
            // lane's last tap of that residue — in bounds by the
            // interior guarantee.
            const std::size_t n =
                (plan.kw - 1 - res) / s + isa::kFloatLanes;
            pack_strided(in_row + r * row_step + base + res,
                         buf + (r * s + res) * len, n, s);
          }
        }
        // Taps still accumulate in kx order (bit-identity); walk the
        // (residue, shift) pair incrementally instead of dividing.
        std::size_t res = 0;
        std::size_t q = 0;
        for (std::size_t kx = 0; kx < plan.kw; ++kx) {
          const isa::VecF wv = isa::splat(w_row[kx]);
          for (std::size_t r = 0; r < R; ++r) {
            acc[r] = acc[r] + isa::loadu(buf + (r * s + res) * len + q) * wv;
          }
          if (++res == s) {
            res = 0;
            ++q;
          }
        }
      }
    }
  }
  for (std::size_t r = 0; r < R; ++r) {
    isa::storeu(out + (o * plan.out_h + oy0 + r) * plan.out_w + ox0, acc[r]);
  }
}

/// R adjacent output rows end to end: scalar left border, vector blocks
/// across the interior, scalar right border. The interior tail that does
/// not fill a lane block is finished by one extra block anchored at
/// interior_x_end - lanes: its leading lanes recompute pixels the
/// previous block already produced, but recomputation is deterministic
/// and bit-identical, so the overwrite is invisible — and the whole
/// interior runs vectorized instead of dropping up to lanes-1 pixels per
/// row to the scalar loop. (Fast-path op counters are credited in closed
/// form from the plan's MAC count, so recomputed lanes do not skew
/// reports.)
template <bool kStride1, std::size_t R>
inline void conv_simd_row_group(const ConvPlan& plan, const float* input,
                                const float* weights, float b, std::size_t o,
                                std::size_t oy0, const TapRange ry,
                                float* out) noexcept {
  namespace isa = runtime::isa;
  for (std::size_t r = 0; r < R; ++r) {
    float* out_row = out + (o * plan.out_h + oy0 + r) * plan.out_w;
    for (std::size_t ox = 0; ox < plan.interior_x_begin; ++ox) {
      out_row[ox] = conv_raw_pixel(plan, input, weights, b, o, oy0 + r, ox,
                                   plan.row_taps[oy0 + r]);
    }
  }
  std::size_t ox0 = plan.interior_x_begin;
  for (; ox0 + isa::kFloatLanes <= plan.interior_x_end;
       ox0 += isa::kFloatLanes) {
    conv_simd_rows<kStride1, R>(plan, input, weights, b, o, oy0, ox0, ry,
                                out);
  }
  if (ox0 < plan.interior_x_end &&
      plan.interior_x_end - plan.interior_x_begin >= isa::kFloatLanes) {
    conv_simd_rows<kStride1, R>(plan, input, weights, b, o, oy0,
                                plan.interior_x_end - isa::kFloatLanes, ry,
                                out);
    ox0 = plan.interior_x_end;
  }
  for (std::size_t r = 0; r < R; ++r) {
    float* out_row = out + (o * plan.out_h + oy0 + r) * plan.out_w;
    for (std::size_t ox = ox0; ox < plan.out_w; ++ox) {
      out_row[ox] = conv_raw_pixel(plan, input, weights, b, o, oy0 + r, ox,
                                   plan.row_taps[oy0 + r]);
    }
  }
}

/// Deterministic pixel-kernel row grouping: maximal runs of
/// kSimdRowUnroll adjacent rows sharing the full vertical tap range form
/// one group each; every other row (borders, run remainders) is its own
/// group. A pure function of the plan — the pooled (channel x group)
/// fan-out enumerates the same units in the same order at any thread
/// count. Each pair is (oy0, run) with run either kSimdRowUnroll or 1.
inline std::vector<std::pair<std::size_t, std::size_t>> pixel_row_groups(
    const ConvPlan& plan) {
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  const auto row_is_full = [&](std::size_t oy) noexcept {
    const TapRange t = plan.row_taps[oy];
    return t.begin == 0 && t.end == plan.kh;
  };
  std::size_t oy = 0;
  while (oy < plan.out_h) {
    std::size_t run = 0;
    if (row_is_full(oy)) {
      run = 1;
      while (run < kSimdRowUnroll && oy + run < plan.out_h &&
             row_is_full(oy + run)) {
        ++run;
      }
    }
    if (run == kSimdRowUnroll) {
      groups.emplace_back(oy, kSimdRowUnroll);
      oy += kSimdRowUnroll;
    } else {
      groups.emplace_back(oy, std::size_t{1});
      oy += 1;
    }
  }
  return groups;
}

/// One (output channel, row group) unit of the pixel-lane kernel — the
/// granule the pooled fan-out distributes. Writes only rows
/// [oy0, oy0 + run) of channel o.
inline void conv_pixel_unit(const ConvPlan& plan, const float* input,
                            const float* weights, float b, std::size_t o,
                            std::size_t oy0, std::size_t run, bool stride1,
                            float* out) noexcept {
  if (run == kSimdRowUnroll) {
    const TapRange full_ry{0, plan.kh};
    if (stride1) {
      conv_simd_row_group<true, kSimdRowUnroll>(plan, input, weights, b, o,
                                                oy0, full_ry, out);
    } else {
      conv_simd_row_group<false, kSimdRowUnroll>(plan, input, weights, b, o,
                                                 oy0, full_ry, out);
    }
  } else {
    const TapRange ry = plan.row_taps[oy0];
    if (stride1) {
      conv_simd_row_group<true, 1>(plan, input, weights, b, o, oy0, ry, out);
    } else {
      conv_simd_row_group<false, 1>(plan, input, weights, b, o, oy0, ry, out);
    }
  }
}

/// Vectorized fault-free convolution, pixel-lane strategy: interior
/// pixels in lane-width blocks (interleaved across row groups,
/// overlap-finished at the row tail), border pixels through the scalar
/// pixel reduction. Bit-identical to conv_raw_compute_scalar by
/// construction. Serial form, kept callable for A/B tests and benches.
inline void conv_raw_compute_simd(const ConvPlan& plan, const float* input,
                                  const float* weights, const float* bias,
                                  float* out) {
  const bool stride1 = plan.stride == 1;
  const auto groups = pixel_row_groups(plan);
  for (std::size_t o = 0; o < plan.out_c; ++o) {
    for (const auto& [oy0, run] : groups) {
      conv_pixel_unit(plan, input, weights, bias[o], o, oy0, run, stride1,
                      out);
    }
  }
}

/// Channel blocks (of kFloatLanes output channels each) processed
/// together per output-pixel pass. Like the pixel kernel's row groups:
/// each block keeps its own accumulator chain, and grouping amortizes
/// the input broadcast while hiding vector-add latency.
inline constexpr std::size_t kChannelBlockUnroll = 4;

/// B channel blocks x P output pixels of the channel-lane kernel: lane l
/// of block b accumulates output channel o0 + b*lanes + l at pixel
/// (oy, ox0 + p). The reduction per lane runs the scalar (c, ky, kx)
/// order — one contiguous weight-vector load per (tap, block), one input
/// broadcast per (tap, pixel), lane-wise mul then add with
/// -ffp-contract=off — so every lane is bit-identical to the scalar
/// pixel. All lanes share (oy, ox), hence the tap ranges: border pixels
/// go through this same kernel with narrower ranges instead of a
/// separate scalar path. Caller guarantees all P pixels share `rx` and
/// that padded blocks beyond pack.oc are excluded; the partial tail
/// block scatters only its valid lanes (padding lanes compute on zero
/// weights and are discarded).
template <std::size_t B, std::size_t P>
HYBRIDCNN_RELIABLE_ALWAYS_INLINE void conv_channel_pixels(
    const ConvPlan& plan, const WeightPack& pack, const float* input,
    std::size_t o0, std::size_t oy, std::size_t ox0, const TapRange ry,
    const TapRange rx, float* out) noexcept {
  namespace isa = runtime::isa;
  static_assert(B >= 1 && B <= kChannelBlockUnroll);
  static_assert(P >= 1 && P <= 2);
  isa::VecF acc[B * P];
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t b = 0; b < B; ++b) {
      acc[p * B + b] =
          isa::loadu(pack.bias.data() + o0 + b * isa::kFloatLanes);
    }
  }
  for (std::size_t c = 0; c < plan.in_c; ++c) {
    for (std::size_t ky = ry.begin; ky < ry.end; ++ky) {
      const std::size_t iy = oy * plan.stride + ky - plan.pad;
      const float* in_row = input + (c * plan.in_h + iy) * plan.in_w;
      for (std::size_t kx = rx.begin; kx < rx.end; ++kx) {
        const float* w =
            pack.weights.data() +
            ((ky * plan.kw + kx) * plan.in_c + c) * pack.padded_oc + o0;
        isa::VecF wv[B];
        for (std::size_t b = 0; b < B; ++b) {
          wv[b] = isa::loadu(w + b * isa::kFloatLanes);
        }
        for (std::size_t p = 0; p < P; ++p) {
          const std::size_t ix = (ox0 + p) * plan.stride + kx - plan.pad;
          const isa::VecF xv = isa::splat(in_row[ix]);
          for (std::size_t b = 0; b < B; ++b) {
            acc[p * B + b] = acc[p * B + b] + xv * wv[b];
          }
        }
      }
    }
  }
  // Lane l of block b is output channel o0 + b*lanes + l: scatter into
  // the [o][oy][ox] layout, skipping the zero-padded tail lanes.
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t b = 0; b < B; ++b) {
      const std::size_t ob = o0 + b * isa::kFloatLanes;
      const std::size_t valid = std::min(isa::kFloatLanes, pack.oc - ob);
      for (std::size_t l = 0; l < valid; ++l) {
        out[((ob + l) * plan.out_h + oy) * plan.out_w + ox0 + p] =
            acc[p * B + b][l];
      }
    }
  }
}

/// One output row for one group of B channel blocks — the unit the
/// pooled channel-lane fan-out distributes. Adjacent output columns
/// sharing one tap range pair up so each weight-vector load is amortized
/// over two input broadcasts. Any (stride, pad, kw) geometry takes this
/// one code path — border columns simply carry narrower tap ranges.
template <std::size_t B>
inline void conv_channel_group_row(const ConvPlan& plan,
                                   const WeightPack& pack, const float* input,
                                   std::size_t o0, std::size_t oy,
                                   float* out) noexcept {
  const TapRange ry = plan.row_taps[oy];
  std::size_t ox = 0;
  while (ox < plan.out_w) {
    const TapRange rx = plan.col_taps[ox];
    if (ox + 1 < plan.out_w && plan.col_taps[ox + 1].begin == rx.begin &&
        plan.col_taps[ox + 1].end == rx.end) {
      conv_channel_pixels<B, 2>(plan, pack, input, o0, oy, ox, ry, rx, out);
      ox += 2;
    } else {
      conv_channel_pixels<B, 1>(plan, pack, input, o0, oy, ox, ry, rx, out);
      ox += 1;
    }
  }
}

/// Channel-block group count: blocks are grouped into runs of
/// kChannelBlockUnroll (the remainder group is smaller). The grouping is
/// a pure function of the pack, never of the thread count, so every
/// output element sees the same kernel instantiation — and the same
/// per-lane arithmetic order — at any parallelism.
inline std::size_t channel_group_count(const WeightPack& pack) noexcept {
#ifdef HYBRIDCNN_ISA_SIMD
  const std::size_t blocks = pack.padded_oc / runtime::isa::kFloatLanes;
#else
  const std::size_t blocks = pack.padded_oc;
#endif
  return (blocks + kChannelBlockUnroll - 1) / kChannelBlockUnroll;
}

/// One (block group, output row) unit of the channel-lane kernel.
inline void conv_channel_unit(const ConvPlan& plan, const WeightPack& pack,
                              const float* input, std::size_t group,
                              std::size_t oy, float* out) noexcept {
  namespace isa = runtime::isa;
  const std::size_t blocks = pack.padded_oc / isa::kFloatLanes;
  const std::size_t blk = group * kChannelBlockUnroll;
  const std::size_t o0 = blk * isa::kFloatLanes;
  switch (std::min(kChannelBlockUnroll, blocks - blk)) {
    case 4:
      conv_channel_group_row<4>(plan, pack, input, o0, oy, out);
      break;
    case 3:
      conv_channel_group_row<3>(plan, pack, input, o0, oy, out);
      break;
    case 2:
      conv_channel_group_row<2>(plan, pack, input, o0, oy, out);
      break;
    default:
      conv_channel_group_row<1>(plan, pack, input, o0, oy, out);
      break;
  }
}

/// Vectorized fault-free convolution, channel-lane strategy over a
/// repacked WeightPack. Serial form, kept callable for A/B tests and
/// benches; the pooled driver fans the same (group, row) units instead.
inline void conv_raw_compute_channel(const ConvPlan& plan,
                                     const WeightPack& pack,
                                     const float* input, float* out) noexcept {
  const std::size_t groups = channel_group_count(pack);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t oy = 0; oy < plan.out_h; ++oy) {
      conv_channel_unit(plan, pack, input, g, oy, out);
    }
  }
}

#endif  // HYBRIDCNN_ISA_SIMD

/// True when the pixel-lane kernel can vectorize this geometry (interior
/// wide enough for a lane block, pack-buffer-bounded strides).
/// Independent of the runtime switches.
inline bool pixel_kernel_eligible(const ConvPlan& plan) noexcept {
#ifdef HYBRIDCNN_ISA_SIMD
  return plan.interior_x_end - plan.interior_x_begin >=
             runtime::isa::kFloatLanes &&
         (plan.stride == 1 ||
          (plan.stride <= kMaxSimdStride && plan.kw <= kMaxSimdKw));
#else
  (void)plan;
  return false;
#endif
}

/// Fault-free convolution fast path. Picks the kernel — channel lanes
/// over the repacked weights, pixel lanes, or scalar — from the target,
/// the runtime switches and the auto heuristic, then fans the disjoint
/// output slices across the global pool: channel-block chunks for the
/// channel kernel, (channel x row-group) units for the pixel kernel,
/// whole channels for the scalar loop. Every output element is computed
/// by exactly one unit in the scalar per-pixel reduction order, and the
/// elided qualified bookkeeping is credited in closed form by the caller
/// after the join, so outputs and statistics are bit-identical at every
/// thread count. Inside an outer parallel region (batched classify,
/// campaign fan-out) the pool serialises the nested fan inline. `pack`
/// may be null — the channel kernel is then unavailable and forced
/// kChannel falls through like an ineligible pixel geometry.
inline void conv_raw_compute(const ConvPlan& plan, const WeightPack* pack,
                             const float* input, const float* weights,
                             const float* bias, float* out) {
  runtime::ThreadPool& pool = runtime::ComputeContext::global().pool();
#ifdef HYBRIDCNN_ISA_SIMD
  if (reliable_simd_enabled()) {
    ConvKernel kernel = reliable_kernel_choice();
    if (kernel == ConvKernel::kAuto) {
      kernel = pack != nullptr && plan.out_c >= runtime::isa::kFloatLanes
                   ? ConvKernel::kChannel
                   : ConvKernel::kPixel;
    }
    if (kernel == ConvKernel::kChannel && pack != nullptr) {
      // Units are (block group, output row): the block grouping — and
      // with it every kernel instantiation — is fixed by the pack alone,
      // so chunk boundaries only decide which thread runs a unit, and
      // rows give the fan enough units even when the channel extent is a
      // single group.
      const std::size_t groups = channel_group_count(*pack);
      pool.parallel_for_chunks(
          0, groups * plan.out_h, 1,
          [&](std::size_t begin, std::size_t end, std::size_t) {
            for (std::size_t u = begin; u < end; ++u) {
              conv_channel_unit(plan, *pack, input, u / plan.out_h,
                                u % plan.out_h, out);
            }
          });
      return;
    }
    if (kernel != ConvKernel::kChannel && pixel_kernel_eligible(plan)) {
      const auto groups = pixel_row_groups(plan);
      const bool stride1 = plan.stride == 1;
      pool.parallel_for_chunks(
          0, plan.out_c * groups.size(), 1,
          [&](std::size_t begin, std::size_t end, std::size_t) {
            for (std::size_t u = begin; u < end; ++u) {
              const std::size_t o = u / groups.size();
              const auto [oy0, run] = groups[u % groups.size()];
              conv_pixel_unit(plan, input, weights, bias[o], o, oy0, run,
                              stride1, out);
            }
          });
      return;
    }
  }
#else
  (void)pack;
#endif
  pool.parallel_for_chunks(
      0, plan.out_c, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t o = begin; o < end; ++o) {
          conv_scalar_channel(plan, input, weights, bias[o], o, out);
        }
      });
}

/// Unqualified (raw-arithmetic) convolution pass through a concrete
/// executor — the execution style layer-granular redundancy wraps.
/// Writes into a caller-owned output buffer so retry attempts reuse
/// their two comparison buffers instead of reallocating.
template <typename Exec>
void conv_unqualified_inline(const ConvPlan& plan, const float* input,
                             const float* weights, const float* bias,
                             Exec& exec, ExecutionReport& report,
                             float* out) {
  for (std::size_t o = 0; o < plan.out_c; ++o) {
    const float b = bias[o];
    for (std::size_t oy = 0; oy < plan.out_h; ++oy) {
      const TapRange ry = plan.row_taps[oy];
      for (std::size_t ox = 0; ox < plan.out_w; ++ox) {
        const TapRange rx = plan.col_taps[ox];
        float acc = b;
        for (std::size_t c = 0; c < plan.in_c; ++c) {
          for (std::size_t ky = ry.begin; ky < ry.end; ++ky) {
            const std::size_t iy = oy * plan.stride + ky - plan.pad;
            const std::size_t in_base = (c * plan.in_h + iy) * plan.in_w;
            const float* w_row =
                weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
            for (std::size_t kx = rx.begin; kx < rx.end; ++kx) {
              const std::size_t ix = ox * plan.stride + kx - plan.pad;
              const float p =
                  exec.mul_inline(input[in_base + ix], w_row[kx]).value;
              acc = exec.add_inline(acc, p).value;
              report.logical_ops += 2;
            }
          }
        }
        out[(o * plan.out_h + oy) * plan.out_w + ox] = acc;
      }
    }
  }
}

/// Qualified dense inner kernel over a concrete executor type; the linear
/// analogue of conv_forward_qualified.
template <bool WithReport = true, typename Exec>
void linear_forward_qualified(std::size_t out_n, std::size_t in_n,
                              const float* input, const float* weights,
                              const float* bias,
                              const ReliabilityPolicy& policy, Exec& exec,
                              ReliableResult& result) {
  ExecutionReport& report = result.report;
  LeakyBucket bucket(policy.bucket_factor, policy.bucket_ceiling);
  QualifiedOpRunner<Exec, WithReport> runner{exec, report, bucket,
                                             policy.max_retries_per_op};
  float* out = result.output.data().data();

  std::int64_t op_index = 0;
  const auto abort_with = [&](std::size_t o, std::int64_t failed_at,
                              float committed) {
    report.ok = false;
    if constexpr (WithReport) {
      report.failed_op_index = failed_at;
      report.bucket_peak = bucket.peak();
      report.bucket_exhausted = bucket.exhausted();
    } else {
      (void)failed_at;
    }
    out[o] = committed;
  };

  for (std::size_t o = 0; o < out_n; ++o) {
    ScalarCheckpoint acc(bias[o]);
    const float* w_row = weights + o * in_n;
    for (std::size_t i = 0; i < in_n; ++i) {
      const float x = input[i];
      const float w = w_row[i];

      ScalarCheckpoint prod(0.0f);
      const auto p =
          runner.run([x, w](Exec& e) { return e.mul_inline(x, w); }, prod);
      ++op_index;
      if (!p) {
        abort_with(o, op_index - 1, acc.value());
        return;
      }

      const float before = acc.value();
      const float pv = *p;
      const auto s = runner.run(
          [before, pv](Exec& e) { return e.add_inline(before, pv); }, acc);
      ++op_index;
      if (!s) {
        abort_with(o, op_index - 1, acc.value());
        return;
      }
    }
    out[o] = acc.value();
  }

  if constexpr (WithReport) {
    report.bucket_peak = bucket.peak();
    report.bucket_exhausted = bucket.exhausted();
  }
}

/// Fault-free dense fast path, scalar form: same operation order as the
/// qualified kernel. Kept callable directly for A/B tests and benches.
inline void linear_raw_compute_scalar(std::size_t out_n, std::size_t in_n,
                                      const float* input,
                                      const float* weights, const float* bias,
                                      float* out) noexcept {
  for (std::size_t o = 0; o < out_n; ++o) {
    float acc = bias[o];
    const float* w_row = weights + o * in_n;
    for (std::size_t i = 0; i < in_n; ++i) {
      acc = acc + input[i] * w_row[i];
    }
    out[o] = acc;
  }
}

#ifdef HYBRIDCNN_ISA_SIMD

/// Vectorized fault-free dense fast path, gather form: lanes are
/// independent output neurons (lane l accumulates neuron o0+l over the
/// full input in index order — the dense analogue of the conv pixel
/// lanes), with one input broadcast and a per-lane weight gather
/// (weights are [out, in], so one input column is strided by in_n). The
/// neuron remainder runs scalar. Kept callable for the A/B micro-bench
/// against the packed form and as the pack-less fallback.
inline void linear_raw_compute_simd(std::size_t out_n, std::size_t in_n,
                                    const float* input, const float* weights,
                                    const float* bias, float* out) noexcept {
  namespace isa = runtime::isa;
  std::size_t o = 0;
  for (; o + isa::kFloatLanes <= out_n; o += isa::kFloatLanes) {
    isa::VecF acc = isa::loadu(bias + o);
    const float* w0 = weights + o * in_n;
    for (std::size_t i = 0; i < in_n; ++i) {
      const isa::VecF xv = isa::splat(input[i]);
      isa::VecF wv;
      for (std::size_t l = 0; l < isa::kFloatLanes; ++l) {
        wv[l] = w0[l * in_n + i];
      }
      acc = acc + xv * wv;
    }
    isa::storeu(out + o, acc);
  }
  linear_raw_compute_scalar(out_n - o, in_n, input, weights + o * in_n,
                            bias + o, out + o);
}

#endif  // HYBRIDCNN_ISA_SIMD

/// Neuron-lane weight layout for the dense fast path: [out, in] weights
/// transposed into [in][padded_out] rows so each input step issues
/// contiguous weight-vector loads across adjacent output neurons instead
/// of the gather kernel's lane-by-lane strided reads. Same lifetime rule
/// as the conv WeightPack: cached by the owner, keyed on `generation`.
struct LinearWeightPack {
  std::vector<float> weights;  ///< [in][padded_out]
  std::vector<float> bias;     ///< [padded_out], zero beyond out_n
  std::size_t out_n = 0;
  std::size_t padded_out = 0;
  std::size_t in_n = 0;
  std::uint64_t generation = 0;
};

inline LinearWeightPack build_linear_pack(std::size_t out_n, std::size_t in_n,
                                          const float* weights,
                                          const float* bias,
                                          std::uint64_t generation) {
  LinearWeightPack pack;
  pack.out_n = out_n;
  pack.padded_out = channel_pack_width(out_n);
  pack.in_n = in_n;
  pack.generation = generation;
  pack.weights.assign(in_n * pack.padded_out, 0.0f);
  pack.bias.assign(pack.padded_out, 0.0f);
  for (std::size_t o = 0; o < out_n; ++o) {
    pack.bias[o] = bias[o];
    for (std::size_t i = 0; i < in_n; ++i) {
      pack.weights[i * pack.padded_out + o] = weights[o * in_n + i];
    }
  }
  return pack;
}

#ifdef HYBRIDCNN_ISA_SIMD

/// Vectorized fault-free dense fast path, packed form: the channel-lane
/// idea applied to the dense layer. Lane l of block b accumulates neuron
/// b*lanes + l; every input element is one broadcast against contiguous
/// weight vectors, blocks grouped like the conv channel blocks. Adjacent
/// lanes are adjacent output neurons, so full blocks store straight to
/// the output; only the padded tail block scatters its valid lanes. Per
/// lane the reduction is the exact scalar index order.
inline void linear_raw_compute_packed(const LinearWeightPack& pack,
                                      const float* input,
                                      float* out) noexcept {
  namespace isa = runtime::isa;
  constexpr std::size_t kLanes = isa::kFloatLanes;
  const std::size_t blocks = pack.padded_out / kLanes;
  const auto run_group = [&](std::size_t blk, auto b_tag) {
    constexpr std::size_t B = decltype(b_tag)::value;
    const std::size_t o0 = blk * kLanes;
    isa::VecF acc[B];
    for (std::size_t b = 0; b < B; ++b) {
      acc[b] = isa::loadu(pack.bias.data() + o0 + b * kLanes);
    }
    for (std::size_t i = 0; i < pack.in_n; ++i) {
      const isa::VecF xv = isa::splat(input[i]);
      const float* w = pack.weights.data() + i * pack.padded_out + o0;
      for (std::size_t b = 0; b < B; ++b) {
        acc[b] = acc[b] + xv * isa::loadu(w + b * kLanes);
      }
    }
    for (std::size_t b = 0; b < B; ++b) {
      const std::size_t ob = o0 + b * kLanes;
      const std::size_t valid = std::min(kLanes, pack.out_n - ob);
      if (valid == kLanes) {
        isa::storeu(out + ob, acc[b]);
      } else {
        for (std::size_t l = 0; l < valid; ++l) out[ob + l] = acc[b][l];
      }
    }
  };
  std::size_t blk = 0;
  while (blk < blocks) {
    const std::size_t group = std::min(kChannelBlockUnroll, blocks - blk);
    switch (group) {
      case 4:
        run_group(blk, std::integral_constant<std::size_t, 4>{});
        break;
      case 3:
        run_group(blk, std::integral_constant<std::size_t, 3>{});
        break;
      case 2:
        run_group(blk, std::integral_constant<std::size_t, 2>{});
        break;
      default:
        run_group(blk, std::integral_constant<std::size_t, 1>{});
        break;
    }
    blk += group;
  }
}

#endif  // HYBRIDCNN_ISA_SIMD

/// Fault-free dense fast path: the packed neuron-lane kernel when a pack
/// is supplied, the gather kernel when not (and a full lane block of
/// neurons exists), scalar otherwise.
inline void linear_raw_compute(std::size_t out_n, std::size_t in_n,
                               const LinearWeightPack* pack,
                               const float* input, const float* weights,
                               const float* bias, float* out) noexcept {
#ifdef HYBRIDCNN_ISA_SIMD
  if (reliable_simd_enabled()) {
    if (pack != nullptr) {
      linear_raw_compute_packed(*pack, input, out);
      return;
    }
    if (out_n >= runtime::isa::kFloatLanes) {
      linear_raw_compute_simd(out_n, in_n, input, weights, bias, out);
      return;
    }
  }
#else
  (void)pack;
#endif
  linear_raw_compute_scalar(out_n, in_n, input, weights, bias, out);
}

}  // namespace hybridcnn::reliable::detail
