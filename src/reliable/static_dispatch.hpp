// Statically dispatched qualified kernels.
//
// The generic reliable kernels (ReliableConv2d::forward_generic, ...) pay
// two virtual Executor calls, a generic retry lambda, and per-tap padding
// branches per scalar MAC — C++ dispatch overhead the paper's Table-1
// numbers should not include. This header provides the devirtualized
// machinery the public forward() entry points select once per call:
//
//   * valid_taps/tap_ranges — per-output-coordinate valid kernel-tap
//     intervals, hoisting the iy/ix boundary branches out of the inner
//     loop. The set and order of executed taps is exactly that of the
//     generic loop's `continue` filtering.
//   * QualifiedOpRunner — Algorithm 3's per-operation retry machinery
//     split into an always-inline success fast path and a cold noinline
//     slow path (rollback / retry / leaky-bucket escalation). Counter
//     updates replicate the generic retry loop step for step.
//   * conv_forward_qualified / linear_forward_qualified /
//     conv_unqualified_inline — inner kernels templated over the concrete
//     executor type (Simplex/Dmr/Tmr are final), so mul/add fold into the
//     loop with no virtual calls or per-op lambdas surviving to codegen.
//   * conv_raw_compute / linear_raw_compute — the fault-free fast path:
//     plain scalar arithmetic in the identical operation order, used when
//     the executor is guaranteed_fault_free(); callers then credit the
//     elided bookkeeping in closed form (credit_fault_free_ops).
//
// Bit-identity contract: for every (input, executor, injector-seed), a
// specialized kernel must produce the same output bits, the same
// ExecutionReport fields, the same ExecutorStats/InjectorStats, and the
// same injector cursor as the generic path. tests/test_static_dispatch.cpp
// enforces this across schemes, fault kinds and geometries.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "reliable/checkpoint.hpp"
#include "reliable/executor.hpp"
#include "reliable/leaky_bucket.hpp"
#include "reliable/report.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::reliable::detail {

/// Half-open interval of kernel-tap indices that land in-bounds.
struct TapRange {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive; begin == end when no tap is valid
  [[nodiscard]] std::size_t count() const noexcept { return end - begin; }
};

/// Valid taps for output coordinate `o`: the k in [0, k_size) with
/// 0 <= o*stride + k - pad < n. The interval is contiguous, so the
/// per-tap boundary test of the generic loop reduces to two bounds.
inline TapRange valid_taps(std::size_t o, std::size_t stride,
                           std::size_t pad, std::size_t k_size,
                           std::size_t n) noexcept {
  const auto base =
      static_cast<std::int64_t>(o * stride) - static_cast<std::int64_t>(pad);
  std::int64_t lo = base < 0 ? -base : 0;
  std::int64_t hi = static_cast<std::int64_t>(n) - base;
  if (hi > static_cast<std::int64_t>(k_size)) {
    hi = static_cast<std::int64_t>(k_size);
  }
  if (hi < lo) hi = lo;
  return {static_cast<std::size_t>(lo), static_cast<std::size_t>(hi)};
}

/// Valid-tap intervals for every output coordinate along one axis.
inline std::vector<TapRange> tap_ranges(std::size_t out_n, std::size_t stride,
                                        std::size_t pad, std::size_t k_size,
                                        std::size_t in_n) {
  std::vector<TapRange> ranges(out_n);
  for (std::size_t o = 0; o < out_n; ++o) {
    ranges[o] = valid_taps(o, stride, pad, k_size, in_n);
  }
  return ranges;
}

/// Sum of valid-tap counts along one axis — the closed-form per-row
/// arithmetic mac_count() builds on (O(out_n) instead of out_n * k_size).
inline std::uint64_t total_valid_taps(std::size_t out_n, std::size_t stride,
                                      std::size_t pad, std::size_t k_size,
                                      std::size_t in_n) noexcept {
  std::uint64_t total = 0;
  for (std::size_t o = 0; o < out_n; ++o) {
    total += valid_taps(o, stride, pad, k_size, in_n).count();
  }
  return total;
}

/// Invokes `fn` with `exec` downcast to its concrete scheme type, so the
/// callee instantiates against the final class and the compiler inlines
/// mul_inline/add_inline. The single place that maps Scheme to a type —
/// every forward() dispatch site routes through here. Precondition:
/// scheme != Scheme::kCustom (the public entry points filter custom
/// executors onto the generic path first).
template <typename Fn>
void with_concrete_executor(Scheme scheme, Executor& exec, Fn&& fn) {
  switch (scheme) {
    case Scheme::kSimplex:
      fn(static_cast<SimplexExecutor&>(exec));
      return;
    case Scheme::kDmr:
      fn(static_cast<DmrExecutor&>(exec));
      return;
    case Scheme::kTmr:
      fn(static_cast<TmrExecutor&>(exec));
      return;
    case Scheme::kCustom:
      break;
  }
  assert(false && "with_concrete_executor: custom scheme has no concrete type");
}

/// Algorithm 3's per-operation envelope, split so the fault-free common
/// case stays on a straight-line inlined path. run() evaluates the op
/// once; qualified success commits and returns immediately. The first
/// failure drops to the cold slow path, which replicates the generic
/// retry loop exactly: rollback, leaky-bucket escalation, per-op retry
/// cap, re-execution.
template <typename Exec>
struct QualifiedOpRunner {
  Exec& exec;
  ExecutionReport& report;
  LeakyBucket& bucket;
  std::uint32_t max_retries_per_op;

  template <typename Op>
  HYBRIDCNN_RELIABLE_ALWAYS_INLINE std::optional<float> run(
      Op op, ScalarCheckpoint& cp) {
    ++report.logical_ops;
    const Qualified<float> q = op(exec);
    if (q.ok) [[likely]] {
      bucket.record_success();
      cp.commit(q.value);
      ++report.commits;
      return q.value;
    }
    return run_slow(op, cp);
  }

  /// Cold path; returns std::nullopt when the error is persistent (bucket
  /// ceiling or retry cap), mirroring the generic run_qualified loop from
  /// its first detected error onwards.
  template <typename Op>
  HYBRIDCNN_RELIABLE_NOINLINE std::optional<float> run_slow(
      Op op, ScalarCheckpoint& cp) {
    for (std::uint32_t attempt = 0;; ++attempt) {
      ++report.detected_errors;
      (void)cp.rollback();  // discard the unqualified value
      ++report.rollbacks;
      if (bucket.record_error()) {
        return std::nullopt;  // persistent: ceiling reached
      }
      if (attempt + 1 >= max_retries_per_op) {
        return std::nullopt;  // persistent: retry cap
      }
      ++report.retries;  // rollback distance: exactly one operation
      const Qualified<float> q = op(exec);
      if (q.ok) {
        bucket.record_success();
        ++report.corrected_errors;  // recovered on a retry
        cp.commit(q.value);
        ++report.commits;
        return q.value;
      }
    }
  }
};

/// Flat dimensions of a CHW-in / OIHW-weights convolution, plus the
/// hoisted valid-tap intervals.
struct ConvPlan {
  std::size_t out_c = 0, out_h = 0, out_w = 0;
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t kh = 0, kw = 0;
  std::size_t stride = 0, pad = 0;
  std::vector<TapRange> row_taps;  ///< valid ky per oy
  std::vector<TapRange> col_taps;  ///< valid kx per ox

  ConvPlan(const tensor::Shape& out_shape, const tensor::Shape& in_shape,
           const tensor::Shape& w_shape, std::size_t stride_,
           std::size_t pad_)
      : out_c(out_shape[0]), out_h(out_shape[1]), out_w(out_shape[2]),
        in_c(in_shape[0]), in_h(in_shape[1]), in_w(in_shape[2]),
        kh(w_shape[2]), kw(w_shape[3]), stride(stride_), pad(pad_),
        row_taps(tap_ranges(out_h, stride, pad, kh, in_h)),
        col_taps(tap_ranges(out_w, stride, pad, kw, in_w)) {}

  /// Logical MACs of one forward: separable closed form.
  [[nodiscard]] std::uint64_t macs() const noexcept {
    std::uint64_t row_total = 0;
    for (const TapRange& r : row_taps) row_total += r.count();
    std::uint64_t col_total = 0;
    for (const TapRange& r : col_taps) col_total += r.count();
    return static_cast<std::uint64_t>(out_c) * in_c * row_total * col_total;
  }
};

/// Qualified convolution inner kernel over a concrete executor type.
/// Loop nest order (o, oy, ox, c, ky, kx), committed outputs, op_index
/// accounting and abort semantics are exactly those of the generic path.
template <typename Exec>
void conv_forward_qualified(const ConvPlan& plan, const float* input,
                            const float* weights, const float* bias,
                            const ReliabilityPolicy& policy, Exec& exec,
                            ReliableResult& result) {
  ExecutionReport& report = result.report;
  LeakyBucket bucket(policy.bucket_factor, policy.bucket_ceiling);
  QualifiedOpRunner<Exec> runner{exec, report, bucket,
                                 policy.max_retries_per_op};
  float* out = result.output.data().data();

  std::int64_t op_index = 0;
  const auto abort_with = [&](std::int64_t failed_at) {
    report.ok = false;
    report.failed_op_index = failed_at;
    report.bucket_peak = bucket.peak();
    report.bucket_exhausted = bucket.exhausted();
  };

  for (std::size_t o = 0; o < plan.out_c; ++o) {
    const float b = bias[o];
    for (std::size_t oy = 0; oy < plan.out_h; ++oy) {
      const TapRange ry = plan.row_taps[oy];
      for (std::size_t ox = 0; ox < plan.out_w; ++ox) {
        const TapRange rx = plan.col_taps[ox];
        // The accumulator starts from the bias, loaded from (assumed
        // ECC-protected) parameter memory; all arithmetic on it is
        // qualified.
        ScalarCheckpoint acc(b);
        bool aborted = false;
        for (std::size_t c = 0; c < plan.in_c && !aborted; ++c) {
          for (std::size_t ky = ry.begin; ky < ry.end && !aborted; ++ky) {
            // iy/ix are non-negative by construction of the tap ranges:
            // ky >= pad - oy*stride, so the unsigned arithmetic is safe.
            const std::size_t iy = oy * plan.stride + ky - plan.pad;
            const std::size_t in_base = (c * plan.in_h + iy) * plan.in_w;
            const float* w_row =
                weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
            for (std::size_t kx = rx.begin; kx < rx.end; ++kx) {
              const std::size_t ix = ox * plan.stride + kx - plan.pad;
              const float x = input[in_base + ix];
              const float w = w_row[kx];

              // Qualified multiply, checkpointed into a product cell.
              ScalarCheckpoint prod(0.0f);
              const auto p = runner.run(
                  [x, w](Exec& e) { return e.mul_inline(x, w); }, prod);
              ++op_index;
              if (!p) {
                abort_with(op_index - 1);
                aborted = true;
                break;
              }

              // Qualified accumulate onto the committed accumulator.
              const float before = acc.value();
              const float pv = *p;
              const auto s = runner.run(
                  [before, pv](Exec& e) { return e.add_inline(before, pv); },
                  acc);
              ++op_index;
              if (!s) {
                abort_with(op_index - 1);
                aborted = true;
                break;
              }
            }
          }
        }
        out[(o * plan.out_h + oy) * plan.out_w + ox] = acc.value();
        if (aborted) {
          // Error propagation stops here: committed prefix is returned,
          // the failure is reported, nothing downstream consumes
          // unqualified values.
          return;
        }
      }
    }
  }

  report.bucket_peak = bucket.peak();
  report.bucket_exhausted = bucket.exhausted();
}

/// Fault-free convolution fast path: plain scalar arithmetic in the exact
/// qualified operation order (mul then accumulate, same loop nest), no
/// per-op bookkeeping. Callers credit the elided counters in closed form.
inline void conv_raw_compute(const ConvPlan& plan, const float* input,
                             const float* weights, const float* bias,
                             float* out) noexcept {
  for (std::size_t o = 0; o < plan.out_c; ++o) {
    const float b = bias[o];
    for (std::size_t oy = 0; oy < plan.out_h; ++oy) {
      const TapRange ry = plan.row_taps[oy];
      for (std::size_t ox = 0; ox < plan.out_w; ++ox) {
        const TapRange rx = plan.col_taps[ox];
        float acc = b;
        for (std::size_t c = 0; c < plan.in_c; ++c) {
          for (std::size_t ky = ry.begin; ky < ry.end; ++ky) {
            const std::size_t iy = oy * plan.stride + ky - plan.pad;
            const std::size_t in_base = (c * plan.in_h + iy) * plan.in_w;
            const float* w_row =
                weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
            for (std::size_t kx = rx.begin; kx < rx.end; ++kx) {
              const std::size_t ix = ox * plan.stride + kx - plan.pad;
              acc = acc + input[in_base + ix] * w_row[kx];
            }
          }
        }
        out[(o * plan.out_h + oy) * plan.out_w + ox] = acc;
      }
    }
  }
}

/// Unqualified (raw-arithmetic) convolution pass through a concrete
/// executor — the execution style layer-granular redundancy wraps.
/// Writes into a caller-owned output buffer so retry attempts reuse
/// their two comparison buffers instead of reallocating.
template <typename Exec>
void conv_unqualified_inline(const ConvPlan& plan, const float* input,
                             const float* weights, const float* bias,
                             Exec& exec, ExecutionReport& report,
                             float* out) {
  for (std::size_t o = 0; o < plan.out_c; ++o) {
    const float b = bias[o];
    for (std::size_t oy = 0; oy < plan.out_h; ++oy) {
      const TapRange ry = plan.row_taps[oy];
      for (std::size_t ox = 0; ox < plan.out_w; ++ox) {
        const TapRange rx = plan.col_taps[ox];
        float acc = b;
        for (std::size_t c = 0; c < plan.in_c; ++c) {
          for (std::size_t ky = ry.begin; ky < ry.end; ++ky) {
            const std::size_t iy = oy * plan.stride + ky - plan.pad;
            const std::size_t in_base = (c * plan.in_h + iy) * plan.in_w;
            const float* w_row =
                weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
            for (std::size_t kx = rx.begin; kx < rx.end; ++kx) {
              const std::size_t ix = ox * plan.stride + kx - plan.pad;
              const float p =
                  exec.mul_inline(input[in_base + ix], w_row[kx]).value;
              acc = exec.add_inline(acc, p).value;
              report.logical_ops += 2;
            }
          }
        }
        out[(o * plan.out_h + oy) * plan.out_w + ox] = acc;
      }
    }
  }
}

/// Qualified dense inner kernel over a concrete executor type; the linear
/// analogue of conv_forward_qualified.
template <typename Exec>
void linear_forward_qualified(std::size_t out_n, std::size_t in_n,
                              const float* input, const float* weights,
                              const float* bias,
                              const ReliabilityPolicy& policy, Exec& exec,
                              ReliableResult& result) {
  ExecutionReport& report = result.report;
  LeakyBucket bucket(policy.bucket_factor, policy.bucket_ceiling);
  QualifiedOpRunner<Exec> runner{exec, report, bucket,
                                 policy.max_retries_per_op};
  float* out = result.output.data().data();

  std::int64_t op_index = 0;
  const auto abort_with = [&](std::size_t o, std::int64_t failed_at,
                              float committed) {
    report.ok = false;
    report.failed_op_index = failed_at;
    report.bucket_peak = bucket.peak();
    report.bucket_exhausted = bucket.exhausted();
    out[o] = committed;
  };

  for (std::size_t o = 0; o < out_n; ++o) {
    ScalarCheckpoint acc(bias[o]);
    const float* w_row = weights + o * in_n;
    for (std::size_t i = 0; i < in_n; ++i) {
      const float x = input[i];
      const float w = w_row[i];

      ScalarCheckpoint prod(0.0f);
      const auto p =
          runner.run([x, w](Exec& e) { return e.mul_inline(x, w); }, prod);
      ++op_index;
      if (!p) {
        abort_with(o, op_index - 1, acc.value());
        return;
      }

      const float before = acc.value();
      const float pv = *p;
      const auto s = runner.run(
          [before, pv](Exec& e) { return e.add_inline(before, pv); }, acc);
      ++op_index;
      if (!s) {
        abort_with(o, op_index - 1, acc.value());
        return;
      }
    }
    out[o] = acc.value();
  }

  report.bucket_peak = bucket.peak();
  report.bucket_exhausted = bucket.exhausted();
}

/// Fault-free dense fast path, same operation order as the qualified
/// kernel.
inline void linear_raw_compute(std::size_t out_n, std::size_t in_n,
                               const float* input, const float* weights,
                               const float* bias, float* out) noexcept {
  for (std::size_t o = 0; o < out_n; ++o) {
    float acc = bias[o];
    const float* w_row = weights + o * in_n;
    for (std::size_t i = 0; i < in_n; ++i) {
      acc = acc + input[i] * w_row[i];
    }
    out[o] = acc;
  }
}

}  // namespace hybridcnn::reliable::detail
