// Statically dispatched qualified kernels.
//
// The generic reliable kernels (ReliableConv2d::forward_generic, ...) pay
// two virtual Executor calls, a generic retry lambda, and per-tap padding
// branches per scalar MAC — C++ dispatch overhead the paper's Table-1
// numbers should not include. This header provides the devirtualized
// machinery the public forward() entry points select once per call:
//
//   * valid_taps/tap_ranges — per-output-coordinate valid kernel-tap
//     intervals, hoisting the iy/ix boundary branches out of the inner
//     loop. The set and order of executed taps is exactly that of the
//     generic loop's `continue` filtering.
//   * QualifiedOpRunner — Algorithm 3's per-operation retry machinery
//     split into an always-inline success fast path and a cold noinline
//     slow path (rollback / retry / leaky-bucket escalation). Counter
//     updates replicate the generic retry loop step for step.
//   * conv_forward_qualified / linear_forward_qualified /
//     conv_unqualified_inline — inner kernels templated over the concrete
//     executor type (Simplex/Dmr/Tmr are final), so mul/add fold into the
//     loop with no virtual calls or per-op lambdas surviving to codegen.
//   * conv_raw_compute / linear_raw_compute — the fault-free fast path:
//     raw arithmetic in the identical operation order, used when the
//     executor is guaranteed_fault_free(); callers then credit the
//     elided bookkeeping in closed form (credit_fault_free_ops). On
//     SIMD-capable targets (runtime/isa.hpp) the fast path vectorizes
//     across *independent output pixels* — kFloatLanes interior outputs
//     per vector, each lane running the exact scalar reduction order
//     over (c, ky, kx) — never across the reduction itself, so the
//     vector kernel is bit-identical to the scalar loop by construction.
//     Border pixels (partial tap ranges) and lane remainders stay on
//     the scalar loop. The runtime kill-switch HYBRIDCNN_RELIABLE_SIMD=0
//     (or set_reliable_simd_enabled(false)) forces the scalar fast path
//     for debugging and A/B benching.
//
// The qualified kernels are additionally templated on a WithReport flag:
// ReportMode::kStatsOnly instantiations skip every per-op
// ExecutionReport counter update (campaign sweeps that only consume the
// CampaignSummary pay no report-assembly cost) while preserving output
// bits, abort behaviour, report.ok and all executor/injector statistics.
//
// Bit-identity contract: for every (input, executor, injector-seed), a
// specialized kernel must produce the same output bits, the same
// ExecutionReport fields, the same ExecutorStats/InjectorStats, and the
// same injector cursor as the generic path. tests/test_static_dispatch.cpp
// and tests/test_simd_dispatch.cpp enforce this across schemes, fault
// kinds, geometries and report modes.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "reliable/checkpoint.hpp"
#include "reliable/executor.hpp"
#include "reliable/leaky_bucket.hpp"
#include "reliable/reliable_conv.hpp"
#include "reliable/report.hpp"
#include "runtime/isa.hpp"
#include "tensor/tensor.hpp"

namespace hybridcnn::reliable::detail {

/// Whether the fault-free fast path may use the vectorized kernels.
/// Initialised once from the environment (HYBRIDCNN_RELIABLE_SIMD=0
/// disables; anything else — including unset — enables); tests and
/// benches flip it at runtime for A/B comparisons. On targets without
/// HYBRIDCNN_ISA_SIMD the flag is ignored — only the scalar path exists.
[[nodiscard]] bool reliable_simd_enabled() noexcept;
void set_reliable_simd_enabled(bool enabled) noexcept;

/// Half-open interval of kernel-tap indices that land in-bounds.
struct TapRange {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive; begin == end when no tap is valid
  [[nodiscard]] std::size_t count() const noexcept { return end - begin; }
};

/// Valid taps for output coordinate `o`: the k in [0, k_size) with
/// 0 <= o*stride + k - pad < n. The interval is contiguous, so the
/// per-tap boundary test of the generic loop reduces to two bounds.
inline TapRange valid_taps(std::size_t o, std::size_t stride,
                           std::size_t pad, std::size_t k_size,
                           std::size_t n) noexcept {
  const auto base =
      static_cast<std::int64_t>(o * stride) - static_cast<std::int64_t>(pad);
  std::int64_t lo = base < 0 ? -base : 0;
  std::int64_t hi = static_cast<std::int64_t>(n) - base;
  if (hi > static_cast<std::int64_t>(k_size)) {
    hi = static_cast<std::int64_t>(k_size);
  }
  if (hi < lo) hi = lo;
  return {static_cast<std::size_t>(lo), static_cast<std::size_t>(hi)};
}

/// Valid-tap intervals for every output coordinate along one axis.
inline std::vector<TapRange> tap_ranges(std::size_t out_n, std::size_t stride,
                                        std::size_t pad, std::size_t k_size,
                                        std::size_t in_n) {
  std::vector<TapRange> ranges(out_n);
  for (std::size_t o = 0; o < out_n; ++o) {
    ranges[o] = valid_taps(o, stride, pad, k_size, in_n);
  }
  return ranges;
}

/// Sum of valid-tap counts along one axis — the closed-form per-row
/// arithmetic mac_count() builds on (O(out_n) instead of out_n * k_size).
inline std::uint64_t total_valid_taps(std::size_t out_n, std::size_t stride,
                                      std::size_t pad, std::size_t k_size,
                                      std::size_t in_n) noexcept {
  std::uint64_t total = 0;
  for (std::size_t o = 0; o < out_n; ++o) {
    total += valid_taps(o, stride, pad, k_size, in_n).count();
  }
  return total;
}

/// Invokes `fn` with `exec` downcast to its concrete scheme type, so the
/// callee instantiates against the final class and the compiler inlines
/// mul_inline/add_inline. The single place that maps Scheme to a type —
/// every forward() dispatch site routes through here. Precondition:
/// scheme != Scheme::kCustom (the public entry points filter custom
/// executors onto the generic path first).
template <typename Fn>
void with_concrete_executor(Scheme scheme, Executor& exec, Fn&& fn) {
  switch (scheme) {
    case Scheme::kSimplex:
      fn(static_cast<SimplexExecutor&>(exec));
      return;
    case Scheme::kDmr:
      fn(static_cast<DmrExecutor&>(exec));
      return;
    case Scheme::kTmr:
      fn(static_cast<TmrExecutor&>(exec));
      return;
    case Scheme::kCustom:
      break;
  }
  assert(false && "with_concrete_executor: custom scheme has no concrete type");
}

/// Algorithm 3's per-operation envelope, split so the fault-free common
/// case stays on a straight-line inlined path. run() evaluates the op
/// once; qualified success commits and returns immediately. The first
/// failure drops to the cold slow path, which replicates the generic
/// retry loop exactly: rollback, leaky-bucket escalation, per-op retry
/// cap, re-execution.
///
/// WithReport=false (ReportMode::kStatsOnly) compiles out every report
/// counter update; control flow, checkpoint traffic and executor calls
/// are untouched, so outputs and executor/injector statistics stay
/// bit-identical to the full-report instantiation.
template <typename Exec, bool WithReport = true>
struct QualifiedOpRunner {
  Exec& exec;
  ExecutionReport& report;
  LeakyBucket& bucket;
  std::uint32_t max_retries_per_op;

  template <typename Op>
  HYBRIDCNN_RELIABLE_ALWAYS_INLINE std::optional<float> run(
      Op op, ScalarCheckpoint& cp) {
    if constexpr (WithReport) ++report.logical_ops;
    const Qualified<float> q = op(exec);
    if (q.ok) [[likely]] {
      bucket.record_success();
      cp.commit(q.value);
      if constexpr (WithReport) ++report.commits;
      return q.value;
    }
    return run_slow(op, cp);
  }

  /// Cold path; returns std::nullopt when the error is persistent (bucket
  /// ceiling or retry cap), mirroring the generic run_qualified loop from
  /// its first detected error onwards.
  template <typename Op>
  HYBRIDCNN_RELIABLE_NOINLINE std::optional<float> run_slow(
      Op op, ScalarCheckpoint& cp) {
    for (std::uint32_t attempt = 0;; ++attempt) {
      if constexpr (WithReport) ++report.detected_errors;
      (void)cp.rollback();  // discard the unqualified value
      if constexpr (WithReport) ++report.rollbacks;
      if (bucket.record_error()) {
        return std::nullopt;  // persistent: ceiling reached
      }
      if (attempt + 1 >= max_retries_per_op) {
        return std::nullopt;  // persistent: retry cap
      }
      if constexpr (WithReport) {
        ++report.retries;  // rollback distance: exactly one operation
      }
      const Qualified<float> q = op(exec);
      if (q.ok) {
        bucket.record_success();
        if constexpr (WithReport) {
          ++report.corrected_errors;  // recovered on a retry
        }
        cp.commit(q.value);
        if constexpr (WithReport) ++report.commits;
        return q.value;
      }
    }
  }
};

/// Flat dimensions of a CHW-in / OIHW-weights convolution, plus the
/// hoisted valid-tap intervals.
struct ConvPlan {
  std::size_t out_c = 0, out_h = 0, out_w = 0;
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t kh = 0, kw = 0;
  std::size_t stride = 0, pad = 0;
  std::vector<TapRange> row_taps;  ///< valid ky per oy
  std::vector<TapRange> col_taps;  ///< valid kx per ox
  /// Interior ox span: the contiguous [interior_x_begin, interior_x_end)
  /// where col_taps[ox] is the full [0, kw) — every kx tap of every lane
  /// lands in-bounds, which is what lets the SIMD fast path run whole
  /// kx rows without per-tap boundary tests. Empty (begin == end == 0)
  /// when no ox has a full tap range. Rows need no such split: lanes
  /// within one vector share oy, so any row tap range works.
  std::size_t interior_x_begin = 0;
  std::size_t interior_x_end = 0;

  ConvPlan(const tensor::Shape& out_shape, const tensor::Shape& in_shape,
           const tensor::Shape& w_shape, std::size_t stride_,
           std::size_t pad_)
      : out_c(out_shape[0]), out_h(out_shape[1]), out_w(out_shape[2]),
        in_c(in_shape[0]), in_h(in_shape[1]), in_w(in_shape[2]),
        kh(w_shape[2]), kw(w_shape[3]), stride(stride_), pad(pad_),
        row_taps(tap_ranges(out_h, stride, pad, kh, in_h)),
        col_taps(tap_ranges(out_w, stride, pad, kw, in_w)) {
    // Full tap ranges form one contiguous run (begin hits 0 once ox*stride
    // >= pad and stays there; end drops below kw only near the right
    // border), so a single scan finds the interior.
    while (interior_x_begin < out_w &&
           !(col_taps[interior_x_begin].begin == 0 &&
             col_taps[interior_x_begin].end == kw)) {
      ++interior_x_begin;
    }
    interior_x_end = interior_x_begin;
    while (interior_x_end < out_w && col_taps[interior_x_end].begin == 0 &&
           col_taps[interior_x_end].end == kw) {
      ++interior_x_end;
    }
    if (interior_x_begin == out_w) interior_x_begin = interior_x_end = 0;
  }

  /// Logical MACs of one forward: separable closed form.
  [[nodiscard]] std::uint64_t macs() const noexcept {
    std::uint64_t row_total = 0;
    for (const TapRange& r : row_taps) row_total += r.count();
    std::uint64_t col_total = 0;
    for (const TapRange& r : col_taps) col_total += r.count();
    return static_cast<std::uint64_t>(out_c) * in_c * row_total * col_total;
  }
};

/// Qualified convolution inner kernel over a concrete executor type.
/// Loop nest order (o, oy, ox, c, ky, kx), committed outputs, op_index
/// accounting and abort semantics are exactly those of the generic path.
/// WithReport=false elides all report counters (ok is still latched on
/// abort); see QualifiedOpRunner.
template <bool WithReport = true, typename Exec>
void conv_forward_qualified(const ConvPlan& plan, const float* input,
                            const float* weights, const float* bias,
                            const ReliabilityPolicy& policy, Exec& exec,
                            ReliableResult& result) {
  ExecutionReport& report = result.report;
  LeakyBucket bucket(policy.bucket_factor, policy.bucket_ceiling);
  QualifiedOpRunner<Exec, WithReport> runner{exec, report, bucket,
                                             policy.max_retries_per_op};
  float* out = result.output.data().data();

  std::int64_t op_index = 0;
  const auto abort_with = [&](std::int64_t failed_at) {
    report.ok = false;
    if constexpr (WithReport) {
      report.failed_op_index = failed_at;
      report.bucket_peak = bucket.peak();
      report.bucket_exhausted = bucket.exhausted();
    } else {
      (void)failed_at;
    }
  };

  for (std::size_t o = 0; o < plan.out_c; ++o) {
    const float b = bias[o];
    for (std::size_t oy = 0; oy < plan.out_h; ++oy) {
      const TapRange ry = plan.row_taps[oy];
      for (std::size_t ox = 0; ox < plan.out_w; ++ox) {
        const TapRange rx = plan.col_taps[ox];
        // The accumulator starts from the bias, loaded from (assumed
        // ECC-protected) parameter memory; all arithmetic on it is
        // qualified.
        ScalarCheckpoint acc(b);
        bool aborted = false;
        for (std::size_t c = 0; c < plan.in_c && !aborted; ++c) {
          for (std::size_t ky = ry.begin; ky < ry.end && !aborted; ++ky) {
            // iy/ix are non-negative by construction of the tap ranges:
            // ky >= pad - oy*stride, so the unsigned arithmetic is safe.
            const std::size_t iy = oy * plan.stride + ky - plan.pad;
            const std::size_t in_base = (c * plan.in_h + iy) * plan.in_w;
            const float* w_row =
                weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
            for (std::size_t kx = rx.begin; kx < rx.end; ++kx) {
              const std::size_t ix = ox * plan.stride + kx - plan.pad;
              const float x = input[in_base + ix];
              const float w = w_row[kx];

              // Qualified multiply, checkpointed into a product cell.
              ScalarCheckpoint prod(0.0f);
              const auto p = runner.run(
                  [x, w](Exec& e) { return e.mul_inline(x, w); }, prod);
              ++op_index;
              if (!p) {
                abort_with(op_index - 1);
                aborted = true;
                break;
              }

              // Qualified accumulate onto the committed accumulator.
              const float before = acc.value();
              const float pv = *p;
              const auto s = runner.run(
                  [before, pv](Exec& e) { return e.add_inline(before, pv); },
                  acc);
              ++op_index;
              if (!s) {
                abort_with(op_index - 1);
                aborted = true;
                break;
              }
            }
          }
        }
        out[(o * plan.out_h + oy) * plan.out_w + ox] = acc.value();
        if (aborted) {
          // Error propagation stops here: committed prefix is returned,
          // the failure is reported, nothing downstream consumes
          // unqualified values.
          return;
        }
      }
    }
  }

  if constexpr (WithReport) {
    report.bucket_peak = bucket.peak();
    report.bucket_exhausted = bucket.exhausted();
  }
}

/// One fault-free output pixel: the scalar reduction every path — scalar
/// loop, SIMD lane, generic oracle — must reproduce bit for bit.
HYBRIDCNN_RELIABLE_ALWAYS_INLINE float conv_raw_pixel(
    const ConvPlan& plan, const float* input, const float* weights, float b,
    std::size_t o, std::size_t oy, std::size_t ox,
    const TapRange ry) noexcept {
  const TapRange rx = plan.col_taps[ox];
  float acc = b;
  for (std::size_t c = 0; c < plan.in_c; ++c) {
    for (std::size_t ky = ry.begin; ky < ry.end; ++ky) {
      const std::size_t iy = oy * plan.stride + ky - plan.pad;
      const std::size_t in_base = (c * plan.in_h + iy) * plan.in_w;
      const float* w_row =
          weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
      for (std::size_t kx = rx.begin; kx < rx.end; ++kx) {
        const std::size_t ix = ox * plan.stride + kx - plan.pad;
        acc = acc + input[in_base + ix] * w_row[kx];
      }
    }
  }
  return acc;
}

/// Fault-free convolution fast path, scalar form: plain arithmetic in the
/// exact qualified operation order (mul then accumulate, same loop nest),
/// no per-op bookkeeping. Callers credit the elided counters in closed
/// form. Kept callable directly for A/B tests and benches.
inline void conv_raw_compute_scalar(const ConvPlan& plan, const float* input,
                                    const float* weights, const float* bias,
                                    float* out) noexcept {
  for (std::size_t o = 0; o < plan.out_c; ++o) {
    const float b = bias[o];
    for (std::size_t oy = 0; oy < plan.out_h; ++oy) {
      const TapRange ry = plan.row_taps[oy];
      float* out_row = out + (o * plan.out_h + oy) * plan.out_w;
      for (std::size_t ox = 0; ox < plan.out_w; ++ox) {
        out_row[ox] = conv_raw_pixel(plan, input, weights, b, o, oy, ox, ry);
      }
    }
  }
}

#ifdef HYBRIDCNN_ISA_SIMD

/// Strided convs go through a row-deinterleave pack (see
/// conv_simd_rows); the pack buffer lives on the stack, so cap the
/// strides and kernel widths it serves. Anything wider stays scalar
/// (no real CNN layer is near these bounds).
inline constexpr std::size_t kMaxSimdStride = 8;
inline constexpr std::size_t kMaxSimdKw = 32;

/// Output rows with full vertical tap ranges are processed in groups of
/// up to this many rows at once. Each row keeps its own accumulator (its
/// own scalar-order chain — bit-identity is per lane per row), but the
/// chains are independent, so interleaving them hides the vector-add
/// latency a single chain is bound by, and the per-tap weight broadcast
/// is shared across the group.
inline constexpr std::size_t kSimdRowUnroll = 4;

#if defined(__GNUC__) && !defined(__clang__)
/// GCC's __builtin_shuffle takes a runtime integer-vector mask, which
/// lets the strided-pack deinterleave stay lane-count generic. Clang
/// only has the constant-index variant; it keeps the scalar pack.
#define HYBRIDCNN_RELIABLE_VEC_SHUFFLE 1
typedef std::int32_t VecShufI __attribute__((
    vector_size(sizeof(std::int32_t) * runtime::isa::kFloatLanes)));
#endif

/// dst[i] = src[i * s] for i in [0, n): the strided-row deinterleave the
/// SIMD conv kernel runs per (channel, kernel row). For the common conv
/// strides 2 and 4 the gather is a register deinterleave: load the
/// contiguous span and shuffle out every s-th lane. A full vector chunk
/// reads s*lanes contiguous floats, which exceeds the strided extent
/// (n-1)*s + 1 unless one more strided element follows the chunk, so
/// chunks stop one element early (i + lanes < n) and the tail — and any
/// other stride — goes element-wise. Shuffles only move values:
/// bit-identity is untouched.
HYBRIDCNN_RELIABLE_ALWAYS_INLINE void pack_strided(const float* src,
                                                   float* dst, std::size_t n,
                                                   std::size_t s) noexcept {
  namespace isa = runtime::isa;
  std::size_t i = 0;
#ifdef HYBRIDCNN_RELIABLE_VEC_SHUFFLE
  constexpr int kLc = static_cast<int>(isa::kFloatLanes);
  if (s == 2) {
    VecShufI m2;
    for (int j = 0; j < kLc; ++j) m2[j] = 2 * j;
    for (; i + isa::kFloatLanes < n; i += isa::kFloatLanes) {
      const float* p = src + i * 2;
      isa::storeu(dst + i,
                  __builtin_shuffle(isa::loadu(p), isa::loadu(p + kLc), m2));
    }
  } else if (s == 4) {
    // Two-stage stride-4 deinterleave: each pair of input vectors yields
    // its every-4th lanes in its low half (mask indices wrap modulo the
    // two-operand width, so the upper-half entries are don't-cares),
    // then the halves concatenate.
    VecShufI m4;
    VecShufI mcat;
    for (int j = 0; j < kLc; ++j) m4[j] = (4 * j) & (2 * kLc - 1);
    for (int j = 0; j < kLc; ++j) {
      mcat[j] = j < kLc / 2 ? j : kLc + (j - kLc / 2);
    }
    for (; i + isa::kFloatLanes < n; i += isa::kFloatLanes) {
      const float* p = src + i * 4;
      const isa::VecF a =
          __builtin_shuffle(isa::loadu(p), isa::loadu(p + kLc), m4);
      const isa::VecF b =
          __builtin_shuffle(isa::loadu(p + 2 * kLc), isa::loadu(p + 3 * kLc),
                            m4);
      isa::storeu(dst + i, __builtin_shuffle(a, b, mcat));
    }
  }
#endif
  for (; i < n; ++i) dst[i] = src[i * s];
}

/// One lane-width block of interior output pixels for R adjacent output
/// rows: lane l of acc[r] accumulates output pixel (oy0+r, ox0+l). The
/// reduction runs in the scalar order — per (c, ky, kx) one weight
/// broadcast and one per-lane mul-then-add — so every lane performs
/// exactly the scalar pixel's operation sequence (vector mul/add are
/// lane-wise IEEE ops and the reliable subsystem compiles with
/// -ffp-contract=off, so no fusion can reassociate them). For R > 1 the
/// caller guarantees all R rows share the full vertical tap range `ry`;
/// R == 1 accepts any row's range.
///
/// kStride1 hoists the contiguous-load case: with stride 1 the lane
/// inputs are adjacent and one unaligned vector load serves each tap.
/// With stride s > 1 the lane inputs are s apart, but taps sharing a
/// residue kx mod s read the same strided sequence shifted by whole
/// lanes: tap kx = q*s + res needs in_row[base + res + (q+l)*s] for lane
/// l. So each (c, ky) input row is deinterleaved once into s
/// residue-packed buffers — buf_res[i] = in_row[base + res + i*s] — and
/// every tap becomes one contiguous vector load at buf_res + q,
/// replacing a per-tap per-lane gather with one pack amortized over the
/// kw/s taps of each residue. Packing only moves values, and the kx loop
/// still walks taps in scalar order, so bit-identity is untouched.
template <bool kStride1, std::size_t R>
HYBRIDCNN_RELIABLE_ALWAYS_INLINE void conv_simd_rows(
    const ConvPlan& plan, const float* input, const float* weights, float b,
    std::size_t o, std::size_t oy0, std::size_t ox0, const TapRange ry,
    float* out) noexcept {
  namespace isa = runtime::isa;
  static_assert(R >= 1 && R <= kSimdRowUnroll);
  isa::VecF acc[R];
  for (std::size_t r = 0; r < R; ++r) acc[r] = isa::splat(b);
  const std::size_t s = plan.stride;
  // Interior ox: ox*stride >= pad (tap 0 valid), so the unsigned
  // subtraction cannot wrap, and tap kw-1 lands in-bounds for every
  // lane.
  const std::size_t base = ox0 * s - plan.pad;
  // Per-residue buffer length: residue 0 has the most taps,
  // (kw-1)/s + 1, and the load at its last tap reads lanes up to
  // (kw-1)/s + kFloatLanes - 1.
  [[maybe_unused]] const std::size_t len =
      kStride1 ? 0 : isa::kFloatLanes + (plan.kw - 1) / s;
  [[maybe_unused]] float
      buf[kSimdRowUnroll * kMaxSimdStride * (isa::kFloatLanes + kMaxSimdKw)];
  for (std::size_t c = 0; c < plan.in_c; ++c) {
    for (std::size_t ky = ry.begin; ky < ry.end; ++ky) {
      const std::size_t iy0 = oy0 * s + ky - plan.pad;
      const float* in_row = input + (c * plan.in_h + iy0) * plan.in_w;
      // Adjacent output rows are `stride` input rows apart.
      const std::size_t row_step = s * plan.in_w;
      const float* w_row =
          weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
      if constexpr (kStride1) {
        for (std::size_t kx = 0; kx < plan.kw; ++kx) {
          const isa::VecF wv = isa::splat(w_row[kx]);
          for (std::size_t r = 0; r < R; ++r) {
            acc[r] =
                acc[r] + isa::loadu(in_row + r * row_step + base + kx) * wv;
          }
        }
      } else {
        for (std::size_t r = 0; r < R; ++r) {
          for (std::size_t res = 0; res < s && res < plan.kw; ++res) {
            // Last element packed for a residue is exactly the last
            // lane's last tap of that residue — in bounds by the
            // interior guarantee.
            const std::size_t n =
                (plan.kw - 1 - res) / s + isa::kFloatLanes;
            pack_strided(in_row + r * row_step + base + res,
                         buf + (r * s + res) * len, n, s);
          }
        }
        // Taps still accumulate in kx order (bit-identity); walk the
        // (residue, shift) pair incrementally instead of dividing.
        std::size_t res = 0;
        std::size_t q = 0;
        for (std::size_t kx = 0; kx < plan.kw; ++kx) {
          const isa::VecF wv = isa::splat(w_row[kx]);
          for (std::size_t r = 0; r < R; ++r) {
            acc[r] = acc[r] + isa::loadu(buf + (r * s + res) * len + q) * wv;
          }
          if (++res == s) {
            res = 0;
            ++q;
          }
        }
      }
    }
  }
  for (std::size_t r = 0; r < R; ++r) {
    isa::storeu(out + (o * plan.out_h + oy0 + r) * plan.out_w + ox0, acc[r]);
  }
}

/// R adjacent output rows end to end: scalar left border, vector blocks
/// across the interior, scalar right border. The interior tail that does
/// not fill a lane block is finished by one extra block anchored at
/// interior_x_end - lanes: its leading lanes recompute pixels the
/// previous block already produced, but recomputation is deterministic
/// and bit-identical, so the overwrite is invisible — and the whole
/// interior runs vectorized instead of dropping up to lanes-1 pixels per
/// row to the scalar loop. (Fast-path op counters are credited in closed
/// form from the plan's MAC count, so recomputed lanes do not skew
/// reports.)
template <bool kStride1, std::size_t R>
inline void conv_simd_row_group(const ConvPlan& plan, const float* input,
                                const float* weights, float b, std::size_t o,
                                std::size_t oy0, const TapRange ry,
                                float* out) noexcept {
  namespace isa = runtime::isa;
  for (std::size_t r = 0; r < R; ++r) {
    float* out_row = out + (o * plan.out_h + oy0 + r) * plan.out_w;
    for (std::size_t ox = 0; ox < plan.interior_x_begin; ++ox) {
      out_row[ox] = conv_raw_pixel(plan, input, weights, b, o, oy0 + r, ox,
                                   plan.row_taps[oy0 + r]);
    }
  }
  std::size_t ox0 = plan.interior_x_begin;
  for (; ox0 + isa::kFloatLanes <= plan.interior_x_end;
       ox0 += isa::kFloatLanes) {
    conv_simd_rows<kStride1, R>(plan, input, weights, b, o, oy0, ox0, ry,
                                out);
  }
  if (ox0 < plan.interior_x_end &&
      plan.interior_x_end - plan.interior_x_begin >= isa::kFloatLanes) {
    conv_simd_rows<kStride1, R>(plan, input, weights, b, o, oy0,
                                plan.interior_x_end - isa::kFloatLanes, ry,
                                out);
    ox0 = plan.interior_x_end;
  }
  for (std::size_t r = 0; r < R; ++r) {
    float* out_row = out + (o * plan.out_h + oy0 + r) * plan.out_w;
    for (std::size_t ox = ox0; ox < plan.out_w; ++ox) {
      out_row[ox] = conv_raw_pixel(plan, input, weights, b, o, oy0 + r, ox,
                                   plan.row_taps[oy0 + r]);
    }
  }
}

/// Vectorized fault-free convolution: interior pixels in lane-width
/// blocks (interleaved across row groups, overlap-finished at the row
/// tail), border pixels through the scalar pixel reduction.
/// Bit-identical to conv_raw_compute_scalar by construction.
inline void conv_raw_compute_simd(const ConvPlan& plan, const float* input,
                                  const float* weights, const float* bias,
                                  float* out) noexcept {
  const bool stride1 = plan.stride == 1;
  const TapRange full_ry{0, plan.kh};
  const auto row_is_full = [&](std::size_t oy) noexcept {
    const TapRange t = plan.row_taps[oy];
    return t.begin == 0 && t.end == plan.kh;
  };
  for (std::size_t o = 0; o < plan.out_c; ++o) {
    const float b = bias[o];
    std::size_t oy = 0;
    while (oy < plan.out_h) {
      // Group kSimdRowUnroll rows sharing the full vertical tap range;
      // border rows (and the group remainder) go one row at a time.
      std::size_t run = 0;
      if (row_is_full(oy)) {
        run = 1;
        while (run < kSimdRowUnroll && oy + run < plan.out_h &&
               row_is_full(oy + run)) {
          ++run;
        }
      }
      if (run == kSimdRowUnroll) {
        if (stride1) {
          conv_simd_row_group<true, kSimdRowUnroll>(plan, input, weights, b,
                                                    o, oy, full_ry, out);
        } else {
          conv_simd_row_group<false, kSimdRowUnroll>(plan, input, weights, b,
                                                     o, oy, full_ry, out);
        }
        oy += kSimdRowUnroll;
      } else {
        const TapRange ry = plan.row_taps[oy];
        if (stride1) {
          conv_simd_row_group<true, 1>(plan, input, weights, b, o, oy, ry,
                                       out);
        } else {
          conv_simd_row_group<false, 1>(plan, input, weights, b, o, oy, ry,
                                        out);
        }
        ++oy;
      }
    }
  }
}

#endif  // HYBRIDCNN_ISA_SIMD

/// Fault-free convolution fast path: dispatches to the vectorized kernel
/// when the target has vectors, the kill-switch is open and the interior
/// spans at least one full lane block; scalar otherwise.
inline void conv_raw_compute(const ConvPlan& plan, const float* input,
                             const float* weights, const float* bias,
                             float* out) noexcept {
#ifdef HYBRIDCNN_ISA_SIMD
  if (reliable_simd_enabled() &&
      plan.interior_x_end - plan.interior_x_begin >=
          runtime::isa::kFloatLanes &&
      (plan.stride == 1 ||
       (plan.stride <= kMaxSimdStride && plan.kw <= kMaxSimdKw))) {
    conv_raw_compute_simd(plan, input, weights, bias, out);
    return;
  }
#endif
  conv_raw_compute_scalar(plan, input, weights, bias, out);
}

/// Unqualified (raw-arithmetic) convolution pass through a concrete
/// executor — the execution style layer-granular redundancy wraps.
/// Writes into a caller-owned output buffer so retry attempts reuse
/// their two comparison buffers instead of reallocating.
template <typename Exec>
void conv_unqualified_inline(const ConvPlan& plan, const float* input,
                             const float* weights, const float* bias,
                             Exec& exec, ExecutionReport& report,
                             float* out) {
  for (std::size_t o = 0; o < plan.out_c; ++o) {
    const float b = bias[o];
    for (std::size_t oy = 0; oy < plan.out_h; ++oy) {
      const TapRange ry = plan.row_taps[oy];
      for (std::size_t ox = 0; ox < plan.out_w; ++ox) {
        const TapRange rx = plan.col_taps[ox];
        float acc = b;
        for (std::size_t c = 0; c < plan.in_c; ++c) {
          for (std::size_t ky = ry.begin; ky < ry.end; ++ky) {
            const std::size_t iy = oy * plan.stride + ky - plan.pad;
            const std::size_t in_base = (c * plan.in_h + iy) * plan.in_w;
            const float* w_row =
                weights + ((o * plan.in_c + c) * plan.kh + ky) * plan.kw;
            for (std::size_t kx = rx.begin; kx < rx.end; ++kx) {
              const std::size_t ix = ox * plan.stride + kx - plan.pad;
              const float p =
                  exec.mul_inline(input[in_base + ix], w_row[kx]).value;
              acc = exec.add_inline(acc, p).value;
              report.logical_ops += 2;
            }
          }
        }
        out[(o * plan.out_h + oy) * plan.out_w + ox] = acc;
      }
    }
  }
}

/// Qualified dense inner kernel over a concrete executor type; the linear
/// analogue of conv_forward_qualified.
template <bool WithReport = true, typename Exec>
void linear_forward_qualified(std::size_t out_n, std::size_t in_n,
                              const float* input, const float* weights,
                              const float* bias,
                              const ReliabilityPolicy& policy, Exec& exec,
                              ReliableResult& result) {
  ExecutionReport& report = result.report;
  LeakyBucket bucket(policy.bucket_factor, policy.bucket_ceiling);
  QualifiedOpRunner<Exec, WithReport> runner{exec, report, bucket,
                                             policy.max_retries_per_op};
  float* out = result.output.data().data();

  std::int64_t op_index = 0;
  const auto abort_with = [&](std::size_t o, std::int64_t failed_at,
                              float committed) {
    report.ok = false;
    if constexpr (WithReport) {
      report.failed_op_index = failed_at;
      report.bucket_peak = bucket.peak();
      report.bucket_exhausted = bucket.exhausted();
    } else {
      (void)failed_at;
    }
    out[o] = committed;
  };

  for (std::size_t o = 0; o < out_n; ++o) {
    ScalarCheckpoint acc(bias[o]);
    const float* w_row = weights + o * in_n;
    for (std::size_t i = 0; i < in_n; ++i) {
      const float x = input[i];
      const float w = w_row[i];

      ScalarCheckpoint prod(0.0f);
      const auto p =
          runner.run([x, w](Exec& e) { return e.mul_inline(x, w); }, prod);
      ++op_index;
      if (!p) {
        abort_with(o, op_index - 1, acc.value());
        return;
      }

      const float before = acc.value();
      const float pv = *p;
      const auto s = runner.run(
          [before, pv](Exec& e) { return e.add_inline(before, pv); }, acc);
      ++op_index;
      if (!s) {
        abort_with(o, op_index - 1, acc.value());
        return;
      }
    }
    out[o] = acc.value();
  }

  if constexpr (WithReport) {
    report.bucket_peak = bucket.peak();
    report.bucket_exhausted = bucket.exhausted();
  }
}

/// Fault-free dense fast path, scalar form: same operation order as the
/// qualified kernel. Kept callable directly for A/B tests and benches.
inline void linear_raw_compute_scalar(std::size_t out_n, std::size_t in_n,
                                      const float* input,
                                      const float* weights, const float* bias,
                                      float* out) noexcept {
  for (std::size_t o = 0; o < out_n; ++o) {
    float acc = bias[o];
    const float* w_row = weights + o * in_n;
    for (std::size_t i = 0; i < in_n; ++i) {
      acc = acc + input[i] * w_row[i];
    }
    out[o] = acc;
  }
}

#ifdef HYBRIDCNN_ISA_SIMD

/// Vectorized fault-free dense fast path: lanes are independent output
/// neurons (lane l accumulates neuron o0+l over the full input in index
/// order — the dense analogue of the conv pixel lanes), with one input
/// broadcast and a per-lane weight gather (weights are [out, in], so one
/// input column is strided by in_n). The neuron remainder runs scalar.
inline void linear_raw_compute_simd(std::size_t out_n, std::size_t in_n,
                                    const float* input, const float* weights,
                                    const float* bias, float* out) noexcept {
  namespace isa = runtime::isa;
  std::size_t o = 0;
  for (; o + isa::kFloatLanes <= out_n; o += isa::kFloatLanes) {
    isa::VecF acc = isa::loadu(bias + o);
    const float* w0 = weights + o * in_n;
    for (std::size_t i = 0; i < in_n; ++i) {
      const isa::VecF xv = isa::splat(input[i]);
      isa::VecF wv;
      for (std::size_t l = 0; l < isa::kFloatLanes; ++l) {
        wv[l] = w0[l * in_n + i];
      }
      acc = acc + xv * wv;
    }
    isa::storeu(out + o, acc);
  }
  linear_raw_compute_scalar(out_n - o, in_n, input, weights + o * in_n,
                            bias + o, out + o);
}

#endif  // HYBRIDCNN_ISA_SIMD

/// Fault-free dense fast path: vector kernel when available, enabled and
/// at least one full lane block of output neurons exists; scalar
/// otherwise.
inline void linear_raw_compute(std::size_t out_n, std::size_t in_n,
                               const float* input, const float* weights,
                               const float* bias, float* out) noexcept {
#ifdef HYBRIDCNN_ISA_SIMD
  if (reliable_simd_enabled() && out_n >= runtime::isa::kFloatLanes) {
    linear_raw_compute_simd(out_n, in_n, input, weights, bias, out);
    return;
  }
#endif
  linear_raw_compute_scalar(out_n, in_n, input, weights, bias, out);
}

}  // namespace hybridcnn::reliable::detail
