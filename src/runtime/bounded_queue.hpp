// BoundedQueue<T>: the condition-variable submit hook the serving
// front-end builds its request admission on.
//
// A mutex/cv-guarded MPSC/MPMC FIFO with a hard capacity. Producers on
// any OS thread either block until space frees (admission under
// backpressure) or bail out immediately (reject policy); a consumer
// drains items in arrival order, up to a batch limit per wake-up —
// exactly the coalescing shape a micro-batching dispatcher wants.
//
// The push_with/try_push_with forms take a factory that runs *under the
// queue lock, only once capacity is reserved*. That makes "admit the
// request AND draw the next seed from its session stream" a single
// atomic step: a request is accepted if and only if it consumed a seed,
// and seeds are consumed in admission order — the property the
// per-session determinism contract of serve::InferenceService rests on.
//
// close() wakes everyone: producers fail fast, the consumer drains what
// was already admitted and then sees 0 — the graceful-shutdown path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace hybridcnn::runtime {

template <typename T>
class BoundedQueue {
 public:
  /// Queue admitting at most `capacity` items at a time (min 1).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available (or the queue is closed), then
  /// admits `make()`. The factory runs under the queue lock with
  /// capacity reserved. Returns false — without invoking the factory —
  /// if the queue was closed.
  template <typename Make>
  bool push_with(Make&& make) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::forward<Make>(make)());
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking form: admits `make()` only if space is available right
  /// now and the queue is open; otherwise returns false without invoking
  /// the factory.
  template <typename Make>
  bool try_push_with(Make&& make) {
    std::unique_lock<std::mutex> lk(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::forward<Make>(make)());
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Value convenience over push_with.
  bool push(T value) {
    return push_with([&]() -> T&& { return std::move(value); });
  }

  /// Blocks until at least one item is queued (or the queue is closed
  /// and drained), then moves up to `max` items into `out` in FIFO
  /// order. Returns the number popped; 0 means closed-and-drained.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !items_.empty(); });
    std::size_t popped = 0;
    while (popped < max && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++popped;
    }
    lk.unlock();
    if (popped != 0) not_full_.notify_all();
    return popped;
  }

  /// Stops admissions and wakes every waiter. Items already admitted
  /// stay poppable; pop_batch returns them until the queue is empty.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hybridcnn::runtime
