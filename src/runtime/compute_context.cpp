#include "runtime/compute_context.hpp"

#include <cstdlib>
#include <string>

namespace hybridcnn::runtime {

namespace {

/// Thread count for the global context: HYBRIDCNN_THREADS if set and
/// parseable, else 0 (hardware concurrency).
std::size_t env_thread_count() {
  const char* v = std::getenv("HYBRIDCNN_THREADS");
  if (v == nullptr || v[0] == '\0') return 0;
  char* end = nullptr;
  const unsigned long n = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0') return 0;
  return static_cast<std::size_t>(n);
}

}  // namespace

ComputeContext::ComputeContext(std::size_t threads) { resize(threads); }

void ComputeContext::resize(std::size_t threads) {
  pool_ = std::make_unique<ThreadPool>(threads);
  const std::size_t slots = pool_->slot_count();
  workspaces_.clear();
  workspaces_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    workspaces_.push_back(std::make_unique<Workspace>());
  }
}

Workspace& ComputeContext::overflow_workspace() noexcept {
  thread_local Workspace ws;
  return ws;
}

ComputeContext& ComputeContext::global() {
  static ComputeContext ctx(env_thread_count());
  return ctx;
}

void ComputeContext::set_global_threads(std::size_t threads) {
  global().resize(threads);
}

}  // namespace hybridcnn::runtime
