// ComputeContext: the handle the compute layers run on.
//
// Bundles a ThreadPool with one Workspace per execution slot. Kernels
// take (or default to) the process-global context, split work with
// ctx.pool().parallel_for*, and draw scratch from ctx.workspace() — which
// resolves to the calling slot's private arena, so parallel workers never
// contend or share buffers.
//
// The global context sizes its pool from the HYBRIDCNN_THREADS
// environment variable (falling back to hardware concurrency);
// set_global_threads() rebuilds it, which tests use to prove outputs are
// bit-identical at 1, 2 and 8 threads. Rebuilding while kernels are in
// flight on another thread is undefined — it is a setup-time knob.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "runtime/workspace.hpp"

namespace hybridcnn::runtime {

class ComputeContext {
 public:
  /// Context over `threads` total threads (0 = hardware concurrency).
  explicit ComputeContext(std::size_t threads = 0);

  ComputeContext(const ComputeContext&) = delete;
  ComputeContext& operator=(const ComputeContext&) = delete;

  [[nodiscard]] ThreadPool& pool() noexcept { return *pool_; }

  /// Scratch arena of the calling thread. Inside a parallel region of
  /// *this context's own pool* the executing slot's arena is returned —
  /// exclusive to one thread for the duration of the job. Everywhere
  /// else (top-level callers, or chunks of some other pool whose slot
  /// numbering this context knows nothing about) every thread gets its
  /// own thread-local arena: two threads must never share a bump
  /// allocator.
  [[nodiscard]] Workspace& workspace() noexcept {
    if (ThreadPool::current_pool() == pool_.get()) {
      const std::size_t slot = ThreadPool::current_slot();
      if (slot < workspaces_.size()) return *workspaces_[slot];
    }
    return overflow_workspace();
  }

  /// Workspace of an explicit slot; requires slot < slot_count().
  [[nodiscard]] Workspace& workspace(std::size_t slot) noexcept {
    return *workspaces_[slot];
  }

  [[nodiscard]] std::size_t slot_count() const noexcept {
    return workspaces_.size();
  }

  /// Rebuilds this context's pool and per-slot workspaces for `threads`
  /// total threads (0 = hardware concurrency). Outstanding workspace
  /// pointers are invalidated. Setup-time only; see file comment.
  void resize(std::size_t threads);

  /// Process-global context. First use reads HYBRIDCNN_THREADS. The
  /// returned reference is stable for the process lifetime (resize swaps
  /// its internals, not the object).
  static ComputeContext& global();

  /// global().resize(threads) — convenience for tests and benches.
  static void set_global_threads(std::size_t threads);

 private:
  static Workspace& overflow_workspace() noexcept;

  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Workspace>> workspaces_;
};

}  // namespace hybridcnn::runtime
