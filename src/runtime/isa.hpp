// Shared ISA selection for hand-vectorized kernels.
//
// One compile-time ladder picks the widest float vector the target
// supports — AVX-512 (16 lanes), AVX (8), any other GCC/clang target
// (4, via 128-bit vectors: SSE/NEON), or no vectors at all — using
// GCC/clang vector extensions, which compile to plain SIMD without
// intrinsics. Both explicit-SIMD consumers sit on this header:
//
//   * nn/gemm.cpp — the blocked GEMM micro-kernel sizes its register
//     tile from kFloatLanes (the accumulator block must fill but not
//     spill the vector register file);
//   * reliable/static_dispatch.hpp — the fault-free qualified kernels
//     vectorize across independent output pixels in kFloatLanes-wide
//     blocks (pixel-axis lanes, never the reduction axis, so every
//     lane reproduces the scalar operation order bit for bit).
//
// When HYBRIDCNN_ISA_SIMD is not defined (non-GNU compilers), VecF and
// the load/store helpers do not exist; consumers must provide a scalar
// fallback path behind the same macro.
#pragma once

#include <cstddef>

#include "util/contracts.hpp"

namespace hybridcnn::runtime::isa {

#if defined(__GNUC__) && defined(__AVX512F__)
#define HYBRIDCNN_ISA_SIMD 1
inline constexpr std::size_t kFloatLanes = 16;  // one zmm
typedef float VecF __attribute__((vector_size(64)));
inline constexpr const char* kIsaName = "avx512";
#elif defined(__GNUC__) && defined(__AVX__)
#define HYBRIDCNN_ISA_SIMD 1
inline constexpr std::size_t kFloatLanes = 8;  // one ymm
typedef float VecF __attribute__((vector_size(32)));
inline constexpr const char* kIsaName = "avx";
#elif defined(__GNUC__)
#define HYBRIDCNN_ISA_SIMD 1
inline constexpr std::size_t kFloatLanes = 4;  // one xmm / NEON quad
typedef float VecF __attribute__((vector_size(16)));
inline constexpr const char* kIsaName = "vec128";
#else
inline constexpr std::size_t kFloatLanes = 1;
inline constexpr const char* kIsaName = "scalar";
#endif

// Lane-width contracts every SIMD consumer leans on: the overlapping
// remainder blocks in the reliable kernels and the GEMM register tiles
// assume the vector is exactly kFloatLanes floats and that lane counts
// are powers of two (mask and padding arithmetic uses & / % freely).
HYBRIDCNN_CONTRACT(util::contracts::is_pow2(kFloatLanes),
                   "kFloatLanes must be a power of two: pack paddings and "
                   "tail masks round with power-of-two arithmetic");
#ifdef HYBRIDCNN_ISA_SIMD
HYBRIDCNN_CONTRACT(sizeof(VecF) == kFloatLanes * sizeof(float),
                   "VecF must hold exactly kFloatLanes floats: loadu/storeu "
                   "move sizeof(VecF) bytes and kernels step kFloatLanes");
#endif

#ifdef HYBRIDCNN_ISA_SIMD

/// All lanes set to `x`. The scalar-vector binop broadcasts in one
/// instruction; subtracting the zero vector is an exact IEEE identity
/// for every bit pattern (including -0.0, infinities and NaN payloads),
/// so the compiler folds it away — unlike a per-lane insert loop, which
/// GCC can lower to a chain of masked broadcasts.
inline VecF splat(float x) noexcept { return x - VecF{}; }

/// Unaligned vector load.
inline VecF loadu(const float* p) noexcept {
  VecF v;
  __builtin_memcpy(&v, p, sizeof(VecF));
  return v;
}

/// Unaligned vector store.
inline void storeu(float* p, const VecF& v) noexcept {
  __builtin_memcpy(p, &v, sizeof(VecF));
}

#endif  // HYBRIDCNN_ISA_SIMD

}  // namespace hybridcnn::runtime::isa
