#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace hybridcnn::runtime {

namespace {

thread_local std::size_t tls_slot = 0;
thread_local bool tls_in_region = false;
thread_local const void* tls_pool = nullptr;

/// Scoped slot/region/pool marker for the duration of chunk execution.
struct RegionGuard {
  std::size_t saved_slot;
  bool saved_in_region;
  const void* saved_pool;
  RegionGuard(std::size_t slot, const void* pool) noexcept
      : saved_slot(tls_slot),
        saved_in_region(tls_in_region),
        saved_pool(tls_pool) {
    tls_slot = slot;
    tls_in_region = true;
    tls_pool = pool;
  }
  ~RegionGuard() noexcept {
    tls_slot = saved_slot;
    tls_in_region = saved_in_region;
    tls_pool = saved_pool;
  }
};

}  // namespace

/// One parallel_for invocation: an index range pre-split into chunks that
/// workers claim through an atomic cursor.
struct ThreadPool::Job {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn =
      nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk_size = 1;
  std::size_t nchunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex error_mu;
  std::exception_ptr error;
  // Chunk index the captured exception came from. Keeping the error of
  // the LOWEST chunk (and, within a chunk, the first throwing index —
  // chunks run their indices in order and abort at the throw) makes the
  // rethrown exception exactly the one a serial loop would hit first,
  // independent of how chunks were scheduled across threads.
  std::size_t error_chunk = SIZE_MAX;
};

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::shared_ptr<Job> job;
  bool stop = false;
  std::mutex submit_mu;  // serialises top-level parallel_for calls
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (std::size_t slot = 1; slot < threads; ++slot) {
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::current_slot() noexcept { return tls_slot; }

bool ThreadPool::in_parallel_region() noexcept { return tls_in_region; }

const ThreadPool* ThreadPool::current_pool() noexcept {
  return static_cast<const ThreadPool*>(tls_pool);
}

void ThreadPool::run_chunks(Job& job, std::size_t slot) {
  RegionGuard guard(slot, this);
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.nchunks) break;
    const std::size_t b = job.begin + c * job.chunk_size;
    const std::size_t e = std::min(b + job.chunk_size, job.end);
    try {
      (*job.fn)(b, e, slot);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job.error_mu);
      if (c < job.error_chunk) {
        job.error_chunk = c;
        job.error = std::current_exception();
      }
    }
    job.completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop(std::size_t slot) {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(impl_->mu);
      impl_->work_cv.wait(lk, [&] {
        return impl_->stop ||
               (impl_->job != nullptr &&
                impl_->job->next.load(std::memory_order_relaxed) <
                    impl_->job->nchunks);
      });
      if (impl_->stop) return;
      job = impl_->job;
    }
    run_chunks(*job, slot);
    {
      // Publish completion under the lock so the submitting thread's
      // predicate re-check cannot miss the final increment.
      std::lock_guard<std::mutex> lk(impl_->mu);
    }
    impl_->done_cv.notify_all();
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (grain == 0) grain = 1;

  // Serial paths: no workers, a nested region, or a range too small to
  // split. Runs inline under the caller's current slot and — when at top
  // level — without marking a region, so a nested parallel_for (e.g. GEMM
  // tiles under a batch-of-one layer loop) can still use the pool.
  if (workers_.empty() || tls_in_region || count <= grain) {
    fn(begin, end, tls_slot);
    return;
  }

  // ~4 chunks per slot balances load without shrinking chunks below the
  // caller's grain. Boundaries are a pure function of the range split.
  const std::size_t target = slot_count() * 4;
  const std::size_t chunk_size =
      std::max(grain, (count + target - 1) / target);

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->begin = begin;
  job->end = end;
  job->chunk_size = chunk_size;
  job->nchunks = (count + chunk_size - 1) / chunk_size;

  std::lock_guard<std::mutex> submit(impl_->submit_mu);
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->job = job;
  }
  impl_->work_cv.notify_all();

  run_chunks(*job, /*slot=*/0);

  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->done_cv.wait(lk, [&] {
      return job->completed.load(std::memory_order_acquire) == job->nchunks;
    });
    impl_->job.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace hybridcnn::runtime
