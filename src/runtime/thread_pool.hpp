// Persistent worker pool with a deterministic blocked parallel_for.
//
// The pool is the compute substrate for the hot paths (blocked GEMM,
// batched layer forward/backward, fault-injection campaigns). Work is
// split into contiguous index chunks whose boundaries are a pure function
// of the range and grain — never of scheduling — and every chunk writes
// only its own output slots, so results are bit-identical regardless of
// how many threads execute them. The calling thread participates as slot
// 0; workers occupy slots 1..worker_count(), which per-slot scratch
// arenas (runtime::Workspace) key on.
//
// Nested parallel regions are serialised: a parallel_for issued from
// inside a chunk runs inline on the current thread. This keeps the
// batch-level parallelism of the layers composable with the tile-level
// parallelism inside GEMM without oversubscription or deadlock.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace hybridcnn::runtime {

class ThreadPool {
 public:
  /// A pool executing with `threads` total threads (including the
  /// caller). 0 picks std::thread::hardware_concurrency(). `threads == 1`
  /// spawns no workers and runs every parallel_for inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Background workers owned by the pool (excludes the caller).
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Execution slots: workers plus the calling thread.
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs `fn(chunk_begin, chunk_end, slot)` over [begin, end) split into
  /// contiguous chunks of at least `grain` indices. Blocks until every
  /// chunk finished; if chunks threw, the exception rethrown here is
  /// deterministically the one from the lowest-index chunk (within a
  /// chunk, the first throwing index) — the same exception a serial loop
  /// over the range would surface, regardless of thread count or
  /// scheduling. Chunk boundaries depend only on (begin, end, grain, slot
  /// count), and chunks may run on any slot — callers must write only to
  /// per-index (or per-chunk) disjoint outputs.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Element-wise convenience: `fn(i)` for every i in [begin, end).
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
    parallel_for_chunks(begin, end, 1,
                        [&fn](std::size_t b, std::size_t e, std::size_t) {
                          for (std::size_t i = b; i < e; ++i) fn(i);
                        });
  }

  /// Slot of the calling thread: 0 outside any parallel region (and for
  /// the caller inside one), the worker's slot inside a chunk.
  [[nodiscard]] static std::size_t current_slot() noexcept;

  /// True while the calling thread executes inside a parallel_for chunk.
  [[nodiscard]] static bool in_parallel_region() noexcept;

  /// The pool whose parallel region the calling thread currently executes
  /// in, or nullptr outside any region. Slot numbers are only meaningful
  /// relative to this pool — ComputeContext uses it to keep per-slot
  /// arenas from aliasing across distinct pools.
  [[nodiscard]] static const ThreadPool* current_pool() noexcept;

 private:
  struct Job;

  void worker_loop(std::size_t slot);
  void run_chunks(Job& job, std::size_t slot);

  std::vector<std::thread> workers_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hybridcnn::runtime
