#include "runtime/workspace.hpp"

#include <algorithm>

namespace hybridcnn::runtime {

namespace {
// First block size; later blocks double (or fit the request, whichever is
// larger) so a workspace converges to O(1) blocks for any workload.
constexpr std::size_t kMinBlockFloats = 1u << 14;  // 64 KiB
}  // namespace

float* Workspace::alloc(std::size_t count) {
  if (count == 0) count = 1;  // keep returned pointers distinct/valid
  // Advance through existing blocks looking for room.
  while (active_ < blocks_.size()) {
    Block& b = blocks_[active_];
    if (b.data.size() - b.used >= count) {
      float* p = b.data.data() + b.used;
      b.used += count;
      return p;
    }
    if (b.used == 0 && active_ + 1 == blocks_.size()) break;  // grow instead
    ++active_;
  }
  // Need a fresh block. Never reallocate an existing block: handed-out
  // pointers must survive later allocs.
  const std::size_t prev =
      blocks_.empty() ? 0 : blocks_.back().data.size();
  const std::size_t size = std::max({count, 2 * prev, kMinBlockFloats});
  // Drop a trailing never-used block that was too small for this request.
  if (!blocks_.empty() && blocks_.back().used == 0 &&
      active_ + 1 == blocks_.size()) {
    blocks_.pop_back();
  }
  blocks_.emplace_back(std::vector<float>(size), count);
  active_ = blocks_.size() - 1;
  return blocks_.back().data.data();
}

void Workspace::reset() noexcept {
  assert(open_scopes_ == 0 &&
         "Workspace::reset with live Scopes: their scratch would dangle");
  for (Block& b : blocks_) b.used = 0;
  active_ = 0;
  ++generation_;
}

void Workspace::release_memory() noexcept {
  assert(open_scopes_ == 0 &&
         "Workspace::release_memory with live Scopes: their scratch "
         "would dangle");
  blocks_.clear();
  active_ = 0;
  ++generation_;
}

std::size_t Workspace::capacity() const noexcept {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.data.size();
  return total;
}

std::size_t Workspace::in_use() const noexcept {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.used;
  return total;
}

Workspace& thread_scratch() {
  thread_local Workspace ws;
  return ws;
}

void Workspace::rewind(std::size_t block, std::size_t used) noexcept {
  if (blocks_.empty()) return;
  // Stack discipline: an outer scope must never find the watermark below
  // its own mark (inner scopes release first).
  assert(block <= active_ && "Workspace Scope released out of stack order");
  assert((block < active_ || blocks_[block].used >= used) &&
         "Workspace Scope released out of stack order");
  for (std::size_t i = block + 1; i < blocks_.size(); ++i) {
    blocks_[i].used = 0;
  }
  blocks_[block].used = used;
  active_ = block;
}

}  // namespace hybridcnn::runtime
