// Grow-only scratch arena for kernel workspace (im2col/col2im panels,
// GEMM packing buffers).
//
// The hot paths used to heap-allocate their scratch on every call; a
// Workspace instead bump-allocates out of blocks that persist across
// calls, so steady-state forward/backward does no allocation at all.
// Blocks are never reallocated once handed out, so pointers from alloc()
// stay valid until the enclosing Scope is released (or reset() is
// called). Each execution slot of the ThreadPool owns its own Workspace
// (see ComputeContext), so no locking is needed.
//
// Usage:
//   Workspace::Scope scope(ws);          // marks the current watermark
//   float* col = ws.alloc(n);            // uninitialised scratch
//   ...                                  // scope exit frees back to mark
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hybridcnn::runtime {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Bump-allocates `count` floats of *uninitialised* scratch. The
  /// pointer stays valid until the enclosing Scope releases it.
  float* alloc(std::size_t count);

  /// Span-returning convenience over alloc().
  std::span<float> alloc_span(std::size_t count) {
    return {alloc(count), count};
  }

  /// Releases every allocation (keeps block capacity for reuse).
  void reset() noexcept;

  /// Frees the backing blocks themselves.
  void release_memory() noexcept;

  /// Total floats of backing capacity currently held.
  [[nodiscard]] std::size_t capacity() const noexcept;

  /// Floats currently allocated (watermark across blocks).
  [[nodiscard]] std::size_t in_use() const noexcept;

  /// RAII watermark: allocations made after construction are released on
  /// destruction. Scopes nest (stack discipline).
  class Scope {
   public:
    explicit Scope(Workspace& ws) noexcept
        : ws_(ws), block_(ws.active_), used_(ws.used_in_active()) {}
    ~Scope() noexcept { ws_.rewind(block_, used_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    std::size_t block_;
    std::size_t used_;
  };

 private:
  friend class Scope;

  struct Block {
    std::vector<float> data;
    std::size_t used = 0;
  };

  [[nodiscard]] std::size_t used_in_active() const noexcept {
    return blocks_.empty() ? 0 : blocks_[active_].used;
  }
  void rewind(std::size_t block, std::size_t used) noexcept;

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // index of the block new allocations bump into
};

}  // namespace hybridcnn::runtime
