// Grow-only scratch arena for kernel workspace (im2col/col2im panels,
// GEMM packing buffers).
//
// The hot paths used to heap-allocate their scratch on every call; a
// Workspace instead bump-allocates out of blocks that persist across
// calls, so steady-state forward/backward does no allocation at all.
// Blocks are never reallocated once handed out, so pointers from alloc()
// stay valid until the enclosing Scope is released (or reset() is
// called). Each execution slot of the ThreadPool owns its own Workspace
// (see ComputeContext), so no locking is needed.
//
// Usage:
//   Workspace::Scope scope(ws);          // marks the current watermark
//   float* col = ws.alloc(n);            // uninitialised scratch
//   ...                                  // scope exit frees back to mark
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace hybridcnn::runtime {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Bump-allocates `count` floats of *uninitialised* scratch. The
  /// pointer stays valid until the enclosing Scope releases it.
  float* alloc(std::size_t count);

  /// Span-returning convenience over alloc().
  std::span<float> alloc_span(std::size_t count) {
    return {alloc(count), count};
  }

  /// Typed bump allocation: `count` uninitialised objects of a trivial
  /// type T (double series, mask bytes, BFS queues), aligned for T and
  /// carved out of the same float blocks. Same lifetime rules as alloc().
  template <typename T>
  T* alloc_as(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Workspace scratch must be trivial");
    const std::size_t bytes = count * sizeof(T) + alignof(T);
    const std::size_t floats = (bytes + sizeof(float) - 1) / sizeof(float);
    void* p = alloc(floats);
    std::size_t space = floats * sizeof(float);
    void* aligned = std::align(alignof(T), count * sizeof(T), p, space);
    assert(aligned != nullptr);
    return static_cast<T*>(aligned);
  }

  /// Span-returning convenience over alloc_as().
  template <typename T>
  std::span<T> alloc_span_as(std::size_t count) {
    return {alloc_as<T>(count), count};
  }

  /// Releases every allocation (keeps block capacity for reuse).
  void reset() noexcept;

  /// Frees the backing blocks themselves.
  void release_memory() noexcept;

  /// Total floats of backing capacity currently held.
  [[nodiscard]] std::size_t capacity() const noexcept;

  /// Floats currently allocated (watermark across blocks).
  [[nodiscard]] std::size_t in_use() const noexcept;

  /// RAII watermark: allocations made after construction are released on
  /// destruction. Scopes nest (stack discipline).
  ///
  /// Debug builds audit the discipline: destroying a Scope after the
  /// arena was reset() (or its blocks released) asserts, because every
  /// scratch pointer the scope guarded has been invalidated — the
  /// "scratch must not outlive its arena reset" contract the sax/vision
  /// pipeline overloads rely on.
  class Scope {
   public:
    explicit Scope(Workspace& ws) noexcept
        : ws_(ws),
          block_(ws.active_),
          used_(ws.used_in_active()),
          generation_(ws.generation_) {
      ++ws_.open_scopes_;
    }
    ~Scope() noexcept {
      assert(ws_.generation_ == generation_ &&
             "Workspace reset/released under a live Scope: scratch "
             "buffers outlived their arena");
      --ws_.open_scopes_;
      ws_.rewind(block_, used_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    std::size_t block_;
    std::size_t used_;
    std::uint64_t generation_;
  };

  /// Number of Scopes currently open on this arena (debug audit hook).
  [[nodiscard]] std::size_t open_scopes() const noexcept {
    return open_scopes_;
  }

 private:
  friend class Scope;

  struct Block {
    std::vector<float> data;
    std::size_t used = 0;
  };

  [[nodiscard]] std::size_t used_in_active() const noexcept {
    return blocks_.empty() ? 0 : blocks_[active_].used;
  }
  void rewind(std::size_t block, std::size_t used) noexcept;

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // index of the block new allocations bump into
  std::size_t open_scopes_ = 0;    // live Scope count (audit)
  std::uint64_t generation_ = 0;   // bumped by reset()/release_memory()
};

/// Per-thread grow-only arena for the allocating *wrapper* overloads of
/// pipeline functions (sax/vision): one arena per thread, shared by every
/// wrapper, so cold-path convenience signatures stay allocation-free in
/// steady state without dragging the pool context into leaf libraries.
/// Hot paths should pass an explicit slot arena instead
/// (ComputeContext::workspace()).
Workspace& thread_scratch();

}  // namespace hybridcnn::runtime
