// SAX discretisation breakpoints: the alphabet-size-1 quantiles of the
// standard normal distribution (Lin, Keogh, Lonardi, Chiu 2003). Computed
// from the inverse normal CDF so any alphabet size in [2, 26] works.
#pragma once

#include <cstddef>
#include <vector>

namespace hybridcnn::sax {

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.15e-9). Requires p in (0, 1).
double inverse_normal_cdf(double p);

/// The alphabet-size-1 breakpoints dividing N(0,1) into equiprobable
/// regions, ascending. alphabet must be in [2, 26] (letters 'a'..'z');
/// throws std::invalid_argument otherwise.
std::vector<double> gaussian_breakpoints(std::size_t alphabet);

}  // namespace hybridcnn::sax
