#include "sax/mindist.hpp"

#include <cmath>
#include <stdexcept>

#include "sax/breakpoints.hpp"

namespace hybridcnn::sax {

SymbolDistanceTable::SymbolDistanceTable(std::size_t alphabet)
    : alphabet_(alphabet), table_(alphabet * alphabet, 0.0) {
  const std::vector<double> bp = gaussian_breakpoints(alphabet);
  for (std::size_t r = 0; r < alphabet; ++r) {
    for (std::size_t c = 0; c < alphabet; ++c) {
      if (r + 1 >= c + 0 && c + 1 >= r) continue;  // |r - c| <= 1
      const std::size_t hi = std::max(r, c);
      const std::size_t lo = std::min(r, c);
      table_[r * alphabet + c] = bp[hi - 1] - bp[lo];
    }
  }
}

double SymbolDistanceTable::dist(char a, char b) const {
  const auto ia = static_cast<std::size_t>(a - 'a');
  const auto ib = static_cast<std::size_t>(b - 'a');
  if (ia >= alphabet_ || ib >= alphabet_) {
    throw std::invalid_argument("SymbolDistanceTable: symbol out of range");
  }
  return table_[ia * alphabet_ + ib];
}

double mindist(const std::string& a, const std::string& b,
               std::size_t original_length,
               const SymbolDistanceTable& table) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("mindist: words must be equal non-zero length");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = table.dist(a[i], b[i]);
    sum += d * d;
  }
  const double scale = std::sqrt(static_cast<double>(original_length) /
                                 static_cast<double>(a.size()));
  return scale * std::sqrt(sum);
}

double mindist_rotation_invariant(const std::string& a, const std::string& b,
                                  std::size_t original_length,
                                  const SymbolDistanceTable& table,
                                  std::size_t* best_rotation) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument(
        "mindist_rotation_invariant: words must be equal non-zero length");
  }
  double best = -1.0;
  std::size_t best_rot = 0;
  std::string rotated = b;
  for (std::size_t rot = 0; rot < b.size(); ++rot) {
    const double d = mindist(a, rotated, original_length, table);
    if (best < 0.0 || d < best) {
      best = d;
      best_rot = rot;
    }
    // rotate left by one
    rotated.push_back(rotated.front());
    rotated.erase(rotated.begin());
  }
  if (best_rotation != nullptr) *best_rotation = best_rot;
  return best;
}

}  // namespace hybridcnn::sax
