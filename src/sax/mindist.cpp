#include "sax/mindist.hpp"

#include <cmath>
#include <stdexcept>

#include "sax/breakpoints.hpp"

namespace hybridcnn::sax {

SymbolDistanceTable::SymbolDistanceTable(std::size_t alphabet)
    : alphabet_(alphabet), table_(alphabet * alphabet, 0.0) {
  const std::vector<double> bp = gaussian_breakpoints(alphabet);
  for (std::size_t r = 0; r < alphabet; ++r) {
    for (std::size_t c = 0; c < alphabet; ++c) {
      if (r + 1 >= c + 0 && c + 1 >= r) continue;  // |r - c| <= 1
      const std::size_t hi = std::max(r, c);
      const std::size_t lo = std::min(r, c);
      table_[r * alphabet + c] = bp[hi - 1] - bp[lo];
    }
  }
}

double SymbolDistanceTable::dist(char a, char b) const {
  const auto ia = static_cast<std::size_t>(a - 'a');
  const auto ib = static_cast<std::size_t>(b - 'a');
  if (ia >= alphabet_ || ib >= alphabet_) {
    throw std::invalid_argument("SymbolDistanceTable: symbol out of range");
  }
  return table_[ia * alphabet_ + ib];
}

namespace {

/// MINDIST of `a` against `b` rotated left by `rot` letters, evaluated by
/// modular indexing. Summation order (ascending i) matches the
/// straight-line mindist exactly, so results are bit-identical to
/// materialising the rotated word.
double mindist_rotated(std::string_view a, std::string_view b,
                       std::size_t rot, std::size_t original_length,
                       const SymbolDistanceTable& table) {
  const std::size_t n = a.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = table.dist(a[i], b[(i + rot) % n]);
    sum += d * d;
  }
  const double scale = std::sqrt(static_cast<double>(original_length) /
                                 static_cast<double>(n));
  return scale * std::sqrt(sum);
}

}  // namespace

double mindist(std::string_view a, std::string_view b,
               std::size_t original_length,
               const SymbolDistanceTable& table) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("mindist: words must be equal non-zero length");
  }
  return mindist_rotated(a, b, 0, original_length, table);
}

double mindist_rotation_invariant(std::string_view a, std::string_view b,
                                  std::size_t original_length,
                                  const SymbolDistanceTable& table,
                                  std::size_t* best_rotation) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument(
        "mindist_rotation_invariant: words must be equal non-zero length");
  }
  double best = -1.0;
  std::size_t best_rot = 0;
  for (std::size_t rot = 0; rot < b.size(); ++rot) {
    const double d = mindist_rotated(a, b, rot, original_length, table);
    if (best < 0.0 || d < best) {
      best = d;
      best_rot = rot;
    }
  }
  if (best_rotation != nullptr) *best_rotation = best_rot;
  return best;
}

}  // namespace hybridcnn::sax
