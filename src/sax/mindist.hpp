// MINDIST: the SAX lower-bounding distance between two words.
//
// MINDIST(Q^, C^) = sqrt(n / w) * sqrt(sum_i dist(q_i, c_i)^2), where
// dist(a, b) is the breakpoint gap between non-adjacent symbols and 0 for
// adjacent or equal symbols. Lin et al. prove MINDIST lower-bounds the
// Euclidean distance of the original z-normalised series — the property
// that makes SAX thresholds sound, which the qualifier relies on and the
// test suite verifies.
#pragma once

#include <string_view>
#include <vector>

namespace hybridcnn::sax {

/// Pairwise symbol distance lookup table for an alphabet size.
class SymbolDistanceTable {
 public:
  /// Builds the table from the Gaussian breakpoints of `alphabet`.
  explicit SymbolDistanceTable(std::size_t alphabet);

  /// dist(a, b): 0 if |a-b| <= 1, else breakpoint gap.
  [[nodiscard]] double dist(char a, char b) const;

  [[nodiscard]] std::size_t alphabet() const noexcept { return alphabet_; }

 private:
  std::size_t alphabet_;
  std::vector<double> table_;  // alphabet x alphabet
};

/// MINDIST between two equal-length SAX words of `original_length`-point
/// series. Throws std::invalid_argument on length mismatch or symbols
/// outside the table's alphabet. Allocation-free; string_view accepts
/// std::string, literals, and workspace-backed character scratch alike.
double mindist(std::string_view a, std::string_view b,
               std::size_t original_length, const SymbolDistanceTable& table);

/// Minimum MINDIST over all circular rotations of `b` — the
/// rotation-invariant comparison used for shape words, since a rotated
/// sign yields a circularly shifted radial signature. Returns the best
/// distance and writes the best rotation to `*best_rotation` if non-null.
/// Rotations are evaluated by modular indexing — no copies, no
/// allocation.
double mindist_rotation_invariant(std::string_view a, std::string_view b,
                                  std::size_t original_length,
                                  const SymbolDistanceTable& table,
                                  std::size_t* best_rotation = nullptr);

}  // namespace hybridcnn::sax
