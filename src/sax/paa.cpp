#include "sax/paa.hpp"

#include <algorithm>
#include <stdexcept>

namespace hybridcnn::sax {

void paa(std::span<const double> series, std::span<double> out) {
  const std::size_t n = series.size();
  const std::size_t segments = out.size();
  if (n == 0) throw std::invalid_argument("paa: empty series");
  if (segments == 0 || segments > n) {
    throw std::invalid_argument("paa: segments must be in [1, n]");
  }

  // Each segment covers n/segments points; with fractional boundaries a
  // point straddling two segments contributes proportionally to both.
  const double width =
      static_cast<double>(n) / static_cast<double>(segments);
  for (std::size_t s = 0; s < segments; ++s) {
    const double lo = width * static_cast<double>(s);
    const double hi = lo + width;
    double acc = 0.0;
    for (std::size_t i = static_cast<std::size_t>(lo);
         i < n && static_cast<double>(i) < hi; ++i) {
      const double seg_lo = std::max(lo, static_cast<double>(i));
      const double seg_hi = std::min(hi, static_cast<double>(i) + 1.0);
      if (seg_hi > seg_lo) acc += series[i] * (seg_hi - seg_lo);
    }
    out[s] = acc / width;
  }
}

std::vector<double> paa(const std::vector<double>& series,
                        std::size_t segments) {
  if (series.empty()) throw std::invalid_argument("paa: empty series");
  if (segments == 0 || segments > series.size()) {
    throw std::invalid_argument("paa: segments must be in [1, n]");
  }
  std::vector<double> out(segments, 0.0);
  paa(std::span<const double>(series), std::span<double>(out));
  return out;
}

}  // namespace hybridcnn::sax
