// Piecewise Aggregate Approximation (PAA).
#pragma once

#include <vector>

namespace hybridcnn::sax {

/// Reduces `series` to `segments` equal-width segment means. Handles
/// lengths not divisible by `segments` with fractional weighting (the
/// standard generalised PAA). Throws std::invalid_argument for empty
/// input or segments == 0 or segments > series length.
std::vector<double> paa(const std::vector<double>& series,
                        std::size_t segments);

}  // namespace hybridcnn::sax
