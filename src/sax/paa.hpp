// Piecewise Aggregate Approximation (PAA).
#pragma once

#include <span>
#include <vector>

namespace hybridcnn::sax {

/// Explicit-scratch overload: reduces `series` to out.size() equal-width
/// segment means written into `out`. Handles lengths not divisible by the
/// segment count with fractional weighting (the standard generalised
/// PAA). Throws std::invalid_argument for empty input or out.size() == 0
/// or out.size() > series length. `out` must not alias `series`.
void paa(std::span<const double> series, std::span<double> out);

/// Allocating wrapper: returns the `segments` segment means.
std::vector<double> paa(const std::vector<double>& series,
                        std::size_t segments);

}  // namespace hybridcnn::sax
