#include "sax/sax_word.hpp"

#include <stdexcept>

#include "sax/breakpoints.hpp"
#include "sax/paa.hpp"
#include "sax/znorm.hpp"

namespace hybridcnn::sax {

char symbolize(double value, const std::vector<double>& breakpoints) {
  std::size_t letter = 0;
  while (letter < breakpoints.size() && value >= breakpoints[letter]) {
    ++letter;
  }
  return static_cast<char>('a' + letter);
}

std::string sax_word(const std::vector<double>& series,
                     const SaxConfig& config) {
  if (config.word_length == 0) {
    throw std::invalid_argument("sax_word: word_length must be >= 1");
  }
  const std::vector<double> z = znormalize(series);
  const std::vector<double> segments = paa(z, config.word_length);
  const std::vector<double> bp = gaussian_breakpoints(config.alphabet);

  std::string word;
  word.reserve(config.word_length);
  for (const double v : segments) word.push_back(symbolize(v, bp));
  return word;
}

}  // namespace hybridcnn::sax
