#include "sax/sax_word.hpp"

#include <stdexcept>

#include "sax/breakpoints.hpp"
#include "sax/paa.hpp"
#include "sax/znorm.hpp"

namespace hybridcnn::sax {

char symbolize(double value, std::span<const double> breakpoints) {
  std::size_t letter = 0;
  while (letter < breakpoints.size() && value >= breakpoints[letter]) {
    ++letter;
  }
  return static_cast<char>('a' + letter);
}

void sax_word(std::span<const double> series, const SaxConfig& config,
              std::span<const double> breakpoints, std::span<char> word_out,
              runtime::Workspace& ws) {
  if (config.word_length == 0) {
    throw std::invalid_argument("sax_word: word_length must be >= 1");
  }
  if (word_out.size() != config.word_length) {
    throw std::invalid_argument("sax_word: word_out size != word_length");
  }
  if (breakpoints.size() + 1 != config.alphabet) {
    throw std::invalid_argument("sax_word: breakpoints do not match alphabet");
  }

  runtime::Workspace::Scope scope(ws);
  const std::span<double> z = ws.alloc_span_as<double>(series.size());
  znormalize(series, z);
  const std::span<double> segments =
      ws.alloc_span_as<double>(config.word_length);
  paa(z, segments);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    word_out[i] = symbolize(segments[i], breakpoints);
  }
}

std::string sax_word(const std::vector<double>& series,
                     const SaxConfig& config) {
  if (config.word_length == 0) {
    throw std::invalid_argument("sax_word: word_length must be >= 1");
  }
  const std::vector<double> z = znormalize(series);
  const std::vector<double> segments = paa(z, config.word_length);
  const std::vector<double> bp = gaussian_breakpoints(config.alphabet);

  std::string word;
  word.reserve(config.word_length);
  for (const double v : segments) word.push_back(symbolize(v, bp));
  return word;
}

}  // namespace hybridcnn::sax
