// SAX symbolisation: time series -> word over a small alphabet.
//
// The paper's qualifier uses "Symbolic Approximation (SAX), which
// effectively reduces time-series data to a string which can be cheaply
// compared to other strings". This module implements the full
// znorm -> PAA -> quantise pipeline of Lin et al. 2003.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "runtime/workspace.hpp"

namespace hybridcnn::sax {

/// SAX pipeline parameters.
struct SaxConfig {
  std::size_t word_length = 32;  ///< PAA segments == letters in the word
  std::size_t alphabet = 8;      ///< distinct symbols 'a'..('a'+alphabet-1)
};

/// Quantises one z-normalised value to a SAX letter.
char symbolize(double value, std::span<const double> breakpoints);

/// Explicit-scratch overload of the full SAX transform: znormalize ->
/// paa -> symbolize into `word_out` (size must equal config.word_length),
/// drawing the intermediate z/PAA buffers from `ws`. `breakpoints` must
/// be gaussian_breakpoints(config.alphabet) — precomputed by the caller
/// so steady-state symbolisation does no heap allocation. Throws
/// std::invalid_argument on invalid config, mismatched breakpoint or
/// output sizes, or series shorter than the word length.
void sax_word(std::span<const double> series, const SaxConfig& config,
              std::span<const double> breakpoints, std::span<char> word_out,
              runtime::Workspace& ws);

/// Allocating wrapper: full SAX transform returning the word.
std::string sax_word(const std::vector<double>& series,
                     const SaxConfig& config);

}  // namespace hybridcnn::sax
