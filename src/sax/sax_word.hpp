// SAX symbolisation: time series -> word over a small alphabet.
//
// The paper's qualifier uses "Symbolic Approximation (SAX), which
// effectively reduces time-series data to a string which can be cheaply
// compared to other strings". This module implements the full
// znorm -> PAA -> quantise pipeline of Lin et al. 2003.
#pragma once

#include <string>
#include <vector>

namespace hybridcnn::sax {

/// SAX pipeline parameters.
struct SaxConfig {
  std::size_t word_length = 32;  ///< PAA segments == letters in the word
  std::size_t alphabet = 8;      ///< distinct symbols 'a'..('a'+alphabet-1)
};

/// Quantises one z-normalised value to a SAX letter.
char symbolize(double value, const std::vector<double>& breakpoints);

/// Full SAX transform: znormalize -> paa -> symbolize each segment.
/// Throws std::invalid_argument on invalid config or series shorter than
/// the word length.
std::string sax_word(const std::vector<double>& series,
                     const SaxConfig& config);

}  // namespace hybridcnn::sax
