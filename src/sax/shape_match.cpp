#include "sax/shape_match.hpp"

#include <cmath>
#include <stdexcept>

namespace hybridcnn::sax {

std::vector<double> polygon_signature(std::size_t sides, std::size_t samples,
                                      double rotation) {
  if (sides < 3) {
    throw std::invalid_argument("polygon_signature: sides must be >= 3");
  }
  if (samples == 0) {
    throw std::invalid_argument("polygon_signature: samples must be >= 1");
  }
  constexpr double two_pi = 6.283185307179586476925286766559;
  const double sector = two_pi / static_cast<double>(sides);
  const double apothem_angle = sector / 2.0;

  std::vector<double> series(samples, 0.0);
  for (std::size_t i = 0; i < samples; ++i) {
    double theta = two_pi * static_cast<double>(i) /
                       static_cast<double>(samples) -
                   rotation;
    theta = std::fmod(std::fmod(theta, sector) + sector, sector);
    // Distance from centre to the edge of a unit-circumradius polygon.
    series[i] = std::cos(apothem_angle) / std::cos(theta - apothem_angle);
  }
  return series;
}

std::string shape_template_word(std::size_t sides, const SaxConfig& config,
                                std::size_t samples) {
  return sax_word(polygon_signature(sides, samples), config);
}

int count_corners(const std::vector<double>& series, double prominence_frac) {
  const std::size_t n = series.size();
  if (n < 8) return 0;

  // Circular moving-average smoothing.
  const std::size_t smooth_w = std::max<std::size_t>(1, n / 64);
  std::vector<double> s(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k <= 2 * smooth_w; ++k) {
      acc += series[(i + n - smooth_w + k) % n];
    }
    s[i] = acc / static_cast<double>(2 * smooth_w + 1);
  }

  double mean = 0.0;
  for (const double v : s) mean += v;
  mean /= static_cast<double>(n);
  if (mean <= 0.0) return 0;
  const double prominence = prominence_frac * mean;

  const std::size_t w = std::max<std::size_t>(2, n / 16);
  int corners = 0;
  std::size_t i = 0;
  while (i < n) {
    bool is_peak = true;
    double local_min = s[i];
    for (std::size_t k = 1; k <= w && is_peak; ++k) {
      const double left = s[(i + n - k) % n];
      const double right = s[(i + k) % n];
      if (left > s[i] || right > s[i]) is_peak = false;
      local_min = std::min(local_min, std::min(left, right));
    }
    if (is_peak && (s[i] - local_min) >= prominence) {
      ++corners;
      i += w;  // skip the rest of this peak's neighbourhood
    } else {
      ++i;
    }
  }
  return corners;
}

ShapeMatchResult match_shape(const std::vector<double>& series,
                             std::size_t sides,
                             const ShapeMatchConfig& config) {
  ShapeMatchResult result;
  if (series.size() < config.sax.word_length) return result;

  result.word = sax_word(series, config.sax);
  result.template_word =
      shape_template_word(sides, config.sax, series.size());
  const SymbolDistanceTable table(config.sax.alphabet);

  // Circular letter rotation only models shifts by whole PAA segments;
  // a sign tilted by a fraction of a segment changes the segment means
  // and hence the word. Compare against template words generated at
  // sub-segment rotations spanning one polygon sector (the signature is
  // periodic in the sector), keeping the minimum distance.
  constexpr double two_pi = 6.283185307179586476925286766559;
  const double sector = two_pi / static_cast<double>(sides);
  constexpr std::size_t kSubRotations = 16;
  result.distance = -1.0;
  for (std::size_t r = 0; r < kSubRotations; ++r) {
    const double rot =
        sector * static_cast<double>(r) / static_cast<double>(kSubRotations);
    const std::string tmpl =
        sax_word(polygon_signature(sides, series.size(), rot), config.sax);
    std::size_t letter_rot = 0;
    const double d = mindist_rotation_invariant(
        result.word, tmpl, series.size(), table, &letter_rot);
    if (result.distance < 0.0 || d < result.distance) {
      result.distance = d;
      result.rotation = letter_rot;
      result.template_word = tmpl;
    }
  }
  result.corners = count_corners(series);

  const bool corners_ok =
      std::abs(result.corners - static_cast<int>(sides)) <=
      config.corner_tolerance;
  result.match = result.distance <= config.mindist_threshold && corners_ok;
  return result;
}

}  // namespace hybridcnn::sax
