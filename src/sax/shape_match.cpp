#include "sax/shape_match.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sax/breakpoints.hpp"

namespace hybridcnn::sax {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Shared corner-counting core; `smooth` is caller-provided scratch of
/// series.size() doubles (the circular moving-average buffer).
int count_corners_core(std::span<const double> series,
                       std::span<double> smooth, double prominence_frac) {
  const std::size_t n = series.size();
  if (n < 8) return 0;

  // Circular moving-average smoothing.
  const std::size_t smooth_w = std::max<std::size_t>(1, n / 64);
  std::span<double> s = smooth;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k <= 2 * smooth_w; ++k) {
      acc += series[(i + n - smooth_w + k) % n];
    }
    s[i] = acc / static_cast<double>(2 * smooth_w + 1);
  }

  double mean = 0.0;
  for (const double v : s) mean += v;
  mean /= static_cast<double>(n);
  if (mean <= 0.0) return 0;
  const double prominence = prominence_frac * mean;

  const std::size_t w = std::max<std::size_t>(2, n / 16);
  int corners = 0;
  std::size_t i = 0;
  while (i < n) {
    bool is_peak = true;
    double local_min = s[i];
    for (std::size_t k = 1; k <= w && is_peak; ++k) {
      const double left = s[(i + n - k) % n];
      const double right = s[(i + k) % n];
      if (left > s[i] || right > s[i]) is_peak = false;
      local_min = std::min(local_min, std::min(left, right));
    }
    if (is_peak && (s[i] - local_min) >= prominence) {
      ++corners;
      i += w;  // skip the rest of this peak's neighbourhood
    } else {
      ++i;
    }
  }
  return corners;
}

}  // namespace

void polygon_signature(std::size_t sides, std::span<double> out,
                       double rotation) {
  if (sides < 3) {
    throw std::invalid_argument("polygon_signature: sides must be >= 3");
  }
  if (out.empty()) {
    throw std::invalid_argument("polygon_signature: samples must be >= 1");
  }
  const std::size_t samples = out.size();
  const double sector = kTwoPi / static_cast<double>(sides);
  const double apothem_angle = sector / 2.0;

  for (std::size_t i = 0; i < samples; ++i) {
    double theta = kTwoPi * static_cast<double>(i) /
                       static_cast<double>(samples) -
                   rotation;
    theta = std::fmod(std::fmod(theta, sector) + sector, sector);
    // Distance from centre to the edge of a unit-circumradius polygon.
    out[i] = std::cos(apothem_angle) / std::cos(theta - apothem_angle);
  }
}

std::vector<double> polygon_signature(std::size_t sides, std::size_t samples,
                                      double rotation) {
  if (samples == 0) {
    throw std::invalid_argument("polygon_signature: samples must be >= 1");
  }
  std::vector<double> series(samples, 0.0);
  polygon_signature(sides, std::span<double>(series), rotation);
  return series;
}

std::string shape_template_word(std::size_t sides, const SaxConfig& config,
                                std::size_t samples) {
  return sax_word(polygon_signature(sides, samples), config);
}

int count_corners(std::span<const double> series, runtime::Workspace& ws,
                  double prominence_frac) {
  runtime::Workspace::Scope scope(ws);
  const std::span<double> smooth = ws.alloc_span_as<double>(series.size());
  return count_corners_core(series, smooth, prominence_frac);
}

int count_corners(const std::vector<double>& series, double prominence_frac) {
  std::vector<double> smooth(series.size(), 0.0);
  return count_corners_core(series, smooth, prominence_frac);
}

ShapeMatcher::ShapeMatcher(std::size_t sides, std::size_t samples,
                           ShapeMatchConfig config)
    : sides_(sides),
      samples_(samples),
      config_(config),
      table_(config.sax.alphabet),
      breakpoints_(gaussian_breakpoints(config.sax.alphabet)) {
  if (config_.sax.word_length == 0) {
    throw std::invalid_argument("ShapeMatcher: word_length must be >= 1");
  }
  if (samples_ < config_.sax.word_length) {
    throw std::invalid_argument(
        "ShapeMatcher: samples shorter than the SAX word length");
  }
  // Circular letter rotation only models shifts by whole PAA segments; a
  // sign tilted by a fraction of a segment changes the segment means and
  // hence the word. The templates therefore span one polygon sector (the
  // signature is periodic in the sector) at kShapeSubRotations
  // sub-segment rotations; match() keeps the minimum distance.
  const double sector = kTwoPi / static_cast<double>(sides_);
  templates_.reserve(kShapeSubRotations);
  for (std::size_t r = 0; r < kShapeSubRotations; ++r) {
    const double rot = sector * static_cast<double>(r) /
                       static_cast<double>(kShapeSubRotations);
    templates_.push_back(
        sax_word(polygon_signature(sides_, samples_, rot), config_.sax));
  }
}

ShapeMatchResult ShapeMatcher::match(std::span<const double> series,
                                     runtime::Workspace& ws) const {
  ShapeMatchResult result;
  if (series.size() < config_.sax.word_length) return result;
  if (series.size() != samples_) {
    throw std::invalid_argument(
        "ShapeMatcher::match: series length != samples()");
  }

  runtime::Workspace::Scope scope(ws);
  const std::span<char> word =
      ws.alloc_span_as<char>(config_.sax.word_length);
  sax_word(series, config_.sax, breakpoints_, word, ws);
  result.word.assign(word.data(), word.size());

  result.distance = -1.0;
  for (std::size_t r = 0; r < kShapeSubRotations; ++r) {
    const std::string& tmpl = templates_[r];
    std::size_t letter_rot = 0;
    const double d = mindist_rotation_invariant(
        std::string_view(word.data(), word.size()), tmpl, samples_, table_,
        &letter_rot);
    if (result.distance < 0.0 || d < result.distance) {
      result.distance = d;
      result.rotation = letter_rot;
      result.template_word = tmpl;
    }
  }
  result.corners = count_corners(series, ws);

  const bool corners_ok =
      std::abs(result.corners - static_cast<int>(sides_)) <=
      config_.corner_tolerance;
  result.match = result.distance <= config_.mindist_threshold && corners_ok;
  return result;
}

ShapeMatchResult match_shape(const std::vector<double>& series,
                             std::size_t sides,
                             const ShapeMatchConfig& config) {
  if (series.size() < config.sax.word_length) return {};
  const ShapeMatcher matcher(sides, series.size(), config);
  return matcher.match(std::span<const double>(series),
                       runtime::thread_scratch());
}

}  // namespace hybridcnn::sax
