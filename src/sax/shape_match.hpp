// Shape matching on radial signatures: analytic polygon templates, SAX
// word comparison and corner counting.
//
// This is the paper's "Qualifier" logic: the stop sign's octagonal
// silhouette yields a radial time series with eight corners (Fig. 3);
// reducing it with SAX gives a word whose rotation-invariant MINDIST to
// the analytic octagon template — a surrogate function whose "upper and
// lower bounds can be determined a priori" — decides whether the shape is
// qualified. Corner counting is a second, independent plausibility check.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "runtime/workspace.hpp"
#include "sax/mindist.hpp"
#include "sax/sax_word.hpp"

namespace hybridcnn::sax {

/// Sub-segment template rotations evaluated per match (see match_shape).
inline constexpr std::size_t kShapeSubRotations = 16;

/// Explicit-scratch overload: analytic radial signature of a regular
/// polygon with `sides` sides, unit circumradius, sampled at out.size()
/// angles, rotated by `rotation` radians. sides >= 3 and out.size() >= 1;
/// throws std::invalid_argument otherwise.
void polygon_signature(std::size_t sides, std::span<double> out,
                       double rotation = 0.0);

/// Allocating wrapper over the scratch overload.
std::vector<double> polygon_signature(std::size_t sides, std::size_t samples,
                                      double rotation = 0.0);

/// SAX word of the analytic polygon template.
std::string shape_template_word(std::size_t sides, const SaxConfig& config,
                                std::size_t samples = 360);

/// Explicit-scratch overload: counts prominent peaks (corners) in a
/// circular series, drawing the smoothing buffer from `ws`. A peak must
/// be the maximum of its circular neighbourhood (width samples/16) and
/// have prominence of at least `prominence_frac` of the series mean.
int count_corners(std::span<const double> series, runtime::Workspace& ws,
                  double prominence_frac = 0.04);

/// Allocating wrapper over the scratch overload.
int count_corners(const std::vector<double>& series,
                  double prominence_frac = 0.04);

/// Parameters of the octagon (or other polygon) qualifier decision.
struct ShapeMatchConfig {
  SaxConfig sax{32, 8};
  double mindist_threshold = 3.0;  ///< on z-normalised series units
  int corner_tolerance = 1;        ///< |observed - expected| allowed
};

/// Outcome of matching a measured radial signature against a polygon.
struct ShapeMatchResult {
  bool match = false;       ///< both SAX distance and corner test passed
  double distance = 0.0;    ///< rotation-invariant MINDIST to the template
  int corners = 0;          ///< prominent peaks observed
  std::string word;         ///< SAX word of the measured series
  std::string template_word;
  std::size_t rotation = 0; ///< best-matching circular rotation (letters)
};

/// Precomputed polygon matcher. Construction builds everything that does
/// not depend on the measured series — the symbol distance table, the
/// Gaussian breakpoints, and the SAX template words of the analytic
/// polygon at kShapeSubRotations sub-segment rotations — so steady-state
/// match() draws only per-series scratch from a Workspace arena. This is
/// the batched-inference hot path: one ShapeMatcher lives inside each
/// ShapeQualifier and is shared (const, thread-safe) by all images.
class ShapeMatcher {
 public:
  /// `samples` is the radial-scan resolution every matched series must
  /// have. Requires sides >= 3, samples >= config.sax.word_length >= 1;
  /// throws std::invalid_argument otherwise.
  ShapeMatcher(std::size_t sides, std::size_t samples,
               ShapeMatchConfig config = {});

  /// Matches one measured series. Returns a default (no-match) result
  /// for series shorter than the SAX word length (the "no usable shape"
  /// case); otherwise series.size() must equal samples() — throws
  /// std::invalid_argument on mismatch. Bit-identical to match_shape().
  [[nodiscard]] ShapeMatchResult match(std::span<const double> series,
                                       runtime::Workspace& ws) const;

  [[nodiscard]] std::size_t sides() const noexcept { return sides_; }
  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }
  [[nodiscard]] const ShapeMatchConfig& config() const noexcept {
    return config_;
  }

 private:
  std::size_t sides_;
  std::size_t samples_;
  ShapeMatchConfig config_;
  SymbolDistanceTable table_;
  std::vector<double> breakpoints_;
  std::vector<std::string> templates_;  // one word per sub-rotation
};

/// Allocating wrapper: matches a measured series against the analytic
/// `sides`-gon template, rebuilding the templates per call.
ShapeMatchResult match_shape(const std::vector<double>& series,
                             std::size_t sides,
                             const ShapeMatchConfig& config = {});

}  // namespace hybridcnn::sax
