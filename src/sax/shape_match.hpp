// Shape matching on radial signatures: analytic polygon templates, SAX
// word comparison and corner counting.
//
// This is the paper's "Qualifier" logic: the stop sign's octagonal
// silhouette yields a radial time series with eight corners (Fig. 3);
// reducing it with SAX gives a word whose rotation-invariant MINDIST to
// the analytic octagon template — a surrogate function whose "upper and
// lower bounds can be determined a priori" — decides whether the shape is
// qualified. Corner counting is a second, independent plausibility check.
#pragma once

#include <string>
#include <vector>

#include "sax/mindist.hpp"
#include "sax/sax_word.hpp"

namespace hybridcnn::sax {

/// Analytic radial signature of a regular polygon with `sides` sides,
/// unit circumradius, sampled at `samples` angles, rotated by `rotation`
/// radians. sides >= 3; throws std::invalid_argument otherwise.
std::vector<double> polygon_signature(std::size_t sides, std::size_t samples,
                                      double rotation = 0.0);

/// SAX word of the analytic polygon template.
std::string shape_template_word(std::size_t sides, const SaxConfig& config,
                                std::size_t samples = 360);

/// Counts prominent peaks (corners) in a circular series. A peak must be
/// the maximum of its circular neighbourhood (width samples/16) and have
/// prominence of at least `prominence_frac` of the series mean.
int count_corners(const std::vector<double>& series,
                  double prominence_frac = 0.04);

/// Parameters of the octagon (or other polygon) qualifier decision.
struct ShapeMatchConfig {
  SaxConfig sax{32, 8};
  double mindist_threshold = 3.0;  ///< on z-normalised series units
  int corner_tolerance = 1;        ///< |observed - expected| allowed
};

/// Outcome of matching a measured radial signature against a polygon.
struct ShapeMatchResult {
  bool match = false;       ///< both SAX distance and corner test passed
  double distance = 0.0;    ///< rotation-invariant MINDIST to the template
  int corners = 0;          ///< prominent peaks observed
  std::string word;         ///< SAX word of the measured series
  std::string template_word;
  std::size_t rotation = 0; ///< best-matching circular rotation (letters)
};

/// Matches a measured series against the analytic `sides`-gon template.
ShapeMatchResult match_shape(const std::vector<double>& series,
                             std::size_t sides,
                             const ShapeMatchConfig& config = {});

}  // namespace hybridcnn::sax
