#include "sax/znorm.hpp"

#include <cmath>

namespace hybridcnn::sax {

SeriesStats series_stats(const std::vector<double>& series) {
  SeriesStats st;
  if (series.empty()) return st;
  for (const double v : series) st.mean += v;
  st.mean /= static_cast<double>(series.size());
  double var = 0.0;
  for (const double v : series) var += (v - st.mean) * (v - st.mean);
  st.stddev = std::sqrt(var / static_cast<double>(series.size()));
  return st;
}

std::vector<double> znormalize(const std::vector<double>& series,
                               double epsilon) {
  const SeriesStats st = series_stats(series);
  std::vector<double> out(series.size(), 0.0);
  if (st.stddev < epsilon) return out;
  for (std::size_t i = 0; i < series.size(); ++i) {
    out[i] = (series[i] - st.mean) / st.stddev;
  }
  return out;
}

}  // namespace hybridcnn::sax
