#include "sax/znorm.hpp"

#include <cmath>
#include <stdexcept>

namespace hybridcnn::sax {

SeriesStats series_stats(std::span<const double> series) {
  SeriesStats st;
  if (series.empty()) return st;
  for (const double v : series) st.mean += v;
  st.mean /= static_cast<double>(series.size());
  double var = 0.0;
  for (const double v : series) var += (v - st.mean) * (v - st.mean);
  st.stddev = std::sqrt(var / static_cast<double>(series.size()));
  return st;
}

SeriesStats series_stats(const std::vector<double>& series) {
  return series_stats(std::span<const double>(series));
}

void znormalize(std::span<const double> series, std::span<double> out,
                double epsilon) {
  if (out.size() != series.size()) {
    throw std::invalid_argument("znormalize: out.size() != series.size()");
  }
  const SeriesStats st = series_stats(series);
  if (st.stddev < epsilon) {
    for (double& v : out) v = 0.0;
    return;
  }
  for (std::size_t i = 0; i < series.size(); ++i) {
    out[i] = (series[i] - st.mean) / st.stddev;
  }
}

std::vector<double> znormalize(const std::vector<double>& series,
                               double epsilon) {
  std::vector<double> out(series.size(), 0.0);
  znormalize(std::span<const double>(series), std::span<double>(out),
             epsilon);
  return out;
}

}  // namespace hybridcnn::sax
