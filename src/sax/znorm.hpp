// Z-normalisation of time series (SAX preprocessing step).
#pragma once

#include <vector>

namespace hybridcnn::sax {

/// Mean and standard deviation of a series.
struct SeriesStats {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes mean and (population) standard deviation.
SeriesStats series_stats(const std::vector<double>& series);

/// Returns the z-normalised series: (x - mean) / stddev. Series with
/// stddev below `epsilon` (near-constant, e.g. a circle's radial
/// signature) are returned as all-zero — the SAX convention.
std::vector<double> znormalize(const std::vector<double>& series,
                               double epsilon = 1e-9);

}  // namespace hybridcnn::sax
