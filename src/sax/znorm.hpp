// Z-normalisation of time series (SAX preprocessing step).
#pragma once

#include <span>
#include <vector>

namespace hybridcnn::sax {

/// Mean and standard deviation of a series.
struct SeriesStats {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes mean and (population) standard deviation.
SeriesStats series_stats(std::span<const double> series);

/// std::vector convenience (also accepts brace-enclosed lists).
SeriesStats series_stats(const std::vector<double>& series);

/// Explicit-scratch overload: z-normalises `series` into `out`.
/// out.size() must equal series.size() (throws std::invalid_argument
/// otherwise); aliasing out == series is allowed. Series with stddev
/// below `epsilon` (near-constant, e.g. a circle's radial signature)
/// become all-zero — the SAX convention.
void znormalize(std::span<const double> series, std::span<double> out,
                double epsilon = 1e-9);

/// Allocating wrapper: returns the z-normalised series.
std::vector<double> znormalize(const std::vector<double>& series,
                               double epsilon = 1e-9);

}  // namespace hybridcnn::sax
