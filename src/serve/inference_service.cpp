#include "serve/inference_service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace hybridcnn::serve {

/// Per-session state: the deterministic seed cursor. The stream is only
/// ever advanced inside the queue's admission factory (under the queue
/// lock), so seeds are drawn atomically with admission, in admission
/// order.
struct SessionState {
  core::FaultSeedStream stream;
  std::uint64_t id = 0;
};

std::uint64_t InferenceService::Session::id() const noexcept {
  return state_->id;
}

InferenceService::InferenceService(
    std::shared_ptr<const core::HybridNetwork> network, ServiceConfig config)
    : network_(std::move(network)),
      config_(config),
      queue_(config.queue_capacity) {
  if (!network_) {
    throw std::invalid_argument("InferenceService: null network");
  }
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.latency_window == 0) config_.latency_window = 1;
  batch_size_histogram_.assign(config_.max_batch + 1, 0);
  latency_us_.assign(config_.latency_window, 0.0);
  default_session_ = [&] {
    auto state = std::make_unique<SessionState>();
    state->stream = network_->seed_stream();
    state->id = 0;
    sessions_.push_back(std::move(state));
    return sessions_.back().get();
  }();
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

InferenceService::~InferenceService() { shutdown(); }

InferenceService::Session InferenceService::open_session(
    std::uint64_t seed_base) {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  auto state = std::make_unique<SessionState>();
  state->stream = core::FaultSeedStream(seed_base);
  state->id = sessions_.size();
  sessions_.push_back(std::move(state));
  return Session(this, sessions_.back().get());
}

InferenceService::Session InferenceService::open_session() {
  return open_session(network_->seed_stream().peek());
}

std::future<core::HybridClassification> InferenceService::submit(
    tensor::Tensor image) {
  return submit_on(*default_session_, std::move(image));
}

std::future<core::HybridClassification> InferenceService::submit_on(
    SessionState& session, tensor::Tensor image) {
  // Validate before admission: a bad request must neither occupy queue
  // space nor consume a seed from the session stream.
  if (image.shape().rank() != 3) {
    throw std::invalid_argument("InferenceService::submit: expected CHW");
  }
  if (stopped_.load(std::memory_order_acquire)) throw ServiceStoppedError();

  std::promise<core::HybridClassification> promise;
  std::future<core::HybridClassification> future = promise.get_future();
  // Runs under the queue lock once capacity is reserved: admission and
  // seed draw are one atomic step, so accepted requests hold exactly the
  // seeds a serial loop over the session's accepted images would use.
  const auto make = [&]() -> Request {
    Request request;
    request.image = std::move(image);
    request.seed = session.stream.take();
    request.promise = std::move(promise);
    request.enqueued = std::chrono::steady_clock::now();
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return request;
  };

  const bool admitted = config_.overflow == OverflowPolicy::kBlock
                            ? queue_.push_with(make)
                            : queue_.try_push_with(make);
  if (!admitted) {
    if (queue_.closed()) throw ServiceStoppedError();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    throw QueueFullError();
  }

  // Track the high-water mark of pending requests without dragging the
  // submit hot path through stats_mu_ (CAS-max against racing peaks).
  const std::size_t depth = queue_.size();
  std::size_t peak = peak_queue_depth_.load(std::memory_order_relaxed);
  while (depth > peak && !peak_queue_depth_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
  return future;
}

void InferenceService::dispatch_loop() {
  std::vector<Request> batch;
  batch.reserve(config_.max_batch);

  // pop_batch blocks until work arrives; after close() it hands out the
  // already-admitted tail and finally returns 0 — the drain-then-exit
  // shutdown path.
  while (queue_.pop_batch(batch, config_.max_batch) != 0) {
    finish_batch(batch);
    batch.clear();
  }
}

void InferenceService::finish_batch(std::vector<Request>& batch) {
  std::vector<const tensor::Tensor*> images;
  std::vector<std::uint64_t> seeds;
  images.reserve(batch.size());
  seeds.reserve(batch.size());
  for (const Request& r : batch) {
    images.push_back(&r.image);
    seeds.push_back(r.seed);
  }

  std::vector<core::HybridClassification> results;
  std::exception_ptr error;
  try {
    // Fans the complete per-image pipelines across the global pool.
    // Each result is a pure function of (weights, image, seed), so the
    // batch composition the dispatcher happened to collect is invisible
    // in the outputs.
    results = network_->classify_seeded(batch.size(), images.data(),
                                        seeds.data(), config_.batch);
  } catch (...) {
    error = std::current_exception();
  }

  const auto now = std::chrono::steady_clock::now();
  std::size_t ok = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (error) {
      batch[i].promise.set_exception(error);
    } else {
      batch[i].promise.set_value(std::move(results[i]));
      ++ok;
    }
  }

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    completed_ += ok;
    failed_ += batch.size() - ok;
    ++batches_;
    ++batch_size_histogram_[std::min(batch.size(),
                                     batch_size_histogram_.size() - 1)];
    for (const Request& r : batch) {
      const double us =
          std::chrono::duration<double, std::micro>(now - r.enqueued).count();
      latency_us_[latency_next_] = us;
      latency_next_ = (latency_next_ + 1) % latency_us_.size();
      if (latency_next_ == 0) latency_full_ = true;
    }
  }
  drained_cv_.notify_all();
}

void InferenceService::drain() {
  std::unique_lock<std::mutex> lk(stats_mu_);
  drained_cv_.wait(lk, [&] {
    return completed_ + failed_ >= accepted_.load(std::memory_order_acquire);
  });
}

void InferenceService::shutdown() {
  stopped_.store(true, std::memory_order_release);
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServiceStats InferenceService::stats() const {
  ServiceStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  s.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);

  // Copy under the lock, crunch (sort) after releasing it — a polling
  // monitor must not stall the dispatcher for an O(n log n) pass.
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s.completed = completed_;
    s.failed = failed_;
    s.batches = batches_;
    s.batch_size_histogram = batch_size_histogram_;
    const std::size_t n = latency_full_ ? latency_us_.size() : latency_next_;
    sorted.assign(latency_us_.begin(), latency_us_.begin() + n);
  }

  if (!sorted.empty()) {
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    const auto pct = [&](double p) {
      const std::size_t idx = static_cast<std::size_t>(
          std::min<double>(static_cast<double>(n - 1),
                           std::ceil(p * static_cast<double>(n)) - 1.0));
      return sorted[idx];
    };
    s.p50_latency_us = pct(0.50);
    s.p99_latency_us = pct(0.99);
    s.max_latency_us = sorted.back();
  }
  return s;
}

}  // namespace hybridcnn::serve
