// InferenceService: the concurrent-request front-end over one shared
// const HybridNetwork.
//
// The paper's hybrid network gates safety-critical classifications in a
// live system; this is the component that lets a live system actually
// feed it. Requests arrive from any OS thread via submit() and resolve
// through std::future; a dispatcher thread coalesces whatever is
// pending into dynamic micro-batches and runs them through the const
// classify_seeded path, which fans the per-image pipelines across the
// global runtime pool. Admission is a bounded queue with block/reject
// backpressure.
//
// Determinism contract: every Session owns an independent
// core::FaultSeedStream. A request draws its seed from its session's
// stream at admission time (atomically with queue entry, in admission
// order), and each classification is a pure function of
// (weights, image, seed) — so per session, results are bit-identical to
// a serial classify() loop over the same stream, no matter how requests
// interleaved with other sessions, how the dispatcher batched them, or
// how many pool threads executed them. tests/test_inference_service.cpp
// holds the service to exactly that replay.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/hybrid_network.hpp"
#include "runtime/bounded_queue.hpp"

namespace hybridcnn::serve {

struct SessionState;  // owned by the service; defined in the .cpp

/// What submit() does when the request queue is at capacity.
enum class OverflowPolicy {
  kBlock,   ///< block the submitter until space frees (backpressure)
  kReject,  ///< fail fast: submit throws QueueFullError
};

/// Thrown by submit() under OverflowPolicy::kReject when the queue is
/// full. A rejected request consumes no seed from its session stream.
struct QueueFullError : std::runtime_error {
  QueueFullError() : std::runtime_error("InferenceService: queue full") {}
};

/// Thrown by submit() after shutdown() (or during destruction).
struct ServiceStoppedError : std::runtime_error {
  ServiceStoppedError()
      : std::runtime_error("InferenceService: service stopped") {}
};

struct ServiceConfig {
  /// Admission bound: requests queued but not yet dispatched.
  std::size_t queue_capacity = 64;
  /// Largest micro-batch one dispatch collects. The dispatcher takes
  /// whatever is pending up to this, so batch size adapts to load.
  std::size_t max_batch = 16;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Execution knobs forwarded to classify_seeded for every batch.
  core::BatchOptions batch{};
  /// Completed-request latencies kept for the percentile snapshot.
  std::size_t latency_window = 4096;
};

/// Monitoring snapshot; see stats().
struct ServiceStats {
  std::uint64_t accepted = 0;   ///< requests admitted to the queue
  std::uint64_t rejected = 0;   ///< submits refused under kReject
  std::uint64_t completed = 0;  ///< futures resolved with a result
  std::uint64_t failed = 0;     ///< futures resolved with an exception
  std::uint64_t batches = 0;    ///< dispatches executed
  std::size_t queue_depth = 0;  ///< requests pending right now
  std::size_t peak_queue_depth = 0;
  /// batch_size_histogram[s] = number of dispatched batches of size s
  /// (index 0 unused); sized max_batch + 1.
  std::vector<std::uint64_t> batch_size_histogram;
  /// Submit-to-completion latency percentiles over the most recent
  /// `latency_window` completed requests (microseconds).
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
};

class InferenceService {
 public:
  /// A request stream with its own deterministic fault-seed cursor.
  /// Handles are small copyable views; they stay valid for the life of
  /// the service that opened them. Submitting from several threads
  /// through one session is safe but makes the image→seed assignment
  /// race-ordered — use one session per logical stream to keep the
  /// serial-replay property meaningful.
  class Session {
   public:
    /// Enqueues one [3, H, W] image; the future resolves when its
    /// micro-batch completed. Throws std::invalid_argument on a bad
    /// shape (before consuming a seed), QueueFullError under kReject
    /// with a full queue, ServiceStoppedError after shutdown.
    std::future<core::HybridClassification> submit(tensor::Tensor image) {
      return service_->submit_on(*state_, std::move(image));
    }

    [[nodiscard]] std::uint64_t id() const noexcept;

   private:
    friend class InferenceService;
    Session(InferenceService* service, SessionState* state) noexcept
        : service_(service), state_(state) {}
    InferenceService* service_;
    SessionState* state_;
  };

  /// Serves `network` (shared, const — the service never mutates it).
  /// Starts the dispatcher thread. The pool the batches fan across is
  /// the global runtime context; do not resize it while a service is
  /// live.
  explicit InferenceService(
      std::shared_ptr<const core::HybridNetwork> network,
      ServiceConfig config = {});

  /// shutdown()s if the caller has not already.
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Opens a session whose seed stream starts at `seed_base`.
  Session open_session(std::uint64_t seed_base);

  /// Opens a session at the network's configured fault_seed base — the
  /// stream a fresh network's classify loop would consume.
  Session open_session();

  /// submit() on the built-in default session (opened at the network's
  /// fault_seed base).
  std::future<core::HybridClassification> submit(tensor::Tensor image);

  /// Blocks until every request accepted so far has resolved.
  void drain();

  /// Stops admissions, completes everything already accepted, and joins
  /// the dispatcher. Idempotent.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const core::HybridNetwork& network() const noexcept {
    return *network_;
  }

 private:
  struct Request {
    tensor::Tensor image;
    std::uint64_t seed = 0;
    std::promise<core::HybridClassification> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  std::future<core::HybridClassification> submit_on(SessionState& session,
                                                    tensor::Tensor image);
  void dispatch_loop();
  void finish_batch(std::vector<Request>& batch);

  std::shared_ptr<const core::HybridNetwork> network_;
  ServiceConfig config_;
  runtime::BoundedQueue<Request> queue_;

  mutable std::mutex sessions_mu_;  // guards sessions_ growth
  std::vector<std::unique_ptr<SessionState>> sessions_;
  SessionState* default_session_ = nullptr;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::size_t> peak_queue_depth_{0};  // CAS-max from submits
  std::atomic<bool> stopped_{false};

  mutable std::mutex stats_mu_;  // guards the fields below + drain cv
  std::condition_variable drained_cv_;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t batches_ = 0;
  std::vector<std::uint64_t> batch_size_histogram_;
  std::vector<double> latency_us_;  // ring buffer, latency_window entries
  std::size_t latency_next_ = 0;
  bool latency_full_ = false;

  std::thread dispatcher_;  // last member: joined before the rest dies
};

}  // namespace hybridcnn::serve
