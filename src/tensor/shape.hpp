// Tensor shape: a small fixed-capacity dimension vector with the arithmetic
// the NN layers need (element counts, row-major strides, equality).
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>

namespace hybridcnn::tensor {

/// Shape of a dense row-major tensor. Up to 4 dimensions, which covers
/// everything in this library (NCHW activations, OIHW weights, vectors).
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;

  /// Constructs from a dimension list, e.g. Shape{1, 3, 227, 227}.
  /// Throws std::invalid_argument for rank > 4 or non-positive dims.
  Shape(std::initializer_list<std::size_t> dims) {
    if (dims.size() > kMaxRank) {
      throw std::invalid_argument("Shape: rank > 4 unsupported");
    }
    for (const std::size_t d : dims) {
      if (d == 0) throw std::invalid_argument("Shape: zero dimension");
      dims_[rank_++] = d;
    }
  }

  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

  /// Dimension i; throws std::out_of_range if i >= rank().
  [[nodiscard]] std::size_t dim(std::size_t i) const {
    if (i >= rank_) throw std::out_of_range("Shape::dim");
    return dims_[i];
  }

  [[nodiscard]] std::size_t operator[](std::size_t i) const {
    return dim(i);
  }

  /// Total number of elements (1 for a rank-0 shape).
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  friend bool operator==(const Shape& a, const Shape& b) noexcept {
    if (a.rank_ != b.rank_) return false;
    for (std::size_t i = 0; i < a.rank_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) noexcept {
    return !(a == b);
  }

  /// Human-readable form, e.g. "[1, 96, 55, 55]".
  [[nodiscard]] std::string str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i != 0) s += ", ";
      s += std::to_string(dims_[i]);
    }
    s += "]";
    return s;
  }

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace hybridcnn::tensor
