#include "tensor/tensor.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace hybridcnn::tensor {

Tensor::Tensor(Shape shape)
    : shape_(shape), data_(shape.count(), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(shape), data_(shape.count(), value) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(shape), data_(std::move(values)) {
  if (data_.size() != shape_.count()) {
    throw std::invalid_argument("Tensor: value count does not match shape " +
                                shape_.str());
  }
}

float Tensor::at(std::size_t i) const {
  if (i >= data_.size()) throw std::out_of_range("Tensor::at");
  return data_[i];
}

float& Tensor::at(std::size_t i) {
  if (i >= data_.size()) throw std::out_of_range("Tensor::at");
  return data_[i];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w) {
  if (shape_.rank() != 4 || n >= shape_[0] || c >= shape_[1] ||
      h >= shape_[2] || w >= shape_[3]) {
    throw std::out_of_range("Tensor::at4 on shape " + shape_.str());
  }
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at3(std::size_t c, std::size_t h, std::size_t w) const {
  return const_cast<Tensor*>(this)->at3(c, h, w);
}

float& Tensor::at3(std::size_t c, std::size_t h, std::size_t w) {
  if (shape_.rank() != 3 || c >= shape_[0] || h >= shape_[1] ||
      w >= shape_[2]) {
    throw std::out_of_range("Tensor::at3 on shape " + shape_.str());
  }
  return data_[(c * shape_[1] + h) * shape_[2] + w];
}

float Tensor::at2(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at2(r, c);
}

float& Tensor::at2(std::size_t r, std::size_t c) {
  if (shape_.rank() != 2 || r >= shape_[0] || c >= shape_[1]) {
    throw std::out_of_range("Tensor::at2 on shape " + shape_.str());
  }
  return data_[r * shape_[1] + c];
}

void Tensor::fill(float value) noexcept {
  for (float& v : data_) v = value;
}

void Tensor::fill_normal(util::Rng& rng, float mean, float stddev) {
  for (float& v : data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
}

void Tensor::fill_uniform(util::Rng& rng, float lo, float hi) {
  for (float& v : data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
}

void Tensor::reshape(Shape shape) {
  if (shape.count() != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch");
  }
  shape_ = shape;
}

std::size_t Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("Tensor::argmax on empty tensor");
  std::size_t best = 0;
  for (std::size_t i = 1; i < data_.size(); ++i) {
    if (data_[i] > data_[best]) best = i;
  }
  return best;
}

double Tensor::sum() const noexcept {
  double s = 0.0;
  for (const float v : data_) s += v;
  return s;
}

float Tensor::max_abs_diff(const Tensor& other) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("Tensor::max_abs_diff: shape mismatch");
  }
  float worst = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool bit_identical(const Tensor& a, const Tensor& b) noexcept {
  if (a.shape() != b.shape()) return false;
  for (std::size_t i = 0; i < a.count(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace hybridcnn::tensor
