// Dense float32 tensor with row-major layout. This is the data type every
// substrate in the library (CNN engine, reliable executors, vision
// pipeline) exchanges. Deliberately simple: owning, contiguous, no views —
// the reliability analysis depends on being able to reason about exactly
// which scalar operations execute.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/shape.hpp"
#include "util/rng.hpp"

namespace hybridcnn::tensor {

/// Owning dense float tensor. Elements are stored row-major, i.e. for an
/// NCHW activation the innermost index is W.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor adopting the given values; values.size() must equal
  /// shape.count(); throws std::invalid_argument otherwise.
  Tensor(Shape shape, std::vector<float> values);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t count() const noexcept { return data_.size(); }

  [[nodiscard]] std::span<const float> data() const noexcept {
    return data_;
  }
  [[nodiscard]] std::span<float> data() noexcept { return data_; }

  /// Flat element access with bounds checking.
  [[nodiscard]] float at(std::size_t i) const;
  float& at(std::size_t i);

  /// Unchecked flat access (hot loops).
  [[nodiscard]] float operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  float& operator[](std::size_t i) noexcept { return data_[i]; }

  /// 4-D access (n, c, h, w) for rank-4 tensors; bounds-checked.
  [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w) const;
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);

  /// 3-D access (c, h, w) for rank-3 tensors; bounds-checked.
  [[nodiscard]] float at3(std::size_t c, std::size_t h, std::size_t w) const;
  float& at3(std::size_t c, std::size_t h, std::size_t w);

  /// 2-D access (r, c) for rank-2 tensors; bounds-checked.
  [[nodiscard]] float at2(std::size_t r, std::size_t c) const;
  float& at2(std::size_t r, std::size_t c);

  /// Sets every element to `value`.
  void fill(float value) noexcept;

  /// Fills with N(mean, stddev) draws from `rng`.
  void fill_normal(util::Rng& rng, float mean, float stddev);

  /// Fills with U[lo, hi) draws from `rng`.
  void fill_uniform(util::Rng& rng, float lo, float hi);

  /// Reshapes in place; the new shape must have the same element count.
  void reshape(Shape shape);

  /// Index of the maximum element (first on ties). Requires count() > 0.
  [[nodiscard]] std::size_t argmax() const;

  /// Sum of all elements (double accumulator).
  [[nodiscard]] double sum() const noexcept;

  /// Largest absolute element difference against another tensor of the
  /// same shape; throws std::invalid_argument on shape mismatch.
  [[nodiscard]] float max_abs_diff(const Tensor& other) const;

  friend bool operator==(const Tensor& a, const Tensor& b) noexcept {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  Shape shape_{};
  std::vector<float> data_;
};

/// True iff both tensors have the same shape and bitwise-identical
/// elements. Unlike operator== this treats two NaNs with the same
/// payload as equal and +0/-0 as different: the reliability layer's
/// redundancy comparisons and the static-dispatch equivalence checks
/// compare what the hardware actually produced, not float equality.
[[nodiscard]] bool bit_identical(const Tensor& a, const Tensor& b) noexcept;

}  // namespace hybridcnn::tensor
