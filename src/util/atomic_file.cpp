#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace hybridcnn::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + what + " failed for " +
                           path + ": " + std::strerror(errno));
}

/// Directory component of `path` ("." when there is none) — the inode
/// whose entry table the rename mutates, and therefore the one that
/// must be fsynced for the rename to survive power loss.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// write(2) until the buffer is drained (short writes are legal).
bool write_all(int fd, const unsigned char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size) {
  const std::string tmp = path + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open", tmp);

  const bool wrote =
      write_all(fd, static_cast<const unsigned char*>(data), size);
  const bool synced = wrote && ::fsync(fd) == 0;
  if (::close(fd) != 0 || !synced) {
    ::unlink(tmp.c_str());
    fail(wrote ? (synced ? "close" : "fsync") : "write", tmp);
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename", path);
  }

  // Durability of the rename itself: fsync the directory entry. A
  // failure here is reported (the caller's checkpoint may not survive
  // power loss) but the rename has already happened, so path is intact.
  const std::string dir = parent_dir(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) fail("open directory", dir);
  const bool dir_synced = ::fsync(dfd) == 0;
  ::close(dfd);
  if (!dir_synced) fail("fsync directory", dir);
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  out.clear();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;

  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return false;
  }
  out.resize(static_cast<std::size_t>(st.st_size));

  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::read(fd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      out.clear();
      return false;
    }
    if (n == 0) break;  // file shrank under us: keep the bytes we got
    off += static_cast<std::size_t>(n);
  }
  out.resize(off);
  ::close(fd);
  return true;
}

}  // namespace hybridcnn::util
