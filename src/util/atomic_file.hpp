// Atomic, durable small-file I/O: the write-temp / fsync / rename
// primitive under the campaign fabric's crash-tolerant checkpoints.
//
// atomic_write_file guarantees that after a crash at ANY instruction —
// including SIGKILL mid-write and power loss between the data fsync and
// the rename — a later reader of `path` observes either the complete
// previous contents or the complete new contents, never a mixture and
// never a torn prefix of the new file. The sequence is the classic
// journaling recipe: write `path + ".tmp"`, fsync the file, rename(2)
// over `path` (atomic within a filesystem), then fsync the containing
// directory so the rename itself is durable.
//
// Single-writer contract: the temp name is deterministic (`path + ".tmp"`),
// so concurrent writers to the SAME path would race on it — callers
// serialise (the fabric coordinator persists under its state mutex). A
// stale temp file left by a crash is simply overwritten by the next
// write and never read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hybridcnn::util {

/// Atomically replaces the contents of `path` with `size` bytes from
/// `data` (see file comment for the durability guarantee). Throws
/// std::runtime_error if any step fails; on failure `path` is untouched
/// and the temp file is removed.
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size);

inline void atomic_write_file(const std::string& path,
                              const std::vector<std::uint8_t>& data) {
  atomic_write_file(path, data.data(), data.size());
}

/// Reads the entire file into `out`. Returns false (leaving `out`
/// cleared) when the file does not exist or cannot be read — absence is
/// an expected state for a first-run checkpoint, not an error.
[[nodiscard]] bool read_file(const std::string& path,
                             std::vector<std::uint8_t>& out);

}  // namespace hybridcnn::util
