// Compile-time contract assertions.
//
// The repo's reliability guarantees rest on invariants that are written
// down in per-subsystem READMEs but were historically only checked at
// runtime by tests (bit-identity sweeps, campaign equivalence). This
// header turns the machine-checkable subset into static_asserts with a
// uniform "[contract] " message prefix, so a violating refactor fails to
// *compile* instead of surfacing as a flaky bit-identity test. Subsystems
// include this header and instantiate the checks next to the types they
// guard (util/ sits below every other layer, so the dependency only
// points downward):
//
//   * reliable/executor.hpp — executor finality (static dispatch folds
//     mul_inline/add_inline only because the schemes are final) and
//     Scheme enum / dispatch-table agreement;
//   * runtime/isa.hpp + reliable/static_dispatch.hpp — ISA lane-width /
//     pack-padding consistency (a vector that is not exactly
//     kFloatLanes floats breaks the overlapping-remainder trick);
//   * reliable/checkpoint.hpp, core/fault_seed_stream.hpp,
//     faultsim/* — trivially-copyable checkpoint/seed/stat payloads
//     (committed state is modelled as an atomic NVM write; that model is
//     only honest for memcpy-able types).
//
// The textual-contract half (banned nondeterminism sources, RNG seed
// provenance, FP-contraction hygiene, const infer paths) is enforced by
// tools/contract_lint — see tools/contract_lint/README.md.
#pragma once

#include <type_traits>

/// static_assert with the uniform contract prefix. Use for ad-hoc
/// subsystem invariants; prefer the named macros below when one fits.
#define HYBRIDCNN_CONTRACT(expr, msg) \
  static_assert(expr, "[contract] " msg)

/// The type is final: the statically dispatched kernels call its
/// non-virtual *_inline methods directly, which is only equivalent to
/// virtual dispatch if no subclass can override behaviour.
#define HYBRIDCNN_CONTRACT_FINAL(T)        \
  static_assert(std::is_final_v<T>,        \
                "[contract] " #T           \
                " must be final: static dispatch bypasses its vtable")

/// The type is a bitwise-copyable payload: checkpoint commits, seed
/// cursors and stat counters are modelled as atomic memcpy-able state
/// (double-buffered NVM slots, value-semantic streams). A non-trivial
/// copy would make that model dishonest.
#define HYBRIDCNN_CONTRACT_TRIVIAL_PAYLOAD(T)                         \
  static_assert(std::is_trivially_copyable_v<T>,                      \
                "[contract] " #T                                      \
                " must be trivially copyable: it is committed/copied " \
                "as raw bytes")

/// Two constants agree (enum count vs dispatch-table extent, class
/// constant vs table entry). Spelling both sides at the assert site
/// keeps the table and the enum from drifting apart silently.
#define HYBRIDCNN_CONTRACT_AGREE(a, b, msg) \
  static_assert((a) == (b), "[contract] " msg)

namespace hybridcnn::util::contracts {

/// True iff n is a power of two (and nonzero). Vector lane counts and
/// pack paddings must be powers of two for the masked-tail and
/// overlapping-remainder arithmetic in the SIMD kernels to be exact.
constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// True iff `padded` is `n` rounded up to a multiple of `align`. The
/// lane-padded packs guarantee exactly this; anything looser would let
/// a tail block read or scatter out of bounds.
constexpr bool is_padded_to(std::size_t padded, std::size_t n,
                            std::size_t align) noexcept {
  return padded >= n && padded % align == 0 && padded - n < align;
}

}  // namespace hybridcnn::util::contracts
