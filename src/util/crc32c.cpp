#include "util/crc32c.hpp"

#include <array>

namespace hybridcnn::util {

namespace {

/// Reflected CRC32C byte table, built once at static-init time from the
/// reversed Castagnoli polynomial. constexpr so the table is a
/// compile-time constant — no first-call latency, no init-order hazard.
constexpr std::array<std::uint32_t, 256> make_table() noexcept {
  constexpr std::uint32_t kPolyReflected = 0x82F63B78u;
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t byte = 0; byte < 256; ++byte) {
    std::uint32_t crc = byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[byte] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t crc) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace hybridcnn::util
