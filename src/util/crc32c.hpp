// CRC32C (Castagnoli) checksum.
//
// The checksum guarding every durable artefact the campaign fabric
// writes: checkpoint records are only trusted when their stored CRC
// matches a recomputation over the bytes read back, so a torn write, a
// truncated tail or a bit flip at rest is detected instead of being
// merged into campaign results. CRC32C (polynomial 0x1EDC6F41) is the
// storage-stack standard (iSCSI, ext4, Btrfs); this is the reflected
// table-driven software form — no SSE4.2 dependency, bit-identical on
// every build.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hybridcnn::util {

/// CRC32C of `size` bytes starting at `data`, seeded by `crc` — pass the
/// previous return value to checksum a discontiguous payload
/// incrementally; the default seed starts a fresh checksum. The empty
/// range returns the seed's fresh value (0 for the default).
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t size,
                                   std::uint32_t crc = 0) noexcept;

}  // namespace hybridcnn::util
