#include "util/csv.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>

namespace hybridcnn::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (values.size() != columns_) {
    throw std::runtime_error("CsvWriter: row width mismatch in " + path_);
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(values[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::num(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

std::string CsvWriter::escape(std::string_view v) {
  const bool needs_quotes =
      v.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(v);
  std::string out = "\"";
  for (const char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string results_path(const std::string& dir, const std::string& file) {
  std::filesystem::create_directories(dir);
  return dir + "/" + file;
}

}  // namespace hybridcnn::util
