// Minimal CSV emitter. Benchmarks write every reproduced table/figure as a
// CSV series next to the human-readable console table so results can be
// re-plotted against the paper.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace hybridcnn::util {

/// Writes rows of a CSV file. Values are quoted only when necessary.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; the column count must match the header.
  void row(const std::vector<std::string>& values);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string num(double v);

  /// The path this writer is writing to.
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  static std::string escape(std::string_view v);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Creates (if needed) the directory benchmarks write their CSVs into and
/// returns `dir + "/" + file`.
std::string results_path(const std::string& dir, const std::string& file);

}  // namespace hybridcnn::util
