#include "util/image_io.hpp"

#include <fstream>
#include <stdexcept>

namespace hybridcnn::util {

namespace {

void require(bool cond, const std::string& msg) {
  if (!cond) throw std::runtime_error(msg);
}

}  // namespace

void write_pgm(const std::string& path, const GrayImage& img) {
  require(img.pixels.size() ==
              static_cast<std::size_t>(img.width) * img.height,
          "write_pgm: pixel buffer size mismatch");
  std::ofstream out(path, std::ios::binary);
  require(static_cast<bool>(out), "write_pgm: cannot open " + path);
  out << "P5\n" << img.width << ' ' << img.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.pixels.data()),
            static_cast<std::streamsize>(img.pixels.size()));
  require(static_cast<bool>(out), "write_pgm: write failed for " + path);
}

void write_ppm(const std::string& path, const RgbImage& img) {
  require(img.pixels.size() ==
              static_cast<std::size_t>(img.width) * img.height * 3,
          "write_ppm: pixel buffer size mismatch");
  std::ofstream out(path, std::ios::binary);
  require(static_cast<bool>(out), "write_ppm: cannot open " + path);
  out << "P6\n" << img.width << ' ' << img.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.pixels.data()),
            static_cast<std::streamsize>(img.pixels.size()));
  require(static_cast<bool>(out), "write_ppm: write failed for " + path);
}

GrayImage read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(static_cast<bool>(in), "read_pgm: cannot open " + path);
  std::string magic;
  in >> magic;
  require(magic == "P5", "read_pgm: not a binary PGM: " + path);
  int width = 0;
  int height = 0;
  int maxval = 0;
  in >> width >> height >> maxval;
  require(width > 0 && height > 0 && maxval == 255,
          "read_pgm: unsupported header in " + path);
  in.get();  // single whitespace after header
  GrayImage img;
  img.width = width;
  img.height = height;
  img.pixels.resize(static_cast<std::size_t>(width) * height);
  in.read(reinterpret_cast<char*>(img.pixels.data()),
          static_cast<std::streamsize>(img.pixels.size()));
  require(static_cast<bool>(in), "read_pgm: truncated file " + path);
  return img;
}

}  // namespace hybridcnn::util
