// PGM/PPM image IO. Used by examples and benches to dump rendered signs,
// edge maps and qualifier inputs for visual inspection (Fig. 3 artefacts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hybridcnn::util {

/// 8-bit grayscale image in row-major order.
struct GrayImage {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> pixels;  // size == width * height

  [[nodiscard]] std::uint8_t at(int y, int x) const {
    return pixels[static_cast<std::size_t>(y) * width + x];
  }
  std::uint8_t& at(int y, int x) {
    return pixels[static_cast<std::size_t>(y) * width + x];
  }
};

/// 8-bit RGB image, interleaved row-major order.
struct RgbImage {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> pixels;  // size == width * height * 3
};

/// Writes a binary PGM (P5). Throws std::runtime_error on IO failure.
void write_pgm(const std::string& path, const GrayImage& img);

/// Writes a binary PPM (P6). Throws std::runtime_error on IO failure.
void write_ppm(const std::string& path, const RgbImage& img);

/// Reads a binary PGM (P5). Throws std::runtime_error on parse failure.
GrayImage read_pgm(const std::string& path);

}  // namespace hybridcnn::util
