#include "util/rng.hpp"

#include <cmath>

namespace hybridcnn::util {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0), inc_((stream << 1u) | 1u) {
  // Standard PCG32 seeding sequence.
  (*this)();
  std::uint64_t mix = seed;
  state_ += splitmix64(mix);
  (*this)();
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::uniform() noexcept {
  // 53-bit mantissa from two draws for a dense [0,1) double.
  const std::uint64_t hi = (*this)();
  const std::uint64_t lo = (*this)();
  const std::uint64_t bits53 = ((hi << 21) ^ lo) & ((1ULL << 53) - 1);
  return static_cast<double>(bits53) * (1.0 / 9007199254740992.0);
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span << 2^64 for all our uses.
  const std::uint64_t r =
      (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  constexpr double two_pi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_normal_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() noexcept {
  const std::uint64_t seed =
      (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  const std::uint64_t stream =
      (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  return Rng(seed, stream);
}

}  // namespace hybridcnn::util
