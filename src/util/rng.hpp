// Deterministic pseudo-random number generation for reproducible
// experiments. Every stochastic component in the library (fault injection,
// weight initialisation, dataset rendering) draws from an explicitly seeded
// Rng so that a campaign re-run with the same seed is bit-identical.
#pragma once

#include <cstdint>
#include <limits>

namespace hybridcnn::util {

/// splitmix64: used to expand a single user seed into stream seeds.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// PCG32 (O'Neill, "PCG: A Family of Simple Fast Space-Efficient
/// Statistically Good Algorithms for Random Number Generation").
/// Small state, fast, and good enough statistical quality for fault
/// sampling and data synthesis. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint32_t;

  /// Constructs a generator from a user seed and a stream id. Distinct
  /// stream ids yield statistically independent sequences for one seed,
  /// which the fault-injection campaigns use to decorrelate fault sites.
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL,
               std::uint64_t stream = 0) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 32 random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached spare value).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Forks an independent child generator; deterministic function of the
  /// current state. Used to hand each layer / fault site its own stream.
  Rng fork() noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace hybridcnn::util
