// Wall-clock stopwatch used by the benchmark harnesses to reproduce the
// paper's Table 1 style "execution in seconds" rows.
#pragma once

#include <chrono>

namespace hybridcnn::util {

/// Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hybridcnn::util
