#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hybridcnn::util {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void Table::row(const std::vector<std::string>& values) {
  if (values.size() != header_.size()) {
    throw std::runtime_error("Table: row width mismatch in '" + title_ + "'");
  }
  rows_.push_back(values);
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c]))
         << r[c] << ' ';
    }
    os << "|\n";
  };
  emit_row(header_);
  os << '|';
  for (const std::size_t w : width) {
    os << std::string(w + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string Table::fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace hybridcnn::util
