// Console table printer used by the bench harnesses to print rows in the
// same shape as the paper's tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace hybridcnn::util {

/// Accumulates rows and prints an aligned ASCII table.
class Table {
 public:
  /// Creates a table with the given title and column headers.
  Table(std::string title, std::vector<std::string> header);

  /// Appends a row; width must match the header.
  void row(const std::vector<std::string>& values);

  /// Renders the table to a string.
  [[nodiscard]] std::string str() const;

  /// Prints the table to stdout.
  void print() const;

  /// Formats a double with the given precision (fixed).
  static std::string fixed(double v, int precision = 3);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hybridcnn::util
