#include "vision/centroid.hpp"

namespace hybridcnn::vision {

std::optional<Centroid> centroid(ConstMaskView mask) {
  double sy = 0.0;
  double sx = 0.0;
  std::size_t n = 0;
  for (std::size_t y = 0; y < mask.height; ++y) {
    for (std::size_t x = 0; x < mask.width; ++x) {
      if (!mask.at(y, x)) continue;
      sy += static_cast<double>(y);
      sx += static_cast<double>(x);
      ++n;
    }
  }
  if (n == 0) return std::nullopt;
  return Centroid{sy / static_cast<double>(n), sx / static_cast<double>(n)};
}

std::optional<Centroid> centroid(const BinaryMask& mask) {
  return centroid(mask.view());
}

}  // namespace hybridcnn::vision
