// Shape centroid computation.
#pragma once

#include <optional>

#include "vision/mask.hpp"

namespace hybridcnn::vision {

/// Sub-pixel centroid (y, x) of a mask.
struct Centroid {
  double y = 0.0;
  double x = 0.0;
};

/// First moment of the set pixels; nullopt for an empty mask.
/// Allocation-free view overload.
std::optional<Centroid> centroid(ConstMaskView mask);

/// First moment of the set pixels; nullopt for an empty mask.
std::optional<Centroid> centroid(const BinaryMask& mask);

}  // namespace hybridcnn::vision
