#include "vision/edge_map.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>

#include "vision/gray.hpp"
#include "vision/sobel.hpp"
#include "vision/threshold.hpp"

namespace hybridcnn::vision {

tensor::Tensor edge_magnitude(const tensor::Tensor& chw) {
  return sobel_magnitude(to_gray(chw));
}

BinaryMask dominant_shape(const tensor::Tensor& chw, double min_fraction) {
  const auto& sh = chw.shape();
  if (sh.rank() != 3 || (sh[0] != 3 && sh[0] != 1)) {
    throw std::invalid_argument("dominant_shape: expected [3|1, H, W]");
  }
  const std::size_t channels = sh[0];
  const std::size_t h = sh[1];
  const std::size_t w = sh[2];
  const std::size_t plane = h * w;

  // Background colour estimate: mean over the 1-pixel border ring, which
  // a centred sign never covers.
  double bg[3] = {0.0, 0.0, 0.0};
  std::size_t ring = 0;
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if (y != 0 && y != h - 1 && x != 0 && x != w - 1) continue;
      for (std::size_t c = 0; c < channels; ++c) {
        bg[c] += chw[c * plane + y * w + x];
      }
      ++ring;
    }
  }
  for (std::size_t c = 0; c < channels; ++c) {
    bg[c] /= static_cast<double>(ring);
  }

  // Colour distance to background, Otsu-binarised.
  tensor::Tensor dist(tensor::Shape{h, w});
  for (std::size_t p = 0; p < plane; ++p) {
    double acc = 0.0;
    for (std::size_t c = 0; c < channels; ++c) {
      const double d = static_cast<double>(chw[c * plane + p]) - bg[c];
      acc += d * d;
    }
    dist[p] = static_cast<float>(std::sqrt(acc));
  }
  const BinaryMask candidate = largest_component(threshold_otsu(dist));
  (void)min_fraction;
  return candidate;
}

BinaryMask mask_from_feature_map(const tensor::Tensor& feature_map) {
  // Edge pixels from the feature map's absolute response.
  tensor::Tensor mag(feature_map.shape());
  for (std::size_t i = 0; i < mag.count(); ++i) {
    const float v = feature_map[i];
    mag[i] = v >= 0.0f ? v : -v;
  }
  BinaryMask edges = threshold_otsu(mag);
  const std::size_t h = edges.height;
  const std::size_t w = edges.width;

  // A zero-padded edge convolution produces spurious strong responses
  // along the image frame; the frame is not shape evidence, so clear a
  // two-pixel band before any morphology can smear it inward.
  const auto clear_band = [&](std::size_t width) {
    for (std::size_t b = 0; b < width; ++b) {
      for (std::size_t x = 0; x < w; ++x) {
        edges.set(b, x, false);
        edges.set(h - 1 - b, x, false);
      }
      for (std::size_t y = 0; y < h; ++y) {
        edges.set(y, b, false);
        edges.set(y, w - 1 - b, false);
      }
    }
  };
  clear_band(2);

  // Close small contour gaps: a single mixed-direction filter (the
  // paper's Sobel x/y/x stack collapses both gradient axes into one map)
  // has directional nulls where the boundary response vanishes, and any
  // gap lets the background flood leak into the shape.
  edges = dilate(edges, 1);

  // Keep the outermost ring free so the background flood below always
  // has entry points.
  clear_band(1);

  // Fill the interior: flood the background from the border over non-edge
  // pixels; whatever is unreachable is inside an edge contour.
  std::vector<std::uint8_t> outside(h * w, 0);
  std::queue<std::size_t> frontier;
  const auto push = [&](std::size_t y, std::size_t x) {
    const std::size_t idx = y * w + x;
    if (outside[idx] != 0 || edges.data[idx] != 0) return;
    outside[idx] = 1;
    frontier.push(idx);
  };
  for (std::size_t x = 0; x < w; ++x) {
    push(0, x);
    push(h - 1, x);
  }
  for (std::size_t y = 0; y < h; ++y) {
    push(y, 0);
    push(y, w - 1);
  }
  while (!frontier.empty()) {
    const std::size_t idx = frontier.front();
    frontier.pop();
    const std::size_t y = idx / w;
    const std::size_t x = idx % w;
    if (y > 0) push(y - 1, x);
    if (y + 1 < h) push(y + 1, x);
    if (x > 0) push(y, x - 1);
    if (x + 1 < w) push(y, x + 1);
  }

  BinaryMask filled(h, w);
  for (std::size_t i = 0; i < filled.data.size(); ++i) {
    filled.data[i] = outside[i] != 0 ? 0 : 1;
  }
  // Erode once to undo the dilation's boundary fattening.
  return largest_component(erode(filled, 1));
}

}  // namespace hybridcnn::vision
