#include "vision/edge_map.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "vision/gray.hpp"
#include "vision/sobel.hpp"
#include "vision/threshold.hpp"

namespace hybridcnn::vision {

void edge_magnitude(const tensor::Tensor& chw, std::span<float> out,
                    runtime::Workspace& ws) {
  const auto& sh = chw.shape();
  if (sh.rank() != 3 || (sh[0] != 3 && sh[0] != 1)) {
    throw std::invalid_argument("edge_magnitude: expected [3|1, H, W]");
  }
  runtime::Workspace::Scope scope(ws);
  const std::span<float> gray = ws.alloc_span_as<float>(sh[1] * sh[2]);
  to_gray(chw, gray);
  sobel_magnitude(gray, sh[1], sh[2], out);
}

tensor::Tensor edge_magnitude(const tensor::Tensor& chw) {
  return sobel_magnitude(to_gray(chw));
}

BinaryMask dominant_shape(const tensor::Tensor& chw, double min_fraction) {
  const auto& sh = chw.shape();
  if (sh.rank() != 3 || (sh[0] != 3 && sh[0] != 1)) {
    throw std::invalid_argument("dominant_shape: expected [3|1, H, W]");
  }
  const std::size_t channels = sh[0];
  const std::size_t h = sh[1];
  const std::size_t w = sh[2];
  const std::size_t plane = h * w;

  // Background colour estimate: mean over the 1-pixel border ring, which
  // a centred sign never covers.
  double bg[3] = {0.0, 0.0, 0.0};
  std::size_t ring = 0;
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if (y != 0 && y != h - 1 && x != 0 && x != w - 1) continue;
      for (std::size_t c = 0; c < channels; ++c) {
        bg[c] += chw[c * plane + y * w + x];
      }
      ++ring;
    }
  }
  for (std::size_t c = 0; c < channels; ++c) {
    bg[c] /= static_cast<double>(ring);
  }

  // Colour distance to background, Otsu-binarised.
  tensor::Tensor dist(tensor::Shape{h, w});
  for (std::size_t p = 0; p < plane; ++p) {
    double acc = 0.0;
    for (std::size_t c = 0; c < channels; ++c) {
      const double d = static_cast<double>(chw[c * plane + p]) - bg[c];
      acc += d * d;
    }
    dist[p] = static_cast<float>(std::sqrt(acc));
  }
  const BinaryMask candidate = largest_component(threshold_otsu(dist));
  (void)min_fraction;
  return candidate;
}

void mask_from_feature_map(std::span<const float> feature_map, std::size_t h,
                           std::size_t w, MaskView out,
                           runtime::Workspace& ws) {
  if (feature_map.size() != h * w || out.height != h || out.width != w ||
      out.data == nullptr) {
    throw std::invalid_argument("mask_from_feature_map: size mismatch");
  }
  const std::size_t n = h * w;
  runtime::Workspace::Scope scope(ws);

  // Edge pixels from the feature map's absolute response.
  const std::span<float> mag = ws.alloc_span_as<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float v = feature_map[i];
    mag[i] = v >= 0.0f ? v : -v;
  }
  MaskView edges{h, w, ws.alloc_as<std::uint8_t>(n)};
  threshold_otsu(mag, edges);

  // A zero-padded edge convolution produces spurious strong responses
  // along the image frame; the frame is not shape evidence, so clear a
  // two-pixel band before any morphology can smear it inward.
  // Band depth is clamped to the image so the mirrored index h-1-b can
  // never underflow on degenerate sizes (also keeps GCC's object-size
  // analysis happy under -O3).
  const auto clear_band = [&](MaskView m, std::size_t band) {
    for (std::size_t b = 0; b < std::min(band, h); ++b) {
      for (std::size_t x = 0; x < w; ++x) {
        m.set(b, x, false);
        m.set(h - 1 - b, x, false);
      }
    }
    for (std::size_t b = 0; b < std::min(band, w); ++b) {
      for (std::size_t y = 0; y < h; ++y) {
        m.set(y, b, false);
        m.set(y, w - 1 - b, false);
      }
    }
  };
  clear_band(edges, 2);

  // Close small contour gaps: a single mixed-direction filter (the
  // paper's Sobel x/y/x stack collapses both gradient axes into one map)
  // has directional nulls where the boundary response vanishes, and any
  // gap lets the background flood leak into the shape.
  MaskView dilated{h, w, ws.alloc_as<std::uint8_t>(n)};
  dilate(edges, 1, dilated);

  // Keep the outermost ring free so the background flood below always
  // has entry points.
  clear_band(dilated, 1);

  // Fill the interior: flood the background from the border over non-edge
  // pixels; whatever is unreachable is inside an edge contour.
  std::uint8_t* outside = ws.alloc_as<std::uint8_t>(n);
  for (std::size_t i = 0; i < n; ++i) outside[i] = 0;
  std::size_t* queue = ws.alloc_as<std::size_t>(n);
  std::size_t head = 0;
  std::size_t tail = 0;
  const auto push = [&](std::size_t y, std::size_t x) {
    const std::size_t idx = y * w + x;
    if (outside[idx] != 0 || dilated.data[idx] != 0) return;
    outside[idx] = 1;
    queue[tail++] = idx;
  };
  for (std::size_t x = 0; x < w; ++x) {
    push(0, x);
    push(h - 1, x);
  }
  for (std::size_t y = 0; y < h; ++y) {
    push(y, 0);
    push(y, w - 1);
  }
  while (head < tail) {
    const std::size_t idx = queue[head++];
    const std::size_t y = idx / w;
    const std::size_t x = idx % w;
    if (y > 0) push(y - 1, x);
    if (y + 1 < h) push(y + 1, x);
    if (x > 0) push(y, x - 1);
    if (x + 1 < w) push(y, x + 1);
  }

  MaskView filled{h, w, ws.alloc_as<std::uint8_t>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    filled.data[i] = outside[i] != 0 ? 0 : 1;
  }
  // Erode once to undo the dilation's boundary fattening.
  MaskView eroded{h, w, ws.alloc_as<std::uint8_t>(n)};
  erode(filled, 1, eroded);
  largest_component(eroded, out, ws);
}

BinaryMask mask_from_feature_map(const tensor::Tensor& feature_map) {
  const auto& sh = feature_map.shape();
  if (sh.rank() != 2) {
    throw std::invalid_argument("mask_from_feature_map: expected [H, W]");
  }
  BinaryMask out(sh[0], sh[1]);
  mask_from_feature_map(feature_map.data(), sh[0], sh[1], out.view(),
                        runtime::thread_scratch());
  return out;
}

}  // namespace hybridcnn::vision
