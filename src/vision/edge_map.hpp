// End-to-end deterministic edge/shape extraction helpers combining the
// pipeline stages (gray -> Sobel -> threshold -> component -> mask).
#pragma once

#include <span>

#include "runtime/workspace.hpp"
#include "tensor/tensor.hpp"
#include "vision/mask.hpp"

namespace hybridcnn::vision {

/// Explicit-scratch overload: edge-magnitude map of a [3|1, H, W] image
/// into the H*W plane `out`, drawing the luminance scratch from `ws`.
void edge_magnitude(const tensor::Tensor& chw, std::span<float> out,
                    runtime::Workspace& ws);

/// Edge-magnitude map of a [3|1, H, W] image.
tensor::Tensor edge_magnitude(const tensor::Tensor& chw);

/// Binary silhouette of the dominant shape in a [3|1, H, W] image.
/// The background colour is estimated from the image border ring; pixels
/// are scored by colour distance to it and Otsu-binarised, so a sign whose
/// fill and rim straddle the background luminance is still segmented as
/// one silhouette. Returns the largest connected component.
BinaryMask dominant_shape(const tensor::Tensor& chw,
                          double min_fraction = 0.02);

/// Explicit-scratch overload of mask_from_feature_map over a flat H*W
/// feature-map plane. Every intermediate (magnitude, edge masks, flood
/// fill frontier) is drawn from `ws`; `out` must be an h x w view.
void mask_from_feature_map(std::span<const float> feature_map, std::size_t h,
                           std::size_t w, MaskView out,
                           runtime::Workspace& ws);

/// Binary mask from a single feature map [H, W] produced by a (reliable)
/// Sobel convolution filter: magnitude -> Otsu -> fill via largest
/// component of the *interior* (edge-bounded) region.
BinaryMask mask_from_feature_map(const tensor::Tensor& feature_map);

}  // namespace hybridcnn::vision
