#include "vision/gray.hpp"

#include <stdexcept>

namespace hybridcnn::vision {

void to_gray(const tensor::Tensor& chw, std::span<float> out) {
  const auto& sh = chw.shape();
  if (sh.rank() != 3 || (sh[0] != 3 && sh[0] != 1)) {
    throw std::invalid_argument("to_gray: expected [3|1, H, W], got " +
                                sh.str());
  }
  const std::size_t plane = sh[1] * sh[2];
  if (out.size() != plane) {
    throw std::invalid_argument("to_gray: out.size() != H*W");
  }
  if (sh[0] == 1) {
    for (std::size_t i = 0; i < plane; ++i) out[i] = chw[i];
    return;
  }
  for (std::size_t i = 0; i < plane; ++i) {
    out[i] = 0.299f * chw[i] + 0.587f * chw[plane + i] +
             0.114f * chw[2 * plane + i];
  }
}

tensor::Tensor to_gray(const tensor::Tensor& chw) {
  const auto& sh = chw.shape();
  if (sh.rank() != 3 || (sh[0] != 3 && sh[0] != 1)) {
    throw std::invalid_argument("to_gray: expected [3|1, H, W], got " +
                                sh.str());
  }
  tensor::Tensor gray(tensor::Shape{sh[1], sh[2]});
  to_gray(chw, gray.data());
  return gray;
}

}  // namespace hybridcnn::vision
