#include "vision/gray.hpp"

#include <stdexcept>

namespace hybridcnn::vision {

tensor::Tensor to_gray(const tensor::Tensor& chw) {
  const auto& sh = chw.shape();
  if (sh.rank() != 3 || (sh[0] != 3 && sh[0] != 1)) {
    throw std::invalid_argument("to_gray: expected [3|1, H, W], got " +
                                sh.str());
  }
  const std::size_t h = sh[1];
  const std::size_t w = sh[2];
  tensor::Tensor gray(tensor::Shape{h, w});
  if (sh[0] == 1) {
    for (std::size_t i = 0; i < h * w; ++i) gray[i] = chw[i];
    return gray;
  }
  const std::size_t plane = h * w;
  for (std::size_t i = 0; i < plane; ++i) {
    gray[i] = 0.299f * chw[i] + 0.587f * chw[plane + i] +
              0.114f * chw[2 * plane + i];
  }
  return gray;
}

}  // namespace hybridcnn::vision
