// Grayscale conversion between tensor image formats.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace hybridcnn::vision {

/// Explicit-scratch overload: converts a [3, H, W] (or [1, H, W]) float
/// image into the H*W luminance plane `out` using Rec.601 weights.
/// Throws std::invalid_argument on shape or out-size mismatch.
void to_gray(const tensor::Tensor& chw, std::span<float> out);

/// Allocating wrapper: returns the [H, W] luminance image.
tensor::Tensor to_gray(const tensor::Tensor& chw);

}  // namespace hybridcnn::vision
