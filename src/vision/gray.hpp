// Grayscale conversion between tensor image formats.
#pragma once

#include "tensor/tensor.hpp"

namespace hybridcnn::vision {

/// Converts a [3, H, W] (or [1, H, W]) float image to a [H, W] luminance
/// image using Rec.601 weights. Throws std::invalid_argument otherwise.
tensor::Tensor to_gray(const tensor::Tensor& chw);

}  // namespace hybridcnn::vision
