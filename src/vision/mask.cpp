#include "vision/mask.hpp"

#include <queue>

namespace hybridcnn::vision {

std::size_t BinaryMask::count() const {
  std::size_t n = 0;
  for (const auto v : data) n += v;
  return n;
}

BinaryMask dilate(const BinaryMask& mask, std::size_t radius) {
  const auto r = static_cast<std::int64_t>(radius);
  BinaryMask out(mask.height, mask.width);
  for (std::size_t y = 0; y < mask.height; ++y) {
    for (std::size_t x = 0; x < mask.width; ++x) {
      if (!mask.at(y, x)) continue;
      for (std::int64_t dy = -r; dy <= r; ++dy) {
        for (std::int64_t dx = -r; dx <= r; ++dx) {
          const auto ny = static_cast<std::int64_t>(y) + dy;
          const auto nx = static_cast<std::int64_t>(x) + dx;
          if (mask.contains(ny, nx)) {
            out.set(static_cast<std::size_t>(ny),
                    static_cast<std::size_t>(nx), true);
          }
        }
      }
    }
  }
  return out;
}

BinaryMask erode(const BinaryMask& mask, std::size_t radius) {
  const auto r = static_cast<std::int64_t>(radius);
  BinaryMask out(mask.height, mask.width);
  for (std::size_t y = 0; y < mask.height; ++y) {
    for (std::size_t x = 0; x < mask.width; ++x) {
      bool all = true;
      for (std::int64_t dy = -r; dy <= r && all; ++dy) {
        for (std::int64_t dx = -r; dx <= r && all; ++dx) {
          const auto ny = static_cast<std::int64_t>(y) + dy;
          const auto nx = static_cast<std::int64_t>(x) + dx;
          if (!mask.contains(ny, nx) ||
              !mask.at(static_cast<std::size_t>(ny),
                       static_cast<std::size_t>(nx))) {
            all = false;
          }
        }
      }
      if (all) out.set(y, x, true);
    }
  }
  return out;
}

BinaryMask largest_component(const BinaryMask& mask) {
  BinaryMask best(mask.height, mask.width);
  std::size_t best_size = 0;
  std::vector<std::uint8_t> visited(mask.data.size(), 0);

  for (std::size_t start = 0; start < mask.data.size(); ++start) {
    if (mask.data[start] == 0 || visited[start] != 0) continue;

    // BFS flood fill from `start`.
    std::vector<std::size_t> component;
    std::queue<std::size_t> frontier;
    frontier.push(start);
    visited[start] = 1;
    while (!frontier.empty()) {
      const std::size_t idx = frontier.front();
      frontier.pop();
      component.push_back(idx);
      const auto y = static_cast<std::int64_t>(idx / mask.width);
      const auto x = static_cast<std::int64_t>(idx % mask.width);
      const std::int64_t neighbours[4][2] = {
          {y - 1, x}, {y + 1, x}, {y, x - 1}, {y, x + 1}};
      for (const auto& n : neighbours) {
        if (!mask.contains(n[0], n[1])) continue;
        const std::size_t nidx =
            static_cast<std::size_t>(n[0]) * mask.width +
            static_cast<std::size_t>(n[1]);
        if (mask.data[nidx] == 0 || visited[nidx] != 0) continue;
        visited[nidx] = 1;
        frontier.push(nidx);
      }
    }

    if (component.size() > best_size) {
      best_size = component.size();
      best = BinaryMask(mask.height, mask.width);
      for (const std::size_t idx : component) best.data[idx] = 1;
    }
  }
  return best;
}

}  // namespace hybridcnn::vision
