#include "vision/mask.hpp"

#include <stdexcept>
#include <string>

namespace hybridcnn::vision {

namespace {

void require_same_dims(const ConstMaskView& in, const MaskView& out,
                       const char* what) {
  if (in.height != out.height || in.width != out.width ||
      out.data == nullptr) {
    throw std::invalid_argument(std::string(what) +
                                ": output view dimensions mismatch");
  }
}

}  // namespace

std::size_t BinaryMask::count() const {
  std::size_t n = 0;
  for (const auto v : data) n += v;
  return n;
}

void dilate(ConstMaskView mask, std::size_t radius, MaskView out) {
  require_same_dims(mask, out, "dilate");
  const auto r = static_cast<std::int64_t>(radius);
  out.fill(0);
  for (std::size_t y = 0; y < mask.height; ++y) {
    for (std::size_t x = 0; x < mask.width; ++x) {
      if (!mask.at(y, x)) continue;
      for (std::int64_t dy = -r; dy <= r; ++dy) {
        for (std::int64_t dx = -r; dx <= r; ++dx) {
          const auto ny = static_cast<std::int64_t>(y) + dy;
          const auto nx = static_cast<std::int64_t>(x) + dx;
          if (mask.contains(ny, nx)) {
            out.set(static_cast<std::size_t>(ny),
                    static_cast<std::size_t>(nx), true);
          }
        }
      }
    }
  }
}

BinaryMask dilate(const BinaryMask& mask, std::size_t radius) {
  BinaryMask out(mask.height, mask.width);
  dilate(mask.view(), radius, out.view());
  return out;
}

void erode(ConstMaskView mask, std::size_t radius, MaskView out) {
  require_same_dims(mask, out, "erode");
  const auto r = static_cast<std::int64_t>(radius);
  out.fill(0);
  for (std::size_t y = 0; y < mask.height; ++y) {
    for (std::size_t x = 0; x < mask.width; ++x) {
      bool all = true;
      for (std::int64_t dy = -r; dy <= r && all; ++dy) {
        for (std::int64_t dx = -r; dx <= r && all; ++dx) {
          const auto ny = static_cast<std::int64_t>(y) + dy;
          const auto nx = static_cast<std::int64_t>(x) + dx;
          if (!mask.contains(ny, nx) ||
              !mask.at(static_cast<std::size_t>(ny),
                       static_cast<std::size_t>(nx))) {
            all = false;
          }
        }
      }
      if (all) out.set(y, x, true);
    }
  }
}

BinaryMask erode(const BinaryMask& mask, std::size_t radius) {
  BinaryMask out(mask.height, mask.width);
  erode(mask.view(), radius, out.view());
  return out;
}

void largest_component(ConstMaskView mask, MaskView out,
                       runtime::Workspace& ws) {
  require_same_dims(mask, out, "largest_component");
  const std::size_t n = mask.size();
  out.fill(0);
  if (n == 0) return;

  runtime::Workspace::Scope scope(ws);
  // Component labels (0 = background / unvisited) and a flat BFS ring
  // buffer; every pixel enters the queue at most once, so n slots are
  // enough.
  std::size_t* label = ws.alloc_as<std::size_t>(n);
  std::size_t* queue = ws.alloc_as<std::size_t>(n);
  for (std::size_t i = 0; i < n; ++i) label[i] = 0;

  std::size_t next_label = 0;
  std::size_t best_label = 0;
  std::size_t best_size = 0;
  for (std::size_t start = 0; start < n; ++start) {
    if (mask.data[start] == 0 || label[start] != 0) continue;

    // BFS flood fill from `start`. Start pixels are visited in raster
    // order, so on ties the earliest component wins — the same tie-break
    // the allocating version applies.
    ++next_label;
    std::size_t head = 0;
    std::size_t tail = 0;
    queue[tail++] = start;
    label[start] = next_label;
    std::size_t component_size = 0;
    while (head < tail) {
      const std::size_t idx = queue[head++];
      ++component_size;
      const auto y = static_cast<std::int64_t>(idx / mask.width);
      const auto x = static_cast<std::int64_t>(idx % mask.width);
      const std::int64_t neighbours[4][2] = {
          {y - 1, x}, {y + 1, x}, {y, x - 1}, {y, x + 1}};
      for (const auto& nb : neighbours) {
        if (!mask.contains(nb[0], nb[1])) continue;
        const std::size_t nidx =
            static_cast<std::size_t>(nb[0]) * mask.width +
            static_cast<std::size_t>(nb[1]);
        if (mask.data[nidx] == 0 || label[nidx] != 0) continue;
        label[nidx] = next_label;
        queue[tail++] = nidx;
      }
    }

    if (component_size > best_size) {
      best_size = component_size;
      best_label = next_label;
    }
  }

  if (best_size == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    out.data[i] = label[i] == best_label ? 1 : 0;
  }
}

BinaryMask largest_component(const BinaryMask& mask) {
  BinaryMask out(mask.height, mask.width);
  largest_component(mask.view(), out.view(), runtime::thread_scratch());
  return out;
}

}  // namespace hybridcnn::vision
