// Binary image mask used by the deterministic shape pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/workspace.hpp"

namespace hybridcnn::vision {

/// Read-only non-owning view of row-major binary mask pixels. Used by the
/// explicit-scratch pipeline overloads so mask storage can live in a
/// runtime::Workspace arena instead of the heap.
struct ConstMaskView {
  std::size_t height = 0;
  std::size_t width = 0;
  const std::uint8_t* data = nullptr;  // 0 or 1, height * width entries

  [[nodiscard]] std::size_t size() const noexcept { return height * width; }
  [[nodiscard]] bool at(std::size_t y, std::size_t x) const {
    return data[y * width + x] != 0;
  }
  /// Number of set pixels.
  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < size(); ++i) n += data[i];
    return n;
  }
  /// In-bounds test for signed coordinates.
  [[nodiscard]] bool contains(std::int64_t y, std::int64_t x) const {
    return y >= 0 && x >= 0 && y < static_cast<std::int64_t>(height) &&
           x < static_cast<std::int64_t>(width);
  }
};

/// Mutable non-owning view; converts implicitly to ConstMaskView.
struct MaskView {
  std::size_t height = 0;
  std::size_t width = 0;
  std::uint8_t* data = nullptr;

  operator ConstMaskView() const noexcept {  // NOLINT(google-explicit-*)
    return {height, width, data};
  }
  [[nodiscard]] std::size_t size() const noexcept { return height * width; }
  [[nodiscard]] bool at(std::size_t y, std::size_t x) const {
    return data[y * width + x] != 0;
  }
  void set(std::size_t y, std::size_t x, bool v) {
    data[y * width + x] = v ? 1 : 0;
  }
  void fill(std::uint8_t v) {
    for (std::size_t i = 0; i < size(); ++i) data[i] = v;
  }
  [[nodiscard]] std::size_t count() const {
    return ConstMaskView(*this).count();
  }
  [[nodiscard]] bool contains(std::int64_t y, std::int64_t x) const {
    return ConstMaskView(*this).contains(y, x);
  }
};

/// Row-major binary mask (owning).
struct BinaryMask {
  std::size_t height = 0;
  std::size_t width = 0;
  std::vector<std::uint8_t> data;  // 0 or 1, size == height * width

  BinaryMask() = default;
  BinaryMask(std::size_t h, std::size_t w)
      : height(h), width(w), data(h * w, 0) {}

  [[nodiscard]] MaskView view() noexcept {
    return {height, width, data.data()};
  }
  [[nodiscard]] ConstMaskView view() const noexcept {
    return {height, width, data.data()};
  }
  operator ConstMaskView() const noexcept {  // NOLINT(google-explicit-*)
    return view();
  }

  [[nodiscard]] bool at(std::size_t y, std::size_t x) const {
    return data[y * width + x] != 0;
  }
  void set(std::size_t y, std::size_t x, bool v) {
    data[y * width + x] = v ? 1 : 0;
  }

  /// Number of set pixels.
  [[nodiscard]] std::size_t count() const;

  /// In-bounds test for signed coordinates.
  [[nodiscard]] bool contains(std::int64_t y, std::int64_t x) const {
    return y >= 0 && x >= 0 && y < static_cast<std::int64_t>(height) &&
           x < static_cast<std::int64_t>(width);
  }
};

/// Explicit-scratch overloads: `out` must match the input dimensions and
/// must not alias it. Results are identical to the allocating versions.
void largest_component(ConstMaskView mask, MaskView out,
                       runtime::Workspace& ws);
void dilate(ConstMaskView mask, std::size_t radius, MaskView out);
void erode(ConstMaskView mask, std::size_t radius, MaskView out);

/// Largest 4-connected component of `mask`; empty mask yields empty result.
BinaryMask largest_component(const BinaryMask& mask);

/// Morphological dilation with a (2r+1)x(2r+1) square structuring element.
BinaryMask dilate(const BinaryMask& mask, std::size_t radius = 1);

/// Morphological erosion with a (2r+1)x(2r+1) square structuring element
/// (pixels outside the image count as unset).
BinaryMask erode(const BinaryMask& mask, std::size_t radius = 1);

}  // namespace hybridcnn::vision
