// Binary image mask used by the deterministic shape pipeline.
#pragma once

#include <cstdint>
#include <vector>

namespace hybridcnn::vision {

/// Row-major binary mask.
struct BinaryMask {
  std::size_t height = 0;
  std::size_t width = 0;
  std::vector<std::uint8_t> data;  // 0 or 1, size == height * width

  BinaryMask() = default;
  BinaryMask(std::size_t h, std::size_t w)
      : height(h), width(w), data(h * w, 0) {}

  [[nodiscard]] bool at(std::size_t y, std::size_t x) const {
    return data[y * width + x] != 0;
  }
  void set(std::size_t y, std::size_t x, bool v) {
    data[y * width + x] = v ? 1 : 0;
  }

  /// Number of set pixels.
  [[nodiscard]] std::size_t count() const;

  /// In-bounds test for signed coordinates.
  [[nodiscard]] bool contains(std::int64_t y, std::int64_t x) const {
    return y >= 0 && x >= 0 && y < static_cast<std::int64_t>(height) &&
           x < static_cast<std::int64_t>(width);
  }
};

/// Largest 4-connected component of `mask`; empty mask yields empty result.
BinaryMask largest_component(const BinaryMask& mask);

/// Morphological dilation with a (2r+1)x(2r+1) square structuring element.
BinaryMask dilate(const BinaryMask& mask, std::size_t radius = 1);

/// Morphological erosion with a (2r+1)x(2r+1) square structuring element
/// (pixels outside the image count as unset).
BinaryMask erode(const BinaryMask& mask, std::size_t radius = 1);

}  // namespace hybridcnn::vision
