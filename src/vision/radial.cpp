#include "vision/radial.hpp"

#include <cmath>
#include <stdexcept>

namespace hybridcnn::vision {

std::vector<double> radial_distance_series(const BinaryMask& mask,
                                           const Centroid& c,
                                           std::size_t samples) {
  if (samples == 0) {
    throw std::invalid_argument("radial_distance_series: samples == 0");
  }
  const double max_r = std::hypot(static_cast<double>(mask.height),
                                  static_cast<double>(mask.width));
  std::vector<double> series(samples, 0.0);
  constexpr double two_pi = 6.283185307179586476925286766559;

  for (std::size_t s = 0; s < samples; ++s) {
    const double theta =
        two_pi * static_cast<double>(s) / static_cast<double>(samples);
    const double dy = std::sin(theta);
    const double dx = std::cos(theta);
    double farthest = 0.0;
    // Half-pixel stepping finds the farthest shape pixel along the ray,
    // which is robust to interior holes (e.g. a sign's inner legend).
    for (double r = 0.0; r <= max_r; r += 0.5) {
      const auto y = static_cast<std::int64_t>(std::llround(c.y + r * dy));
      const auto x = static_cast<std::int64_t>(std::llround(c.x + r * dx));
      if (!mask.contains(y, x)) break;
      if (mask.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x))) {
        farthest = r;
      }
    }
    series[s] = farthest;
  }
  return series;
}

std::vector<double> shape_signature(const BinaryMask& mask,
                                    std::size_t samples) {
  const BinaryMask component = largest_component(mask);
  const std::optional<Centroid> c = centroid(component);
  if (!c) return {};
  return radial_distance_series(component, *c, samples);
}

}  // namespace hybridcnn::vision
