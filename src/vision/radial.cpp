#include "vision/radial.hpp"

#include <cmath>
#include <stdexcept>

namespace hybridcnn::vision {

void radial_distance_series(ConstMaskView mask, const Centroid& c,
                            std::span<double> out) {
  if (out.empty()) {
    throw std::invalid_argument("radial_distance_series: samples == 0");
  }
  const std::size_t samples = out.size();
  const double max_r = std::hypot(static_cast<double>(mask.height),
                                  static_cast<double>(mask.width));
  constexpr double two_pi = 6.283185307179586476925286766559;

  for (std::size_t s = 0; s < samples; ++s) {
    const double theta =
        two_pi * static_cast<double>(s) / static_cast<double>(samples);
    const double dy = std::sin(theta);
    const double dx = std::cos(theta);
    double farthest = 0.0;
    // Half-pixel stepping finds the farthest shape pixel along the ray,
    // which is robust to interior holes (e.g. a sign's inner legend).
    for (double r = 0.0; r <= max_r; r += 0.5) {
      const auto y = static_cast<std::int64_t>(std::llround(c.y + r * dy));
      const auto x = static_cast<std::int64_t>(std::llround(c.x + r * dx));
      if (!mask.contains(y, x)) break;
      if (mask.at(static_cast<std::size_t>(y), static_cast<std::size_t>(x))) {
        farthest = r;
      }
    }
    out[s] = farthest;
  }
}

std::vector<double> radial_distance_series(const BinaryMask& mask,
                                           const Centroid& c,
                                           std::size_t samples) {
  if (samples == 0) {
    throw std::invalid_argument("radial_distance_series: samples == 0");
  }
  std::vector<double> series(samples, 0.0);
  radial_distance_series(mask.view(), c, std::span<double>(series));
  return series;
}

std::size_t shape_signature(ConstMaskView mask, std::span<double> out,
                            runtime::Workspace& ws) {
  runtime::Workspace::Scope scope(ws);
  const MaskView component{mask.height, mask.width,
                           ws.alloc_as<std::uint8_t>(mask.size())};
  largest_component(mask, component, ws);
  const std::optional<Centroid> c = centroid(ConstMaskView(component));
  if (!c) return 0;
  radial_distance_series(component, *c, out);
  return out.size();
}

std::vector<double> shape_signature(const BinaryMask& mask,
                                    std::size_t samples) {
  const BinaryMask component = largest_component(mask);
  const std::optional<Centroid> c = centroid(component);
  if (!c) return {};
  return radial_distance_series(component, *c, samples);
}

}  // namespace hybridcnn::vision
