#include "vision/sobel.hpp"

#include <cmath>
#include <stdexcept>

namespace hybridcnn::vision {

namespace {

constexpr float kSobelX[3][3] = {
    {-1.0f, 0.0f, 1.0f}, {-2.0f, 0.0f, 2.0f}, {-1.0f, 0.0f, 1.0f}};
constexpr float kSobelY[3][3] = {
    {-1.0f, -2.0f, -1.0f}, {0.0f, 0.0f, 0.0f}, {1.0f, 2.0f, 1.0f}};

void check_plane(std::span<const float> gray, std::size_t h, std::size_t w,
                 std::span<float> out) {
  if (gray.size() != h * w || out.size() != h * w) {
    throw std::invalid_argument("sobel: plane/out size != H*W");
  }
}

/// 3x3 response of kernel `k` at (y, x) with zero padding.
float tap3x3(std::span<const float> gray, std::int64_t h, std::int64_t w,
             std::int64_t y, std::int64_t x, const float k[3][3]) {
  float acc = 0.0f;
  for (std::int64_t ky = -1; ky <= 1; ++ky) {
    const std::int64_t iy = y + ky;
    if (iy < 0 || iy >= h) continue;
    for (std::int64_t kx = -1; kx <= 1; ++kx) {
      const std::int64_t ix = x + kx;
      if (ix < 0 || ix >= w) continue;
      acc += k[ky + 1][kx + 1] * gray[static_cast<std::size_t>(iy * w + ix)];
    }
  }
  return acc;
}

void apply3x3(std::span<const float> gray, std::size_t h, std::size_t w,
              const float k[3][3], std::span<float> out) {
  check_plane(gray, h, w, out);
  const auto ih = static_cast<std::int64_t>(h);
  const auto iw = static_cast<std::int64_t>(w);
  for (std::int64_t y = 0; y < ih; ++y) {
    for (std::int64_t x = 0; x < iw; ++x) {
      out[static_cast<std::size_t>(y * iw + x)] =
          tap3x3(gray, ih, iw, y, x, k);
    }
  }
}

tensor::Tensor apply3x3(const tensor::Tensor& gray, const float k[3][3]) {
  const auto& sh = gray.shape();
  if (sh.rank() != 2) {
    throw std::invalid_argument("sobel: expected [H, W], got " + sh.str());
  }
  tensor::Tensor out(sh);
  apply3x3(gray.data(), sh[0], sh[1], k, out.data());
  return out;
}

}  // namespace

void sobel_x(std::span<const float> gray, std::size_t h, std::size_t w,
             std::span<float> out) {
  apply3x3(gray, h, w, kSobelX, out);
}

void sobel_y(std::span<const float> gray, std::size_t h, std::size_t w,
             std::span<float> out) {
  apply3x3(gray, h, w, kSobelY, out);
}

void sobel_magnitude(std::span<const float> gray, std::size_t h,
                     std::size_t w, std::span<float> out) {
  check_plane(gray, h, w, out);
  const auto ih = static_cast<std::int64_t>(h);
  const auto iw = static_cast<std::int64_t>(w);
  for (std::int64_t y = 0; y < ih; ++y) {
    for (std::int64_t x = 0; x < iw; ++x) {
      const float gx = tap3x3(gray, ih, iw, y, x, kSobelX);
      const float gy = tap3x3(gray, ih, iw, y, x, kSobelY);
      out[static_cast<std::size_t>(y * iw + x)] =
          std::sqrt(gx * gx + gy * gy);
    }
  }
}

tensor::Tensor sobel_x(const tensor::Tensor& gray) {
  return apply3x3(gray, kSobelX);
}

tensor::Tensor sobel_y(const tensor::Tensor& gray) {
  return apply3x3(gray, kSobelY);
}

tensor::Tensor sobel_magnitude(const tensor::Tensor& gray) {
  const auto& sh = gray.shape();
  if (sh.rank() != 2) {
    throw std::invalid_argument("sobel: expected [H, W], got " + sh.str());
  }
  tensor::Tensor mag(sh);
  sobel_magnitude(gray.data(), sh[0], sh[1], mag.data());
  return mag;
}

}  // namespace hybridcnn::vision
