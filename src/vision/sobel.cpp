#include "vision/sobel.hpp"

#include <cmath>
#include <stdexcept>

namespace hybridcnn::vision {

namespace {

tensor::Tensor apply3x3(const tensor::Tensor& gray, const float k[3][3]) {
  const auto& sh = gray.shape();
  if (sh.rank() != 2) {
    throw std::invalid_argument("sobel: expected [H, W], got " + sh.str());
  }
  const auto h = static_cast<std::int64_t>(sh[0]);
  const auto w = static_cast<std::int64_t>(sh[1]);
  tensor::Tensor out(sh);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (std::int64_t ky = -1; ky <= 1; ++ky) {
        const std::int64_t iy = y + ky;
        if (iy < 0 || iy >= h) continue;
        for (std::int64_t kx = -1; kx <= 1; ++kx) {
          const std::int64_t ix = x + kx;
          if (ix < 0 || ix >= w) continue;
          acc += k[ky + 1][kx + 1] *
                 gray[static_cast<std::size_t>(iy * w + ix)];
        }
      }
      out[static_cast<std::size_t>(y * w + x)] = acc;
    }
  }
  return out;
}

}  // namespace

tensor::Tensor sobel_x(const tensor::Tensor& gray) {
  static constexpr float kx[3][3] = {
      {-1.0f, 0.0f, 1.0f}, {-2.0f, 0.0f, 2.0f}, {-1.0f, 0.0f, 1.0f}};
  return apply3x3(gray, kx);
}

tensor::Tensor sobel_y(const tensor::Tensor& gray) {
  static constexpr float ky[3][3] = {
      {-1.0f, -2.0f, -1.0f}, {0.0f, 0.0f, 0.0f}, {1.0f, 2.0f, 1.0f}};
  return apply3x3(gray, ky);
}

tensor::Tensor sobel_magnitude(const tensor::Tensor& gray) {
  const tensor::Tensor gx = sobel_x(gray);
  const tensor::Tensor gy = sobel_y(gray);
  tensor::Tensor mag(gray.shape());
  for (std::size_t i = 0; i < mag.count(); ++i) {
    mag[i] = std::sqrt(gx[i] * gx[i] + gy[i] * gy[i]);
  }
  return mag;
}

}  // namespace hybridcnn::vision
