// Direct Sobel filtering on [H, W] float images.
//
// The qualifier's edge stage. The same kernels are available as conv
// filters via nn::sobel_kernel(); this direct form is used by the pure
// vision pipeline and as an independent reference in tests.
#pragma once

#include "tensor/tensor.hpp"

namespace hybridcnn::vision {

/// 3x3 Sobel-x response (same-size output, zero padding).
tensor::Tensor sobel_x(const tensor::Tensor& gray);

/// 3x3 Sobel-y response (same-size output, zero padding).
tensor::Tensor sobel_y(const tensor::Tensor& gray);

/// Gradient magnitude sqrt(gx^2 + gy^2).
tensor::Tensor sobel_magnitude(const tensor::Tensor& gray);

}  // namespace hybridcnn::vision
