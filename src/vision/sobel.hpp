// Direct Sobel filtering on [H, W] float images.
//
// The qualifier's edge stage. The same kernels are available as conv
// filters via nn::sobel_kernel(); this direct form is used by the pure
// vision pipeline and as an independent reference in tests.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace hybridcnn::vision {

/// Explicit-scratch overloads over a flat H*W luminance plane; `out`
/// must hold h*w floats and must not alias `gray`. Allocation-free.
void sobel_x(std::span<const float> gray, std::size_t h, std::size_t w,
             std::span<float> out);
void sobel_y(std::span<const float> gray, std::size_t h, std::size_t w,
             std::span<float> out);
/// Fused gradient magnitude sqrt(gx^2 + gy^2) — single pass, no gx/gy
/// intermediates, bit-identical to composing sobel_x/sobel_y per pixel.
void sobel_magnitude(std::span<const float> gray, std::size_t h,
                     std::size_t w, std::span<float> out);

/// 3x3 Sobel-x response (same-size output, zero padding).
tensor::Tensor sobel_x(const tensor::Tensor& gray);

/// 3x3 Sobel-y response (same-size output, zero padding).
tensor::Tensor sobel_y(const tensor::Tensor& gray);

/// Gradient magnitude sqrt(gx^2 + gy^2).
tensor::Tensor sobel_magnitude(const tensor::Tensor& gray);

}  // namespace hybridcnn::vision
