#include "vision/threshold.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace hybridcnn::vision {

void threshold(std::span<const float> image, float value, MaskView out) {
  if (out.size() != image.size() || out.data == nullptr) {
    throw std::invalid_argument("threshold: output view size mismatch");
  }
  for (std::size_t i = 0; i < image.size(); ++i) {
    out.data[i] = image[i] > value ? 1 : 0;
  }
}

BinaryMask threshold(const tensor::Tensor& image, float value) {
  const auto& sh = image.shape();
  if (sh.rank() != 2) {
    throw std::invalid_argument("threshold: expected [H, W], got " +
                                sh.str());
  }
  BinaryMask mask(sh[0], sh[1]);
  threshold(image.data(), value, mask.view());
  return mask;
}

float otsu_threshold(std::span<const float> image) {
  if (image.empty()) {
    throw std::invalid_argument("otsu_threshold: empty image");
  }

  float lo = image[0];
  float hi = image[0];
  for (std::size_t i = 1; i < image.size(); ++i) {
    lo = std::min(lo, image[i]);
    hi = std::max(hi, image[i]);
  }
  if (hi <= lo) return lo;

  constexpr int kBins = 256;
  std::array<std::uint64_t, kBins> hist{};
  const float scale = static_cast<float>(kBins - 1) / (hi - lo);
  for (std::size_t i = 0; i < image.size(); ++i) {
    const int bin = static_cast<int>((image[i] - lo) * scale);
    ++hist[static_cast<std::size_t>(std::min(std::max(bin, 0), kBins - 1))];
  }

  const double total = static_cast<double>(image.size());
  double sum_all = 0.0;
  for (int b = 0; b < kBins; ++b) sum_all += b * static_cast<double>(hist[b]);

  double sum_bg = 0.0;
  double weight_bg = 0.0;
  double best_between = -1.0;
  int best_bin = 0;
  for (int b = 0; b < kBins; ++b) {
    weight_bg += static_cast<double>(hist[b]);
    if (weight_bg == 0.0) continue;
    const double weight_fg = total - weight_bg;
    if (weight_fg == 0.0) break;
    sum_bg += b * static_cast<double>(hist[b]);
    const double mean_bg = sum_bg / weight_bg;
    const double mean_fg = (sum_all - sum_bg) / weight_fg;
    const double between =
        weight_bg * weight_fg * (mean_bg - mean_fg) * (mean_bg - mean_fg);
    if (between > best_between) {
      best_between = between;
      best_bin = b;
    }
  }
  return lo + static_cast<float>(best_bin) / scale;
}

float otsu_threshold(const tensor::Tensor& image) {
  const auto& sh = image.shape();
  if (sh.rank() != 2 || image.count() == 0) {
    throw std::invalid_argument("otsu_threshold: expected [H, W]");
  }
  return otsu_threshold(std::span<const float>(image.data()));
}

void threshold_otsu(std::span<const float> image, MaskView out) {
  threshold(image, otsu_threshold(image), out);
}

BinaryMask threshold_otsu(const tensor::Tensor& image) {
  return threshold(image, otsu_threshold(image));
}

}  // namespace hybridcnn::vision
