// Image binarisation: fixed threshold and Otsu's method.
#pragma once

#include <span>

#include "tensor/tensor.hpp"
#include "vision/mask.hpp"

namespace hybridcnn::vision {

/// Explicit-scratch overload: pixels strictly above `value` become 1 in
/// `out` (out dimensions must cover image.size() pixels).
void threshold(std::span<const float> image, float value, MaskView out);

/// Pixels strictly above `value` become 1.
BinaryMask threshold(const tensor::Tensor& image, float value);

/// Otsu's automatic threshold on a min-max normalised 256-bin histogram
/// over a flat pixel span. Allocation-free. Returns the threshold in the
/// pixels' original value range; flat spans (max == min) return that
/// single value. Throws std::invalid_argument on an empty span.
float otsu_threshold(std::span<const float> image);

/// Otsu threshold of a [H, W] image tensor.
float otsu_threshold(const tensor::Tensor& image);

/// Explicit-scratch overload: binarise with the Otsu threshold.
void threshold_otsu(std::span<const float> image, MaskView out);

/// Convenience: binarise with the Otsu threshold.
BinaryMask threshold_otsu(const tensor::Tensor& image);

}  // namespace hybridcnn::vision
