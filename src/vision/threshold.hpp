// Image binarisation: fixed threshold and Otsu's method.
#pragma once

#include "tensor/tensor.hpp"
#include "vision/mask.hpp"

namespace hybridcnn::vision {

/// Pixels strictly above `threshold` become 1.
BinaryMask threshold(const tensor::Tensor& image, float value);

/// Otsu's automatic threshold on a min-max normalised 256-bin histogram.
/// Returns the threshold in the image's original value range. Flat images
/// (max == min) return that single value.
float otsu_threshold(const tensor::Tensor& image);

/// Convenience: binarise with the Otsu threshold.
BinaryMask threshold_otsu(const tensor::Tensor& image);

}  // namespace hybridcnn::vision
