// classify_batch: bit-identical to looped single-image classify at every
// thread count, empty/single edges, the caller-owned FaultSeedStream
// contract, and the campaign/repeat conveniences built on it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "faultsim/campaign.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "runtime/compute_context.hpp"

namespace {

using namespace hybridcnn;
using core::BatchOptions;
using core::FaultSeedStream;
using core::HybridClassification;
using core::HybridConfig;
using core::HybridNetwork;
using core::QualifierSource;
using core::RemainderMode;
using runtime::ComputeContext;
using tensor::Tensor;

/// Small CNN over 96x96 images: fast enough to classify batches through
/// reliable execution at several thread counts.
std::unique_ptr<nn::Sequential> make_testnet(std::uint64_t seed = 3) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 96 -> 45
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);  // 45 -> 22
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 22 * 22, 5);
  nn::init_network(*net, seed);
  return net;
}

std::vector<Tensor> make_images(std::size_t n) {
  std::vector<Tensor> images;
  images.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data::RenderParams p;
    p.cls = static_cast<data::SignClass>(i % data::kNumClasses);
    p.size = 96;
    p.rotation = 0.05 * static_cast<double>(i) - 0.1;
    p.scale = 0.72 + 0.03 * static_cast<double>(i % 3);
    p.noise_seed = 40 + i;
    images.push_back(data::render_sign(p));
  }
  return images;
}

/// Every observable field of the paper's "Reliable Result" must agree —
/// floating-point fields bit-for-bit.
void expect_identical(const HybridClassification& a,
                      const HybridClassification& b, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.predicted_class, b.predicted_class);
  EXPECT_EQ(a.confidence, b.confidence);  // bit-identical double
  EXPECT_EQ(a.safety_critical, b.safety_critical);
  EXPECT_EQ(a.decision, b.decision);

  EXPECT_EQ(a.qualifier.match, b.qualifier.match);
  EXPECT_EQ(a.qualifier.reliable, b.qualifier.reliable);
  EXPECT_EQ(a.qualifier.shape.match, b.qualifier.shape.match);
  EXPECT_EQ(a.qualifier.shape.distance, b.qualifier.shape.distance);
  EXPECT_EQ(a.qualifier.shape.corners, b.qualifier.shape.corners);
  EXPECT_EQ(a.qualifier.shape.word, b.qualifier.shape.word);
  EXPECT_EQ(a.qualifier.shape.template_word, b.qualifier.shape.template_word);
  EXPECT_EQ(a.qualifier.shape.rotation, b.qualifier.shape.rotation);

  EXPECT_EQ(a.qualifier.report.ok, b.qualifier.report.ok);
  EXPECT_EQ(a.qualifier.report.detected_errors,
            b.qualifier.report.detected_errors);
  EXPECT_EQ(a.qualifier.report.retries, b.qualifier.report.retries);

  EXPECT_EQ(a.conv1_report.ok, b.conv1_report.ok);
  EXPECT_EQ(a.conv1_report.logical_ops, b.conv1_report.logical_ops);
  EXPECT_EQ(a.conv1_report.detected_errors, b.conv1_report.detected_errors);
  EXPECT_EQ(a.conv1_report.corrected_errors, b.conv1_report.corrected_errors);
  EXPECT_EQ(a.conv1_report.retries, b.conv1_report.retries);
  EXPECT_EQ(a.conv1_report.bucket_exhausted, b.conv1_report.bucket_exhausted);
  EXPECT_EQ(a.conv1_report.failed_op_index, b.conv1_report.failed_op_index);
}

HybridConfig faulty_config(QualifierSource source,
                           double rate = 5e-6) {
  HybridConfig cfg;
  cfg.qualifier.source = source;
  cfg.fault_config.kind = faultsim::FaultKind::kTransient;
  cfg.fault_config.probability = rate;
  cfg.fault_config.bit = -1;
  return cfg;
}

class BatchInferenceThreads : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { ComputeContext::set_global_threads(GetParam()); }
  void TearDown() override { ComputeContext::set_global_threads(1); }
};

TEST_P(BatchInferenceThreads, BatchMatchesLoopedClassifyBitExactly) {
  const std::vector<Tensor> images = make_images(6);

  // Two networks constructed identically (same init seed, same config)
  // consume the same fault-seed stream; one loops, one batches.
  HybridNetwork looped(make_testnet(11),  0,
                       faulty_config(QualifierSource::kFullResolution));
  HybridNetwork batched(make_testnet(11), 0,
                        faulty_config(QualifierSource::kFullResolution));

  FaultSeedStream loop_seeds = looped.seed_stream();
  std::vector<HybridClassification> expect;
  expect.reserve(images.size());
  for (const Tensor& img : images) {
    expect.push_back(looped.classify(img, loop_seeds));
  }

  FaultSeedStream batch_seeds = batched.seed_stream();
  const std::vector<HybridClassification> got =
      batched.classify_batch(images, batch_seeds);
  EXPECT_EQ(batch_seeds, loop_seeds) << "batch must consume the loop's seeds";
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_identical(got[i], expect[i], "full-resolution qualifier");
  }
}

TEST_P(BatchInferenceThreads, BatchMatchesLoopForFeatureMapSources) {
  const std::vector<Tensor> images = make_images(4);
  for (const QualifierSource source :
       {QualifierSource::kDependableFeatureMap,
        QualifierSource::kDependableFeatureMapPair}) {
    HybridNetwork looped(make_testnet(13), 0, faulty_config(source));
    HybridNetwork batched(make_testnet(13), 0, faulty_config(source));

    FaultSeedStream loop_seeds = looped.seed_stream();
    std::vector<HybridClassification> expect;
    for (const Tensor& img : images) {
      expect.push_back(looped.classify(img, loop_seeds));
    }
    FaultSeedStream batch_seeds = batched.seed_stream();
    const std::vector<HybridClassification> got =
        batched.classify_batch(images, batch_seeds);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_identical(got[i], expect[i], "feature-map qualifier");
    }
  }
}

TEST_P(BatchInferenceThreads, RepeatMatchesLoopedClassifyOnOneImage) {
  const Tensor image = data::render_stop_sign(96, 4.0);
  HybridNetwork looped(make_testnet(17), 0,
                       faulty_config(QualifierSource::kFullResolution, 2e-5));
  HybridNetwork batched(make_testnet(17), 0,
                        faulty_config(QualifierSource::kFullResolution, 2e-5));

  constexpr std::size_t kRuns = 5;
  FaultSeedStream loop_seeds = looped.seed_stream();
  std::vector<HybridClassification> expect;
  for (std::size_t r = 0; r < kRuns; ++r) {
    expect.push_back(looped.classify(image, loop_seeds));
  }
  FaultSeedStream batch_seeds = batched.seed_stream();
  const std::vector<HybridClassification> got =
      batched.classify_repeat(image, kRuns, batch_seeds);
  ASSERT_EQ(got.size(), kRuns);
  for (std::size_t r = 0; r < kRuns; ++r) {
    expect_identical(got[r], expect[r], "classify_repeat");
  }
}

TEST_P(BatchInferenceThreads, RepeatAndCampaignHonourRemainderMode) {
  // The remainder-mode knob rides in BatchOptions, so the repeat and
  // campaign conveniences can choose the serial shape too — results must
  // not depend on the choice.
  const Tensor image = data::render_stop_sign(96, 4.0);
  HybridNetwork net(make_testnet(41), 0,
                    faulty_config(QualifierSource::kFullResolution, 2e-5));

  constexpr std::size_t kRuns = 4;
  FaultSeedStream fanned_seeds = net.seed_stream();
  const std::vector<HybridClassification> fanned = net.classify_repeat(
      image, kRuns, fanned_seeds, BatchOptions{RemainderMode::kFanned});
  FaultSeedStream serial_seeds = net.seed_stream();
  const std::vector<HybridClassification> serial = net.classify_repeat(
      image, kRuns, serial_seeds, BatchOptions{RemainderMode::kSerial});
  ASSERT_EQ(fanned.size(), serial.size());
  for (std::size_t r = 0; r < kRuns; ++r) {
    expect_identical(fanned[r], serial[r], "repeat remainder mode");
  }

  // classify_campaign: same judge stream over both remainder shapes.
  const auto judge = [](std::size_t, const HybridClassification& r) {
    const bool aborted = !r.conv1_report.ok || !r.qualifier.report.ok;
    const bool faults = aborted || r.conv1_report.detected_errors > 0;
    return faultsim::classify(faults, aborted, !aborted);
  };
  FaultSeedStream a = net.seed_stream();
  FaultSeedStream b = net.seed_stream();
  const faultsim::CampaignSummary sa = net.classify_campaign(
      image, kRuns, judge, a, BatchOptions{RemainderMode::kFanned});
  const faultsim::CampaignSummary sb = net.classify_campaign(
      image, kRuns, judge, b, BatchOptions{RemainderMode::kSerial});
  EXPECT_EQ(sa.runs, sb.runs);
  EXPECT_EQ(sa.correct, sb.correct);
  EXPECT_EQ(sa.corrected, sb.corrected);
  EXPECT_EQ(sa.detected_abort, sb.detected_abort);
  EXPECT_EQ(sa.silent_corruption, sb.silent_corruption);
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchInferenceThreads,
                         ::testing::Values<std::size_t>(1, 2, 8));

TEST(BatchInference, StatsOnlyReportModeKeepsDecisionsAndSummaries) {
  // BatchOptions::report = kStatsOnly skips conv1 per-op report assembly;
  // predictions, decisions, qualifier verdicts and conv1_report.ok must
  // be unaffected while the conv1_report counters stay at their defaults.
  const Tensor image = data::render_stop_sign(96, 4.0);
  HybridNetwork net(make_testnet(43), 0,
                    faulty_config(QualifierSource::kFullResolution, 2e-5));
  constexpr std::size_t kRuns = 4;

  BatchOptions lean_opts;
  lean_opts.report = reliable::ReportMode::kStatsOnly;
  FaultSeedStream full_seeds = net.seed_stream();
  const std::vector<HybridClassification> full =
      net.classify_repeat(image, kRuns, full_seeds);
  FaultSeedStream lean_seeds = net.seed_stream();
  const std::vector<HybridClassification> lean =
      net.classify_repeat(image, kRuns, lean_seeds, lean_opts);

  ASSERT_EQ(full.size(), lean.size());
  for (std::size_t r = 0; r < kRuns; ++r) {
    SCOPED_TRACE(r);
    EXPECT_EQ(full[r].predicted_class, lean[r].predicted_class);
    EXPECT_EQ(full[r].confidence, lean[r].confidence);
    EXPECT_EQ(full[r].decision, lean[r].decision);
    EXPECT_EQ(full[r].qualifier.match, lean[r].qualifier.match);
    EXPECT_EQ(full[r].conv1_report.ok, lean[r].conv1_report.ok);
    EXPECT_EQ(lean[r].conv1_report.logical_ops, 0u);
    EXPECT_EQ(lean[r].conv1_report.commits, 0u);
    EXPECT_EQ(lean[r].conv1_report.detected_errors, 0u);
    EXPECT_EQ(lean[r].conv1_report.failed_op_index, -1);
  }

  // A campaign judged only on report-free fields reduces identically.
  const auto judge = [](std::size_t, const HybridClassification& r) {
    const bool aborted = !r.conv1_report.ok || !r.qualifier.report.ok;
    return faultsim::classify(aborted, aborted, !aborted);
  };
  FaultSeedStream a = net.seed_stream();
  FaultSeedStream b = net.seed_stream();
  const faultsim::CampaignSummary sa =
      net.classify_campaign(image, kRuns, judge, a);
  const faultsim::CampaignSummary sb =
      net.classify_campaign(image, kRuns, judge, b, lean_opts);
  EXPECT_EQ(sa.runs, sb.runs);
  EXPECT_EQ(sa.correct, sb.correct);
  EXPECT_EQ(sa.corrected, sb.corrected);
  EXPECT_EQ(sa.detected_abort, sb.detected_abort);
  EXPECT_EQ(sa.silent_corruption, sb.silent_corruption);
}

TEST(BatchInference, EmptyBatchReturnsNothingAndPreservesSeedStream) {
  const Tensor image = data::render_stop_sign(96, 4.0);
  HybridNetwork a(make_testnet(19), 0,
                  faulty_config(QualifierSource::kFullResolution, 2e-5));
  HybridNetwork b(make_testnet(19), 0,
                  faulty_config(QualifierSource::kFullResolution, 2e-5));

  FaultSeedStream a_seeds = a.seed_stream();
  EXPECT_TRUE(a.classify_batch({}, a_seeds).empty());
  // The empty batch must not consume fault seeds: the next classify on
  // the stream sees the same injector seed as a fresh stream's first.
  EXPECT_EQ(a_seeds, a.seed_stream());
  FaultSeedStream b_seeds = b.seed_stream();
  expect_identical(a.classify(image, a_seeds), b.classify(image, b_seeds),
                   "post-empty-batch");
}

TEST(BatchInference, SingleImageBatchEqualsClassify) {
  const Tensor image = data::render_stop_sign(96, 4.0);
  HybridNetwork a(make_testnet(23), 0,
                  faulty_config(QualifierSource::kFullResolution));
  HybridNetwork b(make_testnet(23), 0,
                  faulty_config(QualifierSource::kFullResolution));

  FaultSeedStream a_seeds = a.seed_stream();
  const std::vector<HybridClassification> batch =
      a.classify_batch({image}, a_seeds);
  ASSERT_EQ(batch.size(), 1u);
  FaultSeedStream b_seeds = b.seed_stream();
  expect_identical(batch[0], b.classify(image, b_seeds),
                   "single-image batch");
}

TEST(BatchInference, InterleavedClassifyAndBatchShareOneSeedStream) {
  const std::vector<Tensor> images = make_images(3);
  HybridNetwork mixed(make_testnet(29), 0,
                      faulty_config(QualifierSource::kFullResolution, 2e-5));
  HybridNetwork looped(make_testnet(29), 0,
                       faulty_config(QualifierSource::kFullResolution, 2e-5));

  FaultSeedStream mixed_seeds = mixed.seed_stream();
  const HybridClassification first = mixed.classify(images[0], mixed_seeds);
  const std::vector<HybridClassification> rest =
      mixed.classify_batch({images[1], images[2]}, mixed_seeds);

  FaultSeedStream loop_seeds = looped.seed_stream();
  expect_identical(first, looped.classify(images[0], loop_seeds),
                   "interleaved[0]");
  expect_identical(rest[0], looped.classify(images[1], loop_seeds),
                   "interleaved[1]");
  expect_identical(rest[1], looped.classify(images[2], loop_seeds),
                   "interleaved[2]");
}

TEST(BatchInference, ClassifySeededMatchesPerSeedClassify) {
  // The serving entry point: explicit, non-consecutive seeds. Image i
  // with seeds[i] must reproduce a single classify drawing that seed.
  const std::vector<Tensor> images = make_images(4);
  HybridNetwork net(make_testnet(43), 0,
                    faulty_config(QualifierSource::kFullResolution, 2e-5));

  const std::vector<std::uint64_t> seeds{17, 3, 9001, 3};  // dup on purpose
  std::vector<const Tensor*> ptrs;
  for (const Tensor& img : images) ptrs.push_back(&img);
  const std::vector<HybridClassification> got =
      net.classify_seeded(ptrs.size(), ptrs.data(), seeds.data());

  ASSERT_EQ(got.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    FaultSeedStream one(seeds[i]);
    expect_identical(got[i], net.classify(images[i], one),
                     "classify_seeded element");
  }
}

TEST(BatchInference, RejectsBatchedTensorInputWithoutConsumingSeeds) {
  HybridNetwork hybrid(make_testnet(31), 0, HybridConfig{});
  const std::vector<Tensor> bad{data::render_stop_sign(96, 4.0),
                                Tensor(tensor::Shape{1, 3, 96, 96})};
  FaultSeedStream seeds = hybrid.seed_stream();
  EXPECT_THROW(static_cast<void>(hybrid.classify_batch(bad, seeds)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(hybrid.classify_repeat(bad[1], 3, seeds)),
               std::invalid_argument);
  // A refused batch must leave the caller's stream untouched, so a
  // corrected retry still replays the original seed contract.
  EXPECT_EQ(seeds, hybrid.seed_stream());
}

TEST(BatchInference, CampaignSummaryMatchesPerRunConstructionAtAnyThreads) {
  // The amortised classify_campaign must reproduce the legacy pattern —
  // a fresh network per run with fault_seed = base + run — summary for
  // summary, and be thread-count independent.
  const Tensor image = data::render_stop_sign(96, 4.0);
  constexpr std::size_t kRuns = 6;
  const auto cfg = faulty_config(QualifierSource::kFullResolution, 5e-5);

  HybridNetwork golden_net(make_testnet(37), 0, HybridConfig{});
  FaultSeedStream golden_seeds = golden_net.seed_stream();
  const HybridClassification golden = golden_net.classify(image, golden_seeds);

  const auto judge = [&](const HybridClassification& r) {
    const bool aborted = !r.conv1_report.ok || !r.qualifier.report.ok;
    const bool faults = aborted || r.conv1_report.detected_errors > 0 ||
                        r.qualifier.report.detected_errors > 0;
    const bool matches = r.predicted_class == golden.predicted_class &&
                         r.qualifier.match == golden.qualifier.match &&
                         r.confidence == golden.confidence;
    return faultsim::classify(faults, aborted, matches);
  };

  // Legacy: one network per run.
  faultsim::CampaignSummary legacy;
  for (std::size_t run = 0; run < kRuns; ++run) {
    auto run_cfg = cfg;
    run_cfg.fault_seed = 1 + run;
    HybridNetwork per_run(make_testnet(37), 0, run_cfg);
    FaultSeedStream run_seeds = per_run.seed_stream();
    legacy.add(judge(per_run.classify(image, run_seeds)));
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    ComputeContext::set_global_threads(threads);
    auto batch_cfg = cfg;
    batch_cfg.fault_seed = 1;
    HybridNetwork amortised(make_testnet(37), 0, batch_cfg);
    FaultSeedStream campaign_seeds = amortised.seed_stream();
    const faultsim::CampaignSummary summary = amortised.classify_campaign(
        image, kRuns,
        [&](std::size_t, const HybridClassification& r) { return judge(r); },
        campaign_seeds);
    EXPECT_EQ(summary.runs, legacy.runs) << threads;
    EXPECT_EQ(summary.correct, legacy.correct) << threads;
    EXPECT_EQ(summary.corrected, legacy.corrected) << threads;
    EXPECT_EQ(summary.detected_abort, legacy.detected_abort) << threads;
    EXPECT_EQ(summary.silent_corruption, legacy.silent_corruption) << threads;
  }
  ComputeContext::set_global_threads(1);
}

}  // namespace
