// Campaign fabric: shard planning, durable checkpoint log, coordinator
// retry/reassignment semantics, and the headline contract — a sharded,
// crash-recovered campaign merges bit-identical to the monolithic
// single-thread run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign_fabric/campaigns.hpp"
#include "campaign_fabric/checkpoint_log.hpp"
#include "campaign_fabric/coordinator.hpp"
#include "campaign_fabric/shard.hpp"
#include "campaign_fabric/summary_codec.hpp"
#include "core/hybrid_network.hpp"
#include "core/memory_campaign.hpp"
#include "data/renderer.hpp"
#include "faultsim/campaign.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "runtime/compute_context.hpp"
#include "util/atomic_file.hpp"

namespace {

using namespace hybridcnn;
using core::FaultSeedStream;
using core::HybridClassification;
using core::HybridConfig;
using core::HybridNetwork;
using core::MemoryCampaignConfig;
using core::MemoryFaultCampaign;
using fabric::CheckpointLoad;
using fabric::FabricConfig;
using fabric::FabricError;
using fabric::FabricResult;
using fabric::ShardDescriptor;
using fabric::ShardPlan;
using fabric::ShardRecord;
using faultsim::CampaignSummary;
using faultsim::MemoryCampaignSummary;
using runtime::ComputeContext;
using tensor::Tensor;

std::unique_ptr<nn::Sequential> make_testnet(std::uint64_t seed = 3) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 128 -> 61
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);  // 61 -> 30
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 30 * 30, 5);
  nn::init_network(*net, seed);
  return net;
}

Tensor stop_image() { return data::render_stop_sign(128, 6.0); }

/// Judge shared by the monolithic and fabric classify campaigns: pure,
/// stateless, thread-safe.
faultsim::Outcome judge_result(std::size_t, const HybridClassification& r) {
  const bool aborted = !r.conv1_report.ok || !r.qualifier.report.ok;
  const bool faults = aborted || r.conv1_report.detected_errors > 0;
  return faultsim::classify(faults, aborted, !aborted);
}

// ---------------------------------------------------------- shard plan

TEST(ShardPlan, CoversTheRangeWithoutGapsOrOverlap) {
  const ShardPlan plan = fabric::make_shard_plan(103, 10, 777, 42);
  ASSERT_EQ(plan.shards.size(), 11u);
  std::uint64_t expect_begin = 0;
  for (std::size_t k = 0; k < plan.shards.size(); ++k) {
    const ShardDescriptor& d = plan.shards[k];
    EXPECT_EQ(d.shard_index, k);
    EXPECT_EQ(d.run_begin, expect_begin);
    EXPECT_EQ(d.seed_base, 777u);
    EXPECT_EQ(d.campaign_fingerprint, 42u);
    EXPECT_GT(d.run_end, d.run_begin);
    expect_begin = d.run_end;
  }
  EXPECT_EQ(expect_begin, 103u);
  EXPECT_EQ(plan.shards.back().runs(), 3u) << "last shard takes the rest";
}

TEST(ShardPlan, ExactDivisionHasNoRemainderShard) {
  const ShardPlan plan = fabric::make_shard_plan(100, 25, 0, 0);
  ASSERT_EQ(plan.shards.size(), 4u);
  for (const ShardDescriptor& d : plan.shards) EXPECT_EQ(d.runs(), 25u);
}

TEST(ShardPlan, ZeroShardSizeThrows) {
  EXPECT_THROW(fabric::make_shard_plan(10, 0, 0, 0), std::invalid_argument);
}

TEST(ShardPlan, EmptyCampaignYieldsEmptyPlan) {
  EXPECT_TRUE(fabric::make_shard_plan(0, 8, 0, 0).shards.empty());
}

TEST(ShardPlan, FingerprintSeparatesCampaignIdentities) {
  const std::uint64_t base = fabric::campaign_fingerprint("tag", 100, 10, 7);
  EXPECT_NE(base, fabric::campaign_fingerprint("other", 100, 10, 7));
  EXPECT_NE(base, fabric::campaign_fingerprint("tag", 101, 10, 7));
  EXPECT_NE(base, fabric::campaign_fingerprint("tag", 100, 11, 7));
  EXPECT_NE(base, fabric::campaign_fingerprint("tag", 100, 10, 8));
  EXPECT_EQ(base, fabric::campaign_fingerprint("tag", 100, 10, 7))
      << "same identity must always fingerprint the same";
}

// -------------------------------------------------------------- codecs

TEST(SummaryCodec, ClassifySummaryRoundTrips) {
  CampaignSummary s;
  s.runs = 11;
  s.correct = 7;
  s.corrected = 2;
  s.detected_abort = 1;
  s.silent_corruption = 1;
  std::vector<std::uint8_t> bytes;
  fabric::SummaryCodec<CampaignSummary>::encode(s, bytes);
  EXPECT_EQ(bytes.size(), 40u);
  CampaignSummary back;
  ASSERT_TRUE(fabric::SummaryCodec<CampaignSummary>::decode(
      bytes.data(), bytes.size(), back));
  EXPECT_EQ(back, s);
  EXPECT_FALSE(fabric::SummaryCodec<CampaignSummary>::decode(
      bytes.data(), bytes.size() - 1, back))
      << "a short payload is a codec-version mismatch, never a merge";
}

TEST(SummaryCodec, MemorySummaryRoundTrips) {
  MemoryCampaignSummary s;
  s.runs = 9;
  s.intact = 3;
  s.corrected = 2;
  s.uncorrectable = 1;
  s.qualifier_caught = 2;
  s.silent_corruption = 1;
  s.bits_flipped = 123;
  s.ecc_corrected_data = 45;
  s.ecc_corrected_check = 6;
  s.ecc_uncorrectable_words = 7;
  std::vector<std::uint8_t> bytes;
  fabric::SummaryCodec<MemoryCampaignSummary>::encode(s, bytes);
  EXPECT_EQ(bytes.size(), 80u);
  MemoryCampaignSummary back;
  ASSERT_TRUE(fabric::SummaryCodec<MemoryCampaignSummary>::decode(
      bytes.data(), bytes.size(), back));
  EXPECT_EQ(back, s);
}

// ------------------------------------------------------ checkpoint log

class CheckpointLog : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/hybridcnn_fabric_ckpt_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return dir_ + "/" + name;
  }

  static std::vector<ShardRecord> sample_records() {
    std::vector<ShardRecord> records(3);
    records[0].shard_index = 0;
    records[0].payload = {1, 2, 3, 4, 5};
    records[1].shard_index = 1;
    records[1].payload = {9};
    records[2].shard_index = 2;
    records[2].payload = {7, 7, 7, 7, 7, 7, 7, 7, 0};
    return records;
  }

  std::string dir_;
};

TEST_F(CheckpointLog, SaveLoadRoundTrips) {
  const auto records = sample_records();
  fabric::save_checkpoint(path("c.bin"), 0xABCDu, 5, records);
  const CheckpointLoad load = fabric::load_checkpoint(path("c.bin"), 0xABCDu, 5);
  ASSERT_TRUE(load.usable);
  ASSERT_EQ(load.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(load.records[i].shard_index, records[i].shard_index);
    EXPECT_EQ(load.records[i].payload, records[i].payload);
  }
  EXPECT_EQ(load.dropped_bytes, 0u);
}

TEST_F(CheckpointLog, EmptyRecordSetRoundTrips) {
  fabric::save_checkpoint(path("c.bin"), 1, 4, {});
  const CheckpointLoad load = fabric::load_checkpoint(path("c.bin"), 1, 4);
  EXPECT_TRUE(load.usable);
  EXPECT_TRUE(load.records.empty());
}

TEST_F(CheckpointLog, MissingFileIsNotUsable) {
  const CheckpointLoad load = fabric::load_checkpoint(path("absent.bin"), 1, 4);
  EXPECT_FALSE(load.usable);
  EXPECT_TRUE(load.records.empty());
}

TEST_F(CheckpointLog, WrongIdentityIsNotUsable) {
  fabric::save_checkpoint(path("c.bin"), 0xABCDu, 5, sample_records());
  EXPECT_FALSE(fabric::load_checkpoint(path("c.bin"), 0xABCEu, 5).usable)
      << "fingerprint mismatch";
  EXPECT_FALSE(fabric::load_checkpoint(path("c.bin"), 0xABCDu, 6).usable)
      << "shard-count mismatch";
}

TEST_F(CheckpointLog, EveryHeaderByteFlipIsRejected) {
  fabric::save_checkpoint(path("c.bin"), 0xABCDu, 5, sample_records());
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(util::read_file(path("c.bin"), bytes));
  constexpr std::size_t kHeaderBytes = 24;
  for (std::size_t i = 0; i < kHeaderBytes; ++i) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[i] ^= 0x40;
    util::atomic_write_file(path("m.bin"), mutated);
    EXPECT_FALSE(fabric::load_checkpoint(path("m.bin"), 0xABCDu, 5).usable)
        << "header byte " << i;
  }
}

TEST_F(CheckpointLog, TruncationAtEveryByteBoundaryRecoversAPrefix) {
  // The torn-write model: a crash can leave any prefix of the file.
  // Whatever survives must parse to an exact prefix of the records —
  // never garbage, never a partial record.
  const auto records = sample_records();
  fabric::save_checkpoint(path("c.bin"), 0xABCDu, 5, records);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(util::read_file(path("c.bin"), bytes));

  // Record frame end offsets after the 24-byte header (12-byte record
  // header + payload each).
  std::vector<std::size_t> frame_end;
  std::size_t off = 24;
  for (const ShardRecord& r : records) {
    off += 12 + r.payload.size();
    frame_end.push_back(off);
  }
  ASSERT_EQ(off, bytes.size());

  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    util::atomic_write_file(
        path("t.bin"),
        std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + len));
    const CheckpointLoad load =
        fabric::load_checkpoint(path("t.bin"), 0xABCDu, 5);
    if (len < 24) {
      EXPECT_FALSE(load.usable) << "truncated header at " << len;
      continue;
    }
    ASSERT_TRUE(load.usable) << "intact header at " << len;
    std::size_t expect = 0;
    while (expect < frame_end.size() && frame_end[expect] <= len) ++expect;
    ASSERT_EQ(load.records.size(), expect) << "truncated at " << len;
    for (std::size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(load.records[i].shard_index, records[i].shard_index);
      EXPECT_EQ(load.records[i].payload, records[i].payload);
    }
  }
}

TEST_F(CheckpointLog, EveryRecordByteFlipDropsTheTailOnly) {
  // Bit rot anywhere in the record region must truncate the recovered
  // set at the damaged record: earlier records survive bit-exact,
  // nothing after the damage is ever trusted.
  const auto records = sample_records();
  fabric::save_checkpoint(path("c.bin"), 0xABCDu, 5, records);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(util::read_file(path("c.bin"), bytes));

  std::vector<std::size_t> frame_end;
  std::size_t off = 24;
  for (const ShardRecord& r : records) {
    off += 12 + r.payload.size();
    frame_end.push_back(off);
  }

  for (std::size_t pos = 24; pos < bytes.size(); ++pos) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[pos] ^= 0x08;
    util::atomic_write_file(path("m.bin"), mutated);
    const CheckpointLoad load =
        fabric::load_checkpoint(path("m.bin"), 0xABCDu, 5);
    ASSERT_TRUE(load.usable);
    // The record containing the flipped byte.
    std::size_t damaged = 0;
    while (frame_end[damaged] <= pos) ++damaged;
    ASSERT_EQ(load.records.size(), damaged) << "flip at " << pos;
    for (std::size_t i = 0; i < damaged; ++i) {
      EXPECT_EQ(load.records[i].shard_index, records[i].shard_index);
      EXPECT_EQ(load.records[i].payload, records[i].payload);
    }
  }
}

TEST_F(CheckpointLog, DuplicateAndOutOfRangeRecordsStopTheScan) {
  auto records = sample_records();
  records[2].shard_index = 1;  // duplicate of records[1]
  fabric::save_checkpoint(path("dup.bin"), 1, 5, records);
  const CheckpointLoad dup = fabric::load_checkpoint(path("dup.bin"), 1, 5);
  ASSERT_TRUE(dup.usable);
  EXPECT_EQ(dup.records.size(), 2u);

  records = sample_records();
  records[1].shard_index = 9;  // outside the 5-shard plan
  fabric::save_checkpoint(path("oob.bin"), 1, 5, records);
  const CheckpointLoad oob = fabric::load_checkpoint(path("oob.bin"), 1, 5);
  ASSERT_TRUE(oob.usable);
  EXPECT_EQ(oob.records.size(), 1u);
}

// --------------------------------------- coordinator (synthetic shards)

/// Pure synthetic workload: the "summary" of a shard is a function of
/// its descriptor alone, so coordinator semantics can be tested without
/// network inference.
CampaignSummary synthetic_shard(const ShardDescriptor& d) {
  CampaignSummary s;
  s.runs = d.runs();
  for (std::uint64_t i = d.run_begin; i < d.run_end; ++i) {
    switch (i % 3) {
      case 0: ++s.correct; break;
      case 1: ++s.corrected; break;
      default: ++s.silent_corruption; break;
    }
  }
  return s;
}

CampaignSummary synthetic_expected(std::uint64_t runs) {
  ShardDescriptor whole;
  whole.run_begin = 0;
  whole.run_end = runs;
  return synthetic_shard(whole);
}

class Coordinator : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/hybridcnn_fabric_coord_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return dir_ + "/" + name;
  }

  std::string dir_;
};

TEST_F(Coordinator, MergesShardsInOrderAcrossWorkerCounts) {
  constexpr std::uint64_t kRuns = 103;
  const CampaignSummary expected = synthetic_expected(kRuns);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    for (const std::uint64_t shard_size : {1u, 7u, 103u, 200u}) {
      FabricConfig cfg;
      cfg.shard_size = shard_size;
      cfg.workers = workers;
      const FabricResult<CampaignSummary> r =
          fabric::run_fabric<CampaignSummary>(cfg, kRuns, 5, synthetic_shard);
      EXPECT_TRUE(r.complete);
      EXPECT_EQ(r.summary, expected)
          << workers << " workers, shard size " << shard_size;
      EXPECT_EQ(r.stats.shards_total, (kRuns + shard_size - 1) / shard_size);
      EXPECT_EQ(r.stats.shards_executed, r.stats.shards_total);
      EXPECT_EQ(r.stats.shards_resumed, 0u);
      EXPECT_EQ(r.stats.failures, 0u);
      EXPECT_FALSE(r.stats.halted);
    }
  }
}

TEST_F(Coordinator, ZeroRunCampaignCompletesEmpty) {
  const FabricResult<CampaignSummary> r =
      fabric::run_fabric<CampaignSummary>(FabricConfig{}, 0, 5,
                                          synthetic_shard);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.summary, CampaignSummary{});
  EXPECT_EQ(r.stats.shards_total, 0u);
}

TEST_F(Coordinator, ZeroMaxAttemptsIsRejected) {
  FabricConfig cfg;
  cfg.max_attempts = 0;
  EXPECT_THROW(fabric::run_fabric<CampaignSummary>(cfg, 10, 0,
                                                   synthetic_shard),
               std::invalid_argument);
}

TEST_F(Coordinator, CrashedAttemptsAreRetriedWithBackoff) {
  FabricConfig cfg;
  cfg.shard_size = 4;
  cfg.workers = 2;
  cfg.retry_backoff = std::chrono::milliseconds(1);
  cfg.attempt_hook = [](const ShardDescriptor& d, std::size_t attempt) {
    // Odd shards die on their first attempt — a worker crash mid-shard.
    if (d.shard_index % 2 == 1 && attempt == 1) {
      throw std::runtime_error("simulated worker crash");
    }
  };
  constexpr std::uint64_t kRuns = 24;  // 6 shards
  const FabricResult<CampaignSummary> r =
      fabric::run_fabric<CampaignSummary>(cfg, kRuns, 5, synthetic_shard);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.summary, synthetic_expected(kRuns))
      << "retried shards must merge bit-identically";
  EXPECT_EQ(r.stats.failures, 3u);
  EXPECT_EQ(r.stats.retries, 3u);
  EXPECT_EQ(r.stats.attempts, 9u);
}

TEST_F(Coordinator, PermanentFailureThrowsTheLowestFailingShard) {
  FabricConfig cfg;
  cfg.shard_size = 4;
  cfg.workers = 2;
  cfg.max_attempts = 2;
  cfg.retry_backoff = std::chrono::milliseconds(1);
  cfg.checkpoint_path = path("ckpt.bin");
  cfg.attempt_hook = [](const ShardDescriptor& d, std::size_t) {
    if (d.shard_index == 1 || d.shard_index == 3) {
      throw std::runtime_error("dead shard");
    }
  };
  constexpr std::uint64_t kRuns = 24;
  try {
    (void)fabric::run_fabric<CampaignSummary>(cfg, kRuns, 5, synthetic_shard);
    FAIL() << "expected FabricError";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.shard_index(), 1u)
        << "the lowest permanently failed shard surfaces";
  }

  // The healthy shards reached the checkpoint before the failure was
  // declared; dropping the crash hook resumes and completes from them.
  cfg.attempt_hook = nullptr;
  const FabricResult<CampaignSummary> r =
      fabric::run_fabric<CampaignSummary>(cfg, kRuns, 5, synthetic_shard);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.summary, synthetic_expected(kRuns));
  EXPECT_EQ(r.stats.shards_resumed, 4u);
  EXPECT_EQ(r.stats.shards_executed, 2u);
}

TEST_F(Coordinator, StragglersAreReassignedAndDeduplicated) {
  FabricConfig cfg;
  cfg.shard_size = 4;
  cfg.workers = 2;
  cfg.max_attempts = 3;
  cfg.shard_timeout = std::chrono::milliseconds(20);
  cfg.attempt_hook = [](const ShardDescriptor& d, std::size_t attempt) {
    // The first attempt of shard 0 stalls well past the timeout; a
    // second worker must pick the shard up and finish first.
    if (d.shard_index == 0 && attempt == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  };
  constexpr std::uint64_t kRuns = 12;  // 3 shards
  const FabricResult<CampaignSummary> r =
      fabric::run_fabric<CampaignSummary>(cfg, kRuns, 5, synthetic_shard);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.summary, synthetic_expected(kRuns))
      << "duplicate completions must not double-count";
  EXPECT_GE(r.stats.reassignments, 1u);
  EXPECT_GE(r.stats.shards_deduped, 1u);
  EXPECT_EQ(r.stats.failures, 0u);
}

TEST_F(Coordinator, CheckpointFileHoldsEveryShardAfterCompletion) {
  FabricConfig cfg;
  cfg.shard_size = 5;
  cfg.workers = 2;
  cfg.checkpoint_path = path("ckpt.bin");
  constexpr std::uint64_t kRuns = 23;  // 5 shards
  const FabricResult<CampaignSummary> r =
      fabric::run_fabric<CampaignSummary>(cfg, kRuns, 9, synthetic_shard);
  ASSERT_TRUE(r.complete);

  const std::uint64_t fp = fabric::campaign_fingerprint(
      fabric::SummaryCodec<CampaignSummary>::kTag, kRuns, cfg.shard_size, 9);
  const CheckpointLoad load =
      fabric::load_checkpoint(cfg.checkpoint_path, fp, 5);
  ASSERT_TRUE(load.usable);
  ASSERT_EQ(load.records.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(load.records[i].shard_index, i) << "shard-index order on disk";
  }

  // A second coordinator over the same campaign resumes everything.
  const FabricResult<CampaignSummary> again =
      fabric::run_fabric<CampaignSummary>(cfg, kRuns, 9, synthetic_shard);
  EXPECT_TRUE(again.complete);
  EXPECT_EQ(again.summary, r.summary);
  EXPECT_EQ(again.stats.shards_resumed, 5u);
  EXPECT_EQ(again.stats.shards_executed, 0u);
}

TEST_F(Coordinator, ForeignCheckpointIsIgnoredNotMerged) {
  // A checkpoint from a different campaign (different fingerprint) at
  // the same path must be ignored wholesale — resuming from it would
  // merge wrong results.
  FabricConfig cfg;
  cfg.shard_size = 5;
  cfg.checkpoint_path = path("ckpt.bin");
  constexpr std::uint64_t kRuns = 20;
  std::vector<ShardRecord> foreign(1);
  foreign[0].shard_index = 0;
  foreign[0].payload.assign(40, 0xEE);
  fabric::save_checkpoint(cfg.checkpoint_path, 0xDEADu, 4, foreign);

  const FabricResult<CampaignSummary> r =
      fabric::run_fabric<CampaignSummary>(cfg, kRuns, 5, synthetic_shard);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.summary, synthetic_expected(kRuns));
  EXPECT_EQ(r.stats.shards_resumed, 0u);
  EXPECT_EQ(r.stats.shards_executed, 4u);
}

TEST_F(Coordinator, UndecodableResumedPayloadIsReRun) {
  // Right fingerprint, CRC-valid record, but a payload the codec
  // rejects (wrong size): the shard must be re-executed, not trusted.
  FabricConfig cfg;
  cfg.shard_size = 5;
  cfg.checkpoint_path = path("ckpt.bin");
  constexpr std::uint64_t kRuns = 20;
  const std::uint64_t fp = fabric::campaign_fingerprint(
      fabric::SummaryCodec<CampaignSummary>::kTag, kRuns, cfg.shard_size, 5);
  std::vector<ShardRecord> bogus(1);
  bogus[0].shard_index = 2;
  bogus[0].payload.assign(7, 0x11);  // not a 40-byte summary
  fabric::save_checkpoint(cfg.checkpoint_path, fp, 4, bogus);

  const FabricResult<CampaignSummary> r =
      fabric::run_fabric<CampaignSummary>(cfg, kRuns, 5, synthetic_shard);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.summary, synthetic_expected(kRuns));
  EXPECT_EQ(r.stats.shards_resumed, 0u);
  EXPECT_EQ(r.stats.shards_executed, 4u);
}

TEST_F(Coordinator, HaltLeavesExactlyKDurableShards) {
  // halt_after_shards=k models SIGKILL at a shard boundary: the
  // checkpoint must hold exactly the first k durable completions.
  constexpr std::uint64_t kRuns = 20;
  for (std::size_t k = 0; k <= 4; ++k) {
    FabricConfig cfg;
    cfg.shard_size = 5;
    cfg.workers = 2;
    cfg.checkpoint_path = path("halt_" + std::to_string(k) + ".bin");
    cfg.halt_after_shards = k;
    const FabricResult<CampaignSummary> r =
        fabric::run_fabric<CampaignSummary>(cfg, kRuns, 5, synthetic_shard);
    if (k < 4) {
      EXPECT_FALSE(r.complete) << "halt " << k;
      EXPECT_TRUE(r.stats.halted) << "halt " << k;
    } else {
      EXPECT_TRUE(r.complete) << "halt at the end completes";
    }
    const std::uint64_t fp = fabric::campaign_fingerprint(
        fabric::SummaryCodec<CampaignSummary>::kTag, kRuns, cfg.shard_size,
        5);
    const CheckpointLoad load =
        fabric::load_checkpoint(cfg.checkpoint_path, fp, 4);
    if (k == 0) {
      EXPECT_FALSE(load.usable) << "no completion, no checkpoint file";
    } else {
      ASSERT_TRUE(load.usable) << "halt " << k;
      EXPECT_EQ(load.records.size(), k);
    }
  }
}

// --------------------------------------- fabric vs monolithic campaigns

class FabricEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/hybridcnn_fabric_equiv_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    ComputeContext::set_global_threads(1);
    std::filesystem::remove_all(dir_);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return dir_ + "/" + name;
  }

  std::string dir_;
};

TEST_F(FabricEquivalence, ShardedClassifyCampaignMatchesMonolithic) {
  // The headline contract: any (shard size, worker count, pool thread
  // count) produces the bits of the single-thread monolithic campaign.
  HybridConfig hcfg;
  hcfg.fault_config.kind = faultsim::FaultKind::kTransient;
  hcfg.fault_config.probability = 1e-4;
  const HybridNetwork net(make_testnet(), 0, hcfg);
  const Tensor img = stop_image();
  constexpr std::size_t kRuns = 24;

  FaultSeedStream seeds = net.seed_stream();
  const std::uint64_t seed_base = seeds.peek();
  const CampaignSummary mono =
      net.classify_campaign(img, kRuns, judge_result, seeds);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    ComputeContext::set_global_threads(threads);
    for (const auto& [shard_size, workers] :
         std::vector<std::pair<std::uint64_t, std::size_t>>{
             {7, 2}, {24, 1}, {64, 3}}) {
      FabricConfig cfg;
      cfg.shard_size = shard_size;
      cfg.workers = workers;
      const FabricResult<CampaignSummary> r = fabric::run_classify_campaign(
          net, img, kRuns, seed_base, judge_result, cfg);
      ASSERT_TRUE(r.complete);
      EXPECT_EQ(r.summary, mono) << threads << " threads, shard "
                                 << shard_size << ", workers " << workers;
    }
  }
}

TEST_F(FabricEquivalence, ShardedMemoryCampaignMatchesMonolithic) {
  // Scrub cadence keys on the GLOBAL run index, so a shard size that is
  // not a multiple of the scrub interval is the adversarial case.
  const HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();
  MemoryCampaignConfig mcfg;
  mcfg.model.exact_flips = 2;
  mcfg.scrub_interval = 3;
  mcfg.ecc = true;
  const MemoryFaultCampaign campaign(net, mcfg);
  constexpr std::size_t kRuns = 20;

  FaultSeedStream seeds = net.seed_stream();
  const std::uint64_t seed_base = seeds.peek();
  const MemoryCampaignSummary mono = campaign.run(img, kRuns, seeds);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    ComputeContext::set_global_threads(threads);
    FabricConfig cfg;
    cfg.shard_size = 7;  // not a multiple of scrub_interval 3
    cfg.workers = 2;
    const FabricResult<MemoryCampaignSummary> r =
        fabric::run_memory_campaign(campaign, img, kRuns, seed_base, cfg);
    ASSERT_TRUE(r.complete);
    EXPECT_EQ(r.summary, mono) << threads << " threads";
  }
}

TEST_F(FabricEquivalence, EveryKillPointResumesBitIdentically) {
  // The acceptance criterion: kill the coordinator after every possible
  // number of durable shards, restart with --resume semantics, and the
  // final merged summary must equal the uninterrupted monolithic run —
  // for rate-driven and exact-count memory-fault models, at 1/2/8
  // threads.
  const HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();
  constexpr std::size_t kRuns = 10;
  constexpr std::uint64_t kShardSize = 2;  // 5 shards

  MemoryCampaignConfig rate_cfg;
  rate_cfg.model.bit_error_rate = 1e-4;
  rate_cfg.ecc = true;
  rate_cfg.scrub_interval = 3;
  MemoryCampaignConfig exact_cfg;
  exact_cfg.model.exact_flips = 2;
  exact_cfg.scrub_interval = 2;

  int variant = 0;
  for (const MemoryCampaignConfig& mcfg : {rate_cfg, exact_cfg}) {
    SCOPED_TRACE(variant++);
    const MemoryFaultCampaign campaign(net, mcfg);
    FaultSeedStream seeds = net.seed_stream();
    const std::uint64_t seed_base = seeds.peek();
    const MemoryCampaignSummary mono = campaign.run(img, kRuns, seeds);

    for (const std::size_t threads : {1u, 2u, 8u}) {
      ComputeContext::set_global_threads(threads);
      for (std::size_t kill = 0; kill <= 5; ++kill) {
        FabricConfig cfg;
        cfg.shard_size = kShardSize;
        cfg.workers = 2;
        cfg.checkpoint_path = path("kill.bin");
        std::filesystem::remove(cfg.checkpoint_path);

        FabricConfig killed = cfg;
        killed.halt_after_shards = kill;
        const FabricResult<MemoryCampaignSummary> first =
            fabric::run_memory_campaign(campaign, img, kRuns, seed_base,
                                        killed);
        EXPECT_EQ(first.complete, kill >= 5);

        const FabricResult<MemoryCampaignSummary> resumed =
            fabric::run_memory_campaign(campaign, img, kRuns, seed_base, cfg);
        ASSERT_TRUE(resumed.complete);
        EXPECT_EQ(resumed.summary, mono)
            << "kill after " << kill << " shards at " << threads
            << " threads";
        EXPECT_EQ(resumed.stats.shards_resumed, kill);
        EXPECT_EQ(resumed.stats.shards_executed, 5 - kill);
      }
    }
  }
}

TEST_F(FabricEquivalence, ClassifyCampaignKillPointsResumeBitIdentically) {
  HybridConfig hcfg;
  hcfg.fault_config.kind = faultsim::FaultKind::kTransient;
  hcfg.fault_config.probability = 1e-4;
  const HybridNetwork net(make_testnet(), 0, hcfg);
  const Tensor img = stop_image();
  constexpr std::size_t kRuns = 12;
  constexpr std::uint64_t kShardSize = 3;  // 4 shards

  FaultSeedStream seeds = net.seed_stream();
  const std::uint64_t seed_base = seeds.peek();
  const CampaignSummary mono =
      net.classify_campaign(img, kRuns, judge_result, seeds);

  ComputeContext::set_global_threads(2);
  for (std::size_t kill = 0; kill <= 4; ++kill) {
    FabricConfig cfg;
    cfg.shard_size = kShardSize;
    cfg.workers = 2;
    cfg.checkpoint_path = path("kill_classify.bin");
    std::filesystem::remove(cfg.checkpoint_path);

    FabricConfig killed = cfg;
    killed.halt_after_shards = kill;
    (void)fabric::run_classify_campaign(net, img, kRuns, seed_base,
                                        judge_result, killed);

    const FabricResult<CampaignSummary> resumed =
        fabric::run_classify_campaign(net, img, kRuns, seed_base,
                                      judge_result, cfg);
    ASSERT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.summary, mono) << "kill after " << kill << " shards";
    EXPECT_EQ(resumed.stats.shards_resumed, kill);
  }
}

}  // namespace
