// Parallel campaign driver: outcome bookkeeping, per-run isolation, and
// bit-identical summaries across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "faultsim/campaign.hpp"
#include "faultsim/injector.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "runtime/compute_context.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using namespace hybridcnn;
using faultsim::CampaignSummary;
using faultsim::Outcome;
using runtime::ComputeContext;

class CampaignParallel : public ::testing::Test {
 protected:
  void TearDown() override { ComputeContext::set_global_threads(1); }
};

TEST_F(CampaignParallel, RunsEachIndexOnceAndCountsOutcomes) {
  ComputeContext::set_global_threads(4);
  constexpr std::size_t kRuns = 103;
  std::vector<std::atomic<int>> calls(kRuns);
  const CampaignSummary s = faultsim::run_campaign(kRuns, [&](std::size_t r) {
    calls[r]++;
    switch (r % 4) {
      case 0: return Outcome::kCorrect;
      case 1: return Outcome::kCorrected;
      case 2: return Outcome::kDetectedAbort;
      default: return Outcome::kSilentCorruption;
    }
  });
  for (std::size_t r = 0; r < kRuns; ++r) EXPECT_EQ(calls[r].load(), 1);
  EXPECT_EQ(s.runs, kRuns);
  EXPECT_EQ(s.correct, 26u);           // ceil(103 / 4)
  EXPECT_EQ(s.corrected, 26u);
  EXPECT_EQ(s.detected_abort, 26u);
  EXPECT_EQ(s.silent_corruption, 25u);
}

/// Small reliable conv campaign under SEU injection; the workload of the
/// ABL-FAULT bench scaled down to test size.
CampaignSummary conv_campaign(const char* scheme, double rate,
                              std::size_t runs) {
  util::Rng rng(3);
  tensor::Tensor weights(tensor::Shape{4, 2, 3, 3});
  weights.fill_normal(rng, 0.0f, 0.3f);
  tensor::Tensor bias(tensor::Shape{4});
  const reliable::ReliableConv2d conv(weights, bias,
                                      reliable::ConvSpec{1, 1});
  tensor::Tensor input(tensor::Shape{2, 10, 10});
  input.fill_normal(rng, 0.0f, 1.0f);
  const tensor::Tensor golden = conv.reference_forward(input);

  return conv.forward_campaign(
      input, runs,
      [&](std::size_t run) {
        faultsim::FaultConfig cfg;
        cfg.kind = faultsim::FaultKind::kTransient;
        cfg.probability = rate;
        cfg.bit = -1;
        return reliable::make_executor(
            scheme,
            std::make_shared<faultsim::FaultInjector>(cfg, 500 + run));
      },
      [&](std::size_t, const reliable::ReliableResult& result,
          reliable::Executor& exec) {
        return faultsim::classify(exec.injector()->stats().faults > 0,
                                  !result.report.ok,
                                  result.output == golden);
      });
}

TEST_F(CampaignParallel, ConvCampaignIsThreadCountInvariant) {
  // A rate high enough to produce a mix of outcomes, so the equality
  // check is meaningful.
  constexpr double kRate = 5e-5;
  constexpr std::size_t kRuns = 60;
  for (const char* scheme : {"simplex", "dmr"}) {
    std::vector<CampaignSummary> summaries;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ComputeContext::set_global_threads(threads);
      summaries.push_back(conv_campaign(scheme, kRate, kRuns));
    }
    ASSERT_EQ(summaries[0].runs, kRuns);
    for (std::size_t i = 1; i < summaries.size(); ++i) {
      EXPECT_EQ(summaries[0].correct, summaries[i].correct) << scheme;
      EXPECT_EQ(summaries[0].corrected, summaries[i].corrected) << scheme;
      EXPECT_EQ(summaries[0].detected_abort, summaries[i].detected_abort)
          << scheme;
      EXPECT_EQ(summaries[0].silent_corruption,
                summaries[i].silent_corruption)
          << scheme;
    }
  }
}

TEST_F(CampaignParallel, DmrCampaignHasNoSilentCorruption) {
  ComputeContext::set_global_threads(8);
  const CampaignSummary s = conv_campaign("dmr", 1e-4, 40);
  EXPECT_EQ(s.silent_corruption, 0u);
  EXPECT_GT(s.corrected + s.detected_abort, 0u);  // faults did activate
}

TEST_F(CampaignParallel, SimplexCampaignLeaksSdcUnderFaults) {
  ComputeContext::set_global_threads(8);
  const CampaignSummary s = conv_campaign("simplex", 1e-4, 40);
  EXPECT_GT(s.silent_corruption, 0u);
}

TEST_F(CampaignParallel, RethrowsTheLowestRunException) {
  // A throwing run body must surface the same exception a serial sweep
  // would hit first — the lowest throwing run index — regardless of the
  // thread count scheduling the runs.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ComputeContext::set_global_threads(threads);
    try {
      (void)faultsim::run_campaign(500, [](std::size_t r) {
        if (r >= 71) throw std::runtime_error("run " + std::to_string(r));
        return Outcome::kCorrect;
      });
      FAIL() << "expected a throw at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "run 71") << threads << " threads";
    }
  }
}

TEST_F(CampaignParallel, SummariesMergeByFieldwiseAddition) {
  const auto outcome_of = [](std::size_t r) {
    switch (r % 4) {
      case 0: return Outcome::kCorrect;
      case 1: return Outcome::kCorrected;
      case 2: return Outcome::kDetectedAbort;
      default: return Outcome::kSilentCorruption;
    }
  };
  const CampaignSummary whole = faultsim::run_campaign(103, outcome_of);
  // Split at an odd boundary; the shifted index keeps the outcome of
  // each global run identical across the split.
  const CampaignSummary head = faultsim::run_campaign(37, outcome_of);
  const CampaignSummary tail = faultsim::run_campaign(
      103 - 37, [&](std::size_t r) { return outcome_of(37 + r); });
  EXPECT_EQ(head + tail, whole);
  CampaignSummary acc = head;
  acc += tail;
  EXPECT_EQ(acc, whole);
}

}  // namespace
