// ScalarCheckpoint / ProgressCheckpoint: commit/rollback semantics at
// operation and inference-step granularity.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "reliable/checkpoint.hpp"
#include "tensor/tensor.hpp"

namespace {

using hybridcnn::reliable::ProgressCheckpoint;
using hybridcnn::reliable::ScalarCheckpoint;
using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;

TEST(ScalarCheckpoint, InitialValueIsCommitted) {
  const ScalarCheckpoint cp(3.5f);
  EXPECT_FLOAT_EQ(cp.value(), 3.5f);
  EXPECT_EQ(cp.commits(), 0u);
  EXPECT_EQ(cp.rollbacks(), 0u);
}

TEST(ScalarCheckpoint, CommitAdvancesState) {
  ScalarCheckpoint cp(0.0f);
  cp.commit(1.0f);
  EXPECT_FLOAT_EQ(cp.value(), 1.0f);
  cp.commit(2.0f);
  EXPECT_FLOAT_EQ(cp.value(), 2.0f);
  EXPECT_EQ(cp.commits(), 2u);
}

TEST(ScalarCheckpoint, RollbackReturnsLastCommit) {
  ScalarCheckpoint cp(0.0f);
  cp.commit(7.0f);
  EXPECT_FLOAT_EQ(cp.rollback(), 7.0f);
  EXPECT_FLOAT_EQ(cp.value(), 7.0f) << "rollback must not change state";
  EXPECT_EQ(cp.rollbacks(), 1u);
}

TEST(ScalarCheckpoint, RollbackBeforeAnyCommitYieldsInitial) {
  ScalarCheckpoint cp(-2.5f);
  EXPECT_FLOAT_EQ(cp.rollback(), -2.5f);
}

TEST(ScalarCheckpoint, InterleavedCommitRollbackSequence) {
  // Simulates Algorithm 3: successful ops commit, failed ops roll back.
  ScalarCheckpoint acc(1.0f);
  acc.commit(1.5f);             // op ok
  float v = acc.rollback();     // op failed; discard
  EXPECT_FLOAT_EQ(v, 1.5f);
  acc.commit(v + 0.5f);         // retry succeeded
  EXPECT_FLOAT_EQ(acc.value(), 2.0f);
  EXPECT_EQ(acc.commits(), 2u);
  EXPECT_EQ(acc.rollbacks(), 1u);
}

TEST(ProgressCheckpoint, StartsAtStepZeroWithEmptyState) {
  const ProgressCheckpoint cp;
  EXPECT_EQ(cp.step(), 0u);
  EXPECT_EQ(cp.state().count(), 0u);
  EXPECT_EQ(cp.commits(), 0u);
  EXPECT_EQ(cp.rollbacks(), 0u);
}

TEST(ProgressCheckpoint, CommitAdvancesStepAndState) {
  ProgressCheckpoint cp;
  cp.commit(1, Tensor(Shape{4}, 1.0f));
  EXPECT_EQ(cp.step(), 1u);
  EXPECT_EQ(cp.state(), Tensor(Shape{4}, 1.0f));
  cp.commit(2, Tensor(Shape{2}, 5.0f));
  EXPECT_EQ(cp.step(), 2u);
  EXPECT_EQ(cp.state(), Tensor(Shape{2}, 5.0f));
  EXPECT_EQ(cp.commits(), 2u);
}

TEST(ProgressCheckpoint, RollbackPreservesCommittedProgress) {
  ProgressCheckpoint cp;
  cp.commit(3, Tensor(Shape{8}, 2.0f));
  // A power cut mid-step discards in-flight work; the committed pair
  // survives untouched.
  EXPECT_EQ(cp.rollback(), 3u);
  EXPECT_EQ(cp.step(), 3u);
  EXPECT_EQ(cp.state(), Tensor(Shape{8}, 2.0f));
  EXPECT_EQ(cp.rollbacks(), 1u);
}

TEST(ProgressCheckpoint, RollbackBeforeAnyCommitRestartsFromZero) {
  ProgressCheckpoint cp;
  EXPECT_EQ(cp.rollback(), 0u);
  EXPECT_EQ(cp.rollback(), 0u);
  EXPECT_EQ(cp.rollbacks(), 2u);
}

// ------------------------------------------- ECC-protected checkpoint

/// Flips one bit of one committed float through the raw-storage handle —
/// the model of an SEU landing in the checkpoint slot at rest.
void flip_state_bit(ProgressCheckpoint& cp, std::size_t word,
                    std::uint32_t bit) {
  float& f = cp.mutable_state().data()[word];
  std::uint32_t w;
  std::memcpy(&w, &f, sizeof(w));
  w ^= (1u << bit);
  std::memcpy(&f, &w, sizeof(w));
}

TEST(ProgressCheckpoint, EccOffScrubIsEmpty) {
  ProgressCheckpoint cp(false);
  cp.commit(1, Tensor(Shape{8}, 1.0f));
  EXPECT_FALSE(cp.ecc());
  EXPECT_TRUE(cp.scrub().clean());
  EXPECT_EQ(cp.scrub().words, 0u);
}

TEST(ProgressCheckpoint, EccScrubCorrectsASingleBitFlip) {
  ProgressCheckpoint cp(true);
  const Tensor committed(Shape{16}, 0.75f);
  cp.commit(2, Tensor(committed));
  flip_state_bit(cp, 5, 17);
  ASSERT_NE(cp.state(), committed) << "the upset must be visible at rest";

  const auto report = cp.scrub();
  EXPECT_EQ(report.corrected(), 1u);
  EXPECT_EQ(report.uncorrectable, 0u);
  EXPECT_EQ(cp.state(), committed)
      << "a scrubbed slot must be bit-identical to the committed state";
  EXPECT_EQ(cp.step(), 2u);
}

TEST(ProgressCheckpoint, EccScrubCorrectsOneFlipPerWord) {
  ProgressCheckpoint cp(true);
  const Tensor committed(Shape{8}, -1.25f);
  cp.commit(1, Tensor(committed));
  for (std::size_t w = 0; w < 8; ++w) {
    flip_state_bit(cp, w, static_cast<std::uint32_t>((w * 7) % 32));
  }
  const auto report = cp.scrub();
  EXPECT_EQ(report.corrected(), 8u);
  EXPECT_EQ(report.uncorrectable, 0u);
  EXPECT_EQ(cp.state(), committed);
}

TEST(ProgressCheckpoint, EccRecommitRefreshesCheckBits) {
  // Commit, corrupt, scrub, then commit fresh state: the new commit must
  // recompute check bits so a later scrub sees a clean slot.
  ProgressCheckpoint cp(true);
  cp.commit(1, Tensor(Shape{4}, 1.0f));
  flip_state_bit(cp, 0, 3);
  (void)cp.scrub();
  cp.commit(2, Tensor(Shape{4}, 2.0f));
  EXPECT_TRUE(cp.scrub().clean());
  EXPECT_EQ(cp.state(), Tensor(Shape{4}, 2.0f));
}

}  // namespace
