// ScalarCheckpoint: operation-granular commit/rollback semantics.
#include <gtest/gtest.h>

#include "reliable/checkpoint.hpp"

namespace {

using hybridcnn::reliable::ScalarCheckpoint;

TEST(ScalarCheckpoint, InitialValueIsCommitted) {
  const ScalarCheckpoint cp(3.5f);
  EXPECT_FLOAT_EQ(cp.value(), 3.5f);
  EXPECT_EQ(cp.commits(), 0u);
  EXPECT_EQ(cp.rollbacks(), 0u);
}

TEST(ScalarCheckpoint, CommitAdvancesState) {
  ScalarCheckpoint cp(0.0f);
  cp.commit(1.0f);
  EXPECT_FLOAT_EQ(cp.value(), 1.0f);
  cp.commit(2.0f);
  EXPECT_FLOAT_EQ(cp.value(), 2.0f);
  EXPECT_EQ(cp.commits(), 2u);
}

TEST(ScalarCheckpoint, RollbackReturnsLastCommit) {
  ScalarCheckpoint cp(0.0f);
  cp.commit(7.0f);
  EXPECT_FLOAT_EQ(cp.rollback(), 7.0f);
  EXPECT_FLOAT_EQ(cp.value(), 7.0f) << "rollback must not change state";
  EXPECT_EQ(cp.rollbacks(), 1u);
}

TEST(ScalarCheckpoint, RollbackBeforeAnyCommitYieldsInitial) {
  ScalarCheckpoint cp(-2.5f);
  EXPECT_FLOAT_EQ(cp.rollback(), -2.5f);
}

TEST(ScalarCheckpoint, InterleavedCommitRollbackSequence) {
  // Simulates Algorithm 3: successful ops commit, failed ops roll back.
  ScalarCheckpoint acc(1.0f);
  acc.commit(1.5f);             // op ok
  float v = acc.rollback();     // op failed; discard
  EXPECT_FLOAT_EQ(v, 1.5f);
  acc.commit(v + 0.5f);         // retry succeeded
  EXPECT_FLOAT_EQ(acc.value(), 2.0f);
  EXPECT_EQ(acc.commits(), 2u);
  EXPECT_EQ(acc.rollbacks(), 1u);
}

}  // namespace
