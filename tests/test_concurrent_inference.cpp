// Re-entrancy of the const inference path: many OS threads hammering one
// shared network must produce bit-identical results to a serial loop, at
// every pool thread count, and inference must never disturb training
// caches. Runs under the ASan/UBSan CI job, where any data race on layer
// state or shared scratch shows up as a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/lrn.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "nn/sequential.hpp"
#include "nn/softmax.hpp"
#include "runtime/compute_context.hpp"
#include "runtime/workspace.hpp"
#include "util/rng.hpp"

namespace {

using namespace hybridcnn;
using runtime::ComputeContext;
using tensor::Shape;
using tensor::Tensor;

/// Classifier covering every fixed-shape layer type, incl. dropout (an
/// identity at inference) and a softmax head. 32x32 input.
std::unique_ptr<nn::Sequential> make_classifier(std::uint64_t seed) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 5, 1, 2);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(2, 2);  // 32 -> 16
  net->emplace<nn::Conv2d>(8, 16, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(2, 2);  // 16 -> 8
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(16 * 8 * 8, 32);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Dropout>(0.3f);
  net->emplace<nn::Linear>(32, 5);
  net->emplace<nn::Softmax>();
  nn::init_network(*net, seed);
  return net;
}

/// Fully convolutional trunk (conv/relu/lrn/maxpool): accepts any input
/// size, which lets the hammer threads mix shapes on one shared model.
std::unique_ptr<nn::Sequential> make_trunk(std::uint64_t seed) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 6, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Lrn>();
  net->emplace<nn::MaxPool>(2, 2);
  nn::init_network(*net, seed);
  return net;
}

Tensor random_image(const Shape& shape, std::uint64_t seed) {
  Tensor t(shape);
  util::Rng rng(seed);
  t.fill_normal(rng, 0.0f, 1.0f);
  return t;
}

class ConcurrentInferenceThreads
    : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { ComputeContext::set_global_threads(GetParam()); }
  void TearDown() override { ComputeContext::set_global_threads(1); }
};

TEST_P(ConcurrentInferenceThreads, SharedModelMatchesSerialLoopBitExactly) {
  const auto classifier = make_classifier(5);
  const auto trunk = make_trunk(7);

  // Mixed work: single images, a batched input, and three trunk shapes.
  struct Item {
    const nn::Sequential* net;
    Tensor input;
  };
  std::vector<Item> items;
  for (std::uint64_t s = 0; s < 4; ++s) {
    items.push_back({classifier.get(), random_image(Shape{1, 3, 32, 32},
                                                    100 + s)});
  }
  items.push_back({classifier.get(), random_image(Shape{4, 3, 32, 32}, 200)});
  for (const std::size_t side : {24u, 32u, 40u}) {
    items.push_back(
        {trunk.get(), random_image(Shape{2, 3, side, side}, 300 + side)});
  }

  // Serial golden pass.
  std::vector<Tensor> golden;
  golden.reserve(items.size());
  for (const Item& item : items) {
    golden.push_back(item.net->infer(item.input, runtime::thread_scratch()));
  }

  // Hammer: every thread re-infers every item several times against one
  // shared model, each thread on its own scratch arena, and compares
  // bit-for-bit. Interleave the traversal per thread so distinct layers
  // of both nets run concurrently.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRepeats = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      runtime::Workspace scratch;
      for (std::size_t r = 0; r < kRepeats; ++r) {
        for (std::size_t j = 0; j < items.size(); ++j) {
          const std::size_t i = (j + t) % items.size();
          const Tensor out = items[i].net->infer(items[i].input, scratch);
          if (!(out == golden[i])) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_P(ConcurrentInferenceThreads, InferenceDoesNotDisturbTrainingCaches) {
  // Two identical nets: one runs forward_train -> backward directly, the
  // other is hammered with concurrent inference between its forward_train
  // and backward. Gradients must match bit-for-bit — inference shares the
  // model but owns no cache.
  auto reference = make_classifier(9);
  auto hammered = make_classifier(9);
  const Tensor batch = random_image(Shape{4, 3, 32, 32}, 11);
  const std::vector<int> labels{0, 1, 2, 3};

  const auto step = [&labels](nn::Sequential& net, const Tensor& input,
                              nn::FwdCache& ctx) {
    net.zero_grad();
    const Tensor probs = net.forward_train(input, ctx);
    // Drive backward with a simple deterministic gradient.
    Tensor g(probs.shape());
    const std::size_t classes = probs.shape()[1];
    for (std::size_t s = 0; s < labels.size(); ++s) {
      g[s * classes + static_cast<std::size_t>(labels[s])] = 1.0f;
    }
    return g;
  };

  nn::FwdCache ref_ctx;
  const Tensor ref_grad = step(*reference, batch, ref_ctx);
  reference->backward(ref_grad, ref_ctx);

  nn::FwdCache ham_ctx;
  const Tensor ham_grad = step(*hammered, batch, ham_ctx);
  {
    std::vector<std::thread> threads;
    const Tensor probe = random_image(Shape{2, 3, 32, 32}, 13);
    for (std::size_t t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        runtime::Workspace scratch;
        for (int r = 0; r < 3; ++r) {
          (void)hammered->infer(probe, scratch);
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  hammered->backward(ham_grad, ham_ctx);

  auto ref_params = reference->params();
  auto ham_params = hammered->params();
  ASSERT_EQ(ref_params.size(), ham_params.size());
  for (std::size_t i = 0; i < ref_params.size(); ++i) {
    EXPECT_EQ(*ref_params[i].grad, *ham_params[i].grad)
        << ref_params[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ConcurrentInferenceThreads,
                         ::testing::Values<std::size_t>(1, 2, 8));

TEST(ConcurrentInference, TwoCacheContextsShareOneModel) {
  // Two micro-batch contexts forward through one net; backwards in either
  // order reproduce the gradients of two sequential classic steps.
  auto net = make_trunk(33);
  const Tensor a = random_image(Shape{1, 3, 16, 16}, 35);
  const Tensor b = random_image(Shape{1, 3, 16, 16}, 37);

  nn::FwdCache ctx_a;
  nn::FwdCache ctx_b;
  net->zero_grad();
  const Tensor out_a = net->forward_train(a, ctx_a);
  const Tensor out_b = net->forward_train(b, ctx_b);  // a's cache survives
  (void)net->backward(out_a, ctx_a);
  (void)net->backward(out_b, ctx_b);
  std::vector<Tensor> got;
  for (const auto& p : net->params()) got.push_back(*p.grad);

  auto serial = make_trunk(33);
  serial->zero_grad();
  nn::FwdCache ctx;
  const Tensor sa = serial->forward_train(a, ctx);
  (void)serial->backward(sa, ctx);
  const Tensor sb = serial->forward_train(b, ctx);
  (void)serial->backward(sb, ctx);
  auto serial_params = serial->params();
  ASSERT_EQ(got.size(), serial_params.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], *serial_params[i].grad) << serial_params[i].name;
  }
}

}  // namespace
