// Property sweep: the im2col/GEMM conv engine and the reliability
// kernel's reference loop must agree across the geometry grid (kernel,
// stride, padding, channels), and every reliable scheme must be
// bit-identical to the reference fault-free.
#include <gtest/gtest.h>

#include <tuple>

#include "nn/conv2d.hpp"
#include "reliable/executor.hpp"
#include "runtime/workspace.hpp"
#include "reliable/reliable_conv.hpp"
#include "util/rng.hpp"

namespace {

using namespace hybridcnn;
using tensor::Shape;
using tensor::Tensor;
using util::Rng;

// (in_c, out_c, kernel, stride, pad, input_size)
using Geometry =
    std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
               std::size_t, std::size_t>;

class ConvGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(ConvGeometry, EnginesAgreeAndSchemesAreExact) {
  const auto [in_c, out_c, k, stride, pad, n] = GetParam();

  Rng rng(17);
  nn::Conv2d engine(in_c, out_c, k, stride, pad);
  engine.init_he(rng);

  Tensor input(Shape{in_c, n, n});
  input.fill_normal(rng, 0.0f, 1.0f);

  const reliable::ReliableConv2d reference(
      engine.weights(), engine.bias(), reliable::ConvSpec{stride, pad});

  // 1. The two independent conv implementations agree numerically.
  Tensor batched = input;
  batched.reshape(Shape{1, in_c, n, n});
  Tensor fast = engine.infer(batched, runtime::thread_scratch());
  Tensor slow = reference.reference_forward(input);
  slow.reshape(fast.shape());
  EXPECT_LT(fast.max_abs_diff(slow), 1e-3f)
      << "im2col/GEMM vs direct loop disagreement";

  // 2. Every qualified scheme is bit-identical to the reference when the
  //    hardware is fault-free.
  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    const auto exec = reliable::make_executor(scheme, nullptr);
    const auto result = reference.forward(input, *exec);
    ASSERT_TRUE(result.report.ok) << scheme;
    EXPECT_EQ(result.output, reference.reference_forward(input)) << scheme;
  }

  // 3. The MAC accounting matches what actually executed.
  const auto exec = reliable::make_executor("simplex", nullptr);
  const auto result = reference.forward(input, *exec);
  EXPECT_EQ(result.report.logical_ops,
            2 * reference.mac_count(input.shape()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvGeometry,
    ::testing::Values(
        Geometry{1, 1, 1, 1, 0, 5},    // pointwise
        Geometry{1, 2, 3, 1, 0, 8},    // valid conv
        Geometry{2, 3, 3, 1, 1, 8},    // same padding
        Geometry{3, 4, 5, 2, 2, 11},   // stride + pad
        Geometry{2, 2, 3, 3, 0, 10},   // stride > 1, no pad
        Geometry{1, 4, 7, 2, 3, 13},   // large kernel, heavy pad
        Geometry{4, 1, 2, 2, 0, 8},    // even kernel
        Geometry{3, 8, 11, 4, 0, 23},  // AlexNet conv1 geometry, small
        Geometry{2, 3, 3, 1, 2, 6},    // pad > kernel/2
        Geometry{1, 1, 5, 5, 0, 10})); // stride == kernel (tiling)

}  // namespace
