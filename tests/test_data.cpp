// Synthetic GTSRB stand-in: renderer determinism, class geometry,
// dataset jitter and batching.
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "data/renderer.hpp"
#include "data/shapes.hpp"
#include "util/rng.hpp"
#include "vision/centroid.hpp"
#include "vision/edge_map.hpp"
#include "vision/radial.hpp"

namespace {

using namespace hybridcnn::data;
using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;

TEST(Shapes, ClassMetadata) {
  EXPECT_EQ(silhouette_sides(SignClass::kStop), 8u);
  EXPECT_EQ(silhouette_sides(SignClass::kSpeedLimit), 0u);
  EXPECT_EQ(silhouette_sides(SignClass::kYield), 3u);
  EXPECT_EQ(class_name(SignClass::kStop), "stop");
  EXPECT_EQ(class_name(SignClass::kParking), "parking");
  EXPECT_EQ(all_classes().size(), kNumClasses);
}

TEST(Renderer, DeterministicForSameParams) {
  RenderParams p;
  p.cls = SignClass::kStop;
  p.size = 48;
  p.rotation = 0.1;
  p.noise_seed = 99;
  const Tensor a = render_sign(p);
  const Tensor b = render_sign(p);
  EXPECT_EQ(a, b);
}

TEST(Renderer, NoiseSeedChangesPixels) {
  RenderParams p;
  p.size = 48;
  p.noise_seed = 1;
  const Tensor a = render_sign(p);
  p.noise_seed = 2;
  const Tensor b = render_sign(p);
  EXPECT_NE(a, b);
}

TEST(Renderer, OutputShapeAndRange) {
  RenderParams p;
  p.size = 32;
  const Tensor img = render_sign(p);
  EXPECT_EQ(img.shape(), (Shape{3, 32, 32}));
  for (std::size_t i = 0; i < img.count(); ++i) {
    EXPECT_GE(img[i], 0.0f);
    EXPECT_LE(img[i], 1.0f);
  }
}

TEST(Renderer, StopSignIsRedDominant) {
  RenderParams p;
  p.cls = SignClass::kStop;
  p.size = 64;
  p.noise_sigma = 0.0;
  const Tensor img = render_sign(p);
  // Fill region (avoid the white band): sample a point below centre.
  const std::size_t plane = 64 * 64;
  const std::size_t idx = 44 * 64 + 32;
  EXPECT_GT(img[idx], 0.5f);               // R
  EXPECT_LT(img[plane + idx], 0.3f);       // G
  EXPECT_LT(img[2 * plane + idx], 0.3f);   // B
}

TEST(Renderer, OffsetMovesCentroid) {
  RenderParams p;
  p.cls = SignClass::kStop;
  p.size = 96;
  p.scale = 0.6;
  p.offset_x = 10.0;
  p.offset_y = -6.0;
  const Tensor img = render_sign(p);
  const auto mask = hybridcnn::vision::dominant_shape(img);
  const auto c = hybridcnn::vision::centroid(mask);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->x, 58.0, 3.0);
  EXPECT_NEAR(c->y, 42.0, 3.0);
}

TEST(Renderer, ScaleControlsSilhouetteArea) {
  RenderParams small;
  small.size = 96;
  small.scale = 0.5;
  RenderParams large = small;
  large.scale = 0.9;
  const auto m_small =
      hybridcnn::vision::dominant_shape(render_sign(small));
  const auto m_large =
      hybridcnn::vision::dominant_shape(render_sign(large));
  EXPECT_GT(m_large.count(), m_small.count() * 2);
}

TEST(Renderer, EveryClassProducesAVisibleShape) {
  for (const SignClass cls : all_classes()) {
    RenderParams p;
    p.cls = cls;
    p.size = 64;
    const Tensor img = render_sign(p);
    const auto mask = hybridcnn::vision::dominant_shape(img);
    const double frac =
        static_cast<double>(mask.count()) / static_cast<double>(64 * 64);
    EXPECT_GT(frac, 0.1) << class_name(cls);
    EXPECT_LT(frac, 0.85) << class_name(cls);
  }
}

TEST(Dataset, SizeAndLabelDistribution) {
  const auto ds = make_dataset(10, {.image_size = 32}, 7);
  EXPECT_EQ(ds.size(), 10 * kNumClasses);
  std::vector<int> counts(kNumClasses, 0);
  for (const Example& ex : ds) {
    ASSERT_GE(ex.label, 0);
    ASSERT_LT(ex.label, static_cast<int>(kNumClasses));
    ++counts[static_cast<std::size_t>(ex.label)];
    EXPECT_EQ(ex.image.shape(), (Shape{3, 32, 32}));
  }
  for (const int c : counts) EXPECT_EQ(c, 10);
}

TEST(Dataset, DeterministicForSeed) {
  const auto a = make_dataset(4, {.image_size = 24}, 11);
  const auto b = make_dataset(4, {.image_size = 24}, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].image, b[i].image);
  }
}

// Regression: the per-example noise_seed is built from two 32-bit draws.
// Composing them inside one expression left the draw order unspecified, so
// gcc and clang rendered different datasets from the same seed. The fix
// sequences the draws (hi first); this test replays that exact derivation
// for the first rendered example and requires the resulting image to be in
// the dataset — a compiler that flips the order fails here.
TEST(Dataset, NoiseSeedDrawOrderIsPinned) {
  const DatasetConfig config{.image_size = 24};
  const std::uint64_t seed = 17;
  const auto ds = make_dataset(1, config, seed);

  hybridcnn::util::Rng rng(seed, /*stream=*/0xDA7A);
  constexpr double kDegToRad = 6.283185307179586 / 360.0;
  RenderParams p;
  p.cls = all_classes()[0];
  p.size = config.image_size;
  p.rotation = rng.uniform(-config.max_rotation_deg,
                           config.max_rotation_deg) *
               kDegToRad;
  p.scale = rng.uniform(config.min_scale, config.max_scale);
  const double max_off =
      config.max_offset_frac * static_cast<double>(config.image_size);
  p.offset_y = rng.uniform(-max_off, max_off);
  p.offset_x = rng.uniform(-max_off, max_off);
  p.brightness = rng.uniform(config.min_brightness, config.max_brightness);
  p.noise_sigma = config.noise_sigma;
  const auto seed_hi = static_cast<std::uint64_t>(rng());
  const auto seed_lo = static_cast<std::uint64_t>(rng());
  p.noise_seed = (seed_hi << 32) | seed_lo;
  const Tensor expected = render_sign(p);

  bool found = false;
  for (const Example& ex : ds) {
    if (ex.label == static_cast<int>(p.cls) && ex.image == expected) {
      found = true;
    }
  }
  EXPECT_TRUE(found)
      << "first rendered example does not match the documented sequenced "
         "rng draw order (hi half first, then lo half)";
}

TEST(Dataset, SeedsProduceDifferentData) {
  const auto a = make_dataset(4, {.image_size = 24}, 1);
  const auto b = make_dataset(4, {.image_size = 24}, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].image == b[i].image)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Dataset, ShuffledOrder) {
  const auto ds = make_dataset(20, {.image_size = 16}, 3);
  // Not all first 20 examples share one label (unshuffled would).
  bool mixed = false;
  for (std::size_t i = 1; i < 20; ++i) {
    if (ds[i].label != ds[0].label) mixed = true;
  }
  EXPECT_TRUE(mixed);
}

TEST(Batch, StacksImagesAndLabels) {
  const auto ds = make_dataset(3, {.image_size = 16}, 5);
  const Batch batch = make_batch(ds, 2, 4);
  EXPECT_EQ(batch.images.shape(), (Shape{4, 3, 16, 16}));
  ASSERT_EQ(batch.labels.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.labels[i], ds[2 + i].label);
    // Spot-check pixel copy.
    EXPECT_EQ(batch.images[i * 3 * 256], ds[2 + i].image[0]);
  }
}

TEST(Batch, Validation) {
  const auto ds = make_dataset(2, {.image_size = 16}, 5);
  EXPECT_THROW(make_batch(ds, 0, 0), std::out_of_range);
  EXPECT_THROW(make_batch(ds, ds.size() - 1, 2), std::out_of_range);
}

}  // namespace
