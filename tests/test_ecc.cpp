// SEC-DED protected tensor storage: codec properties (exhaustive single-
// and sampled double-bit errors) and scrub semantics.
#include <gtest/gtest.h>

#include "faultsim/bitflip.hpp"
#include "faultsim/ecc.hpp"
#include "faultsim/memory_faults.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "util/rng.hpp"

namespace {

using namespace hybridcnn;
using faultsim::ProtectedTensor;
using faultsim::SecDed;
using tensor::Shape;
using tensor::Tensor;
using util::Rng;

TEST(SecDed, CleanWordDecodesClean) {
  for (const std::uint32_t word :
       {0u, 0xFFFFFFFFu, 0xDEADBEEFu, 0x3F800000u, 1u}) {
    std::uint32_t data = word;
    std::uint8_t check = SecDed::encode(word);
    EXPECT_EQ(SecDed::decode(data, check), SecDed::Outcome::kClean);
    EXPECT_EQ(data, word);
  }
}

TEST(SecDed, CorrectsEverySingleDataBitFlip) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const auto word = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(rng()) << 32 | rng()) & 0xFFFFFFFF);
    const std::uint8_t clean_check = SecDed::encode(word);
    for (int bit = 0; bit < 32; ++bit) {
      std::uint32_t data = word ^ (1u << bit);
      std::uint8_t check = clean_check;
      EXPECT_EQ(SecDed::decode(data, check),
                SecDed::Outcome::kCorrectedData)
          << "bit " << bit;
      EXPECT_EQ(data, word) << "bit " << bit;
    }
  }
}

TEST(SecDed, CorrectsEverySingleCheckBitFlip) {
  const std::uint32_t word = 0xCAFEBABE;
  const std::uint8_t clean_check = SecDed::encode(word);
  for (int bit = 0; bit < 7; ++bit) {
    std::uint32_t data = word;
    std::uint8_t check = clean_check ^ static_cast<std::uint8_t>(1u << bit);
    EXPECT_EQ(SecDed::decode(data, check),
              SecDed::Outcome::kCorrectedCheck)
        << "check bit " << bit;
    EXPECT_EQ(data, word);
    EXPECT_EQ(check, clean_check);
  }
}

TEST(SecDed, DetectsDoubleDataBitFlips) {
  const std::uint32_t word = 0x12345678;
  const std::uint8_t clean_check = SecDed::encode(word);
  int detected = 0;
  int total = 0;
  for (int b1 = 0; b1 < 32; ++b1) {
    for (int b2 = b1 + 1; b2 < 32; ++b2) {
      std::uint32_t data = word ^ (1u << b1) ^ (1u << b2);
      std::uint8_t check = clean_check;
      ++total;
      if (SecDed::decode(data, check) == SecDed::Outcome::kDoubleError) {
        ++detected;
      }
    }
  }
  EXPECT_EQ(detected, total) << "SEC-DED must flag every double error";
}

TEST(SecDed, DetectsDataPlusCheckDoubleFlip) {
  const std::uint32_t word = 0x0F0F0F0F;
  const std::uint8_t clean_check = SecDed::encode(word);
  int misdecoded = 0;
  for (int db = 0; db < 32; ++db) {
    for (int cb = 0; cb < 6; ++cb) {
      std::uint32_t data = word ^ (1u << db);
      std::uint8_t check =
          clean_check ^ static_cast<std::uint8_t>(1u << cb);
      const auto outcome = SecDed::decode(data, check);
      // Parity is even (two flips), so these must never be "corrected".
      if (outcome != SecDed::Outcome::kDoubleError) ++misdecoded;
    }
  }
  EXPECT_EQ(misdecoded, 0);
}

// --------------------------------------------------------------------------
// Exhaustive codeword-space properties. The stored codeword has 39 bits:
// 32 data + 6 Hamming check + 1 overall parity. Position p < 32 is data
// bit p; p >= 32 is check bit (p - 32), with p == 38 the parity bit.

void flip_codeword_bit(std::uint32_t& data, std::uint8_t& check, int p) {
  if (p < 32) {
    data ^= (1u << p);
  } else {
    check ^= static_cast<std::uint8_t>(1u << (p - 32));
  }
}

TEST(SecDed, ExhaustiveSingleBitFlipAlwaysRestoresOriginal) {
  // SEC property, exhaustively: for EVERY single-bit flip of the stored
  // codeword, decode corrects back to the exact original data AND check.
  Rng rng(11);
  for (int trial = 0; trial < 16; ++trial) {
    const auto word = static_cast<std::uint32_t>(rng());
    const std::uint8_t clean_check = SecDed::encode(word);
    for (int p = 0; p < 39; ++p) {
      std::uint32_t data = word;
      std::uint8_t check = clean_check;
      flip_codeword_bit(data, check, p);
      const auto outcome = SecDed::decode(data, check);
      EXPECT_EQ(outcome, p < 32 ? SecDed::Outcome::kCorrectedData
                                : SecDed::Outcome::kCorrectedCheck)
          << "word " << word << " position " << p;
      EXPECT_EQ(data, word) << "position " << p;
      EXPECT_EQ(check, clean_check) << "position " << p;
    }
  }
}

TEST(SecDed, ExhaustiveDoubleBitFlipAlwaysDetectedNeverMiscorrected) {
  // DED property, exhaustively: all C(39,2) = 741 two-bit flips of the
  // codeword — data+data, data+check, check+check, and every pairing
  // with the overall parity bit — must yield kDoubleError. A silent
  // miscorrection here is exactly the SDC class the ECC layer exists to
  // eliminate.
  Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    const auto word = static_cast<std::uint32_t>(rng());
    const std::uint8_t clean_check = SecDed::encode(word);
    int pairs = 0;
    for (int p1 = 0; p1 < 39; ++p1) {
      for (int p2 = p1 + 1; p2 < 39; ++p2) {
        std::uint32_t data = word;
        std::uint8_t check = clean_check;
        flip_codeword_bit(data, check, p1);
        flip_codeword_bit(data, check, p2);
        ++pairs;
        ASSERT_EQ(SecDed::decode(data, check), SecDed::Outcome::kDoubleError)
            << "word " << word << " positions (" << p1 << ", " << p2 << ")";
      }
    }
    EXPECT_EQ(pairs, 741);
  }
}

TEST(ProtectedTensor, CleanScrubIsNoop) {
  Rng rng(2);
  Tensor t(Shape{64});
  t.fill_normal(rng, 0.0f, 1.0f);
  ProtectedTensor p(t);
  const auto report = p.scrub();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(p.data(), t);
}

TEST(ProtectedTensor, ScrubRepairsSparseUpsets) {
  Rng rng(3);
  Tensor t(Shape{256});
  t.fill_normal(rng, 0.0f, 1.0f);
  const Tensor original = t;
  ProtectedTensor p(t);

  // One flip per affected word (sparse SEU accumulation).
  for (const std::size_t idx : {3u, 77u, 130u, 255u}) {
    p.data()[idx] = faultsim::flip_bit(p.data()[idx], static_cast<int>(idx % 32));
  }
  const auto verify = p.verify();
  EXPECT_EQ(verify.corrected(), 4u);

  const auto report = p.scrub();
  // All four flips hit payload bits, and the report attributes them to
  // the data words — not the check words.
  EXPECT_EQ(report.corrected_data, 4u);
  EXPECT_EQ(report.corrected_check, 0u);
  EXPECT_EQ(report.uncorrectable, 0u);
  EXPECT_EQ(p.data(), original) << "scrub must restore the exact payload";
  EXPECT_TRUE(p.scrub().clean()) << "second scrub finds nothing";
}

TEST(ProtectedTensor, DoubleUpsetInOneWordIsReportedNotHidden) {
  Tensor t(Shape{8}, 1.0f);
  ProtectedTensor p(t);
  p.data()[2] = faultsim::flip_bit(faultsim::flip_bit(p.data()[2], 3), 19);
  const auto report = p.scrub();
  EXPECT_EQ(report.uncorrectable, 1u);
}

TEST(ProtectedTensor, StoreRefreshesProtection) {
  Tensor t(Shape{4}, 0.0f);
  ProtectedTensor p(t);
  p.store(1, 42.5f);
  EXPECT_TRUE(p.scrub().clean());
  EXPECT_FLOAT_EQ(p.data()[1], 42.5f);
}

TEST(ProtectedTensor, ScrubbedWeightsRestoreGoldenConvolution) {
  // End to end: ECC on parameter memory + reliable execution closes the
  // weight-corruption gap the execution-level scheme cannot cover.
  Rng rng(5);
  Tensor weights(Shape{4, 3, 3, 3});
  weights.fill_normal(rng, 0.0f, 0.3f);
  Tensor bias(Shape{4});
  Tensor input(Shape{3, 10, 10});
  input.fill_normal(rng, 0.0f, 1.0f);

  const reliable::ReliableConv2d golden_conv(weights, bias,
                                             reliable::ConvSpec{1, 1});
  const Tensor golden = golden_conv.reference_forward(input);

  ProtectedTensor protected_weights(weights);
  // Sparse upsets in stored weights.
  Rng fault_rng(6);
  for (int i = 0; i < 5; ++i) {
    const auto idx = static_cast<std::size_t>(fault_rng.uniform_int(
        0, static_cast<std::int64_t>(protected_weights.data().count()) - 1));
    protected_weights.data()[idx] =
        faultsim::flip_bit(protected_weights.data()[idx],
                           static_cast<int>(fault_rng.uniform_int(0, 31)));
  }

  const auto report = protected_weights.scrub();
  EXPECT_GT(report.corrected_data, 0u);
  EXPECT_EQ(report.corrected_check, 0u);
  EXPECT_EQ(report.uncorrectable, 0u);

  const reliable::ReliableConv2d scrubbed_conv(protected_weights.data(),
                                               bias,
                                               reliable::ConvSpec{1, 1});
  EXPECT_EQ(scrubbed_conv.reference_forward(input), golden);
}

}  // namespace
