// Executor (Algorithms 1-2 + TMR) behaviour under controlled faults.
#include <gtest/gtest.h>

#include <memory>

#include "faultsim/bitflip.hpp"
#include "faultsim/injector.hpp"
#include "reliable/executor.hpp"

namespace {

using hybridcnn::faultsim::FaultConfig;
using hybridcnn::faultsim::FaultInjector;
using hybridcnn::faultsim::FaultKind;
using hybridcnn::reliable::DmrExecutor;
using hybridcnn::reliable::Executor;
using hybridcnn::reliable::make_executor;
using hybridcnn::reliable::Qualified;
using hybridcnn::reliable::SimplexExecutor;
using hybridcnn::reliable::TmrExecutor;

std::shared_ptr<FaultInjector> fault_free() { return nullptr; }

/// Injector corrupting every execution (probability 1 transient).
std::shared_ptr<FaultInjector> always_faulty(int bit = 12) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 1.0;
  cfg.bit = bit;
  return std::make_shared<FaultInjector>(cfg, /*seed=*/7);
}

// ------------------------------------------------------------- Algorithm 1

TEST(SimplexExecutor, ReturnsProductWithTrueQualifier) {
  SimplexExecutor ex(fault_free());
  const Qualified<float> q = ex.mul(3.0f, 4.0f);
  EXPECT_FLOAT_EQ(q.value, 12.0f);
  EXPECT_TRUE(q.ok);  // Algorithm 1: predefined qualifier
}

TEST(SimplexExecutor, ReturnsSumWithTrueQualifier) {
  SimplexExecutor ex(fault_free());
  const Qualified<float> q = ex.add(3.0f, 4.0f);
  EXPECT_FLOAT_EQ(q.value, 7.0f);
  EXPECT_TRUE(q.ok);
}

TEST(SimplexExecutor, AssertsSuccessEvenWhenFaulted) {
  // The simplex scheme cannot detect anything: the qualifier stays true
  // even though the value is corrupted — this is the unprotected baseline.
  SimplexExecutor ex(always_faulty());
  const Qualified<float> q = ex.mul(3.0f, 4.0f);
  EXPECT_TRUE(q.ok);
  EXPECT_NE(q.value, 12.0f);
}

TEST(SimplexExecutor, OneExecutionPerOp) {
  SimplexExecutor ex(fault_free());
  ex.mul(1.0f, 2.0f);
  ex.add(1.0f, 2.0f);
  EXPECT_EQ(ex.stats().logical_ops, 2u);
  EXPECT_EQ(ex.stats().executions, 2u);
  EXPECT_EQ(ex.redundancy(), 1);
}

// ------------------------------------------------------------- Algorithm 2

TEST(DmrExecutor, FaultFreeAgreesAndQualifies) {
  DmrExecutor ex(fault_free());
  const Qualified<float> q = ex.mul(1.5f, -2.0f);
  EXPECT_FLOAT_EQ(q.value, -3.0f);
  EXPECT_TRUE(q.ok);
}

TEST(DmrExecutor, TwoExecutionsPerOp) {
  DmrExecutor ex(fault_free());
  ex.mul(1.0f, 2.0f);
  EXPECT_EQ(ex.stats().logical_ops, 1u);
  EXPECT_EQ(ex.stats().executions, 2u);
  EXPECT_EQ(ex.redundancy(), 2);
}

TEST(DmrExecutor, DetectsSingleExecutionFault) {
  // Deterministic single corruption: permanent fault on PE0 of a 2-PE
  // unit corrupts execution 1 but not execution 2.
  FaultConfig cfg;
  cfg.kind = FaultKind::kPermanent;
  cfg.probability = 0.5;
  cfg.num_pes = 2;
  cfg.bit = 3;
  // Find a seed where exactly one PE is faulty.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    auto inj = std::make_shared<FaultInjector>(cfg, seed);
    if (inj->permanent_faulty_pes() != 1) continue;
    DmrExecutor ex(inj);
    const Qualified<float> q = ex.mul(3.0f, 5.0f);
    EXPECT_FALSE(q.ok) << "disagreement must clear the qualifier";
    EXPECT_EQ(ex.stats().disagreements, 1u);
    return;
  }
  FAIL() << "no seed with exactly one faulty PE found";
}

TEST(DmrExecutor, IdenticalDoubleFaultIsUndetectable) {
  // Both executions corrupted identically (same bit, every execution):
  // DMR's known blind spot. The library must behave as specified — agree
  // and qualify — because the comparison sees equal values.
  DmrExecutor ex(always_faulty(7));
  const Qualified<float> q = ex.mul(3.0f, 4.0f);
  EXPECT_TRUE(q.ok);
  EXPECT_NE(q.value, 12.0f);
}

// ------------------------------------------------------------------- TMR

TEST(TmrExecutor, FaultFreeQualifies) {
  TmrExecutor ex(fault_free());
  const Qualified<float> q = ex.add(2.5f, 2.5f);
  EXPECT_FLOAT_EQ(q.value, 5.0f);
  EXPECT_TRUE(q.ok);
  EXPECT_EQ(ex.redundancy(), 3);
}

TEST(TmrExecutor, ThreeExecutionsPerOp) {
  TmrExecutor ex(fault_free());
  ex.mul(1.0f, 1.0f);
  EXPECT_EQ(ex.stats().executions, 3u);
}

TEST(TmrExecutor, MasksSingleExecutionFault) {
  // One PE of three permanently faulty: every op has exactly one corrupt
  // execution; the vote must return the clean value with ok == true.
  FaultConfig cfg;
  cfg.kind = FaultKind::kPermanent;
  cfg.probability = 0.34;
  cfg.num_pes = 3;
  cfg.bit = 5;
  for (std::uint64_t seed = 0; seed < 128; ++seed) {
    auto inj = std::make_shared<FaultInjector>(cfg, seed);
    if (inj->permanent_faulty_pes() != 1) continue;
    TmrExecutor ex(inj);
    for (int i = 0; i < 10; ++i) {
      const Qualified<float> q = ex.mul(3.0f, 4.0f);
      EXPECT_TRUE(q.ok);
      EXPECT_FLOAT_EQ(q.value, 12.0f) << "vote must mask the single fault";
    }
    return;
  }
  FAIL() << "no seed with exactly one faulty PE found";
}

TEST(TmrExecutor, AllThreeDisagreeClearsQualifier) {
  // Random-bit faults on every execution make all three results differ
  // with overwhelming probability.
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 1.0;
  cfg.bit = -1;  // random bit each time
  auto inj = std::make_shared<FaultInjector>(cfg, 3);
  TmrExecutor ex(inj);
  int unqualified = 0;
  for (int i = 0; i < 50; ++i) {
    if (!ex.mul(3.1f, 7.7f).ok) ++unqualified;
  }
  EXPECT_GT(unqualified, 40) << "three distinct corruptions cannot vote";
}

// --------------------------------------------------------------- factory

TEST(ExecutorFactory, MakesAllSchemes) {
  EXPECT_EQ(make_executor("simplex", nullptr)->name(), "simplex");
  EXPECT_EQ(make_executor("dmr", nullptr)->name(), "dmr");
  EXPECT_EQ(make_executor("tmr", nullptr)->name(), "tmr");
}

TEST(ExecutorFactory, RejectsUnknownScheme) {
  EXPECT_THROW(make_executor("nmr", nullptr), std::invalid_argument);
}

// Parameterised over schemes: fault-free results equal plain arithmetic
// and stats count redundancy correctly.
class AllSchemes : public ::testing::TestWithParam<const char*> {};

TEST_P(AllSchemes, FaultFreeMatchesPlainArithmetic) {
  const auto ex = make_executor(GetParam(), nullptr);
  for (float a : {-3.5f, 0.0f, 1.25f, 1e20f}) {
    for (float b : {-1.0f, 0.5f, 3.0f}) {
      const auto m = ex->mul(a, b);
      EXPECT_TRUE(m.ok);
      EXPECT_FLOAT_EQ(m.value, a * b);
      const auto s = ex->add(a, b);
      EXPECT_TRUE(s.ok);
      EXPECT_FLOAT_EQ(s.value, a + b);
    }
  }
}

TEST_P(AllSchemes, ExecutionsMatchRedundancy) {
  const auto ex = make_executor(GetParam(), nullptr);
  constexpr std::uint64_t kOps = 17;
  for (std::uint64_t i = 0; i < kOps; ++i) ex->mul(1.0f, 2.0f);
  EXPECT_EQ(ex->stats().logical_ops, kOps);
  EXPECT_EQ(ex->stats().executions,
            kOps * static_cast<std::uint64_t>(ex->redundancy()));
}

TEST_P(AllSchemes, ResetStatsClears) {
  const auto ex = make_executor(GetParam(), nullptr);
  ex->mul(1.0f, 2.0f);
  ex->reset_stats();
  EXPECT_EQ(ex->stats().logical_ops, 0u);
  EXPECT_EQ(ex->stats().executions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemes,
                         ::testing::Values("simplex", "dmr", "tmr"));

}  // namespace
