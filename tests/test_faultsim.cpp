// Fault-injection substrate: bit flips, injector fault models, memory
// faults and campaign outcome classification.
#include <gtest/gtest.h>

#include <cmath>

#include "faultsim/bitflip.hpp"
#include "faultsim/campaign.hpp"
#include "faultsim/fault_model.hpp"
#include "faultsim/injector.hpp"
#include "faultsim/memory_faults.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using hybridcnn::faultsim::bits_float;
using hybridcnn::faultsim::CampaignSummary;
using hybridcnn::faultsim::classify;
using hybridcnn::faultsim::FaultConfig;
using hybridcnn::faultsim::FaultInjector;
using hybridcnn::faultsim::FaultKind;
using hybridcnn::faultsim::FaultTarget;
using hybridcnn::faultsim::flip_bit;
using hybridcnn::faultsim::float_bits;
using hybridcnn::faultsim::inject_bit_errors;
using hybridcnn::faultsim::inject_exact_flips;
using hybridcnn::faultsim::Outcome;
using hybridcnn::faultsim::outcome_name;
using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;
using hybridcnn::util::Rng;

// ---------------------------------------------------------------- bitflip

TEST(BitFlip, IsInvolution) {
  for (int bit = 0; bit < 32; ++bit) {
    const float v = 123.456f;
    EXPECT_EQ(float_bits(flip_bit(flip_bit(v, bit), bit)), float_bits(v));
  }
}

TEST(BitFlip, ChangesValue) {
  for (int bit = 0; bit < 32; ++bit) {
    EXPECT_NE(float_bits(flip_bit(1.0f, bit)), float_bits(1.0f));
  }
}

TEST(BitFlip, SignBit) {
  EXPECT_FLOAT_EQ(flip_bit(2.0f, 31), -2.0f);
}

TEST(BitFlip, BitIndexWrapsModulo32) {
  EXPECT_EQ(float_bits(flip_bit(1.0f, 33)), float_bits(flip_bit(1.0f, 1)));
}

TEST(BitFlip, RoundTripThroughBits) {
  const float v = -0.00321f;
  EXPECT_FLOAT_EQ(bits_float(float_bits(v)), v);
}

// --------------------------------------------------------------- injector

TEST(FaultInjector, NoneNeverFaults) {
  FaultInjector inj(FaultConfig{}, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(inj.filter(1.5f), 1.5f);
  }
  EXPECT_EQ(inj.stats().faults, 0u);
  EXPECT_EQ(inj.stats().executions, 1000u);
}

TEST(FaultInjector, TransientRateMatchesProbability) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 0.1;
  cfg.bit = 0;
  FaultInjector inj(cfg, 2);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) inj.filter(1.0f);
  const double rate =
      static_cast<double>(inj.stats().faults) / static_cast<double>(kN);
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(FaultInjector, DeterministicForSeed) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 0.05;
  cfg.bit = -1;
  FaultInjector a(cfg, 7);
  FaultInjector b(cfg, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(float_bits(a.filter(3.25f)), float_bits(b.filter(3.25f)));
  }
}

TEST(FaultInjector, FixedBitFlipsExactlyThatBit) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 1.0;
  cfg.bit = 31;
  FaultInjector inj(cfg, 3);
  EXPECT_FLOAT_EQ(inj.filter(4.0f), -4.0f);
}

TEST(FaultInjector, PermanentFaultyPeFractionApproximatesProbability) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kPermanent;
  cfg.probability = 0.25;
  cfg.num_pes = 4000;
  FaultInjector inj(cfg, 11);
  EXPECT_NEAR(static_cast<double>(inj.permanent_faulty_pes()) / 4000.0, 0.25,
              0.03);
}

TEST(FaultInjector, PermanentFaultsRepeatOnSamePe) {
  // With every PE faulty, every execution is corrupted — and
  // deterministically predictable via next_is_faulty().
  FaultConfig cfg;
  cfg.kind = FaultKind::kPermanent;
  cfg.probability = 1.0;
  cfg.num_pes = 4;
  cfg.bit = 1;
  FaultInjector inj(cfg, 5);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(inj.next_is_faulty());
    EXPECT_NE(float_bits(inj.filter(1.0f)), float_bits(1.0f));
  }
}

TEST(FaultInjector, RoundRobinPeSchedule) {
  FaultConfig cfg;
  cfg.num_pes = 3;
  FaultInjector inj(cfg, 1);
  EXPECT_EQ(inj.next_pe(), 0);
  inj.filter(0.0f);
  EXPECT_EQ(inj.next_pe(), 1);
  inj.filter(0.0f);
  inj.filter(0.0f);
  EXPECT_EQ(inj.next_pe(), 0);
}

TEST(FaultInjector, IntermittentBurstsExceedIndependentRate) {
  // With burst_continue close to 1 the same ignition probability yields
  // far more faults than the independent (transient) model.
  FaultConfig transient;
  transient.kind = FaultKind::kTransient;
  transient.probability = 0.01;
  transient.num_pes = 1;
  FaultInjector ti(transient, 21);

  FaultConfig burst = transient;
  burst.kind = FaultKind::kIntermittent;
  burst.burst_continue = 0.95;
  FaultInjector bi(burst, 21);

  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    ti.filter(1.0f);
    bi.filter(1.0f);
  }
  EXPECT_GT(bi.stats().faults, 5 * ti.stats().faults);
}

TEST(FaultInjector, ResetStatsClears) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 1.0;
  FaultInjector inj(cfg, 1);
  inj.filter(1.0f);
  inj.reset_stats();
  EXPECT_EQ(inj.stats().executions, 0u);
  EXPECT_EQ(inj.stats().faults, 0u);
}

// ----------------------------------------------------------- memory SEUs

TEST(MemoryFaults, BitErrorRateZeroTouchesNothing) {
  Tensor t(Shape{64}, 1.0f);
  Rng rng(1);
  const auto report = inject_bit_errors(t, 0.0, rng);
  EXPECT_EQ(report.bits_flipped, 0u);
  for (std::size_t i = 0; i < t.count(); ++i) EXPECT_EQ(t[i], 1.0f);
}

TEST(MemoryFaults, BitErrorRateApproximatesExpectation) {
  Tensor t(Shape{4, 16, 16, 4});  // 4096 words = 131072 bits
  Rng rng(2);
  const auto report = inject_bit_errors(t, 0.01, rng);
  EXPECT_EQ(report.words_visited, t.count());
  EXPECT_NEAR(static_cast<double>(report.bits_flipped), 1310.72, 150.0);
}

TEST(MemoryFaults, ExactFlipsCount) {
  Tensor t(Shape{32}, 2.0f);
  Rng rng(3);
  const auto report = inject_exact_flips(t, 10, rng);
  EXPECT_EQ(report.bits_flipped, 10u);
  int changed = 0;
  for (std::size_t i = 0; i < t.count(); ++i) {
    if (t[i] != 2.0f) ++changed;
  }
  EXPECT_GT(changed, 0);
  EXPECT_LE(changed, 10);
}

TEST(MemoryFaults, ExactFlipsOnEmptyTensorIsNoop) {
  Tensor t;
  Rng rng(4);
  const auto report = inject_exact_flips(t, 5, rng);
  EXPECT_EQ(report.bits_flipped, 0u);
}

// Counts bits differing between two equal-shape tensors.
std::uint64_t hamming_distance(const Tensor& a, const Tensor& b) {
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < a.count(); ++i) {
    bits += static_cast<std::uint64_t>(
        __builtin_popcount(float_bits(a[i]) ^ float_bits(b[i])));
  }
  return bits;
}

TEST(MemoryFaults, BitErrorsDeterministicForSeed) {
  // Geometric skip sampling must stay a pure function of the Rng state:
  // same seed, same flip sites, same draw count.
  Tensor a(Shape{512}, 1.5f);
  Tensor b(Shape{512}, 1.5f);
  Rng ra(42);
  Rng rb(42);
  const auto rep_a = inject_bit_errors(a, 0.003, ra);
  const auto rep_b = inject_bit_errors(b, 0.003, rb);
  EXPECT_EQ(rep_a.bits_flipped, rep_b.bits_flipped);
  EXPECT_EQ(rep_a.rng_draws, rep_b.rng_draws);
  EXPECT_EQ(a, b);
  EXPECT_GT(rep_a.bits_flipped, 0u);
}

TEST(MemoryFaults, BitErrorFlipSitesAreSpatiallyUniform) {
  // The skip-sampled sites must be i.i.d. Bernoulli per bit, so upsets
  // spread evenly: compare the flip mass in the two tensor halves over
  // many independent passes.
  constexpr std::size_t kWords = 2048;
  std::uint64_t low_half = 0;
  std::uint64_t high_half = 0;
  for (int pass = 0; pass < 50; ++pass) {
    Tensor t(Shape{kWords}, 0.0f);
    const Tensor zero = t;
    Rng rng(100 + pass);
    inject_bit_errors(t, 0.005, rng);
    for (std::size_t i = 0; i < kWords; ++i) {
      const auto bits = static_cast<std::uint64_t>(
          __builtin_popcount(float_bits(t[i]) ^ float_bits(zero[i])));
      (i < kWords / 2 ? low_half : high_half) += bits;
    }
  }
  const auto total = static_cast<double>(low_half + high_half);
  EXPECT_GT(total, 10000.0);  // ~16384 expected
  EXPECT_NEAR(static_cast<double>(low_half) / total, 0.5, 0.02);
}

TEST(MemoryFaults, BitErrorDrawsScaleWithFlipsNotBits) {
  // The regression this locks: the old sampler drew one variate per bit
  // (32 per word). Geometric skips draw one per flip — at least 10x
  // fewer at realistic bit-error rates (here ~460x).
  Tensor t(Shape{4, 16, 16, 4});  // 131072 bits
  Rng rng(7);
  const auto report = inject_bit_errors(t, 0.001, rng);
  const std::uint64_t old_draws = 32ull * t.count();
  EXPECT_GT(report.bits_flipped, 50u);
  EXPECT_LE(report.rng_draws, report.bits_flipped + 1)
      << "one uniform per flip (plus the terminating overshoot)";
  EXPECT_LE(report.rng_draws * 10, old_draws)
      << "must consume >=10x fewer variates than per-bit Bernoulli";
}

TEST(MemoryFaults, BitErrorRateOneFlipsEveryBitWithoutDrawing) {
  Tensor t(Shape{16}, 1.0f);
  const Tensor original = t;
  Rng rng(8);
  const auto report = inject_bit_errors(t, 1.0, rng);
  EXPECT_EQ(report.bits_flipped, 32u * 16u);
  EXPECT_EQ(report.rng_draws, 0u);
  EXPECT_EQ(hamming_distance(t, original), 32u * 16u);
}

TEST(MemoryFaults, ExactFlipsAreWithoutReplacement) {
  // The regression this locks: sampling WITH replacement let duplicate
  // sites un-flip each other, so "exactly N flips" silently delivered
  // fewer corrupted bits. Floyd's algorithm guarantees N distinct sites:
  // the Hamming distance to the original equals the request exactly.
  for (const std::uint64_t count : {1ull, 17ull, 50ull, 100ull, 127ull}) {
    Tensor t(Shape{4}, 3.0f);  // 128-bit site space — collisions likely
    const Tensor original = t;
    Rng rng(1000 + count);
    const auto report = inject_exact_flips(t, count, rng);
    EXPECT_EQ(report.bits_flipped, count);
    EXPECT_EQ(hamming_distance(t, original), count) << "count " << count;
  }
}

TEST(MemoryFaults, ExactFlipsAtCapacityFlipEveryBit) {
  Tensor t(Shape{2}, -1.0f);
  const Tensor original = t;
  Rng rng(9);
  const auto report = inject_exact_flips(t, 64, rng);
  EXPECT_EQ(report.bits_flipped, 64u);
  EXPECT_EQ(hamming_distance(t, original), 64u);

  Tensor u(Shape{2}, -1.0f);
  const auto over = inject_exact_flips(u, 10000, rng);
  EXPECT_EQ(over.bits_flipped, 64u);
  EXPECT_EQ(hamming_distance(u, original), 64u);
}

TEST(MemoryFaults, ExactFlipsDeterministicForSeed) {
  Tensor a(Shape{64}, 0.5f);
  Tensor b(Shape{64}, 0.5f);
  Rng ra(77);
  Rng rb(77);
  inject_exact_flips(a, 33, ra);
  inject_exact_flips(b, 33, rb);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------- memory campaign types

TEST(MemoryCampaign, OutcomeNames) {
  using hybridcnn::faultsim::memory_outcome_name;
  using hybridcnn::faultsim::MemoryOutcome;
  EXPECT_EQ(memory_outcome_name(MemoryOutcome::kIntact), "intact");
  EXPECT_EQ(memory_outcome_name(MemoryOutcome::kCorrected), "corrected");
  EXPECT_EQ(memory_outcome_name(MemoryOutcome::kUncorrectable),
            "uncorrectable");
  EXPECT_EQ(memory_outcome_name(MemoryOutcome::kQualifierCaught),
            "qualifier_caught");
  EXPECT_EQ(memory_outcome_name(MemoryOutcome::kSilentCorruption),
            "silent_corruption");
}

TEST(MemoryCampaign, SummaryRates) {
  using hybridcnn::faultsim::MemoryCampaignSummary;
  using hybridcnn::faultsim::MemoryOutcome;
  MemoryCampaignSummary s;
  s.add(MemoryOutcome::kIntact);
  s.add(MemoryOutcome::kIntact);
  s.add(MemoryOutcome::kCorrected);
  s.add(MemoryOutcome::kUncorrectable);
  s.add(MemoryOutcome::kQualifierCaught);
  s.add(MemoryOutcome::kSilentCorruption);
  EXPECT_EQ(s.runs, 6u);
  EXPECT_DOUBLE_EQ(s.availability(), 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(s.safety(), 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(s.sdc_rate(), 1.0 / 6.0);
  EXPECT_EQ(s, s);
}

// ------------------------------------------------------------- campaign

TEST(Campaign, ClassificationTable) {
  EXPECT_EQ(classify(false, false, true), Outcome::kCorrect);
  EXPECT_EQ(classify(true, false, true), Outcome::kCorrected);
  EXPECT_EQ(classify(true, true, true), Outcome::kDetectedAbort);
  EXPECT_EQ(classify(true, true, false), Outcome::kDetectedAbort);
  EXPECT_EQ(classify(true, false, false), Outcome::kSilentCorruption);
  EXPECT_EQ(classify(false, false, false), Outcome::kSilentCorruption);
}

TEST(Campaign, OutcomeNames) {
  EXPECT_EQ(outcome_name(Outcome::kCorrect), "correct");
  EXPECT_EQ(outcome_name(Outcome::kCorrected), "corrected");
  EXPECT_EQ(outcome_name(Outcome::kDetectedAbort), "detected_abort");
  EXPECT_EQ(outcome_name(Outcome::kSilentCorruption), "silent_corruption");
}

TEST(Campaign, SummaryRates) {
  CampaignSummary s;
  s.add(Outcome::kCorrect);
  s.add(Outcome::kCorrect);
  s.add(Outcome::kCorrected);
  s.add(Outcome::kDetectedAbort);
  s.add(Outcome::kSilentCorruption);
  EXPECT_EQ(s.runs, 5u);
  EXPECT_DOUBLE_EQ(s.availability(), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.safety(), 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.sdc_rate(), 1.0 / 5.0);
}

TEST(Campaign, EmptySummaryRatesAreZero) {
  const CampaignSummary s;
  EXPECT_DOUBLE_EQ(s.availability(), 0.0);
  EXPECT_DOUBLE_EQ(s.safety(), 0.0);
  EXPECT_DOUBLE_EQ(s.sdc_rate(), 0.0);
}

// Parameterised: operand-targeted faults corrupt results too.
class OperandTargets : public ::testing::TestWithParam<FaultTarget> {};

TEST_P(OperandTargets, TargetIsConfigured) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 1.0;
  cfg.target = GetParam();
  FaultInjector inj(cfg, 9);
  EXPECT_EQ(inj.config().target, GetParam());
  EXPECT_NE(float_bits(inj.filter(5.0f)), float_bits(5.0f));
}

INSTANTIATE_TEST_SUITE_P(Targets, OperandTargets,
                         ::testing::Values(FaultTarget::kResult,
                                           FaultTarget::kOperandA,
                                           FaultTarget::kOperandB));

}  // namespace
