// Sobel kernel construction and conv-filter surgery.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv2d.hpp"
#include "nn/filters.hpp"
#include "util/rng.hpp"

namespace {

using namespace hybridcnn::nn;
using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;
using hybridcnn::util::Rng;

TEST(Filters, BinomialRows) {
  const Tensor b1 = binomial_row(1);
  EXPECT_FLOAT_EQ(b1[0], 1.0f);
  const Tensor b3 = binomial_row(3);
  EXPECT_FLOAT_EQ(b3[0], 1.0f);
  EXPECT_FLOAT_EQ(b3[1], 2.0f);
  EXPECT_FLOAT_EQ(b3[2], 1.0f);
  const Tensor b5 = binomial_row(5);
  EXPECT_FLOAT_EQ(b5[2], 6.0f);  // 1 4 6 4 1
}

TEST(Filters, DifferenceRows) {
  const Tensor d3 = difference_row(3);
  EXPECT_FLOAT_EQ(d3[0], -1.0f);
  EXPECT_FLOAT_EQ(d3[1], 0.0f);
  EXPECT_FLOAT_EQ(d3[2], 1.0f);
  const Tensor d5 = difference_row(5);
  // conv([1,2,1], [-1,0,1]) = [-1,-2,0,2,1]
  EXPECT_FLOAT_EQ(d5[0], -1.0f);
  EXPECT_FLOAT_EQ(d5[1], -2.0f);
  EXPECT_FLOAT_EQ(d5[2], 0.0f);
  EXPECT_FLOAT_EQ(d5[3], 2.0f);
  EXPECT_FLOAT_EQ(d5[4], 1.0f);
}

TEST(Filters, DifferenceRowValidation) {
  EXPECT_THROW(difference_row(4), std::invalid_argument);
  EXPECT_THROW(difference_row(1), std::invalid_argument);
}

TEST(Filters, Classic3x3SobelX) {
  const Tensor k = sobel_kernel(3, SobelAxis::kX, /*normalized=*/false);
  const float expected[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
  for (std::size_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(k[i], expected[i]);
}

TEST(Filters, Classic3x3SobelY) {
  const Tensor k = sobel_kernel(3, SobelAxis::kY, /*normalized=*/false);
  const float expected[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
  for (std::size_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(k[i], expected[i]);
}

TEST(Filters, SobelKernelZeroSum) {
  // Every Sobel kernel is a derivative operator: taps sum to zero.
  for (const std::size_t n : {3u, 5u, 7u, 11u}) {
    for (const auto axis : {SobelAxis::kX, SobelAxis::kY}) {
      const Tensor k = sobel_kernel(n, axis);
      EXPECT_NEAR(k.sum(), 0.0, 1e-5) << "n=" << n;
    }
  }
}

TEST(Filters, SobelKernelAntisymmetry) {
  // Sobel-x is antisymmetric in x and symmetric in y.
  const std::size_t n = 11;
  const Tensor k = sobel_kernel(n, SobelAxis::kX);
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      EXPECT_NEAR(k[y * n + x], -k[y * n + (n - 1 - x)], 1e-6);
      EXPECT_NEAR(k[y * n + x], k[(n - 1 - y) * n + x], 1e-6);
    }
  }
}

TEST(Filters, SobelYIsTransposeOfSobelX) {
  const std::size_t n = 5;
  const Tensor kx = sobel_kernel(n, SobelAxis::kX);
  const Tensor ky = sobel_kernel(n, SobelAxis::kY);
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      EXPECT_NEAR(kx[y * n + x], ky[x * n + y], 1e-6);
    }
  }
}

TEST(Filters, NormalizedPositiveTapsSumToOne) {
  for (const std::size_t n : {3u, 11u}) {
    const Tensor k = sobel_kernel(n, SobelAxis::kX, /*normalized=*/true);
    double pos = 0.0;
    for (std::size_t i = 0; i < k.count(); ++i) {
      if (k[i] > 0.0f) pos += k[i];
    }
    EXPECT_NEAR(pos, 1.0, 1e-5) << "n=" << n;
  }
}

TEST(Filters, SobelFilterChannelPatternXyx) {
  // The paper: "we naively replace the first of the filters with a
  // Sobel-x, Sobel-y, Sobel-x filter".
  const Tensor f = sobel_filter(3, 3, /*normalized=*/false);
  ASSERT_EQ(f.shape(), (Shape{3, 3, 3}));
  const Tensor kx = sobel_kernel(3, SobelAxis::kX, false);
  const Tensor ky = sobel_kernel(3, SobelAxis::kY, false);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(f[i], kx[i]);       // channel 0: x
    EXPECT_FLOAT_EQ(f[9 + i], ky[i]);   // channel 1: y
    EXPECT_FLOAT_EQ(f[18 + i], kx[i]);  // channel 2: x
  }
}

TEST(Filters, ReplaceFilterWithSobelReturnsPrevious) {
  Rng rng(1);
  Conv2d conv(3, 96, 11, 4, 0);
  conv.init_he(rng);
  const Tensor before = conv.filter(42);
  const Tensor returned = replace_filter_with_sobel(conv, 42);
  EXPECT_EQ(returned, before);
  EXPECT_EQ(conv.filter(42), sobel_filter(3, 11));
  // Restore (the Fig. 4 sweep pattern).
  conv.set_filter(42, returned);
  EXPECT_EQ(conv.filter(42), before);
}

TEST(Filters, SobelKernelValidation) {
  EXPECT_THROW(sobel_kernel(2, SobelAxis::kX), std::invalid_argument);
  EXPECT_THROW(sobel_filter(0, 3), std::invalid_argument);
}

}  // namespace
