// Blocked GEMM equivalence against the naive reference kernels over
// randomized shapes, accumulate semantics, thread-count invariance, and
// the NaN-propagation guarantee (no zero-operand skipping).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/gemm_ref.hpp"
#include "runtime/compute_context.hpp"
#include "util/rng.hpp"

namespace {

using hybridcnn::runtime::ComputeContext;
using hybridcnn::util::Rng;
namespace nn = hybridcnn::nn;

struct Shape3 {
  std::size_t m, k, n;
};

// Mix of tiny (reference fast path), ragged (every micro-tile edge case),
// and large (blocked path, multiple K panels) problems.
const Shape3 kShapes[] = {
    {1, 1, 1},    {1, 7, 1},     {3, 2, 5},     {6, 16, 16},
    {7, 33, 17},  {8, 300, 40},  {13, 64, 129}, {61, 70, 83},
    {64, 64, 64}, {96, 147, 250}, {50, 600, 31}, {97, 301, 203},
};

std::vector<float> random_matrix(Rng& rng, std::size_t count,
                                 std::size_t k) {
  std::vector<float> v(count);
  // Scaled so k-term dot products stay O(1) and tolerances are uniform.
  const float s = 1.0f / std::sqrt(static_cast<float>(k));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0)) * s;
  return v;
}

float max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  float md = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    md = std::max(md, std::fabs(a[i] - b[i]));
  }
  return md;
}

constexpr float kTol = 2e-4f;  // accumulation-order slack

class GemmBlocked : public ::testing::Test {
 protected:
  void SetUp() override { ComputeContext::set_global_threads(4); }
  void TearDown() override { ComputeContext::set_global_threads(1); }
};

TEST_F(GemmBlocked, MatchesReferenceOverRandomShapes) {
  Rng rng(7);
  for (const auto& s : kShapes) {
    const auto a = random_matrix(rng, s.m * s.k, s.k);
    const auto b = random_matrix(rng, s.k * s.n, s.k);
    std::vector<float> got(s.m * s.n, -1.0f);
    std::vector<float> want(s.m * s.n, -1.0f);
    nn::gemm(s.m, s.k, s.n, a.data(), b.data(), got.data());
    nn::ref::gemm(s.m, s.k, s.n, a.data(), b.data(), want.data());
    EXPECT_LT(max_abs_diff(got, want), kTol)
        << "gemm " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST_F(GemmBlocked, AccumulateAddsOntoExistingC) {
  Rng rng(8);
  for (const auto& s : kShapes) {
    const auto a = random_matrix(rng, s.m * s.k, s.k);
    const auto b = random_matrix(rng, s.k * s.n, s.k);
    auto got = random_matrix(rng, s.m * s.n, 1);
    auto want = got;
    nn::gemm_acc(s.m, s.k, s.n, a.data(), b.data(), got.data());
    nn::ref::gemm_acc(s.m, s.k, s.n, a.data(), b.data(), want.data());
    EXPECT_LT(max_abs_diff(got, want), kTol)
        << "gemm_acc " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST_F(GemmBlocked, TransposedAMatchesReference) {
  Rng rng(9);
  for (const auto& s : kShapes) {
    const auto a = random_matrix(rng, s.k * s.m, s.k);  // stored [k x m]
    const auto b = random_matrix(rng, s.k * s.n, s.k);
    auto got = random_matrix(rng, s.m * s.n, 1);
    auto want = got;
    nn::gemm_at_b(s.m, s.k, s.n, a.data(), b.data(), got.data());
    nn::ref::gemm_at_b(s.m, s.k, s.n, a.data(), b.data(), want.data());
    EXPECT_LT(max_abs_diff(got, want), kTol)
        << "gemm_at_b " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST_F(GemmBlocked, TransposedBMatchesReference) {
  Rng rng(10);
  for (const auto& s : kShapes) {
    const auto a = random_matrix(rng, s.m * s.k, s.k);
    const auto b = random_matrix(rng, s.n * s.k, s.k);  // stored [n x k]
    auto got = random_matrix(rng, s.m * s.n, 1);
    auto want = got;
    nn::gemm_a_bt(s.m, s.k, s.n, a.data(), b.data(), got.data());
    nn::ref::gemm_a_bt(s.m, s.k, s.n, a.data(), b.data(), want.data());
    EXPECT_LT(max_abs_diff(got, want), kTol)
        << "gemm_a_bt " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST_F(GemmBlocked, AssignVariantEqualsMemsetPlusAccumulate) {
  Rng rng(11);
  for (const auto& s : kShapes) {
    const auto a = random_matrix(rng, s.k * s.m, s.k);
    const auto b = random_matrix(rng, s.k * s.n, s.k);
    std::vector<float> got(s.m * s.n, 123.0f);  // stale values overwritten
    std::vector<float> want(s.m * s.n, 0.0f);
    nn::gemm_at_b_assign(s.m, s.k, s.n, a.data(), b.data(), got.data());
    nn::ref::gemm_at_b(s.m, s.k, s.n, a.data(), b.data(), want.data());
    EXPECT_LT(max_abs_diff(got, want), kTol)
        << "gemm_at_b_assign " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST_F(GemmBlocked, BitIdenticalAcrossThreadCounts) {
  Rng rng(12);
  const Shape3 s{97, 513, 203};  // blocked path, ragged tiles, 3 K panels
  const auto a = random_matrix(rng, s.m * s.k, s.k);
  const auto b = random_matrix(rng, s.k * s.n, s.k);
  std::vector<std::vector<float>> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ComputeContext::set_global_threads(threads);
    std::vector<float> c(s.m * s.n);
    nn::gemm(s.m, s.k, s.n, a.data(), b.data(), c.data());
    results.push_back(std::move(c));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(results[0].data(), results[i].data(),
                             results[0].size() * sizeof(float)))
        << "thread-count variant " << i << " diverged";
  }
}

TEST_F(GemmBlocked, ZeroOperandsDoNotSuppressNanPropagation) {
  // A zero row in A times a NaN column in B must produce NaN (0 * NaN),
  // in both the reference fast path and the blocked path.
  for (const std::size_t dim : {8u, 96u}) {
    const std::size_t m = dim, k = dim, n = dim;
    std::vector<float> a(m * k, 0.0f);  // all-zero A
    std::vector<float> b(k * n, 1.0f);
    b[0 * n + 3] = std::nanf("");  // B(0, 3) = NaN
    std::vector<float> c(m * n, -7.0f);
    nn::gemm(m, k, n, a.data(), b.data(), c.data());
    EXPECT_TRUE(std::isnan(c[0 * n + 3])) << "dim " << dim;
    EXPECT_TRUE(std::isnan(c[(m - 1) * n + 3])) << "dim " << dim;
    EXPECT_EQ(c[0], 0.0f) << "dim " << dim;
  }
}

}  // namespace
