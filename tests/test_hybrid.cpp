// HybridNetwork: bifurcated dataflow, qualification policy, fail-stop
// behaviour and the footprint (cost split) argument.
#include <gtest/gtest.h>

#include <memory>

#include "core/hybrid_network.hpp"
#include "core/shape_qualifier.hpp"
#include "data/renderer.hpp"
#include "nn/conv2d.hpp"
#include "nn/filters.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/alexnet.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "reliable/executor.hpp"

namespace {

using namespace hybridcnn;
using core::Decision;
using core::FaultSeedStream;
using core::HybridClassification;
using core::HybridConfig;
using core::HybridNetwork;
using core::QualifierSource;
using core::ShapeQualifier;
using tensor::Shape;
using tensor::Tensor;

/// Small CNN over 128x128 images: fast enough for per-test reliable
/// execution while leaving the qualifier usable resolution.
std::unique_ptr<nn::Sequential> make_testnet(std::uint64_t seed = 3) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 128 -> 61
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);  // 61 -> 30
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 30 * 30, 5);
  nn::init_network(*net, seed);
  return net;
}

Tensor stop_image() { return data::render_stop_sign(128, 6.0); }

/// One classification over a fresh caller-owned stream at the network's
/// configured base — the serial idiom of the const classify API.
HybridClassification classify_once(const HybridNetwork& net,
                                   const Tensor& img) {
  FaultSeedStream seeds = net.seed_stream();
  return net.classify(img, seeds);
}

TEST(HybridNetwork, ConstructionInstallsAndFreezesSobelFilter) {
  HybridConfig cfg;
  cfg.dependable_filter = 2;
  HybridNetwork hybrid(make_testnet(), 0, cfg);
  auto& conv1 = hybrid.cnn().layer_as<nn::Conv2d>(0);
  EXPECT_TRUE(conv1.filter_frozen(2));
  EXPECT_EQ(conv1.filter(2), nn::sobel_filter(3, 7));
}

TEST(HybridNetwork, ConstructionValidation) {
  HybridConfig cfg;
  cfg.dependable_filter = 99;
  EXPECT_THROW(HybridNetwork(make_testnet(), 0, cfg),
               std::invalid_argument);
  EXPECT_THROW(HybridNetwork(nullptr, 0, HybridConfig{}),
               std::invalid_argument);
  // Layer 1 is a ReLU, not a Conv2d.
  EXPECT_THROW(HybridNetwork(make_testnet(), 1, HybridConfig{}),
               std::bad_cast);
}

TEST(HybridNetwork, FaultFreeClassifyProducesQualifiedEvidence) {
  HybridNetwork hybrid(make_testnet(), 0, HybridConfig{});
  const HybridClassification r = classify_once(hybrid, stop_image());

  EXPECT_TRUE(r.conv1_report.ok);
  EXPECT_EQ(r.conv1_report.detected_errors, 0u);
  EXPECT_GE(r.predicted_class, 0);
  EXPECT_LT(r.predicted_class, 5);
  EXPECT_GT(r.confidence, 0.0);
  EXPECT_LE(r.confidence, 1.0);
  // The image is an octagonal stop sign: the full-resolution qualifier
  // must confirm the shape regardless of CNN weights.
  EXPECT_TRUE(r.qualifier.match)
      << "dist=" << r.qualifier.shape.distance
      << " corners=" << r.qualifier.shape.corners;
  EXPECT_TRUE(r.qualifier.reliable);
}

TEST(HybridNetwork, DecisionFollowsPolicyForCriticalAndNonCritical) {
  // Observe the (deterministic) prediction once, then wrap the same
  // network topology in two policies: one where that class is critical
  // and one where it is not.
  const Tensor img = stop_image();
  HybridConfig probe_cfg;
  probe_cfg.critical_classes = {};
  HybridNetwork probe(make_testnet(7), 0, probe_cfg);
  const int predicted = classify_once(probe, img).predicted_class;

  HybridConfig critical_cfg;
  critical_cfg.critical_classes = {predicted};
  HybridNetwork critical(make_testnet(7), 0, critical_cfg);
  const HybridClassification rc = classify_once(critical, img);
  EXPECT_EQ(rc.predicted_class, predicted);
  EXPECT_TRUE(rc.safety_critical);
  EXPECT_EQ(rc.decision, Decision::kQualifiedReliable);
  EXPECT_TRUE(rc.reliable_positive());

  HybridConfig other_cfg;
  other_cfg.critical_classes = {predicted + 1};
  HybridNetwork other(make_testnet(7), 0, other_cfg);
  const HybridClassification ro = classify_once(other, img);
  EXPECT_FALSE(ro.safety_critical);
  EXPECT_EQ(ro.decision, Decision::kNonCriticalPass);
  EXPECT_FALSE(ro.reliable_positive());
}

TEST(HybridNetwork, NonOctagonImageIsDemotedForCriticalClass) {
  // A square sign: whatever the CNN says, if the predicted class is
  // critical the qualifier must refuse it (no octagon present).
  data::RenderParams p;
  p.cls = data::SignClass::kParking;
  p.size = 128;
  p.scale = 0.8;
  const Tensor img = data::render_sign(p);

  HybridConfig probe_cfg;
  probe_cfg.critical_classes = {};
  HybridNetwork probe(make_testnet(11), 0, probe_cfg);
  const int predicted = classify_once(probe, img).predicted_class;

  HybridConfig cfg;
  cfg.critical_classes = {predicted};
  HybridNetwork hybrid(make_testnet(11), 0, cfg);
  const HybridClassification r = classify_once(hybrid, img);
  EXPECT_FALSE(r.qualifier.match);
  EXPECT_EQ(r.decision, Decision::kDemotedUnqualified);
  EXPECT_FALSE(r.reliable_positive());
}

TEST(HybridNetwork, DmrCorrectsTransientFaultsDuringClassify) {
  HybridConfig cfg;
  cfg.fault_config.kind = faultsim::FaultKind::kTransient;
  cfg.fault_config.probability = 5e-6;
  cfg.fault_config.bit = -1;
  cfg.fault_seed = 5;
  HybridNetwork faulty(make_testnet(13), 0, cfg);
  HybridNetwork golden(make_testnet(13), 0, HybridConfig{});

  const Tensor img = stop_image();
  const HybridClassification rf = classify_once(faulty, img);
  const HybridClassification rg = classify_once(golden, img);

  ASSERT_TRUE(rf.conv1_report.ok) << rf.conv1_report.summary();
  EXPECT_GT(rf.conv1_report.detected_errors, 0u) << "test vacuous";
  EXPECT_EQ(rf.predicted_class, rg.predicted_class);
  EXPECT_NEAR(rf.confidence, rg.confidence, 1e-9);
}

TEST(HybridNetwork, PermanentFaultsYieldFailStopDecision) {
  const Tensor img = stop_image();
  HybridConfig probe_cfg;
  HybridNetwork probe(make_testnet(17), 0, probe_cfg);
  const int predicted = classify_once(probe, img).predicted_class;

  HybridConfig cfg;
  cfg.critical_classes = {predicted};
  cfg.fault_config.kind = faultsim::FaultKind::kPermanent;
  cfg.fault_config.probability = 1.0;
  cfg.fault_config.num_pes = 16;
  cfg.fault_config.bit = -1;
  HybridNetwork hybrid(make_testnet(17), 0, cfg);
  const HybridClassification r = classify_once(hybrid, img);

  EXPECT_FALSE(r.conv1_report.ok);
  EXPECT_TRUE(r.conv1_report.bucket_exhausted);
  if (r.predicted_class == predicted) {
    EXPECT_EQ(r.decision, Decision::kReliableExecutionFailed);
  }
  EXPECT_FALSE(r.reliable_positive());
}

TEST(HybridNetwork, FeatureMapQualifierSourceRuns) {
  HybridConfig cfg;
  cfg.qualifier.source = QualifierSource::kDependableFeatureMap;
  HybridNetwork hybrid(make_testnet(19), 0, cfg);
  const HybridClassification r = classify_once(hybrid, stop_image());
  // The bifurcated 61x61 feature map is coarse; the decision machinery
  // must still run and report reliable execution.
  EXPECT_TRUE(r.qualifier.reliable);
  EXPECT_TRUE(r.conv1_report.ok);
}

TEST(HybridNetwork, CostSplitShowsHybridSavings) {
  // The footprint argument holds for deep networks where conv1 is a small
  // share of the total; use the paper's own network geometry. cost_split
  // only propagates shapes, so full AlexNet is cheap here.
  HybridNetwork hybrid(
      nn::make_alexnet({.num_classes = 43, .seed = 1, .with_dropout = false}),
      nn::kAlexNetConv1, HybridConfig{});
  const auto split = hybrid.cost_split(Shape{3, 227, 227});
  EXPECT_GT(split.reliable_macs, 0u);
  EXPECT_GT(split.total_macs, split.reliable_macs)
      << "the reliable portion must be a strict subset of the total work";
  // The headline claim: reliable execution is confined to a small part
  // (conv1 + qualifier is ~10% of AlexNet's MACs).
  EXPECT_LT(static_cast<double>(split.reliable_macs),
            0.15 * static_cast<double>(split.total_macs));
}

TEST(HybridNetwork, ClassifyRejectsBatchedInput) {
  HybridNetwork hybrid(make_testnet(), 0, HybridConfig{});
  FaultSeedStream seeds = hybrid.seed_stream();
  EXPECT_THROW(
      static_cast<void>(hybrid.classify(Tensor(Shape{1, 3, 128, 128}), seeds)),
      std::invalid_argument);
  // A rejected classification must not consume a seed.
  EXPECT_EQ(seeds, hybrid.seed_stream());
}

TEST(ShapeQualifier, FailedReportNeverQualifies) {
  ShapeQualifier q;
  reliable::ExecutionReport failed;
  failed.ok = false;
  const Tensor fm(Shape{64, 64}, 1.0f);
  const auto verdict = q.qualify_feature_map(fm, failed);
  EXPECT_FALSE(verdict.reliable);
  EXPECT_FALSE(verdict.match);
  EXPECT_FALSE(verdict.qualifies());
}

TEST(ShapeQualifier, QualifiesStopSignImageThroughReliableSobel) {
  ShapeQualifier q;
  const auto exec = reliable::make_executor("dmr", nullptr);
  const auto verdict = q.qualify(data::render_stop_sign(160, 4.0), *exec);
  EXPECT_TRUE(verdict.reliable);
  EXPECT_TRUE(verdict.match)
      << "dist=" << verdict.shape.distance
      << " corners=" << verdict.shape.corners;
  EXPECT_TRUE(verdict.qualifies());
  EXPECT_GT(verdict.report.logical_ops, 0u);
}

}  // namespace
